//! Weight-streaming broadcast/reduce trees on the mesh (Fig 4, §3.2.1).
//!
//! When a weight shard enters from an I/O channel it must reach every
//! NPU (pure-DP weight streaming; Fig 4A). The MPI-style one-to-many
//! pattern on a mesh streams along the channel's facing dimension
//! first, then fans out along the perpendicular dimension from every
//! node on that line. Because a stream occupies *every edge of its
//! tree* simultaneously (packets are pipelined), the per-link load when
//! all `2(cols+rows)` channels stream at rate `P` reaches `(2N−1)P` on
//! an N-wide mesh (Fig 4B) — the hotspot that caps streaming at a
//! fraction of line rate (§8.2: 750/1152 ≈ 0.65 for the baseline).
//!
//! The reverse trees sum weight gradients back out to the channels
//! (Fig 4 caption).

use fred_sim::flow::{FlowSpec, Priority};
use fred_sim::topology::LinkId;

use crate::topology::{IoSide, MeshFabric};

/// The directed mesh edges of I/O channel `io`'s broadcast tree
/// (entry NPU excluded — I/O and external links are added by
/// [`streaming_in_flows`]).
///
/// Left/right channels stream along their row first, then every row
/// node fans out along its column; top/bottom channels stream along
/// their column first, then fan out along rows.
pub fn broadcast_tree_links(mesh: &MeshFabric, io: usize) -> Vec<LinkId> {
    const EAST: usize = 0;
    const WEST: usize = 1;
    const SOUTH: usize = 2;
    const NORTH: usize = 3;
    let ch = mesh.channels()[io];
    let entry = mesh.io_entry_npu(io);
    let (ex, ey) = mesh.coords(entry);
    let mut links = Vec::new();

    let walk = |mut x: usize, mut y: usize, dir: usize, links: &mut Vec<LinkId>| loop {
        let id = mesh.npu_at(x, y);
        match mesh.neighbor_link(id, dir) {
            Some(l) => {
                links.push(l);
                match dir {
                    EAST => x += 1,
                    WEST => x -= 1,
                    SOUTH => y += 1,
                    NORTH => y -= 1,
                    _ => unreachable!(),
                }
            }
            None => break,
        }
    };

    match ch.side {
        IoSide::Left | IoSide::Right => {
            // Primary: the row, away from the entry edge.
            let dir = if ch.side == IoSide::Left { EAST } else { WEST };
            walk(ex, ey, dir, &mut links);
            // Secondary: every row node fans out along its column.
            for x in 0..mesh.cols() {
                walk(x, ey, SOUTH, &mut links);
                walk(x, ey, NORTH, &mut links);
            }
        }
        IoSide::Top | IoSide::Bottom => {
            let dir = if ch.side == IoSide::Top { SOUTH } else { NORTH };
            walk(ex, ey, dir, &mut links);
            for y in 0..mesh.rows() {
                walk(ex, y, EAST, &mut links);
                walk(ex, y, WEST, &mut links);
            }
        }
    }
    links
}

/// Concurrent flows modelling channel `io` streaming `bytes` onto the
/// wafer and broadcasting to all NPUs: one flow on the
/// external-memory→controller link, one on the controller→entry link,
/// and one per tree edge — each carrying the full `bytes` (pipelined
/// stream).
pub fn streaming_in_flows(
    mesh: &MeshFabric,
    io: usize,
    bytes: f64,
    priority: Priority,
    tag: u64,
) -> Vec<FlowSpec> {
    let mut flows = vec![
        FlowSpec::new(mesh.ext_to_npu_route(io, mesh.io_entry_npu(io)), bytes)
            .with_priority(priority)
            .with_tag(tag),
    ];
    for l in broadcast_tree_links(mesh, io) {
        flows.push(
            FlowSpec::new(vec![l], bytes)
                .with_priority(priority)
                .with_tag(tag),
        );
    }
    flows
}

/// Concurrent flows modelling the reverse direction: weight gradients
/// reduced over the same tree (edges reversed) and written out through
/// channel `io` to external memory.
pub fn streaming_out_flows(
    mesh: &MeshFabric,
    io: usize,
    bytes: f64,
    priority: Priority,
    tag: u64,
) -> Vec<FlowSpec> {
    let topo = mesh.topology();
    let mut flows = Vec::new();
    for l in broadcast_tree_links(mesh, io) {
        let link = topo.link(l);
        let rev = topo
            .find_link(link.dst, link.src)
            .expect("mesh links are duplex");
        flows.push(
            FlowSpec::new(vec![rev], bytes)
                .with_priority(priority)
                .with_tag(tag),
        );
    }
    flows.push(
        FlowSpec::new(mesh.npu_to_ext_route(mesh.io_entry_npu(io), io), bytes)
            .with_priority(priority)
            .with_tag(tag),
    );
    flows
}

/// Static per-link load multipliers when *every* channel streams at
/// rate `P` simultaneously: `load[l]` = number of broadcast trees using
/// directed link `l`. The maximum is the Fig 4B hotspot factor
/// (`2N − 1` for an N-column mesh).
pub fn simultaneous_channel_loads(mesh: &MeshFabric) -> Vec<usize> {
    let mut loads = vec![0usize; mesh.topology().link_count()];
    for io in 0..mesh.io_count() {
        for l in broadcast_tree_links(mesh, io) {
            loads[l.0] += 1;
        }
    }
    loads
}

/// The hotspot factor: max of [`simultaneous_channel_loads`].
pub fn hotspot_factor(mesh: &MeshFabric) -> usize {
    simultaneous_channel_loads(mesh)
        .into_iter()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_sim::netsim::FlowNetwork;
    use std::collections::BTreeSet;

    #[test]
    fn tree_reaches_every_npu_exactly_once() {
        let m = MeshFabric::paper_baseline();
        for io in 0..m.io_count() {
            let links = broadcast_tree_links(&m, io);
            // A spanning tree of 20 nodes rooted at the entry has 19 edges.
            assert_eq!(links.len(), 19, "io {io}");
            let mut reached = BTreeSet::from([m.io_entry_npu(io)]);
            for l in &links {
                let link = m.topology().link(*l);
                let npu = m.npu_index(link.dst).expect("tree edges end at NPUs");
                assert!(
                    reached.insert(npu) || npu == m.io_entry_npu(io),
                    "npu {npu} reached twice"
                );
            }
            assert_eq!(reached.len(), 20, "io {io} tree does not span");
        }
    }

    #[test]
    fn hotspot_factor_matches_2n_minus_1_law() {
        // Square meshes with 4N channels: hotspot = 2N - 1 (Fig 4B).
        for n in [3usize, 4, 5] {
            let m = MeshFabric::new(n, n, 1e9, 1e8, 0.0);
            assert_eq!(hotspot_factor(&m), 2 * n - 1, "N={n}");
        }
        // The 5×4 baseline: 2*5 - 1 = 9 (columns dominate).
        let m = MeshFabric::paper_baseline();
        assert_eq!(hotspot_factor(&m), 9);
    }

    #[test]
    fn simultaneous_streaming_throttles_to_65_percent() {
        // §8.2 GPT-3 analysis: all 18 channels streaming concurrently
        // achieve 750/1152 = 0.65x of the 128 GBps line rate.
        let m = MeshFabric::paper_baseline();
        let mut net = FlowNetwork::new(m.clone_topology());
        let bytes = 128e9; // 1 second at line rate
        for io in 0..m.io_count() {
            for f in streaming_in_flows(&m, io, bytes, Priority::Bulk, io as u64) {
                net.inject(f).unwrap();
            }
        }
        let done = net.run_to_completion();
        let t = done.iter().map(|c| c.completed_at).max().unwrap().as_secs();
        let achieved_fraction = 1.0 / t;
        let predicted = fred_collectives::cost::mesh_streaming_linerate_fraction(5, 128e9, 750e9);
        assert!(
            (achieved_fraction - predicted).abs() / predicted < 0.05,
            "simulated fraction {achieved_fraction:.3} vs predicted {predicted:.3}"
        );
    }

    #[test]
    fn single_stream_runs_at_line_rate() {
        let m = MeshFabric::paper_baseline();
        let mut net = FlowNetwork::new(m.clone_topology());
        for f in streaming_in_flows(&m, 0, 128e9, Priority::Bulk, 0) {
            net.inject(f).unwrap();
        }
        let done = net.run_to_completion();
        let t = done.iter().map(|c| c.completed_at).max().unwrap().as_secs();
        // One stream is bottlenecked only by its own 128 GBps channel.
        assert!((t - 1.0).abs() < 0.01, "t = {t}");
    }

    #[test]
    fn out_flows_mirror_in_flows() {
        let m = MeshFabric::paper_baseline();
        let inn = streaming_in_flows(&m, 5, 1e9, Priority::Bulk, 0);
        let out = streaming_out_flows(&m, 5, 1e9, Priority::Bulk, 0);
        assert_eq!(inn.len(), out.len());
        for f in inn.iter().chain(&out) {
            m.topology().validate_route(&f.route).unwrap();
        }
    }
}

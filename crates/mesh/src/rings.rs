//! Logical-ring embedding on the mesh (§7.2, §3.2.3).
//!
//! For collectives among arbitrary NPU subsets the baseline "builds
//! logical rings between involved NPUs and performs the ring algorithm".
//! The ring order matters: a bad order inflates hop counts and creates
//! the congestion of Fig 6. We use the *snake* (boustrophedon) order —
//! row-major with alternating row direction — which is the standard
//! Hamiltonian embedding on meshes and degrades gracefully for sparse,
//! non-aligned groups.

use crate::topology::MeshFabric;
use fred_collectives::plan::CommPlan;
use fred_collectives::ring::{self, Direction};

/// Orders `group` along the mesh snake: even rows left→right, odd rows
/// right→left. Consecutive members are as close as the group's shape
/// allows; for a full mesh this is a Hamiltonian ring with unit hops
/// (except the closing edge).
pub fn snake_order(mesh: &MeshFabric, group: &[usize]) -> Vec<usize> {
    let mut ordered: Vec<usize> = group.to_vec();
    ordered.sort_by_key(|&n| {
        let (x, y) = mesh.coords(n);
        let xx = if y % 2 == 0 { x } else { mesh.cols() - 1 - x };
        (y, xx)
    });
    ordered.dedup();
    ordered
}

/// A Hamiltonian cycle over the full mesh with unit hops everywhere —
/// the embedding the baseline's wafer-wide ring collectives use so that
/// both directions of every traversed link carry exactly one of the two
/// reverse-circulating chunks (§7.2). Exists whenever either dimension
/// is even; returns `None` otherwise (odd×odd grids have no Hamiltonian
/// cycle).
pub fn hamiltonian_order(mesh: &MeshFabric) -> Option<Vec<usize>> {
    let (cols, rows) = (mesh.cols(), mesh.rows());
    // Construct for even row count; transpose logically otherwise.
    let (c, r, transposed) = if rows % 2 == 0 {
        (cols, rows, false)
    } else if cols % 2 == 0 {
        (rows, cols, true)
    } else {
        return None;
    };
    let at = |x: usize, y: usize| {
        if transposed {
            mesh.npu_at(y, x)
        } else {
            mesh.npu_at(x, y)
        }
    };
    let mut order = Vec::with_capacity(c * r);
    // Across the top row, then snake rows 1..r-1 over columns 1..c-1,
    // then return up column 0.
    for x in 0..c {
        order.push(at(x, 0));
    }
    for y in 1..r {
        if y % 2 == 1 {
            for x in (1..c).rev() {
                order.push(at(x, y));
            }
        } else {
            for x in 1..c {
                order.push(at(x, y));
            }
        }
    }
    for y in (1..r).rev() {
        order.push(at(0, y));
    }
    Some(order)
}

/// Total X-Y hop count around the ring `order` (a congestion proxy used
/// by the Fig 6 analysis).
pub fn ring_hop_count(mesh: &MeshFabric, order: &[usize]) -> usize {
    if order.len() < 2 {
        return 0;
    }
    (0..order.len())
        .map(|i| mesh.xy_route(order[i], order[(i + 1) % order.len()]).len())
        .sum()
}

/// Ring All-Reduce among `group` on the mesh, snake-ordered, with the
/// paper's two reverse-direction chunks.
///
/// # Panics
///
/// Panics if `group` is empty.
pub fn all_reduce(mesh: &MeshFabric, group: &[usize], bytes: f64) -> CommPlan {
    ring::all_reduce(
        &snake_order(mesh, group),
        bytes,
        Direction::Bidirectional,
        mesh,
    )
}

/// Ring Reduce-Scatter among `group`.
///
/// # Panics
///
/// Panics if `group` is empty.
pub fn reduce_scatter(mesh: &MeshFabric, group: &[usize], bytes: f64) -> CommPlan {
    ring::reduce_scatter(
        &snake_order(mesh, group),
        bytes,
        Direction::Bidirectional,
        mesh,
    )
}

/// Ring All-Gather among `group`.
///
/// # Panics
///
/// Panics if `group` is empty.
pub fn all_gather(mesh: &MeshFabric, group: &[usize], bytes: f64) -> CommPlan {
    ring::all_gather(
        &snake_order(mesh, group),
        bytes,
        Direction::Bidirectional,
        mesh,
    )
}

/// All-to-All among `group`, X-Y routed shift permutations.
///
/// # Panics
///
/// Panics if `group` is empty.
pub fn all_to_all(mesh: &MeshFabric, group: &[usize], bytes: f64) -> CommPlan {
    ring::all_to_all(&snake_order(mesh, group), bytes, mesh)
}

/// The wafer-wide All-Reduce of the baseline (§7.2, Kumar & Jouppi):
/// the full mesh is traversed as a unit-hop Hamiltonian cycle and the
/// ring algorithm circulates **two chunks in reverse directions**, so
/// both directions of every cycle link stay busy — bounding effective
/// per-NPU bandwidth at 2 links × 750 GBps = 1.5 TBps, the corner-NPU
/// limit of §8.1.
///
/// Falls back to the snake ring when `group` is not the full mesh (the
/// non-aligned congestion of §3.2.3) or no Hamiltonian cycle exists.
pub fn wafer_all_reduce(mesh: &MeshFabric, group: &[usize], bytes: f64) -> CommPlan {
    if group.len() == mesh.npu_count() {
        if let Some(order) = hamiltonian_order(mesh) {
            return ring::all_reduce(&order, bytes, Direction::Bidirectional, mesh);
        }
    }
    all_reduce(mesh, group, bytes)
}

/// Wafer-wide Reduce-Scatter over the Hamiltonian cycle (falls back
/// like [`wafer_all_reduce`]).
pub fn wafer_reduce_scatter(mesh: &MeshFabric, group: &[usize], bytes: f64) -> CommPlan {
    if group.len() == mesh.npu_count() {
        if let Some(order) = hamiltonian_order(mesh) {
            return ring::reduce_scatter(&order, bytes, Direction::Bidirectional, mesh);
        }
    }
    reduce_scatter(mesh, group, bytes)
}

/// Wafer-wide All-Gather over the Hamiltonian cycle (falls back like
/// [`wafer_all_reduce`]).
pub fn wafer_all_gather(mesh: &MeshFabric, group: &[usize], bytes: f64) -> CommPlan {
    if group.len() == mesh.npu_count() {
        if let Some(order) = hamiltonian_order(mesh) {
            return ring::all_gather(&order, bytes, Direction::Bidirectional, mesh);
        }
    }
    all_gather(mesh, group, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_sim::netsim::FlowNetwork;

    #[test]
    fn snake_order_unit_hops_on_full_mesh() {
        let m = MeshFabric::paper_baseline();
        let group: Vec<usize> = (0..20).collect();
        let order = snake_order(&m, &group);
        assert_eq!(order.len(), 20);
        // All consecutive hops are 1 except the closing edge (3 hops:
        // from (0,3) back to (0,0)).
        for w in order.windows(2) {
            assert_eq!(m.xy_route(w[0], w[1]).len(), 1, "{} -> {}", w[0], w[1]);
        }
        assert_eq!(ring_hop_count(&m, &order), 19 + 3);
    }

    #[test]
    fn snake_order_on_sparse_group() {
        let m = MeshFabric::paper_baseline();
        // The non-aligned MP(5)-DP(3) shapes of Fig 6 produce groups like
        // this; the snake order still yields a ring, just with >1 hops.
        let group = vec![0, 1, 2, 3, 4, 5, 6]; // first MP group of MP(7)
        let order = snake_order(&m, &group);
        assert_eq!(order.len(), 7);
        assert!(ring_hop_count(&m, &order) >= 7);
    }

    #[test]
    fn hamiltonian_cycle_has_unit_hops() {
        for (c, r) in [(5usize, 4usize), (4, 4), (4, 3), (6, 5), (2, 2)] {
            let m = MeshFabric::new(c, r, 1e9, 1e8, 0.0);
            let order = hamiltonian_order(&m)
                .unwrap_or_else(|| panic!("{c}x{r} should have a Hamiltonian cycle"));
            assert_eq!(order.len(), c * r, "{c}x{r}: visits every NPU once");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..c * r).collect::<Vec<_>>());
            for i in 0..order.len() {
                let j = (i + 1) % order.len();
                assert_eq!(
                    m.xy_route(order[i], order[j]).len(),
                    1,
                    "{c}x{r}: hop {} -> {} not unit",
                    order[i],
                    order[j]
                );
            }
        }
        // Odd x odd has no Hamiltonian cycle.
        let m = MeshFabric::new(3, 3, 1e9, 1e8, 0.0);
        assert!(hamiltonian_order(&m).is_none());
    }

    #[test]
    fn wafer_all_reduce_uses_hamiltonian_ring() {
        let m = MeshFabric::paper_baseline();
        let group: Vec<usize> = (0..20).collect();
        let plan = wafer_all_reduce(&m, &group, 1e6);
        assert_eq!(plan.label, "ring-allreduce");
        // Ring of 20: 2*(20-1) phases.
        assert_eq!(plan.phase_count(), 38);
    }

    #[test]
    fn partial_group_falls_back_to_ring() {
        let m = MeshFabric::paper_baseline();
        let plan = wafer_all_reduce(&m, &[0, 1, 2, 5, 6, 7], 1e6);
        assert_eq!(plan.label, "ring-allreduce");
    }

    #[test]
    fn mesh_all_reduce_executes_on_simulator() {
        let m = MeshFabric::new(4, 4, 100.0, 10.0, 0.0);
        let group: Vec<usize> = (0..16).collect();
        let plan = wafer_all_reduce(&m, &group, 1600.0);
        let mut net = FlowNetwork::new(m.clone_topology());
        let d = plan
            .execute(&mut net, fred_sim::flow::Priority::Dp)
            .unwrap();
        assert!(d.as_secs() > 0.0);
        // Sanity: wafer AR must beat a naive snake ring (which pays long
        // wrap-around hops and full-ring serialisation).
        let ring_plan = all_reduce(&m, &group, 1600.0);
        let mut net2 = FlowNetwork::new(m.clone_topology());
        let d_ring = ring_plan
            .execute(&mut net2, fred_sim::flow::Priority::Dp)
            .unwrap();
        assert!(d <= d_ring, "hier {d:?} vs ring {d_ring:?}");
    }

    #[test]
    fn wafer_rs_and_ag_compose_to_wafer_ar() {
        let m = MeshFabric::paper_baseline();
        let group: Vec<usize> = (0..20).collect();
        let d = 2e9;
        let rs = wafer_reduce_scatter(&m, &group, d);
        let ag = wafer_all_gather(&m, &group, d);
        let ar = wafer_all_reduce(&m, &group, d);
        assert_eq!(rs.phase_count() + ag.phase_count(), ar.phase_count());
        assert!((rs.total_bytes() + ag.total_bytes() - ar.total_bytes()).abs() < 1e-3);
        // Partial groups fall back to the snake ring.
        let partial = wafer_reduce_scatter(&m, &[0, 1, 2], d);
        assert_eq!(partial.label, "ring-reduce-scatter");
    }

    #[test]
    fn all_to_all_routes_on_mesh() {
        let m = MeshFabric::paper_baseline();
        let plan = all_to_all(&m, &[0, 4, 15, 19], 4e6);
        assert_eq!(plan.phase_count(), 3);
        for p in &plan.phases {
            for t in &p.transfers {
                m.topology().validate_route(&t.route).unwrap();
            }
        }
    }

    #[test]
    fn corner_bound_limits_wafer_allreduce_bandwidth() {
        // §8.1: the baseline's wafer-wide AR effective BW is bounded by
        // the corner NPUs (2 links): ~1.5 TBps, not 3 TBps.
        let m = MeshFabric::paper_baseline();
        let d = 20e9;
        let group: Vec<usize> = (0..20).collect();
        let plan = wafer_all_reduce(&m, &group, d);
        let mut net = FlowNetwork::new(m.clone_topology());
        let dur = plan
            .execute(&mut net, fred_sim::flow::Priority::Dp)
            .unwrap()
            .as_secs();
        let per_npu = fred_collectives::cost::endpoint_all_reduce_traffic(20, d);
        let eff = per_npu / dur;
        assert!(
            eff > 0.8e12 && eff < 2.2e12,
            "effective BW {eff:.3e} outside the corner-bounded band"
        );
    }
}

//! The baseline 2D-mesh wafer fabric (§7.1, Table 5).
//!
//! NPUs sit at grid coordinates `(x, y)` with `id = y·cols + x`;
//! neighbouring NPUs are joined by duplex 750 GBps links (each NPU's
//! 3 TBps is split over its four mesh ports). Every *border position*
//! of every edge carries one I/O controller, so a `cols × rows` mesh
//! has `2·cols + 2·rows` controllers (corners serve two edges) — 18
//! for the paper's 5×4 instance. Each controller also links to the
//! off-wafer external memory.

use fred_sim::topology::{LinkId, NodeId, NodeKind, Route, Topology};

use fred_collectives::plan::RouteProvider;

/// Which edge of the mesh an I/O controller sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoSide {
    /// y = 0 row, column index.
    Top,
    /// y = rows−1 row, column index.
    Bottom,
    /// x = 0 column, row index.
    Left,
    /// x = cols−1 column, row index.
    Right,
}

/// An I/O controller's position on the border.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IoChannel {
    /// The edge this channel enters from.
    pub side: IoSide,
    /// Coordinate along that edge (column for top/bottom, row for
    /// left/right).
    pub index: usize,
}

/// The baseline mesh fabric.
///
/// ```
/// use fred_mesh::topology::MeshFabric;
///
/// let mesh = MeshFabric::paper_baseline();
/// assert_eq!((mesh.cols(), mesh.rows()), (5, 4));
/// assert_eq!(mesh.io_count(), 18);
/// // X-Y routing: x first, then y.
/// let hops = mesh.xy_route(mesh.npu_at(0, 0), mesh.npu_at(3, 2)).len();
/// assert_eq!(hops, 5);
/// // Corner NPUs have only two mesh links — the §8.1 bandwidth bound.
/// assert_eq!(mesh.degree(mesh.npu_at(0, 0)), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MeshFabric {
    topo: Topology,
    cols: usize,
    rows: usize,
    npus: Vec<NodeId>,
    ios: Vec<NodeId>,
    channels: Vec<IoChannel>,
    ext: NodeId,
    /// `link[dir][npu]`: outgoing mesh link of `npu` in direction
    /// `dir` (0=east, 1=west, 2=south, 3=north), if it exists.
    dir_links: [Vec<Option<LinkId>>; 4],
    io_in: Vec<LinkId>,
    io_out: Vec<LinkId>,
    ext_to_io: Vec<LinkId>,
    io_to_ext: Vec<LinkId>,
}

const EAST: usize = 0;
const WEST: usize = 1;
const SOUTH: usize = 2;
const NORTH: usize = 3;

impl MeshFabric {
    /// Builds the paper's 5×4 baseline with Table 3 parameters.
    pub fn paper_baseline() -> MeshFabric {
        let p = fred_core::params::PhysicalParams::paper();
        MeshFabric::new(
            fred_core::params::MESH_COLS,
            fred_core::params::MESH_ROWS,
            fred_core::params::MESH_LINK_BW,
            p.io_bw,
            p.link_latency,
        )
    }

    /// Builds a `cols × rows` mesh with the given per-direction link
    /// bandwidth, per-I/O-channel bandwidth and link latency.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is smaller than 2.
    pub fn new(cols: usize, rows: usize, link_bw: f64, io_bw: f64, latency: f64) -> MeshFabric {
        assert!(cols >= 2 && rows >= 2, "mesh must be at least 2x2");
        let mut topo = Topology::new();
        let npus: Vec<NodeId> = (0..cols * rows)
            .map(|i| topo.add_node(NodeKind::Npu, format!("npu{}_{}", i % cols, i / cols)))
            .collect();

        let mut dir_links: [Vec<Option<LinkId>>; 4] =
            std::array::from_fn(|_| vec![None; cols * rows]);
        for y in 0..rows {
            for x in 0..cols {
                let id = y * cols + x;
                if x + 1 < cols {
                    let (e, w) = topo.add_duplex_link(npus[id], npus[id + 1], link_bw, latency);
                    dir_links[EAST][id] = Some(e);
                    dir_links[WEST][id + 1] = Some(w);
                }
                if y + 1 < rows {
                    let (s, n) = topo.add_duplex_link(npus[id], npus[id + cols], link_bw, latency);
                    dir_links[SOUTH][id] = Some(s);
                    dir_links[NORTH][id + cols] = Some(n);
                }
            }
        }

        // One I/O channel per border position per facing edge.
        let mut channels = Vec::new();
        for x in 0..cols {
            channels.push(IoChannel {
                side: IoSide::Top,
                index: x,
            });
        }
        for x in 0..cols {
            channels.push(IoChannel {
                side: IoSide::Bottom,
                index: x,
            });
        }
        for y in 0..rows {
            channels.push(IoChannel {
                side: IoSide::Left,
                index: y,
            });
        }
        for y in 0..rows {
            channels.push(IoChannel {
                side: IoSide::Right,
                index: y,
            });
        }

        let ext = topo.add_node(NodeKind::ExternalMemory, "ext");
        let mut ios = Vec::new();
        let mut io_in = Vec::new();
        let mut io_out = Vec::new();
        let mut ext_to_io = Vec::new();
        let mut io_to_ext = Vec::new();
        for (i, ch) in channels.iter().enumerate() {
            let io = topo.add_node(NodeKind::IoController, format!("io{i}"));
            let entry = npus[Self::entry_of(ch, cols, rows)];
            let (inn, out) = topo.add_duplex_link(io, entry, io_bw, latency);
            let (e2i, i2e) = topo.add_duplex_link(ext, io, io_bw, latency);
            ios.push(io);
            io_in.push(inn);
            io_out.push(out);
            ext_to_io.push(e2i);
            io_to_ext.push(i2e);
        }

        MeshFabric {
            topo,
            cols,
            rows,
            npus,
            ios,
            channels,
            ext,
            dir_links,
            io_in,
            io_out,
            ext_to_io,
            io_to_ext,
        }
    }

    fn entry_of(ch: &IoChannel, cols: usize, rows: usize) -> usize {
        match ch.side {
            IoSide::Top => ch.index,
            IoSide::Bottom => (rows - 1) * cols + ch.index,
            IoSide::Left => ch.index * cols,
            IoSide::Right => ch.index * cols + cols - 1,
        }
    }

    /// Columns in the mesh.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows in the mesh.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of NPUs.
    pub fn npu_count(&self) -> usize {
        self.npus.len()
    }

    /// Number of I/O channels.
    pub fn io_count(&self) -> usize {
        self.ios.len()
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Clones the topology out (the simulator takes ownership).
    pub fn clone_topology(&self) -> Topology {
        self.topo.clone()
    }

    /// Grid coordinates of NPU `id`.
    pub fn coords(&self, id: usize) -> (usize, usize) {
        (id % self.cols, id / self.cols)
    }

    /// NPU id at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn npu_at(&self, x: usize, y: usize) -> usize {
        assert!(
            x < self.cols && y < self.rows,
            "({x},{y}) outside {}x{}",
            self.cols,
            self.rows
        );
        y * self.cols + x
    }

    /// Node id of NPU `i`.
    pub fn npu(&self, i: usize) -> NodeId {
        self.npus[i]
    }

    /// The NPU index whose node id is `node`, or `None` if `node` is
    /// not an NPU. O(1): NPUs are created first, so their node ids are
    /// contiguous from the first NPU's.
    pub fn npu_index(&self, node: NodeId) -> Option<usize> {
        let base = self.npus.first()?.0;
        let i = node.0.checked_sub(base)?;
        (i < self.npus.len() && self.npus[i] == node).then_some(i)
    }

    /// The external-memory node.
    pub fn external_memory(&self) -> NodeId {
        self.ext
    }

    /// The I/O channel descriptors, in controller-index order.
    pub fn channels(&self) -> &[IoChannel] {
        &self.channels
    }

    /// The NPU where I/O controller `io` enters the mesh.
    pub fn io_entry_npu(&self, io: usize) -> usize {
        Self::entry_of(&self.channels[io], self.cols, self.rows)
    }

    /// X-Y (dimension-ordered) route between two NPUs: traverse the x
    /// dimension first, then y — the deterministic routing used in real
    /// mesh systems (§7.2).
    pub fn xy_route(&self, src: usize, dst: usize) -> Route {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut route = Vec::new();
        while x != dx {
            let id = y * self.cols + x;
            if x < dx {
                route.push(self.dir_links[EAST][id].expect("east link exists"));
                x += 1;
            } else {
                route.push(self.dir_links[WEST][id].expect("west link exists"));
                x -= 1;
            }
        }
        while y != dy {
            let id = y * self.cols + x;
            if y < dy {
                route.push(self.dir_links[SOUTH][id].expect("south link exists"));
                y += 1;
            } else {
                route.push(self.dir_links[NORTH][id].expect("north link exists"));
                y -= 1;
            }
        }
        route
    }

    /// Y-X (y first, then x) route between two NPUs — the secondary
    /// dimension order, used as the first detour when the X-Y route
    /// crosses a failed link.
    pub fn yx_route(&self, src: usize, dst: usize) -> Route {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut route = Vec::new();
        while y != dy {
            let id = y * self.cols + x;
            if y < dy {
                route.push(self.dir_links[SOUTH][id].expect("south link exists"));
                y += 1;
            } else {
                route.push(self.dir_links[NORTH][id].expect("north link exists"));
                y -= 1;
            }
        }
        while x != dx {
            let id = y * self.cols + x;
            if x < dx {
                route.push(self.dir_links[EAST][id].expect("east link exists"));
                x += 1;
            } else {
                route.push(self.dir_links[WEST][id].expect("west link exists"));
                x -= 1;
            }
        }
        route
    }

    /// Fault-aware variant of [`MeshFabric::xy_route`]: X-Y if it
    /// crosses no blocked link, else Y-X (same hop count, the other
    /// corner of the rectangle), else the shortest surviving path —
    /// which pays a detour penalty in extra hops. Returns `None` when
    /// the blocked set cuts `src` from `dst`.
    pub fn xy_route_avoiding(
        &self,
        src: usize,
        dst: usize,
        blocked: impl Fn(LinkId) -> bool,
    ) -> Option<Route> {
        let xy = self.xy_route(src, dst);
        if !xy.iter().any(|&l| blocked(l)) {
            return Some(xy);
        }
        let yx = self.yx_route(src, dst);
        if !yx.iter().any(|&l| blocked(l)) {
            return Some(yx);
        }
        self.topo
            .shortest_path_avoiding(self.npus[src], self.npus[dst], blocked)
    }

    /// Route from I/O controller `io` into NPU `npu` (X-Y after entry).
    pub fn io_to_npu_route(&self, io: usize, npu: usize) -> Route {
        let mut r = vec![self.io_in[io]];
        r.extend(self.xy_route(self.io_entry_npu(io), npu));
        r
    }

    /// Route from NPU `npu` out through I/O controller `io`.
    pub fn npu_to_io_route(&self, npu: usize, io: usize) -> Route {
        let mut r = self.xy_route(npu, self.io_entry_npu(io));
        r.push(self.io_out[io]);
        r
    }

    /// Route from external memory through `io` to `npu`.
    pub fn ext_to_npu_route(&self, io: usize, npu: usize) -> Route {
        let mut r = vec![self.ext_to_io[io]];
        r.extend(self.io_to_npu_route(io, npu));
        r
    }

    /// Route from `npu` through `io` to external memory.
    pub fn npu_to_ext_route(&self, npu: usize, io: usize) -> Route {
        let mut r = self.npu_to_io_route(npu, io);
        r.push(self.io_to_ext[io]);
        r
    }

    /// The outgoing mesh link of `npu` towards an adjacent NPU, if it
    /// exists. Directions: 0 = east (+x), 1 = west, 2 = south (+y),
    /// 3 = north.
    pub fn neighbor_link(&self, npu: usize, dir: usize) -> Option<LinkId> {
        self.dir_links[dir][npu]
    }

    /// Number of mesh links this NPU has (2 at corners, 3 on edges, 4
    /// inside) — the corner-NPU limit behind the baseline's 1.5 TBps
    /// effective bandwidth (§8.1).
    pub fn degree(&self, npu: usize) -> usize {
        (0..4).filter(|&d| self.dir_links[d][npu].is_some()).count()
    }

    /// Partitions the fabric's links into a `tx × ty` grid of
    /// rectangular tiles for the sharded simulator
    /// ([`fred_sim::shard::ShardedNetwork`]). Each link is owned by
    /// the tile of its source NPU; I/O-controller and external-memory
    /// links are owned by the tile of the channel's entry NPU, so
    /// off-wafer traffic through one border channel stays
    /// shard-local. Tile-local traffic (the dominant pattern under the
    /// paper's placement, where MP/PP groups are contiguous) then
    /// never crosses shards.
    ///
    /// # Panics
    ///
    /// Panics if either tile-grid dimension is zero or exceeds the
    /// mesh dimension.
    pub fn tile_partition(&self, tx: usize, ty: usize) -> fred_sim::shard::PartitionMap {
        assert!(
            tx >= 1 && ty >= 1 && tx <= self.cols && ty <= self.rows,
            "tile grid {tx}x{ty} invalid for a {}x{} mesh",
            self.cols,
            self.rows
        );
        let tile_w = self.cols.div_ceil(tx);
        let tile_h = self.rows.div_ceil(ty);
        let tile_of_npu = |npu: usize| -> u32 {
            let (x, y) = self.coords(npu);
            ((y / tile_h) * tx + (x / tile_w)) as u32
        };
        let io_of_node: std::collections::HashMap<NodeId, usize> =
            self.ios.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let owner_npu = |node: NodeId| -> Option<usize> {
            if let Some(npu) = self.npu_index(node) {
                return Some(npu);
            }
            io_of_node.get(&node).map(|&io| self.io_entry_npu(io))
        };
        let shard_of_link: Vec<u32> = self
            .topo
            .links()
            .map(|(_, link)| {
                let npu = owner_npu(link.src)
                    .or_else(|| owner_npu(link.dst))
                    .expect("link touches neither an NPU nor an I/O channel");
                tile_of_npu(npu)
            })
            .collect();
        fred_sim::shard::PartitionMap::new(shard_of_link, tx * ty)
    }
}

impl RouteProvider for MeshFabric {
    fn route(&self, src: usize, dst: usize) -> Route {
        self.xy_route(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_shape() {
        let m = MeshFabric::paper_baseline();
        assert_eq!(m.npu_count(), 20);
        assert_eq!(m.io_count(), 18);
        assert_eq!((m.cols(), m.rows()), (5, 4));
        // 2*(4*5 + 5*3) directed NPU links? Count: horizontal 4 per row * 4 rows,
        // vertical 5 per column * 3: 16+15=31 duplex = 62 directed, plus
        // 18 * 2 io links * 2 (io-npu, ext-io) = 72 -> 134.
        assert_eq!(m.topology().link_count(), 62 + 72);
    }

    #[test]
    fn corner_npus_have_two_links() {
        let m = MeshFabric::paper_baseline();
        assert_eq!(m.degree(m.npu_at(0, 0)), 2);
        assert_eq!(m.degree(m.npu_at(4, 3)), 2);
        assert_eq!(m.degree(m.npu_at(2, 0)), 3);
        assert_eq!(m.degree(m.npu_at(2, 2)), 4);
    }

    #[test]
    fn xy_routes_go_x_then_y() {
        let m = MeshFabric::paper_baseline();
        let src = m.npu_at(0, 0);
        let dst = m.npu_at(3, 2);
        let route = m.xy_route(src, dst);
        assert_eq!(route.len(), 5);
        let ends = m.topology().validate_route(&route).unwrap().unwrap();
        assert_eq!(ends, (m.npu(src), m.npu(dst)));
        // First three hops move east along row 0.
        for l in &route[..3] {
            let link = m.topology().link(*l);
            let s = m.topology().node(link.src).label.clone();
            assert!(s.ends_with("_0"), "hop from {s} not in row 0");
        }
    }

    #[test]
    fn all_pairs_route_valid() {
        let m = MeshFabric::new(4, 3, 1e9, 1e8, 0.0);
        for a in 0..12 {
            for b in 0..12 {
                let r = m.xy_route(a, b);
                let (ax, ay) = m.coords(a);
                let (bx, by) = m.coords(b);
                assert_eq!(r.len(), ax.abs_diff(bx) + ay.abs_diff(by));
                m.topology().validate_route(&r).unwrap();
            }
        }
    }

    #[test]
    fn npu_index_inverts_npu() {
        let m = MeshFabric::paper_baseline();
        for i in 0..m.npu_count() {
            assert_eq!(m.npu_index(m.npu(i)), Some(i));
        }
        assert_eq!(m.npu_index(m.external_memory()), None);
        // I/O controller node ids follow the NPUs; none maps back.
        for io in 0..m.io_count() {
            assert_eq!(m.npu_index(m.ios[io]), None);
        }
    }

    #[test]
    fn route_avoiding_falls_back_yx_then_bfs() {
        let m = MeshFabric::paper_baseline();
        let src = m.npu_at(0, 0);
        let dst = m.npu_at(2, 2);
        // Healthy: identical to X-Y.
        assert_eq!(
            m.xy_route_avoiding(src, dst, |_| false),
            Some(m.xy_route(src, dst))
        );
        // Block the first X-Y hop: Y-X has the same length and avoids it.
        let first = m.xy_route(src, dst)[0];
        let r = m.xy_route_avoiding(src, dst, |l| l == first).unwrap();
        assert_eq!(r, m.yx_route(src, dst));
        assert_eq!(r.len(), m.xy_route(src, dst).len());
        m.topology().validate_route(&r).unwrap();
        // Block the first hop of both dimension orders: that is every
        // mesh exit of the corner, so the BFS detour escapes through an
        // I/O controller and the external-memory hub. Same endpoints,
        // strictly longer than the healthy route.
        let f2 = m.yx_route(src, dst)[0];
        let r = m
            .xy_route_avoiding(src, dst, |l| l == first || l == f2)
            .unwrap();
        assert!(!r.contains(&first) && !r.contains(&f2));
        let ends = m.topology().validate_route(&r).unwrap().unwrap();
        assert_eq!(ends, (m.npu(src), m.npu(dst)));
        assert!(r.len() > m.xy_route(src, dst).len());
        // Corner (0,0) has exactly two mesh exits, but BFS may still
        // escape through an I/O controller and the external-memory hub;
        // additionally cutting the corner's io links isolates it.
        let io_exits: Vec<LinkId> = (0..m.io_count())
            .filter(|&io| m.io_entry_npu(io) == src)
            .map(|io| m.io_out[io])
            .collect();
        assert_eq!(
            m.xy_route_avoiding(src, dst, |l| l == first || l == f2 || io_exits.contains(&l)),
            None
        );
    }

    #[test]
    fn io_channels_cover_all_edges() {
        let m = MeshFabric::paper_baseline();
        let tops = m
            .channels()
            .iter()
            .filter(|c| c.side == IoSide::Top)
            .count();
        let lefts = m
            .channels()
            .iter()
            .filter(|c| c.side == IoSide::Left)
            .count();
        assert_eq!(tops, 5);
        assert_eq!(lefts, 4);
        // Corner (0,0) serves a top channel and a left channel.
        let corner = m.npu_at(0, 0);
        let serving: Vec<usize> = (0..m.io_count())
            .filter(|&io| m.io_entry_npu(io) == corner)
            .collect();
        assert_eq!(serving.len(), 2);
    }

    #[test]
    fn io_and_ext_routes_validate() {
        let m = MeshFabric::paper_baseline();
        for io in 0..m.io_count() {
            for npu in [0usize, 7, 19] {
                m.topology()
                    .validate_route(&m.ext_to_npu_route(io, npu))
                    .unwrap();
                m.topology()
                    .validate_route(&m.npu_to_ext_route(npu, io))
                    .unwrap();
            }
        }
    }

    #[test]
    fn route_provider_is_xy() {
        let m = MeshFabric::paper_baseline();
        assert_eq!(RouteProvider::route(&m, 0, 19), m.xy_route(0, 19));
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn degenerate_mesh_rejected() {
        let _ = MeshFabric::new(1, 5, 1.0, 1.0, 0.0);
    }

    #[test]
    fn tile_partition_covers_all_links_and_localizes_tiles() {
        let m = MeshFabric::new(8, 8, 100.0, 10.0, 1e-9);
        let part = m.tile_partition(2, 2);
        assert_eq!(part.shards(), 4);
        assert_eq!(part.links(), m.topology().link_count());
        // A route inside one 4x4 tile is shard-local…
        let inside = m.xy_route(m.npu_at(0, 0), m.npu_at(3, 3));
        assert_eq!(part.shard_of_route(&inside), Some(0));
        let inside_t3 = m.xy_route(m.npu_at(4, 4), m.npu_at(7, 7));
        assert_eq!(part.shard_of_route(&inside_t3), Some(3));
        // …while a tile-crossing route is boundary traffic.
        let crossing = m.xy_route(m.npu_at(0, 0), m.npu_at(7, 0));
        assert_eq!(part.shard_of_route(&crossing), None);
        // Off-wafer traffic through a channel stays in the entry
        // NPU's tile.
        for io in 0..m.io_count() {
            let entry = m.io_entry_npu(io);
            let route = m.ext_to_npu_route(io, entry);
            assert!(part.shard_of_route(&route).is_some());
        }
    }
}

#![warn(missing_docs)]

//! # fred-mesh — the baseline wafer-scale 2D mesh (§2.4, §3.2, §7.1)
//!
//! All published wafer-scale prototypes connect NPUs with a 2D mesh;
//! the paper's baseline is a 5×4 mesh of 20 NPUs with 750 GBps links
//! (3.75 TBps bisection) and 18 CXL I/O controllers on the border NPUs
//! (one per border position per facing edge, so corners carry two).
//!
//! * [`topology`] — the mesh graph, X-Y routing, I/O controller and
//!   external-memory attachment,
//! * [`rings`] — logical-ring embedding for arbitrary NPU groups
//!   (snake ordering, §7.2 "we build logical rings between involved
//!   NPUs"),
//! * [`streaming`] — the MPI-style row/column broadcast trees of Fig 4
//!   and their channel-load analysis (the (2N−1)P hotspot law).

pub mod rings;
pub mod streaming;
pub mod topology;

pub use topology::{IoSide, MeshFabric};

//! Integration tests for the bench-report pipeline: report files on
//! disk, the `bench-diff` binary's exit codes, and self-check.

use std::path::PathBuf;
use std::process::Command;

use fred_bench::report::{self, BenchReport};

fn bench_diff() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench-diff"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fred-bench-test-{}-{name}", std::process::id()));
    p
}

fn write_report(name: &str, metrics: &[(&str, f64)]) -> PathBuf {
    let mut r = BenchReport::new("itest");
    r.wall_secs = 0.01;
    for (k, v) in metrics {
        r.metric(*k, *v);
    }
    let path = tmp(name);
    r.write(&path).unwrap();
    path
}

#[test]
fn identical_reports_exit_zero() {
    let a = write_report("same-a.json", &[("m1", 1.0), ("m2", 2.0)]);
    let b = write_report("same-b.json", &[("m1", 1.0), ("m2", 2.0)]);
    let st = bench_diff().arg(&a).arg(&b).status().unwrap();
    assert!(st.success());
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn regression_beyond_threshold_exits_nonzero() {
    let a = write_report("reg-a.json", &[("m1", 1.0)]);
    let b = write_report("reg-b.json", &[("m1", 1.2)]); // +20%
    let fail = bench_diff()
        .args([
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--threshold",
            "0.05",
        ])
        .status()
        .unwrap();
    assert_eq!(fail.code(), Some(1), "20% change must fail a 5% threshold");
    let pass = bench_diff()
        .args([
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--threshold",
            "0.5",
        ])
        .status()
        .unwrap();
    assert!(pass.success(), "20% change must pass a 50% threshold");
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn missing_metric_is_a_regression() {
    let a = write_report("miss-a.json", &[("m1", 1.0), ("m2", 2.0)]);
    let b = write_report("miss-b.json", &[("m1", 1.0)]);
    let st = bench_diff()
        .args([
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--threshold",
            "99",
        ])
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(1));
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn self_check_accepts_valid_and_rejects_invalid() {
    let good = write_report("sc-good.json", &[("m1", 1.0)]);
    let st = bench_diff()
        .args(["--self-check", good.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(st.success());

    let bad = tmp("sc-bad.json");
    // Attribution breaks the sum invariant.
    std::fs::write(
        &bad,
        r#"{"schema_version":1,"name":"x","wall_secs":0,"sim":{},
           "analysis":{"trace_truncated":false,"dropped_events":0,
           "total_makespan_secs":5.0,
           "attribution":{"compute":1.0},"runs":[]}}"#,
    )
    .unwrap();
    let st = bench_diff()
        .args(["--self-check", bad.to_str().unwrap()])
        .status()
        .unwrap();
    assert_eq!(st.code(), Some(1));
    std::fs::remove_file(good).ok();
    std::fs::remove_file(bad).ok();
}

#[test]
fn usage_errors_exit_two() {
    let st = bench_diff().arg("only-one.json").status().unwrap();
    assert_eq!(st.code(), Some(2));
    let st = bench_diff().status().unwrap();
    assert_eq!(st.code(), Some(2));
}

#[test]
fn written_report_parses_and_diffs_via_library() {
    let path = write_report("lib.json", &[("m", 4.0)]);
    let text = std::fs::read_to_string(&path).unwrap();
    let v = report::parse(&text).unwrap();
    assert!(report::self_check(&v).is_ok());
    assert!(report::diff(&v, &v)
        .unwrap()
        .iter()
        .all(|e| !e.exceeds(0.0)));
    std::fs::remove_file(path).ok();
}

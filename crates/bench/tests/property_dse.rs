//! Property tests for the design-space-exploration sweep contract
//! (DESIGN.md §13): enumeration is deterministic, results are
//! independent of worker-thread count, and a killed sweep resumed from
//! its chunk checkpoint is bit-identical — in the exact rows the
//! `BENCH_dse.json` report carries — to one that never stopped.

use std::sync::atomic::{AtomicU64, Ordering};

use fred_dse::runner::{PointOutcome, RunOpts};
use fred_dse::{bench_metrics, pareto_front, run_sweep, SweepSpec, Workload};

/// The smoke grid shrunk to the cheap rn152 workload so the suite
/// stays fast while still crossing every axis and chunk boundary.
fn spec() -> SweepSpec {
    let mut spec = SweepSpec::smoke();
    spec.jobs = 3;
    spec.workload = vec![Workload::Rn152];
    spec.chunk = 3;
    spec
}

fn ckpt(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "fred_prop_dse_{tag}_{}_{}.bin",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Exact-bits comparison of what the report would contain.
fn report_rows(spec: &SweepSpec, opts: &RunOpts) -> Vec<(String, u64)> {
    let rows = run_sweep(spec, opts).expect("sweep runs").rows;
    let front = pareto_front(&rows);
    bench_metrics(&rows, &front)
        .into_iter()
        .map(|(k, v)| (k, v.to_bits()))
        .collect()
}

#[test]
fn enumeration_is_deterministic_and_covers_the_grid() {
    let spec = SweepSpec::smoke();
    let a = spec.enumerate();
    let b = spec.enumerate();
    assert_eq!(a, b, "double enumeration is identical");
    assert_eq!(a.len(), spec.point_count());
    for (i, p) in a.iter().enumerate() {
        assert_eq!(p.index, i, "points are indexed in enumeration order");
    }
    // Per-point RNG streams are distinct splits of the root seed.
    let mut states: Vec<u64> = a.iter().map(|p| p.rng_state).collect();
    states.sort_unstable();
    states.dedup();
    assert_eq!(states.len(), a.len(), "every point gets its own stream");
}

#[test]
fn thread_count_does_not_change_the_report() {
    let spec = spec();
    let one = report_rows(
        &spec,
        &RunOpts {
            threads: 1,
            ..RunOpts::default()
        },
    );
    let four = report_rows(
        &spec,
        &RunOpts {
            threads: 4,
            ..RunOpts::default()
        },
    );
    assert_eq!(one, four, "FRED_THREADS is purely a wall-clock knob");
}

#[test]
fn killed_and_resumed_sweep_is_bit_identical_to_uninterrupted() {
    let spec = spec();
    let straight = report_rows(&spec, &RunOpts::default());

    let path = ckpt("resume");
    // Kill after the first chunk...
    let partial = run_sweep(
        &spec,
        &RunOpts {
            checkpoint: Some(path.clone()),
            stop_after_chunks: Some(1),
            ..RunOpts::default()
        },
    )
    .expect("partial sweep runs");
    assert_eq!(partial.rows.len(), spec.chunk, "stopped mid-sweep");

    // ...then resume from the checkpoint file.
    let resumed = report_rows(
        &spec,
        &RunOpts {
            checkpoint: Some(path.clone()),
            resume: true,
            ..RunOpts::default()
        },
    );
    let _ = std::fs::remove_file(&path);
    assert_eq!(resumed, straight, "resume is bit-identical");
}

#[test]
fn injected_panic_is_contained_to_one_error_row() {
    let spec = spec();
    let rows = run_sweep(
        &spec,
        &RunOpts {
            threads: 2,
            panic_at: Some(1),
            ..RunOpts::default()
        },
    )
    .expect("sweep survives a crashing point")
    .rows;
    assert_eq!(rows.len(), spec.point_count());
    for row in &rows {
        let is_err = matches!(row.outcome, PointOutcome::Error(_));
        assert_eq!(is_err, row.point.index == 1, "exactly point 1 errored");
    }
}

//! Property tests for the snapshot/restore contract (DESIGN.md §12):
//! capturing at *any* event boundary of a faulted, evicted, preempted,
//! or sharded run and resuming — through the full binary and JSON
//! codecs — must be bit-identical to never having stopped, and damaged
//! snapshot files must fail with typed errors, never panics.

use std::rc::Rc;

use fred_cluster::{Cluster, ClusterConfig, ClusterState, JobClass, JobSpec};
use fred_core::codec::{self, SnapshotError};
use fred_core::params::FabricConfig;
use fred_core::placement::Strategy3D;
use fred_core::snapshot::{
    core_state_from_value, core_state_to_value, sharded_state_from_value, sharded_state_to_value,
    SimState,
};
use fred_mesh::topology::MeshFabric;
use fred_sim::fault::FaultPlan;
use fred_sim::flow::{FlowSpec, Priority};
use fred_sim::netsim::FlowNetwork;
use fred_sim::shard::ShardedNetwork;
use fred_sim::time::Time;
use fred_telemetry::sink::NullSink;
use fred_workloads::backend::FabricBackend;
use fred_workloads::model::DnnModel;
use fred_workloads::schedule::ScheduleParams;
use fred_workloads::trainer::simulate;

/// One banked observation: completions (kind 0, completed-at bits) and
/// settled evictions (kind 1, remaining-bytes bits), in arrival order.
type Banked = Vec<(u8, u64, u64)>;

fn mesh() -> MeshFabric {
    MeshFabric::new(4, 4, 750e9, 128e9, 20e-9)
}

fn flow(
    m: &MeshFabric,
    s: (usize, usize),
    d: (usize, usize),
    mb: f64,
    p: Priority,
    tag: u64,
) -> FlowSpec {
    FlowSpec::new(m.xy_route(m.npu_at(s.0, s.1), m.npu_at(d.0, d.1)), mb * 1e6)
        .with_priority(p)
        .with_tag(tag)
}

/// Wave 1: spread over the mesh, several flows crossing the link that
/// the script later kills (so the fault mid-run evicts live traffic).
fn wave1(m: &MeshFabric) -> Vec<FlowSpec> {
    vec![
        flow(m, (0, 0), (2, 2), 4.0, Priority::Mp, 0),
        flow(m, (3, 0), (3, 2), 6.0, Priority::Dp, 1),
        flow(m, (3, 0), (3, 3), 8.0, Priority::Bulk, 2),
        flow(m, (1, 1), (0, 3), 3.0, Priority::Mp, 3),
        flow(m, (2, 0), (0, 1), 5.0, Priority::Dp, 4),
        flow(m, (3, 1), (1, 3), 7.0, Priority::Bulk, 5),
        flow(m, (0, 2), (2, 3), 2.0, Priority::Mp, 6),
        flow(m, (2, 2), (3, 3), 9.0, Priority::Dp, 7),
    ]
}

/// Wave 2 (injected mid-run): confined to columns 0–2, so XY routes
/// never touch the column-3 link failed at step 3.
fn wave2(m: &MeshFabric) -> Vec<FlowSpec> {
    vec![
        flow(m, (0, 0), (2, 1), 3.0, Priority::Mp, 8),
        flow(m, (1, 2), (0, 0), 6.0, Priority::Dp, 9),
        flow(m, (2, 3), (0, 2), 4.0, Priority::Bulk, 10),
        flow(m, (0, 1), (1, 3), 5.0, Priority::Mp, 11),
        flow(m, (2, 1), (1, 0), 2.0, Priority::Dp, 12),
    ]
}

fn bank_evicted(banked: &mut Banked, evicted: Vec<fred_sim::netsim::EvictedFlow>) {
    for e in evicted {
        banked.push((1, e.tag, e.remaining_bytes.to_bits()));
    }
}

/// Scripted mutations keyed by event-boundary index, applied *before*
/// the boundary's event is processed. The resume loop re-enters here
/// with the step counter carried by the test, so an uninterrupted run
/// and any capture/resume split replay the same script.
fn plain_actions(net: &mut FlowNetwork, m: &MeshFabric, step: usize, banked: &mut Banked) {
    match step {
        3 => {
            let dead = m.xy_route(m.npu_at(3, 0), m.npu_at(3, 1))[0];
            bank_evicted(banked, net.fail_link(dead));
        }
        4 => {
            net.inject_batch(wave2(m))
                .expect("wave 2 avoids the dead link");
        }
        7 => {
            let slow = m.xy_route(m.npu_at(0, 0), m.npu_at(0, 1))[0];
            net.degrade_link(slow, 0.5);
        }
        9 => {
            bank_evicted(banked, net.evict_flows_matching(|tag| tag % 4 == 1));
        }
        _ => {}
    }
}

/// Drives the faulted/evicted plain-network script from `*step`,
/// stopping before boundary `stop_before` (`None` = run dry).
fn drive_plain(
    net: &mut FlowNetwork,
    m: &MeshFabric,
    step: &mut usize,
    banked: &mut Banked,
    stop_before: Option<usize>,
) {
    loop {
        if stop_before == Some(*step) {
            return;
        }
        plain_actions(net, m, *step, banked);
        let Some(te) = net.next_event() else { return };
        net.advance_to(te);
        for c in net.drain_completed() {
            banked.push((0, c.tag, c.completed_at.as_secs().to_bits()));
        }
        *step += 1;
    }
}

#[test]
fn every_boundary_of_a_faulted_evicted_run_resumes_bit_identically() {
    let m = mesh();
    // Uninterrupted reference.
    let mut reference = FlowNetwork::new(m.clone_topology());
    reference.inject_batch(wave1(&m)).unwrap();
    let mut ref_banked = Banked::new();
    let mut ref_step = 0;
    drive_plain(&mut reference, &m, &mut ref_step, &mut ref_banked, None);
    let ref_now = reference.now().as_secs().to_bits();
    assert!(ref_step > 10, "script too short to be interesting");

    for boundary in 0..=ref_step {
        let mut net = FlowNetwork::new(m.clone_topology());
        net.inject_batch(wave1(&m)).unwrap();
        let mut banked = Banked::new();
        let mut step = 0;
        drive_plain(&mut net, &m, &mut step, &mut banked, Some(boundary));
        // Capture through the versioned container and BOTH codecs.
        let mut sim = SimState::new();
        sim.insert("net", core_state_to_value(&net.snapshot()));
        let from_bin = SimState::from_binary(&sim.to_binary()).unwrap();
        let from_json = SimState::from_json(&sim.to_json()).unwrap();
        assert_eq!(
            from_bin, sim,
            "binary codec not lossless at boundary {boundary}"
        );
        assert_eq!(
            from_json, sim,
            "JSON codec not lossless at boundary {boundary}"
        );
        let state = core_state_from_value(from_bin.section("net").unwrap()).unwrap();
        let mut resumed = FlowNetwork::restore(m.clone_topology(), state);
        drive_plain(&mut resumed, &m, &mut step, &mut banked, None);
        assert_eq!(
            resumed.now().as_secs().to_bits(),
            ref_now,
            "clock diverged resuming from boundary {boundary}"
        );
        assert_eq!(
            banked, ref_banked,
            "completions/evictions diverged resuming from boundary {boundary}"
        );
    }
}

/// Sharded script: `cross = false` keeps all traffic tile-local (the
/// shards never fuse); `cross = true` injects tile-crossing flows at
/// step 2, forcing a mid-run fusion — so boundaries before, during and
/// after the fused window are all captured.
fn sharded_actions(
    net: &mut ShardedNetwork,
    m: &MeshFabric,
    cross: bool,
    step: usize,
    banked: &mut Banked,
) {
    match step {
        2 if cross => {
            net.inject_batch(vec![
                flow(m, (0, 0), (3, 3), 6.0, Priority::Dp, 100),
                flow(m, (3, 2), (0, 1), 5.0, Priority::Mp, 101),
                flow(m, (1, 3), (2, 0), 4.0, Priority::Bulk, 102),
            ])
            .expect("cross-tile routes exist");
        }
        5 => {
            let dead = m.xy_route(m.npu_at(1, 0), m.npu_at(0, 0))[0];
            bank_evicted(banked, net.fail_link(dead));
        }
        _ => {}
    }
}

fn sharded_wave1(m: &MeshFabric) -> Vec<FlowSpec> {
    // Tile-local flows, two per 2×2 tile.
    vec![
        flow(m, (0, 0), (1, 1), 4.0, Priority::Mp, 0),
        flow(m, (1, 0), (0, 1), 3.0, Priority::Dp, 1),
        flow(m, (2, 0), (3, 1), 5.0, Priority::Mp, 2),
        flow(m, (3, 0), (2, 1), 2.0, Priority::Bulk, 3),
        flow(m, (0, 2), (1, 3), 6.0, Priority::Dp, 4),
        flow(m, (1, 2), (0, 3), 3.0, Priority::Mp, 5),
        flow(m, (2, 2), (3, 3), 4.0, Priority::Bulk, 6),
        flow(m, (3, 2), (2, 3), 5.0, Priority::Dp, 7),
    ]
}

fn drive_sharded(
    net: &mut ShardedNetwork,
    m: &MeshFabric,
    cross: bool,
    step: &mut usize,
    banked: &mut Banked,
    stop_before: Option<usize>,
) {
    loop {
        if stop_before == Some(*step) {
            return;
        }
        sharded_actions(net, m, cross, *step, banked);
        let Some(te) = net.next_event() else { return };
        net.advance_to(te);
        for c in net.drain_completed() {
            banked.push((0, c.tag, c.completed_at.as_secs().to_bits()));
        }
        *step += 1;
    }
}

fn sharded_case(cross: bool) {
    let m = mesh();
    let fresh = |threads| {
        let mut net = ShardedNetwork::new(m.clone_topology(), m.tile_partition(2, 2), threads);
        net.inject_batch(sharded_wave1(&m)).unwrap();
        net
    };
    let mut reference = fresh(1);
    let mut ref_banked = Banked::new();
    let mut ref_step = 0;
    drive_sharded(
        &mut reference,
        &m,
        cross,
        &mut ref_step,
        &mut ref_banked,
        None,
    );
    let ref_now = reference.now().as_secs().to_bits();
    assert!(ref_step > 6, "script too short to be interesting");

    for boundary in 0..=ref_step {
        // Walk a 2-thread run to the boundary, capture, then resume at
        // every thread count: the capture must be thread-portable.
        let mut net = fresh(2);
        let mut banked = Banked::new();
        let mut step = 0;
        drive_sharded(&mut net, &m, cross, &mut step, &mut banked, Some(boundary));
        let mut sim = SimState::new();
        sim.insert("sharded", sharded_state_to_value(&net.snapshot()));
        let decoded = SimState::from_binary(&sim.to_binary()).unwrap();
        assert_eq!(
            decoded, sim,
            "binary codec not lossless at boundary {boundary}"
        );
        let state = sharded_state_from_value(decoded.section("sharded").unwrap()).unwrap();
        for threads in [1, 2, 4] {
            let mut resumed = ShardedNetwork::restore(
                m.clone_topology(),
                m.tile_partition(2, 2),
                threads,
                state.clone(),
            );
            let mut resumed_step = step;
            let mut resumed_banked = banked.clone();
            drive_sharded(
                &mut resumed,
                &m,
                cross,
                &mut resumed_step,
                &mut resumed_banked,
                None,
            );
            assert_eq!(
                resumed.now().as_secs().to_bits(),
                ref_now,
                "clock diverged: boundary {boundary}, threads {threads}, cross {cross}"
            );
            assert_eq!(
                resumed_banked, ref_banked,
                "results diverged: boundary {boundary}, threads {threads}, cross {cross}"
            );
        }
    }
}

#[test]
fn every_boundary_of_an_unfused_sharded_run_resumes_at_any_thread_count() {
    sharded_case(false);
}

#[test]
fn every_boundary_of_a_fusing_sharded_run_resumes_at_any_thread_count() {
    sharded_case(true);
}

#[test]
fn cluster_boundaries_with_faults_and_preemption_resume_bit_identically() {
    let model = DnnModel::resnet152();
    let strategy = Strategy3D::new(1, 10, 1);
    let params = ScheduleParams::sweep_default(&model, strategy);
    let job = |name: &str| JobSpec::new(name, model.clone(), strategy, params);
    let backend = FabricBackend::new(FabricConfig::FredD);
    let solo = simulate(&model, strategy, &backend, params)
        .unwrap()
        .total
        .as_secs();
    // Two Low jobs fill the wafer; the High arrival forces a
    // preemption; the fault plan on low-a fires while it runs.
    let faults = FaultPlan::seeded_link_failures(
        &backend.topology(),
        0.03,
        Time::from_secs(solo * 0.35),
        0xFA_17,
    );
    assert!(!faults.is_empty());
    let mk = || {
        vec![
            job("low-a")
                .with_class(JobClass::Low)
                .with_faults(faults.clone()),
            job("low-b").with_class(JobClass::Low),
            job("high")
                .with_class(JobClass::High)
                .with_arrival(Time::from_secs(solo * 0.25)),
        ]
    };
    let cfg = ClusterConfig::new(FabricConfig::FredD);

    let mut reference = Cluster::new(cfg.clone(), mk(), Rc::new(NullSink)).unwrap();
    reference.run_to_completion().unwrap();
    let baseline = reference.into_report();

    // Walk one cluster forward, capturing at every event boundary;
    // resume a sampled subset to completion (every boundary would be
    // O(n²) full runs — the stride still lands captures mid-fault,
    // mid-preemption, and mid-queue).
    let mut walker = Cluster::new(cfg.clone(), mk(), Rc::new(NullSink)).unwrap();
    let mut boundary = 0usize;
    while let Some(t) = walker.next_event() {
        let state = walker.snapshot();
        let mut sim = SimState::new();
        sim.insert("cluster", state.to_value());
        let decoded = SimState::from_binary(&sim.to_binary()).unwrap();
        assert_eq!(
            decoded, sim,
            "binary codec not lossless at boundary {boundary}"
        );
        if boundary.is_multiple_of(7) {
            let st = ClusterState::from_value(decoded.section("cluster").unwrap()).unwrap();
            let mut resumed = Cluster::restore(cfg.clone(), mk(), Rc::new(NullSink), st).unwrap();
            resumed.run_to_completion().unwrap();
            let report = resumed.into_report();
            assert_eq!(
                report.makespan.as_secs().to_bits(),
                baseline.makespan.as_secs().to_bits(),
                "makespan diverged resuming from boundary {boundary}"
            );
            assert_eq!(report.preemptions, baseline.preemptions);
            for (a, b) in report.records.iter().zip(&baseline.records) {
                assert_eq!(
                    a.completion.as_secs().to_bits(),
                    b.completion.as_secs().to_bits(),
                    "job {} diverged resuming from boundary {boundary}",
                    a.name
                );
                assert_eq!(a.preemptions, b.preemptions);
            }
        }
        walker.run_until(t).unwrap();
        boundary += 1;
    }
    assert!(boundary > 20, "cluster script too short to be interesting");
    assert!(baseline.preemptions > 0, "scenario must actually preempt");
}

#[test]
fn damaged_snapshot_files_yield_typed_errors_not_panics() {
    // A real snapshot to damage.
    let m = mesh();
    let mut net = FlowNetwork::new(m.clone_topology());
    net.inject_batch(wave1(&m)).unwrap();
    if let Some(t) = net.next_event() {
        net.advance_to(t);
    }
    let mut sim = SimState::new();
    sim.insert("net", core_state_to_value(&net.snapshot()));
    let good = sim.to_binary();
    assert!(SimState::from_binary(&good).is_ok());

    // Wrong magic.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    assert!(matches!(
        SimState::from_binary(&bad),
        Err(SnapshotError::BadMagic)
    ));

    // Wrong version.
    let mut bad = good.clone();
    bad[8] = bad[8].wrapping_add(1);
    assert!(matches!(
        SimState::from_binary(&bad),
        Err(SnapshotError::BadVersion { .. })
    ));

    // Truncation at every prefix length must error, never panic.
    for len in 0..good.len().min(64) {
        assert!(SimState::from_binary(&good[..len]).is_err());
    }
    assert!(SimState::from_binary(&good[..good.len() - 1]).is_err());

    // Every single-byte corruption either fails typed or decodes to
    // *some* value — it must never panic. (Sampled stride keeps this
    // fast; the interesting corruptions are tags/varints early on.)
    for i in (12..good.len()).step_by(7) {
        let mut bad = good.clone();
        bad[i] ^= 0x55;
        let _ = SimState::from_binary(&bad);
    }

    // JSON damage: wrong magic/version are typed, truncation is a
    // parse error, and a structurally-valid but wrong-shaped document
    // is a typed mismatch.
    let json = sim.to_json();
    assert!(SimState::from_json(&json[..json.len() / 2]).is_err());
    let wrong_magic = json.replacen("FREDSNAP", "NOTASNAP", 1);
    assert!(matches!(
        SimState::from_json(&wrong_magic),
        Err(SnapshotError::BadMagic)
    ));
    let wrong_shape = r#"{"magic":"FREDSNAP","version":1,"sections":{"net":42}}"#;
    let decoded = SimState::from_json(wrong_shape).unwrap();
    assert!(matches!(
        core_state_from_value(decoded.section("net").unwrap()),
        Err(SnapshotError::Mismatch(_))
    ));

    // Codec-level detail: a valid header followed by a string whose
    // claimed length exceeds the buffer is typed, not an allocation.
    let mut claim = Vec::new();
    claim.extend_from_slice(&codec::SNAPSHOT_MAGIC);
    claim.extend_from_slice(&codec::SNAPSHOT_VERSION.to_le_bytes());
    claim.extend_from_slice(&[4, 0xFF, 0xFF, 0xFF, 0x7F]);
    assert!(codec::from_binary(&claim).is_err());
}

#[test]
fn truncation_at_every_fixed_width_boundary_is_typed_truncated() {
    use fred_core::codec::Value;
    // A document whose binary image exercises every fixed-width field
    // the format has — the 8-byte magic, the 4-byte version, and 8-byte
    // f64 payloads (including negative-zero and non-finite bit
    // patterns) — interleaved with variable-width strings and varints.
    let v = Value::Obj(vec![
        (
            "nums".into(),
            Value::Arr(vec![
                Value::Num(0.0),
                Value::Num(-0.0),
                Value::Num(1.5e300),
                Value::Num(f64::NEG_INFINITY),
                Value::Num(f64::from_bits(0x7FF8_0000_DEAD_BEEF)),
            ]),
        ),
        ("s".into(), Value::Str("tail".into())),
        ("b".into(), Value::Bool(true)),
    ]);
    let bytes = codec::to_binary(&v);
    assert!(codec::from_binary(&bytes).is_ok());

    // Every strict prefix — cutting inside the magic, inside the
    // version word, inside any f64 payload, or anywhere else — must be
    // exactly `Truncated`: never a panic, never mis-typed.
    for len in 0..bytes.len() {
        let err = codec::from_binary(&bytes[..len]).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Truncated),
            "prefix of {len}/{} bytes gave {err:?}, expected Truncated",
            bytes.len()
        );
    }

    // Targeted minimal buffers: a version word cut at each of its four
    // byte boundaries, and a number tag followed by 0..8 payload bytes.
    for cut in 0..4 {
        let mut short = Vec::new();
        short.extend_from_slice(&codec::SNAPSHOT_MAGIC);
        short.extend_from_slice(&codec::SNAPSHOT_VERSION.to_le_bytes()[..cut]);
        assert!(
            matches!(codec::from_binary(&short), Err(SnapshotError::Truncated)),
            "version cut at byte {cut}"
        );
    }
    for cut in 0..8 {
        let mut short = Vec::new();
        short.extend_from_slice(&codec::SNAPSHOT_MAGIC);
        short.extend_from_slice(&codec::SNAPSHOT_VERSION.to_le_bytes());
        short.push(3); // TAG_NUM
        short.extend_from_slice(&1.25f64.to_bits().to_le_bytes()[..cut]);
        assert!(
            matches!(codec::from_binary(&short), Err(SnapshotError::Truncated)),
            "f64 payload cut at byte {cut}"
        );
    }
}

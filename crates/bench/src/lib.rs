#![warn(missing_docs)]

//! # fred-bench — experiment harness
//!
//! One binary per figure/table of the paper's evaluation (see
//! `DESIGN.md` §3 for the index) plus shared table-formatting helpers.
//! Criterion benches live under `benches/`.

pub mod table;

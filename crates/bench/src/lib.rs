#![warn(missing_docs)]

//! # fred-bench — experiment harness
//!
//! One binary per figure/table of the paper's evaluation (see
//! `DESIGN.md` §3 for the index) plus shared table-formatting helpers.
//! Micro-benchmarks live under `benches/` on the self-contained
//! [`timing`] harness.

pub mod churn;
pub mod report;
pub mod table;
pub mod timing;
pub mod traceopt;

//! Snapshot/fork study: one mid-run capture, N divergent futures.
//!
//! The point of a snapshotable simulator is not just crash recovery —
//! it is *counterfactual exploration*: run a shared cluster to time T
//! once, then fork the frozen state into several futures that differ
//! only in what goes wrong after T. Because restore is bit-identical,
//! every divergence between forks is attributable to the injected
//! fault plan, never to replay noise.
//!
//! The scenario is a Fred-D wafer under a seeded Poisson job stream.
//! The sweep:
//!
//! 1. runs the cluster uninterrupted to completion (the baseline),
//! 2. re-runs it to 40% of the baseline makespan and captures a
//!    [`SimState`] snapshot (timing the capture and both encodings),
//! 3. fork 0 — restores with the *original* job list and hard-asserts
//!    the completed run is bit-identical to the baseline (makespan and
//!    every job's first-start/completion/preemption count),
//! 4. forks 1..N — restore with a post-capture fault plan appended to
//!    one of the jobs running at the capture point (a different victim
//!    job, link set and fire time per fork) and report how each
//!    future's makespan diverges.
//!
//! Report keys (`--report BENCH_snapshot.json`):
//! `snapshot/baseline_makespan_secs`, `snapshot/capture_at_secs`,
//! `snapshot/bin_bytes`, `snapshot/json_bytes`, `snapshot/capture_ms`,
//! `snapshot/restore_ms`, `snapshot/fork0_identical`,
//! `snapshot/fork<k>/makespan_secs`, `snapshot/fork<k>/faults`.

use std::time::Instant;

use fred_bench::table::{fmt_secs, Table};
use fred_bench::traceopt::TraceOpts;
use fred_cluster::arrivals::{paper_mix, poisson_arrivals, DEFAULT_CLASS_MIX};
use fred_cluster::{Cluster, ClusterConfig, ClusterReport, JobSpec};
use fred_core::params::FabricConfig;
use fred_core::snapshot::SimState;
use fred_sim::fault::FaultPlan;
use fred_sim::time::Time;
use fred_workloads::backend::FabricBackend;

/// Arrival-trace seed (fixed: the whole study is reproducible).
const SEED: u64 = 0x54AF_0007;

/// Jobs offered to the cluster.
const JOBS: usize = 10;

/// Arrival rate in jobs per simulated second — dense enough that the
/// capture point lands mid-queue with several jobs running.
const RATE: f64 = 10.0;

/// Divergent futures forked from the capture (fork 0 is the
/// no-new-faults identity check).
const FORKS: usize = 4;

/// Fraction of fabric links each divergent fork fails — high enough
/// that the victim's carve-out almost surely loses links it routes
/// over (the plan generator keeps the fabric survivable regardless).
const FAULT_FRACTION: f64 = 0.2;

fn scenario() -> (ClusterConfig, Vec<JobSpec>) {
    let jobs = poisson_arrivals(&paper_mix(), RATE, JOBS, DEFAULT_CLASS_MIX, SEED);
    (ClusterConfig::new(FabricConfig::FredD), jobs)
}

fn run_all(cfg: &ClusterConfig, jobs: &[JobSpec], opts: &TraceOpts) -> ClusterReport {
    let mut c = Cluster::new(cfg.clone(), jobs.to_vec(), opts.sink()).expect("scenario jobs admit");
    c.run_to_completion().expect("cluster run completes");
    c.into_report()
}

fn assert_identical(a: &ClusterReport, b: &ClusterReport) {
    assert_eq!(
        a.makespan.as_secs().to_bits(),
        b.makespan.as_secs().to_bits(),
        "FORK VIOLATION: no-fault fork diverged from the uninterrupted baseline"
    );
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(
            ra.first_start.as_secs().to_bits(),
            rb.first_start.as_secs().to_bits(),
            "FORK VIOLATION: {} first-start diverged",
            ra.name
        );
        assert_eq!(
            ra.completion.as_secs().to_bits(),
            rb.completion.as_secs().to_bits(),
            "FORK VIOLATION: {} completion diverged",
            ra.name
        );
        assert_eq!(
            ra.preemptions, rb.preemptions,
            "FORK VIOLATION: {} preemption count diverged",
            ra.name
        );
    }
}

fn main() {
    let mut opts = TraceOpts::from_args("snapshot_sweep");
    let (cfg, jobs) = scenario();
    let backend = FabricBackend::new(cfg.fabric);
    opts.name_links(&backend.topology());

    // 1. Uninterrupted baseline.
    let baseline = run_all(&cfg, &jobs, &opts);
    let baseline_secs = baseline.makespan.as_secs();
    opts.metric("snapshot/baseline_makespan_secs", baseline_secs);

    // 2. Run to the capture point and freeze.
    let capture_at = baseline_secs * 0.4;
    let mut cluster =
        Cluster::new(cfg.clone(), jobs.clone(), opts.sink()).expect("scenario jobs admit");
    cluster
        .run_until(Time::from_secs(capture_at))
        .expect("run to the capture point completes");
    assert!(!cluster.is_done(), "capture point fell past the run");
    let t0 = Instant::now();
    let state = cluster.snapshot();
    let mut sim = SimState::new();
    sim.insert("cluster", state.to_value());
    let bin = sim.to_binary();
    let capture_ms = t0.elapsed().as_secs_f64() * 1e3;
    let json = sim.to_json();
    let running_jobs: Vec<usize> = state.running.iter().map(|r| r.job).collect();
    assert!(
        !running_jobs.is_empty(),
        "capture point must land with jobs on the fabric"
    );
    opts.metric("snapshot/capture_at_secs", cluster.now().as_secs());
    opts.metric("snapshot/bin_bytes", bin.len() as f64);
    opts.metric("snapshot/json_bytes", json.len() as f64);
    opts.metric("snapshot/capture_ms", capture_ms);

    let mut table = Table::new(vec![
        "fork",
        "new faults",
        "victim job",
        "makespan",
        "vs baseline",
    ]);

    // 3 + 4. Fork the frozen state into divergent futures. Every fork
    // decodes the *same* bytes; fork 0 must reproduce the baseline.
    let mut restore_ms_total = 0.0;
    for k in 0..FORKS {
        let t0 = Instant::now();
        let decoded = SimState::from_binary(&bin).expect("snapshot bytes decode");
        let st = fred_cluster::ClusterState::from_value(
            decoded.section("cluster").expect("cluster section present"),
        )
        .expect("cluster state decodes");
        let mut fork_jobs = jobs.clone();
        let (faults, victim) = if k == 0 {
            (0, None)
        } else {
            // Fault one of the jobs running at the capture point:
            // job-relative fire time safely after its progress so far,
            // different link set per fork.
            let victim = running_jobs[(k - 1) % running_jobs.len()];
            let started = st.first_start[victim]
                .expect("running job has started")
                .as_secs();
            let rel = (cluster.now().as_secs() - started) + baseline_secs * 0.01 * k as f64;
            let plan = FaultPlan::seeded_link_failures(
                &backend.topology(),
                FAULT_FRACTION,
                Time::from_secs(rel),
                SEED ^ k as u64,
            );
            let n = plan.len();
            fork_jobs[victim].faults = plan;
            (n, Some(victim))
        };
        let mut fork = Cluster::restore(cfg.clone(), fork_jobs, opts.sink(), st)
            .expect("snapshot pairs with the scenario");
        restore_ms_total += t0.elapsed().as_secs_f64() * 1e3;
        fork.run_to_completion().expect("forked run completes");
        let report = fork.into_report();
        let secs = report.makespan.as_secs();
        if k == 0 {
            assert_identical(&report, &baseline);
            opts.metric("snapshot/fork0_identical", 1.0);
        } else {
            opts.metric(format!("snapshot/fork{k}/makespan_secs"), secs);
            opts.metric(format!("snapshot/fork{k}/faults"), faults as f64);
        }
        table.row(vec![
            k.to_string(),
            faults.to_string(),
            victim.map_or("-".into(), |v| v.to_string()),
            fmt_secs(secs),
            if k == 0 {
                "bit-identical".into()
            } else {
                format!("{:+.2}%", (secs / baseline_secs - 1.0) * 100.0)
            },
        ]);
    }
    opts.metric("snapshot/restore_ms", restore_ms_total / FORKS as f64);

    table.print(&format!(
        "snapshot_sweep — {FORKS} futures forked from one capture at {} \
         (baseline {}, snapshot {} B binary / {} B JSON)",
        fmt_secs(capture_at),
        fmt_secs(baseline_secs),
        bin.len(),
        json.len()
    ));
    println!(
        "\nreading: fork 0 resumes with no new faults and is hard-asserted \
         bit-identical to the uninterrupted baseline — so the fault-induced \
         divergence in forks 1..{FORKS} is exactly the counterfactual cost of \
         each failure, with zero replay noise."
    );
    opts.finish();
}

//! Fault sweep — makespan degradation under seeded link failures.
//!
//! Wafer-scale fabrics must tolerate defective and dying links (FRED
//! §3): this binary measures *how gracefully* training degrades instead
//! of whether it crashes. For failed-link fractions 0–5% it runs one
//! 3D-parallel Transformer-17B iteration (MP(2)-DP(5)-PP(2), the Fig 9
//! strategy) on the baseline mesh and on Fred-D, with the failures
//! firing a quarter of the way into the fault-free iteration — so
//! in-flight flows are evicted mid-transfer, re-routed over surviving
//! paths and re-injected with their remaining bytes.
//!
//! Fault plans come from [`FaultPlan::seeded_link_failures`]: the same
//! seed at every fraction fails *nested* link sets (1% ⊂ 2% ⊂ …), so
//! the makespan-vs-fraction curve is a controlled sweep rather than
//! independent random draws, and every plan is survivable by
//! construction (no NPU pair is ever disconnected).
//!
//! The 0% row doubles as the bit-identity self-check: a run driven with
//! an empty fault plan must reproduce the fault-free makespan exactly.

use fred_bench::table::{fmt_secs, Table};
use fred_bench::traceopt::TraceOpts;
use fred_core::params::FabricConfig;
use fred_core::placement::Strategy3D;
use fred_sim::fault::FaultPlan;
use fred_sim::time::Time;
use fred_workloads::backend::FabricBackend;
use fred_workloads::model::DnnModel;
use fred_workloads::schedule::ScheduleParams;
use fred_workloads::trainer::{simulate, simulate_faulted};

/// Sweep seed: fixed so the failed link sets (and therefore every
/// reported makespan) are reproducible across runs and machines.
const SEED: u64 = 0xF4ED;

/// Failed-link fractions swept, 0–5%.
const FRACTIONS: [f64; 6] = [0.0, 0.01, 0.02, 0.03, 0.04, 0.05];

fn main() {
    let mut opts = TraceOpts::from_args("fault_sweep");
    let model = DnnModel::transformer_17b();
    let strategy = Strategy3D::new(2, 5, 2);
    let params = ScheduleParams::sweep_default(&model, strategy);

    let mut table = Table::new(vec![
        "config",
        "failed links",
        "fraction",
        "makespan",
        "slowdown",
    ]);
    for config in [FabricConfig::BaselineMesh, FabricConfig::FredD] {
        let backend = FabricBackend::new(config);
        let topo = backend.topology();
        opts.name_links(&topo);
        // Fault-free reference run; the sweep's faults fire a quarter
        // of the way in, when collectives are mid-flight.
        let healthy = simulate(&model, strategy, &backend, params)
            .expect("fault-free training iteration completes");
        let at = Time::from_secs(healthy.total.as_secs() * 0.25);

        let mut base = healthy.total.as_secs();
        for fraction in FRACTIONS {
            let faults = FaultPlan::seeded_link_failures(&topo, fraction, at, SEED);
            let r = simulate_faulted(&model, strategy, &backend, params, &faults, opts.sink())
                .unwrap_or_else(|e| {
                    panic!(
                        "{} with {:.0}% failed links did not complete: {e}",
                        config.name(),
                        fraction * 100.0
                    )
                });
            let secs = r.total.as_secs();
            if fraction == 0.0 {
                assert!(
                    secs == healthy.total.as_secs(),
                    "empty fault plan broke bit-identity: {secs} vs {}",
                    healthy.total.as_secs()
                );
                base = secs;
            }
            table.row(vec![
                config.name().into(),
                format!("{}", faults.len()),
                format!("{:.0}%", fraction * 100.0),
                fmt_secs(secs),
                format!("{:.3}x", secs / base),
            ]);
            opts.metric(
                format!("{}/fail{:.0}pct/secs", config.name(), fraction * 100.0),
                secs,
            );
            opts.metric(
                format!("{}/fail{:.0}pct/slowdown", config.name(), fraction * 100.0),
                secs / base,
            );
        }
    }
    table.print("Fault sweep — T-17B MP(2)-DP(5)-PP(2), failures at 25% of the iteration");
    println!(
        "\nEvery run completes: seeded plans are survivable by construction, and the \
         trainer re-routes evicted flows onto surviving paths (detour penalty = the slowdown)."
    );
    opts.finish();
}

//! Figure 6 — non-aligned parallelization strategies (§3.2.3).
//!
//! MP(5)-DP(3)-PP(1) uses 15 of the 20 NPUs, so its groups cannot align
//! with the mesh dimensions: logical rings acquire multi-hop edges
//! (Fig 6a) and different DP groups collide under X-Y routing (Fig 6b).
//! On FRED the same groups route conflict-free at full bandwidth.

use fred_bench::table::{fmt_bw, Table};
use fred_bench::traceopt::TraceOpts;
use fred_collectives::hierarchical::merge_concurrent;
use fred_core::params::FabricConfig;
use fred_core::placement::{Placement, PlacementPolicy, Strategy3D};
use fred_mesh::rings::{ring_hop_count, snake_order};
use fred_mesh::topology::MeshFabric;
use fred_sim::netsim::FlowNetwork;
use fred_workloads::backend::FabricBackend;

fn main() {
    let mut opts = TraceOpts::from_args("fig6_nonaligned");
    let strategy = Strategy3D::new(5, 3, 1);
    let mesh = MeshFabric::paper_baseline();

    // Fig 6(a): ring shapes of the MP groups on the mesh.
    let pl = Placement::new(strategy, PlacementPolicy::MpDpPp);
    let mesh_backend = FabricBackend::new(FabricConfig::BaselineMesh);
    let mut table = Table::new(vec!["MP group", "members (physical)", "ring hops", "ideal"]);
    for (i, g) in pl.all_mp_groups().iter().enumerate() {
        let phys = mesh_backend.physical_group(g);
        let order = snake_order(&mesh, &phys);
        table.row(vec![
            format!("group {i}"),
            format!("{phys:?}"),
            ring_hop_count(&mesh, &order).to_string(),
            phys.len().to_string(),
        ]);
    }
    table.print("Fig 6(a) — MP(5)-DP(3)-PP(1) ring embeddings on the 5x4 mesh");

    // Fig 6(b): concurrent-phase congestion, mesh vs Fred-D.
    let bytes = 1e9;
    let mut table = Table::new(vec!["config", "phase", "time (ms)", "effective NPU BW"]);
    for config in [FabricConfig::BaselineMesh, FabricConfig::FredD] {
        let backend = FabricBackend::new(config);
        opts.name_links(&backend.topology());
        let policy = if config.is_fred() {
            PlacementPolicy::MpPpDp
        } else {
            PlacementPolicy::MpDpPp
        };
        let pl = Placement::new(strategy, policy);
        for (label, groups) in [("MP", pl.all_mp_groups()), ("DP", pl.all_dp_groups())] {
            let n = groups[0].len();
            let plans = groups
                .iter()
                .map(|g| backend.all_reduce(&backend.physical_group(g), bytes))
                .collect();
            let merged = merge_concurrent(label, plans);
            let mut net = FlowNetwork::with_sink(backend.topology(), opts.sink());
            let secs = merged
                .execute(&mut net, fred_sim::flow::Priority::Bulk)
                .expect("benchmark plans run on a healthy fabric")
                .as_secs();
            opts.metric(format!("{}/{label}_ms", config.name()), secs * 1e3);
            let per_npu = if config.in_network_collectives() && n > 2 {
                bytes
            } else {
                fred_collectives::cost::endpoint_all_reduce_traffic(n, bytes)
            };
            table.row(vec![
                config.name().into(),
                format!("{label} all-reduce x{}", groups.len()),
                format!("{:.3}", secs * 1e3),
                fmt_bw(per_npu / secs),
            ]);
        }
    }
    table.print("Fig 6(b) — concurrent non-aligned collectives, mesh vs Fred-D");
    println!(
        "\nreading: the mesh pays multi-hop ring edges and inter-group collisions \
         for non-aligned strategies; FRED routes the same groups conflict-free \
         (§3.2.3, §5.3)."
    );
    opts.finish();
}

//! Figure 10 — end-to-end training-time breakdown.
//!
//! Simulates one training iteration of every Table 6 workload under its
//! Table 6 strategy on the Baseline, Fred-C and Fred-D fabrics,
//! printing the normalised breakdown (compute + exposed comm per type)
//! and the end-to-end speedup over the baseline.
//!
//! Paper headline: Fred improves ResNet-152 / Transformer-17B / GPT-3 /
//! Transformer-1T by 1.76× / 1.87× / 1.34× / 1.4× (Fred-D vs baseline);
//! Fred-C lands between the baseline and Fred-D (e.g. 1.41× for
//! ResNet-152).

use fred_bench::table::{fmt_secs, Table};
use fred_bench::traceopt::TraceOpts;
use fred_core::params::FabricConfig;
use fred_workloads::backend::FabricBackend;
use fred_workloads::model::DnnModel;
use fred_workloads::report::{CommType, TrainingReport};
use fred_workloads::schedule::ScheduleParams;
use fred_workloads::trainer::simulate_traced;

fn main() {
    let mut opts = TraceOpts::from_args("fig10");
    let configs = [
        FabricConfig::BaselineMesh,
        FabricConfig::FredC,
        FabricConfig::FredD,
    ];
    let mut summary = Table::new(vec!["workload", "Fred-C speedup", "Fred-D speedup"]);

    for model in DnnModel::all_paper_workloads() {
        let strategy = model.default_strategy;
        let params = ScheduleParams::paper_default(&model, strategy);
        let mut table = Table::new(vec![
            "config",
            "total",
            "compute",
            "input_load",
            "mp",
            "pp",
            "dp",
            "streaming",
            "norm (vs baseline)",
        ]);
        let mut reports: Vec<TrainingReport> = Vec::new();
        for config in configs {
            let backend = FabricBackend::new(config);
            opts.name_links(&backend.topology());
            let r = simulate_traced(&model, strategy, &backend, params, opts.sink()).unwrap();
            opts.metric(
                format!("{}/{}/total_secs", model.name, config.name()),
                r.total.as_secs(),
            );
            reports.push(r);
        }
        let base_total = reports[0].total.as_secs();
        for r in &reports {
            table.row(vec![
                r.config.clone(),
                fmt_secs(r.total.as_secs()),
                fmt_secs(r.compute.as_secs()),
                fmt_secs(r.exposed_for(CommType::InputLoad).as_secs()),
                fmt_secs(r.exposed_for(CommType::Mp).as_secs()),
                fmt_secs(r.exposed_for(CommType::Pp).as_secs()),
                fmt_secs(r.exposed_for(CommType::Dp).as_secs()),
                fmt_secs(r.exposed_for(CommType::Streaming).as_secs()),
                format!("{:.3}", r.total.as_secs() / base_total),
            ]);
        }
        table.print(&format!(
            "Fig 10 — {} [{}], minibatch {}",
            model.name, strategy, params.minibatch
        ));
        opts.metric(
            format!("{}/fredc_speedup", model.name),
            reports[1].speedup_over(&reports[0]),
        );
        opts.metric(
            format!("{}/fredd_speedup", model.name),
            reports[2].speedup_over(&reports[0]),
        );
        summary.row(vec![
            model.name.clone(),
            format!("{:.2}x", reports[1].speedup_over(&reports[0])),
            format!("{:.2}x", reports[2].speedup_over(&reports[0])),
        ]);
    }
    summary.print("Fig 10 — end-to-end speedup over the baseline mesh");
    println!(
        "\npaper reference (Fred-D): ResNet-152 1.76x, Transformer-17B 1.87x, \
         GPT-3 1.34x, Transformer-1T 1.40x"
    );
    opts.finish();
}

//! Scaling study (§3.2.1's O(N) law + §8.3's multi-wafer discussion).
//!
//! 1. Mesh width sweep: the link bandwidth a mesh needs for full-rate
//!    streaming grows linearly ((2N−1)P), so the achievable I/O
//!    fraction collapses as wafers scale — while a FRED tree only needs
//!    its L1 trunks to match the attached NPU bandwidth (O(1) per NPU).
//! 2. Multi-wafer sweep: the §8.3 hierarchical global All-Reduce across
//!    2–4 wafers, showing the inter-wafer channel bandwidth taking over
//!    as the bottleneck.

use fred_bench::churn::{run_churn, SCALING_SWEEP};
use fred_bench::table::{fmt_bw, Table};
use fred_bench::traceopt::TraceOpts;
use fred_core::multiwafer::MultiWafer;
use fred_core::params::FabricConfig;
use fred_hwmodel::iohotspot;
use fred_sim::flow::Priority;
use fred_sim::netsim::FlowNetwork;

fn main() {
    let mut opts = TraceOpts::from_args("scaling");
    // 1. Mesh vs FRED streaming scalability (closed form).
    let p = 128e9;
    let link = 750e9;
    let mut table = Table::new(vec![
        "NPUs (N x N)",
        "mesh hotspot BW",
        "mesh line-rate fraction",
        "FRED line-rate fraction",
    ]);
    for n in [4usize, 5, 6, 8, 12, 16] {
        let frac = iohotspot::achievable_channel_rate(n, p, link) / p;
        opts.metric(format!("mesh_line_rate_fraction/{n}x{n}"), frac);
        table.row(vec![
            format!("{} ({n}x{n})", n * n),
            fmt_bw(iohotspot::required_link_bw(n, p)),
            format!("{frac:.2}"),
            "1.00".into(), // FRED trunks scale with attached NPUs by construction
        ]);
    }
    table.print("scaling — streaming I/O vs wafer size (128 GB/s channels, 750 GB/s mesh links)");

    // 2. Multi-wafer global All-Reduce.
    let d = 10e9;
    let mut table = Table::new(vec![
        "wafers",
        "inter-wafer BW/channel",
        "global AR time (ms)",
        "effective NPU BW",
    ]);
    for wafers in [2usize, 3, 4] {
        for inter_bw in [128e9, 512e9, 2e12] {
            let mw = MultiWafer::new(wafers, FabricConfig::FredD, 4, inter_bw);
            let topo = mw.clone_topology();
            opts.name_links(&topo);
            let mut net = FlowNetwork::with_sink(topo, opts.sink());
            net.inject_batch(mw.global_all_reduce(d, Priority::Dp, 0))
                .expect("multiwafer routes are valid on a healthy fabric");
            let done = net.run_to_completion();
            let t = done
                .iter()
                .map(|c| c.completed_at.as_secs())
                .fold(0.0, f64::max);
            opts.metric(
                format!("global_ar_ms/{wafers}w/{}", fmt_bw(inter_bw)),
                t * 1e3,
            );
            table.row(vec![
                wafers.to_string(),
                fmt_bw(inter_bw),
                format!("{:.3}", t * 1e3),
                fmt_bw(d / t),
            ]);
        }
    }
    table.print("scaling — §8.3 hierarchical global All-Reduce across wafers (10 GB)");
    println!(
        "\nreading: on-wafer FRED keeps each NPU at 3 TB/s regardless of wafer \
         count; the inter-wafer channels set the ceiling, as §8.3 anticipates."
    );

    // 3. Simulator-throughput churn sweep: the fair-share solver is the
    //    dominant cost at the 1k–4k-NPU points, so events/s here tracks
    //    the allocator directly (the largest config is the regression
    //    gate seeded in results/baselines/).
    let mut table = Table::new(vec![
        "NPUs",
        "flows",
        "sim makespan (ms)",
        "wall (s)",
        "events/s",
    ]);
    for cfg in &SCALING_SWEEP {
        let r = run_churn(cfg);
        let npus = cfg.npus();
        opts.metric(format!("churn_makespan_ms/{npus}"), r.makespan_secs * 1e3);
        opts.metric(format!("churn_checksum_secs/{npus}"), r.completion_checksum);
        opts.metric(format!("events_per_sec/{npus}"), r.events_per_sec());
        table.row(vec![
            npus.to_string(),
            cfg.flows.to_string(),
            format!("{:.3}", r.makespan_secs * 1e3),
            format!("{:.3}", r.wall_secs),
            format!("{:.0}", r.events_per_sec()),
        ]);
    }
    table.print("scaling — flow-churn simulator throughput (local traffic, target concurrency)");
    opts.finish();
}

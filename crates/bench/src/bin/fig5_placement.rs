//! Figure 5 — the device-placement trade-off (§3.2.2).
//!
//! For MP(2)-DP(4)-PP(2) (the paper's Fig 5 strategy), sweeps placement
//! policies on the baseline mesh and on Fred-D, timing each parallelism
//! phase in isolation. Expected shape: on the mesh every row favours
//! two dimensions and congests the third (Fig 5a vs 5b); on Fred-D the
//! rows coincide — placement stops mattering.

use std::rc::Rc;

use fred_bench::table::Table;
use fred_bench::traceopt::TraceOpts;
use fred_collectives::hierarchical::merge_concurrent;
use fred_collectives::plan::CommPlan;
use fred_core::params::FabricConfig;
use fred_core::placement::{Placement, PlacementPolicy, Strategy3D};
use fred_sim::netsim::FlowNetwork;
use fred_telemetry::sink::TraceSink;
use fred_workloads::backend::FabricBackend;

fn phase_time(backend: &FabricBackend, plans: Vec<CommPlan>, sink: Rc<dyn TraceSink>) -> f64 {
    let merged = merge_concurrent("phase", plans);
    let mut net = FlowNetwork::with_sink(backend.topology(), sink);
    merged
        .execute(&mut net, fred_sim::flow::Priority::Bulk)
        .expect("benchmark plans run on a healthy fabric")
        .as_secs()
        * 1e3
}

fn main() {
    let mut opts = TraceOpts::from_args("fig5_placement");
    let strategy = Strategy3D::new(2, 4, 2);
    let bytes = 1e9;
    for config in [FabricConfig::BaselineMesh, FabricConfig::FredD] {
        let backend = FabricBackend::new(config);
        opts.name_links(&backend.topology());
        let mut table = Table::new(vec![
            "placement",
            "MP (ms)",
            "DP (ms)",
            "PP (ms)",
            "worst phase",
        ]);
        for policy in PlacementPolicy::ALL {
            let pl = Placement::new(strategy, policy);
            let mp = phase_time(
                &backend,
                pl.all_mp_groups()
                    .iter()
                    .map(|g| backend.all_reduce(&backend.physical_group(g), bytes))
                    .collect(),
                opts.sink(),
            );
            let dp = phase_time(
                &backend,
                pl.all_dp_groups()
                    .iter()
                    .map(|g| backend.all_reduce(&backend.physical_group(g), bytes))
                    .collect(),
                opts.sink(),
            );
            let pp = phase_time(
                &backend,
                (0..strategy.dp)
                    .flat_map(|d| (0..strategy.pp - 1).map(move |p| (d, p)))
                    .map(|(d, p)| {
                        backend.stage_transfer(
                            &backend.physical_group(&pl.mp_group_npus(d, p)),
                            &backend.physical_group(&pl.mp_group_npus(d, p + 1)),
                            bytes,
                        )
                    })
                    .collect(),
                opts.sink(),
            );
            let worst = [("MP", mp), ("DP", dp), ("PP", pp)]
                .into_iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            for (dim, ms) in [("MP", mp), ("DP", dp), ("PP", pp)] {
                opts.metric(format!("{}/{policy:?}/{dim}_ms", config.name()), ms);
            }
            table.row(vec![
                format!("{policy:?}"),
                format!("{mp:.3}"),
                format!("{dp:.3}"),
                format!("{pp:.3}"),
                format!("{} ({:.3} ms)", worst.0, worst.1),
            ]);
        }
        table.print(&format!(
            "Fig 5 — {} placements for {strategy} (1 GB/collective)",
            config.name()
        ));
    }
    println!(
        "\nreading: no mesh placement makes all three phases fast at once \
         (§3.2.2: \"mathematically impossible\"); Fred-D rows are identical."
    );
    opts.finish();
}

//! Figure 2 — compute/communication overhead per parallelization
//! strategy for Transformer-17B on the baseline 2D mesh.
//!
//! Sweeps 3D-parallelism factorizations of the 20-NPU wafer (including
//! a non-aligned strategy) with minibatch = DP × 40 and reports the
//! per-sample normalised breakdown. Expected shape: communication
//! overhead varies wildly across strategies and can make
//! compute-efficient strategies (e.g. MP(20)) lose end-to-end.

use fred_bench::table::Table;
use fred_bench::traceopt::TraceOpts;
use fred_core::params::FabricConfig;
use fred_core::placement::Strategy3D;
use fred_workloads::backend::FabricBackend;
use fred_workloads::model::DnnModel;
use fred_workloads::schedule::ScheduleParams;
use fred_workloads::trainer::simulate_traced;

/// The strategy set of Fig 2 (products of 20, plus one non-aligned).
pub fn fig2_strategies() -> Vec<Strategy3D> {
    vec![
        Strategy3D::new(20, 1, 1),
        Strategy3D::new(10, 2, 1),
        Strategy3D::new(5, 4, 1),
        Strategy3D::new(5, 2, 2),
        Strategy3D::new(5, 1, 4),
        Strategy3D::new(4, 5, 1),
        Strategy3D::new(2, 5, 2),
        Strategy3D::new(2, 2, 5),
        Strategy3D::new(1, 20, 1),
        Strategy3D::new(1, 2, 10),
        Strategy3D::new(2, 10, 1),
        Strategy3D::new(1, 10, 2),
        // Non-aligned (uses 15 of 20 NPUs, §3.2.3).
        Strategy3D::new(5, 3, 1),
    ]
}

fn main() {
    let mut opts = TraceOpts::from_args("fig2");
    let model = DnnModel::transformer_17b();
    let backend = FabricBackend::new(FabricConfig::BaselineMesh);
    opts.name_links(&backend.topology());
    let mut table = Table::new(vec![
        "strategy",
        "minibatch",
        "compute/sample (ms)",
        "exposed comm/sample (ms)",
        "total/sample (ms)",
        "comm share",
    ]);
    for strategy in fig2_strategies() {
        let params = ScheduleParams::sweep_default(&model, strategy);
        let r = simulate_traced(&model, strategy, &backend, params, opts.sink()).unwrap();
        let per = 1e3 / r.minibatch as f64;
        let compute = r.compute.as_secs() * per;
        let exposed = r.exposed_total().as_secs() * per;
        let total = r.total.as_secs() * per;
        opts.metric(format!("{strategy}/total_ms_per_sample"), total);
        opts.metric(format!("{strategy}/exposed_ms_per_sample"), exposed);
        table.row(vec![
            r.strategy.clone(),
            r.minibatch.to_string(),
            format!("{compute:.3}"),
            format!("{exposed:.3}"),
            format!("{total:.3}"),
            format!("{:.0}%", 100.0 * exposed / total),
        ]);
    }
    table.print("Fig 2 — Transformer-17B strategies on the baseline 2D mesh (per-sample)");
    opts.finish();
}

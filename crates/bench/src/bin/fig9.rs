//! Figure 9 — communication microbenchmarks.
//!
//! For two parallelization strategies of Transformer-17B
//! (MP(20)-DP(1)-PP(1) and MP(2)-DP(5)-PP(2)), runs each
//! 3D-parallelism communication phase *alone* on every Table 5 fabric
//! and reports the phase time and the effective per-NPU bandwidth
//! (§8.1's metric: bytes each NPU must send under the algorithm,
//! divided by the phase duration).
//!
//! Expected shape (paper §8.1): for the wafer-wide MP All-Reduce the
//! baseline sits near 1.5 TBps (corner-bounded), Fred-A ≈ baseline,
//! Fred-B in between, Fred-C/D near 3 TBps with Fred-D halving the
//! traffic; for the DP phase of MP(2)-DP(5)-PP(2), Fred-A drops *below*
//! the baseline (≈375 GBps vs 750 GBps) and Fred-C/D recover.

use std::rc::Rc;

use fred_bench::table::{fmt_bw, fmt_secs, Table};
use fred_bench::traceopt::TraceOpts;
use fred_collectives::hierarchical::merge_concurrent;
use fred_collectives::plan::CommPlan;
use fred_core::params::FabricConfig;
use fred_core::placement::{Placement, PlacementPolicy, Strategy3D};
use fred_sim::netsim::FlowNetwork;
use fred_telemetry::sink::TraceSink;
use fred_workloads::backend::FabricBackend;
use fred_workloads::model::DnnModel;

/// Runs `plan` alone and returns its duration in seconds.
fn run_plan(backend: &FabricBackend, plan: &CommPlan, sink: Rc<dyn TraceSink>) -> f64 {
    let mut net = FlowNetwork::with_sink(backend.topology(), sink);
    plan.execute(&mut net, fred_sim::flow::Priority::Bulk)
        .expect("benchmark plans run on a healthy fabric")
        .as_secs()
}

fn phase_row(
    backend: &FabricBackend,
    label: &str,
    plans: Vec<CommPlan>,
    per_npu_traffic: f64,
    table: &mut Table,
    sink: Rc<dyn TraceSink>,
) -> f64 {
    let merged = merge_concurrent(label, plans);
    let secs = run_plan(backend, &merged, sink);
    table.row(vec![
        backend.config().name().into(),
        label.into(),
        fmt_secs(secs),
        fmt_bw(per_npu_traffic / secs),
    ]);
    secs
}

fn main() {
    let mut opts = TraceOpts::from_args("fig9");
    let model = DnnModel::transformer_17b();
    // Per the §8.1 microbenchmarks: one Megatron All-Reduce payload at
    // minibatch = DP x 16.
    for strategy in [Strategy3D::new(20, 1, 1), Strategy3D::new(2, 5, 2)] {
        println!("\n#### Strategy {strategy} (Transformer-17B payloads) ####");
        let mut table = Table::new(vec!["config", "phase", "time", "effective NPU BW"]);
        let samples = 16.0 * strategy.dp as f64 / strategy.dp as f64; // per-replica samples
        let ar_bytes = model.activation_bytes(samples) * 64.0; // a layer-stack burst
        let grad_bytes = model.grad_bytes() / (strategy.mp * strategy.pp) as f64;

        for config in FabricConfig::ALL {
            let backend = FabricBackend::new(config);
            opts.name_links(&backend.topology());
            let policy = if config.is_fred() {
                PlacementPolicy::MpPpDp
            } else {
                PlacementPolicy::MpDpPp
            };
            let pl = Placement::new(strategy, policy);

            // MP phase: all MP groups all-reduce concurrently.
            if strategy.mp > 1 {
                let groups: Vec<Vec<usize>> = pl
                    .all_mp_groups()
                    .iter()
                    .map(|g| backend.physical_group(g))
                    .collect();
                let per_npu = if config.in_network_collectives() && strategy.mp > 2 {
                    ar_bytes
                } else {
                    fred_collectives::cost::endpoint_all_reduce_traffic(strategy.mp, ar_bytes)
                };
                let plans = groups
                    .iter()
                    .map(|g| backend.all_reduce(g, ar_bytes))
                    .collect();
                let secs = phase_row(
                    &backend,
                    "MP all-reduce",
                    plans,
                    per_npu,
                    &mut table,
                    opts.sink(),
                );
                opts.metric(format!("{strategy}/{}/MP/secs", config.name()), secs);
            }
            // DP phase.
            if strategy.dp > 1 {
                let groups: Vec<Vec<usize>> = pl
                    .all_dp_groups()
                    .iter()
                    .map(|g| backend.physical_group(g))
                    .collect();
                let per_npu = if config.in_network_collectives() && strategy.dp > 2 {
                    grad_bytes
                } else {
                    fred_collectives::cost::endpoint_all_reduce_traffic(strategy.dp, grad_bytes)
                };
                let plans = groups
                    .iter()
                    .map(|g| backend.all_reduce(g, grad_bytes))
                    .collect();
                let secs = phase_row(
                    &backend,
                    "DP all-reduce",
                    plans,
                    per_npu,
                    &mut table,
                    opts.sink(),
                );
                opts.metric(format!("{strategy}/{}/DP/secs", config.name()), secs);
            }
            // PP phase: every stage feeds the next, member-to-member.
            if strategy.pp > 1 {
                let mut plans = Vec::new();
                for d in 0..strategy.dp {
                    for p in 0..strategy.pp - 1 {
                        let srcs = backend.physical_group(&pl.mp_group_npus(d, p));
                        let dsts = backend.physical_group(&pl.mp_group_npus(d, p + 1));
                        plans.push(backend.stage_transfer(&srcs, &dsts, ar_bytes));
                    }
                }
                let secs = phase_row(
                    &backend,
                    "PP transfer",
                    plans,
                    ar_bytes,
                    &mut table,
                    opts.sink(),
                );
                opts.metric(format!("{strategy}/{}/PP/secs", config.name()), secs);
            }
        }
        table.print(&format!("Fig 9 — {strategy}"));
    }
    opts.finish();
}

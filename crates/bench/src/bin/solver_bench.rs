//! Fair-share solver microbenchmark: incremental vs from-scratch.
//!
//! Runs the flow-churn workload (mostly-local traffic at a target
//! concurrency, the regime of the 1k–4k-NPU scaling points) twice per
//! configuration: once with the incremental solver's dirty-component
//! refill and once with the global fallback forced on every solve
//! (`refill_fraction = 0`, the pre-incremental behaviour). The two runs
//! must be result-identical — the threshold is a pure performance knob
//! — and the events/s ratio is the incremental solver's measured
//! speedup on this machine.
//!
//! Emits `BENCH_solver.json` with `--report`; CI diffs it against the
//! committed baseline so solver regressions fail the build.

use fred_bench::churn::{run_churn, ChurnConfig};
use fred_bench::table::Table;
use fred_bench::traceopt::TraceOpts;

const CONFIGS: [ChurnConfig; 2] = [
    ChurnConfig {
        side: 16,
        flows: 2048,
        concurrency: 128,
        locality: 4,
        seed: 0x50_1BE4C8,
        refill_fraction: None,
    },
    ChurnConfig {
        side: 32,
        flows: 4096,
        concurrency: 256,
        locality: 4,
        seed: 0x50_1BE4C9,
        refill_fraction: None,
    },
];

fn main() {
    let mut opts = TraceOpts::from_args("solver");
    let mut table = Table::new(vec![
        "NPUs",
        "flows",
        "incremental ev/s",
        "from-scratch ev/s",
        "speedup",
    ]);
    for cfg in &CONFIGS {
        let incremental = run_churn(cfg);
        let global = run_churn(&ChurnConfig {
            refill_fraction: Some(0.0),
            ..*cfg
        });
        // Rate-identity at the workload level: the refill threshold
        // must not change simulation results at all.
        assert_eq!(
            incremental.makespan_secs, global.makespan_secs,
            "incremental and from-scratch solves disagree on makespan"
        );
        assert_eq!(
            incremental.completion_checksum, global.completion_checksum,
            "incremental and from-scratch solves disagree on completions"
        );
        let npus = cfg.npus();
        let speedup = incremental.events_per_sec() / global.events_per_sec();
        opts.metric(
            format!("churn_makespan_ms/{npus}"),
            incremental.makespan_secs * 1e3,
        );
        opts.metric(
            format!("incremental_events_per_sec/{npus}"),
            incremental.events_per_sec(),
        );
        opts.metric(
            format!("global_events_per_sec/{npus}"),
            global.events_per_sec(),
        );
        opts.metric(format!("speedup/{npus}"), speedup);
        table.row(vec![
            npus.to_string(),
            cfg.flows.to_string(),
            format!("{:.0}", incremental.events_per_sec()),
            format!("{:.0}", global.events_per_sec()),
            format!("{speedup:.2}x"),
        ]);
    }
    table.print("solver — incremental dirty-component refill vs forced from-scratch filling");
    println!(
        "\nreading: both modes produce bit-identical simulations (asserted); the \
         speedup is pure allocator work avoided by freezing rates outside the \
         dirty component."
    );
    opts.finish();
}

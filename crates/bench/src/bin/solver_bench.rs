//! Fair-share solver microbenchmark: incremental vs from-scratch.
//!
//! Runs the flow-churn workload (mostly-local traffic at a target
//! concurrency, the regime of the 1k–4k-NPU scaling points) twice per
//! configuration: once with the incremental solver's dirty-component
//! refill and once with the global fallback forced on every solve
//! (`refill_fraction = 0`, the pre-incremental behaviour). The two runs
//! must be result-identical — the threshold is a pure performance knob
//! — and the events/s ratio is the incremental solver's measured
//! speedup on this machine.
//!
//! Emits `BENCH_solver.json` with `--report`; CI diffs it against the
//! committed baseline so solver regressions fail the build.
//!
//! Also enforces the self-profiler's overhead budget: the smallest
//! configuration reruns with `fred_telemetry::prof` enabled and must
//! keep ≥ 95% of the unprofiled events/s (best paired ratio over
//! interleaved runs, measured in-process so machine speed cancels
//! out) — once single-threaded, once on the sharded engine at two
//! worker threads, where the thread-local scope timers drain at the
//! shard barriers.

use fred_bench::churn::{run_churn, run_churn_sharded, ChurnConfig, ShardChurnConfig};
use fred_bench::table::Table;
use fred_bench::traceopt::TraceOpts;
use fred_telemetry::prof;

const CONFIGS: [ChurnConfig; 2] = [
    ChurnConfig {
        side: 16,
        flows: 2048,
        concurrency: 128,
        locality: 4,
        seed: 0x50_1BE4C8,
        refill_fraction: None,
    },
    ChurnConfig {
        side: 32,
        flows: 4096,
        concurrency: 256,
        locality: 4,
        seed: 0x50_1BE4C9,
        refill_fraction: None,
    },
];

fn main() {
    let mut opts = TraceOpts::from_args("solver");
    let mut table = Table::new(vec![
        "NPUs",
        "flows",
        "incremental ev/s",
        "from-scratch ev/s",
        "speedup",
    ]);
    for cfg in &CONFIGS {
        let incremental = run_churn(cfg);
        let global = run_churn(&ChurnConfig {
            refill_fraction: Some(0.0),
            ..*cfg
        });
        // Rate-identity at the workload level: the refill threshold
        // must not change simulation results at all.
        assert_eq!(
            incremental.makespan_secs, global.makespan_secs,
            "incremental and from-scratch solves disagree on makespan"
        );
        assert_eq!(
            incremental.completion_checksum, global.completion_checksum,
            "incremental and from-scratch solves disagree on completions"
        );
        let npus = cfg.npus();
        let speedup = incremental.events_per_sec() / global.events_per_sec();
        opts.metric(
            format!("churn_makespan_ms/{npus}"),
            incremental.makespan_secs * 1e3,
        );
        opts.metric(
            format!("incremental_events_per_sec/{npus}"),
            incremental.events_per_sec(),
        );
        opts.metric(
            format!("global_events_per_sec/{npus}"),
            global.events_per_sec(),
        );
        opts.metric(format!("speedup/{npus}"), speedup);
        table.row(vec![
            npus.to_string(),
            cfg.flows.to_string(),
            format!("{:.0}", incremental.events_per_sec()),
            format!("{:.0}", global.events_per_sec()),
            format!("{speedup:.2}x"),
        ]);
    }
    table.print("solver — incremental dirty-component refill vs forced from-scratch filling");
    println!(
        "\nreading: both modes produce bit-identical simulations (asserted); the \
         speedup is pure allocator work avoided by freezing rates outside the \
         dirty component."
    );

    // Profiler overhead budget. In-process comparison means the
    // assertion holds on any machine, unlike a cross-machine baseline
    // diff. Interleaved pairs cancel host drift; keep sampling (up to
    // 16 pairs) until the budget holds with margin.
    let cfg = &CONFIGS[0];
    let was_enabled = prof::enabled();
    prof::set_enabled(false);
    run_churn(cfg); // warm-up: stabilise caches and CPU clocks
    let (mut plain, mut profiled) = (0.0f64, 0.0f64);
    let mut ratio = 0.0f64;
    for _ in 0..16 {
        // Best *paired* ratio: adjacent runs see the same host
        // conditions, so cross-run throughput drift (which dwarfs the
        // budget on busy CI hosts) cancels out of the comparison.
        prof::set_enabled(false);
        let p = run_churn(cfg).events_per_sec();
        prof::set_enabled(true);
        let q = run_churn(cfg).events_per_sec();
        plain = plain.max(p);
        profiled = profiled.max(q);
        ratio = ratio.max(q / p);
        if ratio >= 0.97 {
            break;
        }
    }
    prof::set_enabled(was_enabled);
    println!(
        "\nprofiler overhead: {:.0} ev/s unprofiled vs {:.0} ev/s profiled \
         ({:.1}% of baseline)",
        plain,
        profiled,
        ratio * 100.0
    );
    assert!(
        ratio >= 0.95,
        "profiler overhead exceeds the 5% budget: profiled run reached only \
         {:.1}% of unprofiled events/s",
        ratio * 100.0
    );
    opts.metric("profiled_events_per_sec_ratio", ratio);

    // Same budget across worker threads: scope timers are
    // thread-local and drained at the shard barriers
    // (`prof::flush_thread`), so the aggregation must not cost more
    // than the 5% single-threaded bound either. Uses the sharded
    // engine at 2 workers — the aggregation path only exists there.
    // Runs are sized so scheduler noise (worker threads time-slicing
    // on oversubscribed CI hosts) is small against the run length, and
    // the sample budget is deeper than the single-threaded check's for
    // the same reason.
    let sharded_cfg = ShardChurnConfig {
        side: 16,
        tiles: 2,
        flows_per_tile: 2048,
        concurrency_per_tile: 32,
        locality: 4,
        seed: 0x50_1BE4CA,
    };
    prof::set_enabled(false);
    run_churn_sharded(&sharded_cfg, 2); // warm-up
    let (mut plain, mut profiled) = (0.0f64, 0.0f64);
    let mut ratio = 0.0f64;
    for _ in 0..16 {
        // Best *paired* ratio, not max-vs-max: with worker threads
        // time-slicing on an oversubscribed host, throughput drifts
        // between runs by far more than the budget, but an adjacent
        // profiled/unprofiled pair sees the same host conditions and
        // the drift cancels.
        prof::set_enabled(false);
        let p = run_churn_sharded(&sharded_cfg, 2).events_per_sec();
        prof::set_enabled(true);
        let q = run_churn_sharded(&sharded_cfg, 2).events_per_sec();
        plain = plain.max(p);
        profiled = profiled.max(q);
        ratio = ratio.max(q / p);
        if ratio >= 0.97 {
            break;
        }
    }
    prof::set_enabled(was_enabled);
    println!(
        "profiler overhead (sharded, 2 threads): {:.0} ev/s unprofiled vs \
         {:.0} ev/s profiled ({:.1}% of baseline)",
        plain,
        profiled,
        ratio * 100.0
    );
    assert!(
        ratio >= 0.95,
        "profiler overhead exceeds the 5% budget on the sharded engine: \
         profiled run reached only {:.1}% of unprofiled events/s",
        ratio * 100.0
    );
    opts.metric("sharded_profiled_events_per_sec_ratio", ratio);

    opts.finish();
}

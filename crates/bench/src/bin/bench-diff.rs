//! Compares two `BENCH_<name>.json` reports and fails on regressions.
//!
//! ```text
//! bench-diff <baseline.json> <candidate.json> [--threshold <rel>]
//! bench-diff --self-check <report.json> [<report.json> ...]
//! bench-diff --check-prom <exposition.txt> [<exposition.txt> ...]
//! ```
//!
//! Diff mode compares every `sim.*` metric plus the attribution
//! summary leaf by leaf and exits non-zero when any relative change
//! exceeds the threshold (default 5%) or a key is missing on either
//! side. Self-check mode validates a report in isolation: schema
//! version, required fields, and the attribution-sum invariant
//! (Σ buckets == makespan within 1e-6 relative). Check-prom mode
//! validates a Prometheus text-exposition file: it must parse and
//! contain at least one sample (the CI smoke assertion over `--prom`
//! output).
//!
//! Exit codes: 0 = clean, 1 = regression or invalid report, 2 = usage.

use fred_bench::report::{self, Value};

const DEFAULT_THRESHOLD: f64 = 0.05;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

fn run(args: &[String]) -> i32 {
    if args.first().map(String::as_str) == Some("--self-check") {
        return self_check(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("--check-prom") {
        return check_prom(&args[1..]);
    }
    let mut paths = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) else {
                    return usage("--threshold needs a number");
                };
                if v.is_nan() || v < 0.0 {
                    return usage("--threshold must be non-negative");
                }
                threshold = v;
                i += 2;
            }
            other if other.starts_with("--") => return usage(&format!("unknown flag `{other}`")),
            _ => {
                paths.push(args[i].clone());
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        return usage("expected exactly two report files");
    }
    let (a, b) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-diff: {e}");
            return 1;
        }
    };
    let entries = match report::diff(&a, &b) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench-diff: {e}");
            return 1;
        }
    };
    let name = |v: &Value| {
        v.get("name")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string()
    };
    println!(
        "bench-diff: {} vs {} — {} leaves, threshold {:.2}%",
        name(&a),
        name(&b),
        entries.len(),
        100.0 * threshold
    );
    let mut failed = 0usize;
    for e in &entries {
        if e.exceeds(threshold) {
            println!("  REGRESSION  {e}");
            failed += 1;
        } else if e.rel > 0.0 {
            println!("  ok          {e}");
        }
    }
    if failed > 0 {
        println!("bench-diff: {failed} leaf/leaves beyond threshold");
        1
    } else {
        println!("bench-diff: no regression");
        0
    }
}

fn self_check(paths: &[String]) -> i32 {
    if paths.is_empty() {
        return usage("--self-check needs at least one report file");
    }
    let mut failed = 0usize;
    for path in paths {
        match load(path).and_then(|v| report::self_check(&v).map_err(|e| format!("{path}: {e}"))) {
            Ok(info) => {
                println!("bench-diff: {path} OK");
                for line in info {
                    println!("  {line}");
                }
            }
            Err(e) => {
                eprintln!("bench-diff: FAIL {e}");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        1
    } else {
        0
    }
}

fn check_prom(paths: &[String]) -> i32 {
    if paths.is_empty() {
        return usage("--check-prom needs at least one exposition file");
    }
    let mut failed = 0usize;
    for path in paths {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| format!("{path}: {e}"))
            .and_then(|text| fred_telemetry::prom::parse(&text).map_err(|e| format!("{path}: {e}")))
            .and_then(|samples| {
                if samples.is_empty() {
                    Err(format!("{path}: no samples — exposition is empty"))
                } else {
                    Ok(samples.len())
                }
            });
        match outcome {
            Ok(n) => println!("bench-diff: {path} OK ({n} samples)"),
            Err(e) => {
                eprintln!("bench-diff: FAIL {e}");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        1
    } else {
        0
    }
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    report::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn usage(why: &str) -> i32 {
    eprintln!("bench-diff: {why}");
    eprintln!("usage: bench-diff <baseline.json> <candidate.json> [--threshold <rel>]");
    eprintln!("       bench-diff --self-check <report.json> [<report.json> ...]");
    eprintln!("       bench-diff --check-prom <exposition.txt> [<exposition.txt> ...]");
    2
}

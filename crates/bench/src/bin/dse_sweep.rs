//! Design-space-exploration sweep: the capacity-planning experiment.
//!
//! Evaluates a [`SweepSpec`] — NPU array dims × link-bandwidth ratio ×
//! external-memory hub capacity × model-zoo workload × fault severity
//! × tenant mix — against the multi-tenant cluster simulator, with
//! per-point panic isolation, mid-sweep checkpointing and
//! bit-identical kill/resume, then extracts the Pareto front over
//! normalized makespan / area / power / TCO. See `DESIGN.md` §13.
//!
//! Extra flags beyond the standard tracing set:
//!
//! * `--full` — run the ≥ 200-point [`SweepSpec::full`] sweep instead
//!   of the CI smoke grid;
//! * `--checkpoint <path>` — write a resumable checkpoint after every
//!   chunk;
//! * `--resume` — resume from `--checkpoint` if the file exists;
//! * `--stop-after-chunks <n>` — exit cleanly after `n` chunks (the
//!   kill half of a kill/resume demonstration);
//! * `--inject-panic <idx>` — force point `idx` to panic, to
//!   demonstrate that a crashing point becomes a typed error row.
//!
//! Report keys (`--report BENCH_dse.json`): `dse/p<i>/status`
//! (0 ok / 1 infeasible / 2 error), `dse/p<i>/norm_makespan_secs`,
//! `dse/p<i>/area_mm2`, `dse/p<i>/power_w`, `dse/p<i>/tco_dollars`,
//! `dse/p<i>/mean_stretch`, and the aggregates `dse/points`,
//! `dse/ok`, `dse/infeasible`, `dse/errors`, `dse/front_size`,
//! `dse/dominated`. With `--dashboard`, the explored objective space
//! lands as `dse/*` series (indexed by point) so the front scatter is
//! visible next to the progress track.

use std::path::PathBuf;

use fred_bench::table::{fmt_secs, Table};
use fred_bench::traceopt::TraceOpts;
use fred_dse::runner::{PointOutcome, RunOpts};
use fred_dse::{bench_metrics, pareto_front, run_sweep, SweepSpec};
use fred_telemetry::event::TraceEvent;

fn main() {
    let mut full = false;
    let mut checkpoint: Option<PathBuf> = None;
    let mut resume = false;
    let mut stop_after_chunks: Option<usize> = None;
    let mut inject_panic: Option<usize> = None;
    let mut opts = TraceOpts::from_args_with("dse_sweep", |flag, next| match flag {
        "--full" => {
            full = true;
            true
        }
        "--checkpoint" => {
            checkpoint = Some(PathBuf::from(next().unwrap_or_else(|| {
                eprintln!("dse_sweep: --checkpoint expects a path");
                std::process::exit(2);
            })));
            true
        }
        "--resume" => {
            resume = true;
            true
        }
        "--stop-after-chunks" => {
            stop_after_chunks = Some(parse_usize("--stop-after-chunks", next));
            true
        }
        "--inject-panic" => {
            inject_panic = Some(parse_usize("--inject-panic", next));
            true
        }
        _ => false,
    });
    let spec = if full {
        SweepSpec::full()
    } else {
        SweepSpec::smoke()
    };

    let run_opts = RunOpts {
        threads: opts.threads(),
        checkpoint,
        resume,
        stop_after_chunks,
        panic_at: inject_panic,
        sink: opts.enabled().then(|| opts.sink()),
    };
    let outcome = run_sweep(&spec, &run_opts).unwrap_or_else(|e| {
        eprintln!("dse_sweep: {e}");
        std::process::exit(1);
    });
    let rows = &outcome.rows;
    let total = spec.point_count();
    if rows.len() < total {
        // Interrupted by --stop-after-chunks: report progress and make
        // the partial state obvious instead of emitting a half-front.
        println!(
            "dse_sweep[{}]: stopped after {} chunks — {}/{} points complete \
             (resume with --resume --checkpoint <path>)",
            spec.name,
            outcome.chunks_run,
            rows.len(),
            total
        );
        opts.finish();
        return;
    }

    let front = pareto_front(rows);
    for (key, value) in bench_metrics(rows, &front) {
        opts.metric(key, value);
    }

    // Dashboard scatter: the explored objective space as
    // point-indexed series, front membership as a 0/1 trace.
    if opts.enabled() {
        let sink = opts.sink();
        for (i, row) in rows.iter().enumerate() {
            if let PointOutcome::Metrics(m) = &row.outcome {
                let t = i as f64;
                let s = |key: &str, value: f64| {
                    sink.record(TraceEvent::Sample {
                        t,
                        key: key.into(),
                        value,
                    });
                };
                s("dse/norm_makespan_secs", m.norm_makespan_secs);
                s("dse/area_mm2", m.area_mm2);
                s("dse/power_w", m.power_w);
                s("dse/tco_dollars", m.tco_dollars);
                s(
                    "dse/on_front",
                    if front.front.contains(&i) { 1.0 } else { 0.0 },
                );
            }
        }
    }

    let mut table = Table::new(vec![
        "point",
        "design",
        "norm makespan",
        "area mm2",
        "power W",
        "tco $",
    ]);
    for &i in &front.front {
        let row = &rows[i];
        let PointOutcome::Metrics(m) = &row.outcome else {
            continue;
        };
        table.row(vec![
            i.to_string(),
            row.point.label(),
            fmt_secs(m.norm_makespan_secs),
            format!("{:.0}", m.area_mm2),
            format!("{:.0}", m.power_w),
            format!("{:.6}", m.tco_dollars),
        ]);
    }
    table.print(&format!(
        "dse_sweep[{}] — Pareto front: {} of {} points ({} dominated, \
         {} infeasible, {} errors{})",
        spec.name,
        front.front.len(),
        rows.len(),
        front.dominated,
        front.infeasible,
        front.errors,
        if outcome.resumed_rows > 0 {
            format!(
                "; resumed past {} checkpointed points",
                outcome.resumed_rows
            )
        } else {
            String::new()
        }
    ));
    println!(
        "\nreading: each front row is a fabric configuration no other explored \
         point beats on all four axes at once — the capacity-planning menu. \
         Dominated points paid area/power/TCO without buying normalized \
         makespan; infeasible points lacked external-memory hub capacity for \
         their workload's optimizer spill."
    );
    opts.finish();
}

fn parse_usize(flag: &str, next: &mut dyn FnMut() -> Option<String>) -> usize {
    let v = next().unwrap_or_else(|| {
        eprintln!("dse_sweep: {flag} expects an integer");
        std::process::exit(2);
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("dse_sweep: {flag} expects an integer, got `{v}`");
        std::process::exit(2);
    })
}

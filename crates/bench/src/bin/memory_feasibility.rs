//! Memory feasibility of weight-stationary strategies (§3.1).
//!
//! For each Table 6 workload, sweeps the aligned 20-NPU strategies and
//! reports the per-NPU footprint and whether it fits the 80 GB of HBM —
//! the admissibility constraint behind Table 6's execution-mode split
//! and the "discarded strategies" the paper's intro motivates.

use fred_bench::table::Table;
use fred_bench::traceopt::TraceOpts;
use fred_workloads::memory;
use fred_workloads::model::DnnModel;
use fred_workloads::strategies::aligned_strategies;

fn main() {
    // Closed-form memory accounting — no simulation to trace, but
    // --report records the fit counts as regression metrics.
    let mut opts = TraceOpts::from_args("memory_feasibility");
    const HBM: f64 = 80e9;
    for model in DnnModel::all_paper_workloads() {
        let mut table = Table::new(vec![
            "strategy",
            "weights (GB)",
            "grads (GB)",
            "optimizer (GB)",
            "activations (GB)",
            "total (GB)",
            "fits 80 GB",
        ]);
        let mut fit = 0usize;
        let strategies = aligned_strategies(20);
        for &s in &strategies {
            let fp = memory::footprint(&model, s, s.dp * 16);
            let fits = fp.total() <= HBM;
            fit += usize::from(fits);
            table.row(vec![
                s.to_string(),
                format!("{:.2}", fp.weights / 1e9),
                format!("{:.2}", fp.gradients / 1e9),
                format!("{:.2}", fp.optimizer / 1e9),
                format!("{:.2}", fp.activations / 1e9),
                format!("{:.2}", fp.total() / 1e9),
                if fits { "yes".into() } else { "NO".into() },
            ]);
        }
        opts.metric(format!("{}/strategies_fitting", model.name), fit as f64);
        table.print(&format!(
            "§3.1 memory feasibility — {} ({}/{} strategies fit weight-stationary)",
            model.name,
            fit,
            strategies.len()
        ));
    }
    println!(
        "\nreading: ResNet fits everywhere; Transformer-17B fits comfortably \
         with MP/PP sharding and only marginally as pure DP; GPT-3 and \
         Transformer-1T fit nowhere — hence Table 6's weight-streaming rows."
    );
    opts.finish();
}

//! Cluster sweep — multi-tenant SLOs vs offered load, mesh vs Fred-D.
//!
//! The paper benches one job at a time; this sweep shares the wafer.
//! A seeded Poisson stream of weight-stationary jobs (2–10 NPUs wide,
//! 20% High / 60% Normal / 20% Low) is offered to the baseline mesh
//! and to Fred-D at increasing load, and the cluster scheduler places,
//! isolates and (when needed) preempts them on one shared fabric. Both
//! fabrics see the *identical* arrival trace at each load point, so
//! every difference in the table is fabric, not luck.
//!
//! Offered load ρ is calibrated in NPU-seconds: the arrival rate is
//! `ρ × slots / E[npus × solo_secs]`, with solo makespans measured on
//! Fred-D (the faster fabric — at equal traces the mesh therefore runs
//! *above* its own ρ, which is the point of the comparison).
//!
//! Reported per (fabric, load): fabric utilization (occupied
//! NPU-seconds over offered), p99 queueing delay, p99 / mean makespan
//! stretch vs solo, Jain fairness over per-job speed, and preemption
//! count.
//!
//! The zero-churn self-check runs a cluster of exactly one High-class
//! job on each fabric and asserts its service time is *bit-identical*
//! to the standalone trainer — the scheduler adds no modeling error,
//! only tenancy.
//!
//! Snapshot modes (exclusive with the sweep, on the Fred-D
//! highest-load scenario): `--snapshot-at <secs>` captures mid-run to
//! `cluster_sweep.snapshot.bin`, continues, then reloads and verifies
//! the resumed run bit-identical; `--restore <path>` resumes a
//! snapshot and verifies it against the uninterrupted run.

use std::path::Path;

use fred_bench::table::{fmt_secs, Table};
use fred_bench::traceopt::TraceOpts;
use fred_cluster::arrivals::{paper_mix, poisson_arrivals, DEFAULT_CLASS_MIX};
use fred_cluster::{run_cluster_traced, Cluster, ClusterConfig, ClusterState, JobClass, JobSpec};
use fred_core::codec::SnapshotError;
use fred_core::params::FabricConfig;
use fred_core::placement::Strategy3D;
use fred_core::snapshot::SimState;
use fred_sim::time::Time;
use fred_workloads::backend::FabricBackend;
use fred_workloads::model::DnnModel;
use fred_workloads::schedule::ScheduleParams;
use fred_workloads::trainer::simulate;

/// Sweep seed: fixed so every arrival trace (and therefore every
/// reported metric) is reproducible across runs and machines.
const SEED: u64 = 0xC1_05;

/// Offered loads swept (fraction of the fabric's NPU-seconds).
const LOADS: [f64; 3] = [0.3, 0.6, 0.9];

/// Jobs per load point.
const JOBS: usize = 16;

/// Section name carrying the cluster state inside the snapshot file.
const SECTION: &str = "cluster";

/// Expected NPU-seconds one arrival brings, measured on Fred-D solo
/// makespans — the arrival-rate calibration shared by the sweep and
/// the snapshot scenario.
fn calibrate(templates: &[fred_cluster::arrivals::JobTemplate]) -> f64 {
    let fredd = FabricBackend::new(FabricConfig::FredD);
    templates
        .iter()
        .map(|t| {
            let solo = simulate(&t.model, t.strategy, &fredd, t.params)
                .expect("solo calibration run completes");
            t.npus() as f64 * solo.total.as_secs()
        })
        .sum::<f64>()
        / templates.len() as f64
}

/// The deterministic scenario snapshot/restore operates on: Fred-D at
/// the highest swept load — the point with queueing and preemption, so
/// the capture exercises the scheduler's full state.
fn snapshot_scenario() -> (ClusterConfig, Vec<JobSpec>) {
    let templates = paper_mix();
    let slots = FabricBackend::new(FabricConfig::FredD).npu_count() as f64;
    let rate = LOADS[2] * slots / calibrate(&templates);
    let jobs = poisson_arrivals(&templates, rate, JOBS, DEFAULT_CLASS_MIX, SEED + 2);
    (ClusterConfig::new(FabricConfig::FredD), jobs)
}

fn read_snapshot(path: &Path) -> Result<ClusterState, SnapshotError> {
    ClusterState::from_value(SimState::read_binary(path)?.section(SECTION)?)
}

/// Asserts two reports of the same scenario are bit-identical where it
/// matters: makespan, preemptions, and every job's first-start and
/// completion times.
fn assert_reports_identical(a: &fred_cluster::ClusterReport, b: &fred_cluster::ClusterReport) {
    assert_eq!(
        a.makespan.as_secs().to_bits(),
        b.makespan.as_secs().to_bits(),
        "RESUME VIOLATION: makespan diverged"
    );
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(
            ra.first_start.as_secs().to_bits(),
            rb.first_start.as_secs().to_bits(),
            "RESUME VIOLATION: {} first-start diverged",
            ra.name
        );
        assert_eq!(
            ra.completion.as_secs().to_bits(),
            rb.completion.as_secs().to_bits(),
            "RESUME VIOLATION: {} completion diverged",
            ra.name
        );
        assert_eq!(
            ra.preemptions, rb.preemptions,
            "RESUME VIOLATION: {} preemption count diverged",
            ra.name
        );
    }
}

fn main() {
    let mut opts = TraceOpts::from_args("cluster_sweep");
    if let Some(path) = opts.restore_path() {
        let (cfg, jobs) = snapshot_scenario();
        let state = read_snapshot(path).unwrap_or_else(|e| {
            eprintln!("cluster_sweep: cannot restore {}: {e}", path.display());
            std::process::exit(1);
        });
        let mut reference =
            Cluster::new(cfg.clone(), jobs.clone(), opts.sink()).expect("snapshot scenario admits");
        reference
            .run_to_completion()
            .expect("uninterrupted reference run completes");
        let mut resumed = Cluster::restore(cfg, jobs, opts.sink(), state)
            .expect("snapshot pairs with the scenario");
        resumed.run_to_completion().expect("resumed run completes");
        let full = reference.into_report();
        assert_reports_identical(&resumed.into_report(), &full);
        println!(
            "cluster_sweep: resumed {} to completion; makespan {} and every job's \
             timeline bit-identical to the uninterrupted run",
            path.display(),
            fmt_secs(full.makespan.as_secs())
        );
        return;
    }
    if let Some(at) = opts.snapshot_at() {
        let (cfg, jobs) = snapshot_scenario();
        let mut cluster =
            Cluster::new(cfg.clone(), jobs.clone(), opts.sink()).expect("snapshot scenario admits");
        cluster
            .run_until(Time::from_secs(at))
            .expect("run to the capture point completes");
        assert!(
            !cluster.is_done(),
            "cluster_sweep: --snapshot-at {at} is past the end of the run"
        );
        let state = cluster.snapshot();
        let path = Path::new("cluster_sweep.snapshot.bin");
        let mut sim = SimState::new();
        sim.insert(SECTION, state.to_value());
        sim.write_binary(path)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        cluster
            .run_to_completion()
            .expect("continued run completes");
        let full = cluster.into_report();
        let reread = read_snapshot(path)
            .unwrap_or_else(|e| panic!("snapshot file failed to round-trip: {e}"));
        let mut resumed = Cluster::restore(cfg, jobs, opts.sink(), reread)
            .expect("snapshot pairs with the scenario");
        resumed.run_to_completion().expect("resumed run completes");
        assert_reports_identical(&resumed.into_report(), &full);
        println!(
            "cluster_sweep: captured at {at} s into {} and verified the resumed run \
             bit-identical (makespan {})",
            path.display(),
            fmt_secs(full.makespan.as_secs())
        );
        return;
    }
    let templates = paper_mix();

    // Calibrate the arrival rate against Fred-D solo makespans: the
    // expected NPU-seconds one arrival brings.
    let fredd = FabricBackend::new(FabricConfig::FredD);
    let slots = fredd.npu_count() as f64;
    let mean_work = calibrate(&templates);

    // Zero-churn self-check: a cluster of one High job reproduces the
    // standalone trainer bit-for-bit on both fabrics.
    for config in [FabricConfig::BaselineMesh, FabricConfig::FredD] {
        let model = DnnModel::resnet152();
        let strategy = Strategy3D::new(1, 4, 1);
        let params = ScheduleParams::sweep_default(&model, strategy);
        let backend = FabricBackend::new(config);
        let solo = simulate(&model, strategy, &backend, params)
            .expect("solo reference run completes")
            .total
            .as_secs();
        let job = JobSpec::new("solo-check", model, strategy, params).with_class(JobClass::High);
        let report = run_cluster_traced(&ClusterConfig::new(config), vec![job], opts.sink())
            .expect("single-job cluster run completes");
        let service = report.records[0].service_secs();
        assert!(
            service == solo,
            "{}: cluster-of-one broke bit-identity: {service} vs {solo}",
            config.name()
        );
        opts.metric(format!("{}/solo_check/secs", config.name()), service);
    }

    let mut table = Table::new(vec![
        "config",
        "load",
        "jobs",
        "util",
        "p99 queue",
        "p99 stretch",
        "mean stretch",
        "jain",
        "preempts",
    ]);
    for config in [FabricConfig::BaselineMesh, FabricConfig::FredD] {
        let backend = FabricBackend::new(config);
        opts.name_links(&backend.topology());
        for (li, load) in LOADS.iter().enumerate() {
            let rate = load * slots / mean_work;
            // Same per-load seed for both fabrics: identical traces.
            let jobs =
                poisson_arrivals(&templates, rate, JOBS, DEFAULT_CLASS_MIX, SEED + li as u64);
            let report = run_cluster_traced(&ClusterConfig::new(config), jobs, opts.sink())
                .unwrap_or_else(|e| {
                    panic!("{} at load {load}: cluster run failed: {e}", config.name())
                });
            let util = report.utilization();
            let p99_q = report.queueing_delay_secs(0.99);
            let p99_s = report.stretch(0.99);
            let mean_s = report.mean_stretch();
            let jain = report.jain_fairness();
            table.row(vec![
                config.name().into(),
                format!("{:.0}%", load * 100.0),
                format!("{}", report.records.len()),
                format!("{:.1}%", util * 100.0),
                fmt_secs(p99_q),
                format!("{p99_s:.2}x"),
                format!("{mean_s:.2}x"),
                format!("{jain:.3}"),
                format!("{}", report.preemptions),
            ]);
            let pct = (load * 100.0) as u64;
            opts.metric(format!("{}/load{pct}/utilization", config.name()), util);
            opts.metric(format!("{}/load{pct}/p99_queue_secs", config.name()), p99_q);
            opts.metric(format!("{}/load{pct}/p99_stretch", config.name()), p99_s);
            opts.metric(format!("{}/load{pct}/mean_stretch", config.name()), mean_s);
            opts.metric(format!("{}/load{pct}/jain", config.name()), jain);
            opts.metric(
                format!("{}/load{pct}/preemptions", config.name()),
                report.preemptions as f64,
            );
        }
    }
    table.print("Cluster sweep — Poisson arrivals, identical traces per load, 20-NPU wafer");
    println!(
        "\nSelf-check passed: a cluster of one High-class job is bit-identical to the \
         standalone trainer on both fabrics. Load is calibrated in NPU-seconds against \
         Fred-D solo makespans; the mesh sees the same arrival stream."
    );
    opts.finish();
}

//! Cluster sweep — multi-tenant SLOs vs offered load, mesh vs Fred-D.
//!
//! The paper benches one job at a time; this sweep shares the wafer.
//! A seeded Poisson stream of weight-stationary jobs (2–10 NPUs wide,
//! 20% High / 60% Normal / 20% Low) is offered to the baseline mesh
//! and to Fred-D at increasing load, and the cluster scheduler places,
//! isolates and (when needed) preempts them on one shared fabric. Both
//! fabrics see the *identical* arrival trace at each load point, so
//! every difference in the table is fabric, not luck.
//!
//! Offered load ρ is calibrated in NPU-seconds: the arrival rate is
//! `ρ × slots / E[npus × solo_secs]`, with solo makespans measured on
//! Fred-D (the faster fabric — at equal traces the mesh therefore runs
//! *above* its own ρ, which is the point of the comparison).
//!
//! Reported per (fabric, load): fabric utilization (occupied
//! NPU-seconds over offered), p99 queueing delay, p99 / mean makespan
//! stretch vs solo, Jain fairness over per-job speed, and preemption
//! count.
//!
//! The zero-churn self-check runs a cluster of exactly one High-class
//! job on each fabric and asserts its service time is *bit-identical*
//! to the standalone trainer — the scheduler adds no modeling error,
//! only tenancy.

use fred_bench::table::{fmt_secs, Table};
use fred_bench::traceopt::TraceOpts;
use fred_cluster::arrivals::{paper_mix, poisson_arrivals, DEFAULT_CLASS_MIX};
use fred_cluster::{run_cluster_traced, ClusterConfig, JobClass, JobSpec};
use fred_core::params::FabricConfig;
use fred_core::placement::Strategy3D;
use fred_workloads::backend::FabricBackend;
use fred_workloads::model::DnnModel;
use fred_workloads::schedule::ScheduleParams;
use fred_workloads::trainer::simulate;

/// Sweep seed: fixed so every arrival trace (and therefore every
/// reported metric) is reproducible across runs and machines.
const SEED: u64 = 0xC1_05;

/// Offered loads swept (fraction of the fabric's NPU-seconds).
const LOADS: [f64; 3] = [0.3, 0.6, 0.9];

/// Jobs per load point.
const JOBS: usize = 16;

fn main() {
    let mut opts = TraceOpts::from_args("cluster_sweep");
    let templates = paper_mix();

    // Calibrate the arrival rate against Fred-D solo makespans: the
    // expected NPU-seconds one arrival brings.
    let fredd = FabricBackend::new(FabricConfig::FredD);
    let slots = fredd.npu_count() as f64;
    let mean_work: f64 = templates
        .iter()
        .map(|t| {
            let solo = simulate(&t.model, t.strategy, &fredd, t.params)
                .expect("solo calibration run completes");
            t.npus() as f64 * solo.total.as_secs()
        })
        .sum::<f64>()
        / templates.len() as f64;

    // Zero-churn self-check: a cluster of one High job reproduces the
    // standalone trainer bit-for-bit on both fabrics.
    for config in [FabricConfig::BaselineMesh, FabricConfig::FredD] {
        let model = DnnModel::resnet152();
        let strategy = Strategy3D::new(1, 4, 1);
        let params = ScheduleParams::sweep_default(&model, strategy);
        let backend = FabricBackend::new(config);
        let solo = simulate(&model, strategy, &backend, params)
            .expect("solo reference run completes")
            .total
            .as_secs();
        let job = JobSpec::new("solo-check", model, strategy, params).with_class(JobClass::High);
        let report = run_cluster_traced(&ClusterConfig::new(config), vec![job], opts.sink())
            .expect("single-job cluster run completes");
        let service = report.records[0].service_secs();
        assert!(
            service == solo,
            "{}: cluster-of-one broke bit-identity: {service} vs {solo}",
            config.name()
        );
        opts.metric(format!("{}/solo_check/secs", config.name()), service);
    }

    let mut table = Table::new(vec![
        "config",
        "load",
        "jobs",
        "util",
        "p99 queue",
        "p99 stretch",
        "mean stretch",
        "jain",
        "preempts",
    ]);
    for config in [FabricConfig::BaselineMesh, FabricConfig::FredD] {
        let backend = FabricBackend::new(config);
        opts.name_links(&backend.topology());
        for (li, load) in LOADS.iter().enumerate() {
            let rate = load * slots / mean_work;
            // Same per-load seed for both fabrics: identical traces.
            let jobs =
                poisson_arrivals(&templates, rate, JOBS, DEFAULT_CLASS_MIX, SEED + li as u64);
            let report = run_cluster_traced(&ClusterConfig::new(config), jobs, opts.sink())
                .unwrap_or_else(|e| {
                    panic!("{} at load {load}: cluster run failed: {e}", config.name())
                });
            let util = report.utilization();
            let p99_q = report.queueing_delay_secs(0.99);
            let p99_s = report.stretch(0.99);
            let mean_s = report.mean_stretch();
            let jain = report.jain_fairness();
            table.row(vec![
                config.name().into(),
                format!("{:.0}%", load * 100.0),
                format!("{}", report.records.len()),
                format!("{:.1}%", util * 100.0),
                fmt_secs(p99_q),
                format!("{p99_s:.2}x"),
                format!("{mean_s:.2}x"),
                format!("{jain:.3}"),
                format!("{}", report.preemptions),
            ]);
            let pct = (load * 100.0) as u64;
            opts.metric(format!("{}/load{pct}/utilization", config.name()), util);
            opts.metric(format!("{}/load{pct}/p99_queue_secs", config.name()), p99_q);
            opts.metric(format!("{}/load{pct}/p99_stretch", config.name()), p99_s);
            opts.metric(format!("{}/load{pct}/mean_stretch", config.name()), mean_s);
            opts.metric(format!("{}/load{pct}/jain", config.name()), jain);
            opts.metric(
                format!("{}/load{pct}/preemptions", config.name()),
                report.preemptions as f64,
            );
        }
    }
    table.print("Cluster sweep — Poisson arrivals, identical traces per load, 20-NPU wafer");
    println!(
        "\nSelf-check passed: a cluster of one High-class job is bit-identical to the \
         standalone trainer on both fabrics. Load is calibrated in NPU-seconds against \
         Fred-D solo makespans; the mesh sees the same arrival stream."
    );
    opts.finish();
}

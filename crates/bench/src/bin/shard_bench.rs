//! Sharded-simulator scaling study: tile-local churn on the
//! [`ShardedNetwork`](fred_sim::shard::ShardedNetwork) across worker
//! thread counts.
//!
//! Two configurations from [`SHARD_SWEEP`] — 1 024 and 4 096 NPUs over
//! a 4×4 tile grid — each run once on the single-core reference engine
//! and then sharded at 1/2/4/8 worker threads (or only at
//! `--threads N` when given). Two things come out of every row:
//!
//! 1. **A determinism proof, hard-asserted.** Makespan and the
//!    tag-ordered completion checksum must be *bit-identical* across
//!    the reference engine and every thread count. A single flipped
//!    bit aborts the binary — this is the sharded core's contract, not
//!    a tolerance check.
//! 2. **A throughput measurement, reported.** `events_per_sec` per
//!    thread count, plus the speedup over the single-thread row. The
//!    speedup is printed and recorded but *not* asserted: it depends
//!    on the host's core count (CI containers are often pinned to one
//!    CPU, where extra threads can only add overhead), whereas the
//!    bit-identity above must hold anywhere.
//!
//! Report keys (`--report`): `shard/<npus>/t<k>/events_per_sec`,
//! `shard/<npus>/makespan_ms`, `shard/<npus>/checksum_secs`,
//! `shard/<npus>/speedup_t4`.
//!
//! Snapshot modes (exclusive with the sweep, on the headline
//! [`SHARD_SWEEP[0]`] configuration):
//!
//! * `--snapshot-at <secs>` — run to the capture point, write the
//!   state to `shard_bench.snapshot.bin`, continue to completion,
//!   then reload the file, resume at the same thread count and
//!   hard-assert the resumed run is bit-identical;
//! * `--restore <path>` — load a snapshot, resume to completion and
//!   hard-assert bit-identity against the uninterrupted reference.

use std::path::Path;

use fred_bench::churn::{
    resume_churn_sharded, run_churn_sharded, run_churn_sharded_reference,
    run_churn_sharded_resumable, run_churn_sharded_traced, shard_churn_mesh, ShardChurnState,
    SHARD_SWEEP,
};
use fred_bench::table::Table;
use fred_bench::traceopt::TraceOpts;
use fred_core::codec::SnapshotError;
use fred_core::snapshot::SimState;

/// Section name carrying the churn state inside the snapshot file.
const SECTION: &str = "shard_churn";

fn read_snapshot(path: &Path) -> Result<ShardChurnState, SnapshotError> {
    ShardChurnState::from_value(SimState::read_binary(path)?.section(SECTION)?)
}

fn main() {
    let mut opts = TraceOpts::from_args("shard_bench");
    if let Some(path) = opts.restore_path() {
        let cfg = &SHARD_SWEEP[0];
        let threads = opts.threads().max(1);
        let state = read_snapshot(path).unwrap_or_else(|e| {
            eprintln!("shard_bench: cannot restore {}: {e}", path.display());
            std::process::exit(1);
        });
        let reference = run_churn_sharded_reference(cfg);
        let resumed = resume_churn_sharded(cfg, threads, state);
        assert_eq!(
            resumed.makespan_secs.to_bits(),
            reference.makespan_secs.to_bits(),
            "RESUME VIOLATION: restored makespan diverged from the uninterrupted run"
        );
        assert_eq!(
            resumed.completion_checksum.to_bits(),
            reference.completion_checksum.to_bits(),
            "RESUME VIOLATION: restored checksum diverged from the uninterrupted run"
        );
        println!(
            "shard_bench: resumed {} at {threads} thread(s); makespan {:.3} ms and \
             checksum bit-identical to the uninterrupted run",
            path.display(),
            resumed.makespan_secs * 1e3
        );
        return;
    }
    if let Some(at) = opts.snapshot_at() {
        let cfg = &SHARD_SWEEP[0];
        let threads = opts.threads().max(1);
        let (full, captured) = run_churn_sharded_resumable(cfg, threads, Some(at));
        let state = captured.unwrap_or_else(|| {
            eprintln!(
                "shard_bench: --snapshot-at {at} is past the end of the run \
                 ({:.6} s)",
                full.makespan_secs
            );
            std::process::exit(1);
        });
        let path = Path::new("shard_bench.snapshot.bin");
        let mut sim = SimState::new();
        sim.insert(SECTION, state.to_value());
        sim.write_binary(path)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        let reread = read_snapshot(path)
            .unwrap_or_else(|e| panic!("snapshot file failed to round-trip: {e}"));
        let resumed = resume_churn_sharded(cfg, threads, reread);
        assert_eq!(
            resumed.makespan_secs.to_bits(),
            full.makespan_secs.to_bits(),
            "RESUME VIOLATION: snapshot round-trip diverged on makespan"
        );
        assert_eq!(
            resumed.completion_checksum.to_bits(),
            full.completion_checksum.to_bits(),
            "RESUME VIOLATION: snapshot round-trip diverged on checksum"
        );
        println!(
            "shard_bench: captured at {at} s into {} and verified the resumed run \
             bit-identical (makespan {:.3} ms)",
            path.display(),
            full.makespan_secs * 1e3
        );
        return;
    }
    let thread_counts: Vec<usize> = if opts.threads() > 0 {
        vec![opts.threads()]
    } else {
        vec![1, 2, 4, 8]
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut table = Table::new(vec![
        "NPUs",
        "shards",
        "flows",
        "threads",
        "makespan (ms)",
        "wall (s)",
        "events/s",
        "speedup",
    ]);
    for cfg in &SHARD_SWEEP {
        let npus = cfg.npus();
        let reference = run_churn_sharded_reference(cfg);
        opts.metric(
            format!("shard/{npus}/makespan_ms"),
            reference.makespan_secs * 1e3,
        );
        opts.metric(
            format!("shard/{npus}/checksum_secs"),
            reference.completion_checksum,
        );
        let mut base_eps = None;
        for &threads in &thread_counts {
            let r = run_churn_sharded(cfg, threads);
            assert_eq!(
                r.makespan_secs.to_bits(),
                reference.makespan_secs.to_bits(),
                "DETERMINISM VIOLATION: sharded makespan diverged from the \
                 reference engine at {npus} NPUs, threads={threads}"
            );
            assert_eq!(
                r.completion_checksum.to_bits(),
                reference.completion_checksum.to_bits(),
                "DETERMINISM VIOLATION: completion checksum diverged from the \
                 reference engine at {npus} NPUs, threads={threads}"
            );
            let eps = r.events_per_sec();
            let base = *base_eps.get_or_insert(eps);
            let speedup = eps / base;
            opts.metric(format!("shard/{npus}/t{threads}/events_per_sec"), eps);
            if threads == 4 {
                opts.metric(format!("shard/{npus}/speedup_t4"), speedup);
            }
            table.row(vec![
                npus.to_string(),
                cfg.shards().to_string(),
                cfg.total_flows().to_string(),
                threads.to_string(),
                format!("{:.3}", r.makespan_secs * 1e3),
                format!("{:.3}", r.wall_secs),
                format!("{eps:.0}"),
                format!("{speedup:.2}x"),
            ]);
        }
    }
    // When recording was requested, replay the smallest configuration
    // once through the telemetry sink (the timed rows above stay on
    // the zero-overhead untraced path). Tracing is observation only:
    // the traced run must still match the reference bit for bit.
    if opts.enabled() {
        let cfg = &SHARD_SWEEP[0];
        opts.name_links(&shard_churn_mesh(cfg).clone_topology());
        let reference = run_churn_sharded_reference(cfg);
        let traced = run_churn_sharded_traced(cfg, thread_counts[0], opts.sink());
        assert_eq!(
            traced.makespan_secs.to_bits(),
            reference.makespan_secs.to_bits(),
            "tracing changed the sharded simulation"
        );
        assert_eq!(
            traced.completion_checksum.to_bits(),
            reference.completion_checksum.to_bits(),
            "tracing changed the sharded simulation"
        );
    }

    table.print(&format!(
        "shard_bench — tile-local churn, sharded vs reference (host has \
         {host_cores} CPU core{})",
        if host_cores == 1 { "" } else { "s" }
    ));
    println!(
        "\nreading: every row is bit-identical to the single-core reference \
         (hard-asserted above); speedup is host-dependent — with the workload \
         split over 16 link-disjoint shards the engine scales with available \
         cores, and on a 1-core host the threads>1 rows only measure barrier \
         overhead."
    );
    opts.finish();
}

//! Figure 11 — Baseline vs Fred-D across parallelization strategies.
//!
//! Sweeps strategies for Transformer-17B (a) and Transformer-1T (b)
//! with minibatch = DP × 40 and the footnote-6 microbatch counts,
//! reporting per-sample totals, the average speedup, and the average
//! exposed-communication improvement.
//!
//! Paper reference: averaged across strategies Fred-D cuts exposed
//! communication 4.22× / 3.92× and speeds training 1.63× / 1.44× for
//! Transformer-17B / Transformer-1T; under Fred-D the most
//! compute-efficient strategy also becomes the fastest end-to-end.

use fred_bench::table::Table;
use fred_bench::traceopt::TraceOpts;
use fred_core::params::FabricConfig;
use fred_core::placement::Strategy3D;
use fred_workloads::backend::FabricBackend;
use fred_workloads::model::DnnModel;
use fred_workloads::report::TrainingReport;
use fred_workloads::schedule::ScheduleParams;
use fred_workloads::trainer::simulate_traced;

fn strategies_17b() -> Vec<Strategy3D> {
    vec![
        Strategy3D::new(20, 1, 1),
        Strategy3D::new(10, 2, 1),
        Strategy3D::new(5, 4, 1),
        Strategy3D::new(5, 2, 2),
        Strategy3D::new(4, 5, 1),
        Strategy3D::new(2, 5, 2),
        Strategy3D::new(2, 2, 5),
        Strategy3D::new(1, 20, 1),
    ]
}

fn strategies_1t() -> Vec<Strategy3D> {
    vec![
        Strategy3D::new(20, 1, 1),
        Strategy3D::new(10, 1, 2),
        Strategy3D::new(5, 1, 4),
        Strategy3D::new(5, 4, 1),
        Strategy3D::new(4, 1, 5),
        Strategy3D::new(2, 5, 2),
        Strategy3D::new(1, 20, 1),
    ]
}

fn sweep(model: &DnnModel, strategies: &[Strategy3D], opts: &mut TraceOpts) {
    let baseline = FabricBackend::new(FabricConfig::BaselineMesh);
    let fred_d = FabricBackend::new(FabricConfig::FredD);
    // With both fabrics in one trace, link counters take Fred-D's names.
    opts.name_links(&fred_d.topology());
    let mut table = Table::new(vec![
        "strategy",
        "base total/sample (ms)",
        "fredD total/sample (ms)",
        "speedup",
        "base exposed (ms)",
        "fredD exposed (ms)",
        "exposed gain",
    ]);
    let mut speedups = Vec::new();
    let mut exposed_gains = Vec::new();
    let mut best_base: Option<(f64, String)> = None;
    let mut best_fred: Option<(f64, String)> = None;
    let mut best_compute: Option<(f64, String)> = None;
    for &s in strategies {
        let params = ScheduleParams::sweep_default(model, s);
        let rb: TrainingReport = simulate_traced(model, s, &baseline, params, opts.sink()).unwrap();
        let rf: TrainingReport = simulate_traced(model, s, &fred_d, params, opts.sink()).unwrap();
        let per = 1e3 / params.minibatch as f64;
        let (bt, ft) = (rb.total.as_secs() * per, rf.total.as_secs() * per);
        let (be, fe) = (
            rb.exposed_total().as_secs() * per,
            rf.exposed_total().as_secs() * per,
        );
        let speedup = bt / ft;
        let gain = if fe > 0.0 { be / fe } else { f64::INFINITY };
        opts.metric(format!("{}/{s}/base_ms_per_sample", model.name), bt);
        opts.metric(format!("{}/{s}/fredd_ms_per_sample", model.name), ft);
        speedups.push(speedup);
        exposed_gains.push(gain.min(50.0));
        let label = s.to_string();
        let cmp = rb.compute.as_secs() * per;
        if best_base.as_ref().is_none_or(|(t, _)| bt < *t) {
            best_base = Some((bt, label.clone()));
        }
        if best_fred.as_ref().is_none_or(|(t, _)| ft < *t) {
            best_fred = Some((ft, label.clone()));
        }
        if best_compute.as_ref().is_none_or(|(t, _)| cmp < *t) {
            best_compute = Some((cmp, label.clone()));
        }
        table.row(vec![
            label,
            format!("{bt:.3}"),
            format!("{ft:.3}"),
            format!("{speedup:.2}x"),
            format!("{be:.3}"),
            format!("{fe:.3}"),
            format!("{gain:.2}x"),
        ]);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    opts.metric(format!("{}/avg_speedup", model.name), avg(&speedups));
    opts.metric(
        format!("{}/avg_exposed_gain", model.name),
        avg(&exposed_gains),
    );
    table.row(vec![
        "Avg".into(),
        String::new(),
        String::new(),
        format!("{:.2}x", avg(&speedups)),
        String::new(),
        String::new(),
        format!("{:.2}x", avg(&exposed_gains)),
    ]);
    table.print(&format!(
        "Fig 11 — {} (baseline vs Fred-D, per-sample)",
        model.name
    ));
    let (_, compute_best) = best_compute.unwrap();
    let (_, base_best) = best_base.unwrap();
    let (_, fred_best) = best_fred.unwrap();
    println!("most compute-efficient strategy: {compute_best}");
    println!("best end-to-end on baseline:     {base_best}");
    println!("best end-to-end on Fred-D:       {fred_best}");
}

fn main() {
    let mut opts = TraceOpts::from_args("fig11");
    sweep(&DnnModel::transformer_17b(), &strategies_17b(), &mut opts);
    sweep(&DnnModel::transformer_1t(), &strategies_1t(), &mut opts);
    println!(
        "\npaper reference: avg speedup 1.63x (17B) / 1.44x (1T); avg exposed-comm \
         improvement 4.22x / 3.92x; the most compute-efficient strategy becomes \
         the best end-to-end under Fred-D"
    );
    opts.finish();
}

//! Table 4 — FRED hardware overhead, plus the §6.2.3 I/O-density sweep.
//!
//! Closed-form hardware-model tables: no simulation runs, so `--trace`
//! / `--metrics` / `--dashboard` outputs are empty, but `--report`
//! carries every printed number as a `sim.*` leaf for `bench-diff`.

use fred_bench::table::Table;
use fred_bench::traceopt::TraceOpts;
use fred_core::params::PhysicalParams;
use fred_hwmodel::area::{
    area_scale_at_density, table4_inventory, total_switch_area, BASE_IO_DENSITY,
};
use fred_hwmodel::power::{table4_power_total, total_switch_power, TABLE4_WIRING_POWER};
use fred_hwmodel::wafer::WaferBudget;

fn main() {
    let mut opts = TraceOpts::from_args("table4");
    let inv = table4_inventory();
    let mut t = Table::new(vec![
        "component",
        "count",
        "area (mm^2)",
        "power (W)",
        "uSwitches",
    ]);
    for c in &inv {
        t.row(vec![
            c.name.clone(),
            c.count.to_string(),
            format!("{:.0}", c.area_mm2),
            format!("{:.2}", c.power_w),
            c.interconnect().stats().micro_switches.to_string(),
        ]);
    }
    t.row(vec![
        "Additional Wafer-Scale Wiring".into(),
        "-".into(),
        "-".into(),
        format!("{TABLE4_WIRING_POWER:.0}"),
        "-".into(),
    ]);
    t.row(vec![
        "Total".into(),
        "-".into(),
        format!("{:.0}", total_switch_area(&inv)),
        format!("{:.2}", table4_power_total(&inv)),
        "-".into(),
    ]);
    t.print("Table 4 — HW overhead of the Fred implementation (Fig 8b)");
    println!(
        "switch power alone: {:.2} W; total {:.2} W = {:.2}% of the 15 kW budget \
         (paper: ~1.2%)",
        total_switch_power(&inv),
        table4_power_total(&inv),
        100.0 * table4_power_total(&inv) / PhysicalParams::paper().wafer_power_budget
    );

    let b = WaferBudget::paper_fred();
    println!(
        "\nwafer budget: power {:.0}/{:.0} W, area {:.0}/{:.0} mm^2 (unclaimed {:.0} mm^2)",
        b.total_power(),
        b.power_budget,
        b.total_area(),
        b.area_budget,
        b.unclaimed_area()
    );

    opts.metric("total_switch_area_mm2", total_switch_area(&inv));
    opts.metric("total_power_w", table4_power_total(&inv));
    opts.metric("switch_power_w", total_switch_power(&inv));
    opts.metric(
        "power_budget_pct",
        100.0 * table4_power_total(&inv) / PhysicalParams::paper().wafer_power_budget,
    );
    opts.metric("wafer_total_power_w", b.total_power());
    opts.metric("wafer_total_area_mm2", b.total_area());
    opts.metric("wafer_unclaimed_area_mm2", b.unclaimed_area());

    // §6.2.3 discussion: switch area vs I/O escape density.
    let mut t = Table::new(vec!["I/O density (GB/s/mm)", "relative switch area"]);
    for d in [BASE_IO_DENSITY, 250e9, 500e9, 1e12] {
        t.row(vec![
            format!("{:.1}", d / 1e9),
            format!("{:.1}%", 100.0 * area_scale_at_density(d)),
        ]);
        opts.metric(
            format!("area_scale_pct/{:.0}GBps_mm", d / 1e9),
            100.0 * area_scale_at_density(d),
        );
    }
    t.print("§6.2.3 — switch area vs I/O density (paper: 18.4% @250, ~5% @UCIe-A)");
    opts.finish();
}

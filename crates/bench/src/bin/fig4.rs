//! Figure 4 / §3.2.1 — the mesh I/O streaming hotspot.
//!
//! Three views of the same law:
//!
//! 1. closed-form: hotspot multiplier (2N − 1) and required link
//!    bandwidth per mesh width;
//! 2. empirical: per-link load counted from the concrete broadcast
//!    trees on the constructed mesh;
//! 3. simulated: achieved line-rate fraction when all 18 channels of
//!    the 5×4 baseline stream concurrently (expected ≈ 0.65).

use fred_bench::table::{fmt_bw, Table};
use fred_bench::traceopt::TraceOpts;
use fred_hwmodel::iohotspot;
use fred_mesh::streaming;
use fred_mesh::topology::MeshFabric;
use fred_sim::flow::Priority;
use fred_sim::netsim::FlowNetwork;

fn main() {
    let mut opts = TraceOpts::from_args("fig4");
    // 1. Closed-form sweep.
    let mut t = Table::new(vec![
        "mesh width N",
        "hotspot (x P)",
        "required link BW",
        "line-rate fraction @750GB/s",
    ]);
    for row in iohotspot::hotspot_sweep(&[3, 4, 5, 6, 8, 12, 16], 128e9, 750e9) {
        t.row(vec![
            row.cols.to_string(),
            format!("{}", row.multiplier),
            fmt_bw(row.required_bw),
            format!("{:.2}", row.linerate_fraction),
        ]);
    }
    t.print("Fig 4 — closed-form hotspot law ((2N-1)·P, 128 GB/s channels)");

    // 2. Empirical tree loads on concrete meshes.
    let mut t = Table::new(vec![
        "mesh",
        "max simultaneous channel load",
        "closed form 2N-1",
    ]);
    for (c, r) in [(4usize, 4usize), (5, 4), (6, 6), (8, 8)] {
        let mesh = MeshFabric::new(c, r, 750e9, 128e9, 20e-9);
        t.row(vec![
            format!("{c}x{r}"),
            streaming::hotspot_factor(&mesh).to_string(),
            (2 * c.max(r) - 1).to_string(),
        ]);
    }
    t.print("Fig 4(B) — empirical per-link loads of the broadcast trees");

    // 3. Simulated concurrent streaming on the paper baseline.
    let mesh = MeshFabric::paper_baseline();
    opts.name_links(&mesh.clone_topology());
    let mut net = FlowNetwork::with_sink(mesh.clone_topology(), opts.sink());
    let bytes = 128e9; // one second at channel line rate
    for io in 0..mesh.io_count() {
        for f in streaming::streaming_in_flows(&mesh, io, bytes, Priority::Bulk, io as u64) {
            net.inject(f)
                .expect("streaming flows route on a healthy mesh");
        }
    }
    let done = net.run_to_completion();
    let t_end = done
        .iter()
        .map(|c| c.completed_at.as_secs())
        .fold(0.0, f64::max);
    opts.metric("baseline_line_rate_fraction", 1.0 / t_end);
    println!(
        "\nsimulated 18-channel concurrent streaming on the 5x4 baseline: \
         line-rate fraction {:.3} (paper: 750/1152 = 0.651)",
        1.0 / t_end
    );
    opts.finish();
}

//! §8.3 extension — beyond 3D parallelism: Expert Parallelism.
//!
//! EP's signature pattern is All-to-All (expert dispatch/combine). The
//! paper argues qualitatively that extra parallelism dimensions squeeze
//! the mesh's per-dimension bandwidth further while FRED stays flexible.
//! This experiment measures concurrent All-to-Alls among EP groups of
//! varying counts/sizes on every Table 5 fabric.

use fred_bench::table::{fmt_bw, Table};
use fred_bench::traceopt::TraceOpts;
use fred_collectives::hierarchical::merge_concurrent;
use fred_core::params::FabricConfig;
use fred_sim::netsim::FlowNetwork;
use fred_workloads::backend::FabricBackend;

fn main() {
    let mut opts = TraceOpts::from_args("ep_alltoall");
    let bytes = 1e9;
    let mut table = Table::new(vec!["EP layout", "config", "time (ms)", "effective NPU BW"]);
    // (groups, members) layouts covering 20 NPUs.
    for (groups, members) in [(1usize, 20usize), (2, 10), (4, 5), (5, 4), (10, 2)] {
        for config in FabricConfig::ALL {
            let backend = FabricBackend::new(config);
            opts.name_links(&backend.topology());
            let plans = (0..groups)
                .map(|g| {
                    let slots: Vec<usize> = (0..members).map(|m| g * members + m).collect();
                    let phys = backend.physical_group(&slots);
                    backend.all_to_all(&phys, bytes)
                })
                .collect();
            let merged = merge_concurrent("ep", plans);
            let mut net = FlowNetwork::with_sink(backend.topology(), opts.sink());
            let secs = merged
                .execute(&mut net, fred_sim::flow::Priority::Mp)
                .expect("benchmark plans run on a healthy fabric")
                .as_secs();
            // All-to-All traffic per NPU: (n-1)/n * D.
            let per_npu = (members as f64 - 1.0) / members as f64 * bytes;
            opts.metric(
                format!("{groups}xEP{members}/{}/ms", config.name()),
                secs * 1e3,
            );
            table.row(vec![
                format!("{groups} x EP({members})"),
                config.name().into(),
                format!("{:.3}", secs * 1e3),
                fmt_bw(per_npu / secs),
            ]);
        }
    }
    table.print("§8.3 — concurrent EP All-to-Alls (1 GB per NPU pairset)");
    println!(
        "\nreading: All-to-All has no reduction for in-switch execution to \
         exploit, so Fred-B/D match Fred-A/C — the win over the mesh comes \
         entirely from the nonblocking topology (§5.3 option 3 territory)."
    );
    opts.finish();
}

//! Figure 7(h–j) — routing walkthrough and colouring ablation.
//!
//! 1. Routes the paper's Fig 7(h) example (two concurrent All-Reduces
//!    on Fred₂(8)) and reports the in-fabric reduction/distribution
//!    activity;
//! 2. demonstrates the Fig 7(j) routing conflict on m = 2 and its
//!    resolution by m = 3 (§5.3 option 2);
//! 3. ablation: exact (DSATUR + backtracking) vs greedy colouring over
//!    randomly generated concurrent-flow sets — counting the routings
//!    that only the exact solver finds.

use fred_bench::traceopt::TraceOpts;
use fred_core::conflict::ConflictGraph;
use fred_core::flow::{validate_phase, Flow};
use fred_core::interconnect::Interconnect;
use fred_core::routing::route_flows;
use fred_sim::rng::Rng64;

fn main() {
    // No flow-level simulation here, but --report still captures the
    // routing/colouring counters as regression metrics.
    let mut opts = TraceOpts::from_args("fig7_routing");
    // 1. Fig 7(h).
    let fred2_8 = Interconnect::new(2, 8).unwrap();
    let flows = vec![
        Flow::all_reduce([0usize, 1, 2]).unwrap(),
        Flow::all_reduce([3usize, 4, 5]).unwrap(),
    ];
    let routed = route_flows(&fred2_8, &flows).unwrap();
    routed.verify(&flows).unwrap();
    println!("Fig 7(h): two concurrent All-Reduces on Fred2(8) routed and verified");
    println!("  in-fabric reductions:    {}", routed.reduction_count());
    println!("  in-fabric distributions: {}", routed.distribution_count());
    println!("  active units:            {}", routed.active_unit_count());
    opts.metric("fig7h/reductions", routed.reduction_count() as f64);
    opts.metric("fig7h/distributions", routed.distribution_count() as f64);
    opts.metric("fig7h/active_units", routed.active_unit_count() as f64);

    // 2. Fig 7(j)-style conflict.
    let conflicting = vec![
        Flow::all_reduce([0usize, 2]).unwrap(),
        Flow::all_reduce([3usize, 4]).unwrap(),
        Flow::all_reduce([1usize, 5]).unwrap(),
        Flow::all_reduce([6usize, 7]).unwrap(),
    ];
    match route_flows(&fred2_8, &conflicting) {
        Err(e) => println!("\nFig 7(j): on m=2 -> {e}"),
        Ok(_) => println!("\nFig 7(j): unexpectedly routed on m=2"),
    }
    let fred3_8 = Interconnect::new(3, 8).unwrap();
    let routed = route_flows(&fred3_8, &conflicting).unwrap();
    routed.verify(&conflicting).unwrap();
    println!("Fig 7(j): resolved on Fred3(8) (footnote 3) and verified");

    // 3. Exact-vs-greedy colouring ablation.
    let mut rng = Rng64::seed_from_u64(7);
    let trials = 2000;
    let ports = 16;
    let mut exact_only = 0;
    let mut both = 0;
    let mut neither = 0;
    for _ in 0..trials {
        // Random disjoint groups of 2-4 ports.
        let mut perm: Vec<usize> = (0..ports).collect();
        rng.shuffle(&mut perm);
        let mut flows = Vec::new();
        let mut at = 0;
        while at + 2 <= ports {
            let len = rng.gen_range_inclusive(2, 4.min(ports - at));
            flows.push(Flow::all_reduce(perm[at..at + len].iter().copied()).unwrap());
            at += len;
            if rng.gen_bool(0.3) {
                break;
            }
        }
        if validate_phase(&flows, ports).is_err() {
            continue;
        }
        let net = Interconnect::new(2, ports).unwrap();
        let graph = ConflictGraph::from_flows(&flows, |p| net.unit_of_port(p));
        let exact = graph.color(2).is_some();
        let greedy = graph.greedy_color(2).is_some();
        match (exact, greedy) {
            (true, true) => both += 1,
            (true, false) => exact_only += 1,
            (false, false) => neither += 1,
            (false, true) => unreachable!("greedy cannot beat exact"),
        }
    }
    println!(
        "\ncolouring ablation over {trials} random flow sets on Fred2(16):\n  \
         both colour: {both}\n  exact only:  {exact_only}\n  conflict:    {neither}"
    );
    println!(
        "(the exact solver is what makes \"routing conflict\" mean true \
         uncolourability, Fig 7i-j)"
    );
    opts.metric("ablation/both_colour", both as f64);
    opts.metric("ablation/exact_only", exact_only as f64);
    opts.metric("ablation/conflict", neither as f64);
    opts.finish();
}

//! Randomized flow-churn workload over a wafer-scale mesh.
//!
//! The solver-bound stress used by the `scaling` third section and the
//! `solver_bench` binary: a fixed population of mostly-local transfers
//! is kept at a target concurrency over an N×N mesh, so every
//! completion immediately admits a replacement. Each completion and
//! each injection changes the active-flow set, making the fair-share
//! allocator — not flow arithmetic — the dominant cost. Traffic is
//! local (bounded Chebyshev distance), so rate changes stay confined
//! to a small neighbourhood of the fabric; this is the regime where an
//! incremental solver beats from-scratch progressive filling.
//!
//! All randomness comes from [`fred_sim::rng::Rng64`], so a (config,
//! seed) pair is a fully deterministic workload: makespan and the
//! completion-time checksum are exact regression surfaces, while the
//! wall clock and events/s measure simulator throughput.

use std::rc::Rc;
use std::time::Instant;

use fred_mesh::topology::MeshFabric;
use fred_sim::flow::{FlowSpec, Priority};
use fred_sim::netsim::{CompletedFlow, FlowNetwork};
use fred_sim::rng::Rng64;
use fred_sim::shard::{ShardDriver, ShardedNetwork};
use fred_telemetry::sink::TraceSink;

/// One churn configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Mesh side (NPUs = side × side).
    pub side: usize,
    /// Total flows pushed through the network.
    pub flows: usize,
    /// Target number of concurrently active flows.
    pub concurrency: usize,
    /// Maximum Chebyshev distance between a flow's endpoints.
    pub locality: usize,
    /// RNG seed; equal seeds give identical workloads.
    pub seed: u64,
    /// Override for the solver's global-refill threshold
    /// ([`FlowNetwork::set_refill_fraction`]); `None` keeps the
    /// default. `Some(0.0)` forces a from-scratch refill on every set
    /// change — the pre-incremental baseline `solver_bench` compares
    /// against.
    pub refill_fraction: Option<f64>,
}

impl ChurnConfig {
    /// NPUs in the mesh.
    pub fn npus(&self) -> usize {
        self.side * self.side
    }
}

/// Deterministic results plus throughput measurements of one churn run.
#[derive(Debug, Clone, Copy)]
pub struct ChurnResult {
    /// Simulated end-to-end time (deterministic).
    pub makespan_secs: f64,
    /// Sum of all completion times (deterministic; a cheap whole-run
    /// checksum for `bench-diff`).
    pub completion_checksum: f64,
    /// Flow lifecycle events processed: injections + drains +
    /// completions (deterministic).
    pub events: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_secs: f64,
}

impl ChurnResult {
    /// Lifecycle events per wall-clock second — the simulator
    /// throughput headline.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(f64::MIN_POSITIVE)
    }
}

/// Draws the next transfer: a source NPU and a destination within
/// `locality` Chebyshev distance (never equal to the source), with a
/// payload in [1, 17) MB and a priority cycling over MP/DP/Bulk.
fn draw_flow(mesh: &MeshFabric, cfg: &ChurnConfig, rng: &mut Rng64, seq: usize) -> FlowSpec {
    let side = cfg.side;
    let src = rng.gen_range(0, side * side);
    let (sx, sy) = mesh.coords(src);
    let reach = cfg.locality.max(1);
    let dst = loop {
        let dx = rng.gen_range_inclusive(0, 2 * reach) as isize - reach as isize;
        let dy = rng.gen_range_inclusive(0, 2 * reach) as isize - reach as isize;
        let x = (sx as isize + dx).clamp(0, side as isize - 1) as usize;
        let y = (sy as isize + dy).clamp(0, side as isize - 1) as usize;
        let d = mesh.npu_at(x, y);
        if d != src {
            break d;
        }
    };
    let bytes = 1e6 + rng.gen_f64() * 16e6;
    let priority = match seq % 3 {
        0 => Priority::Mp,
        1 => Priority::Dp,
        _ => Priority::Bulk,
    };
    FlowSpec::new(mesh.xy_route(src, dst), bytes).with_priority(priority)
}

/// Runs one churn configuration to completion on a fresh mesh network.
///
/// # Panics
///
/// Panics if the simulation stalls (an engine bug, not a workload
/// property).
pub fn run_churn(cfg: &ChurnConfig) -> ChurnResult {
    let mesh = MeshFabric::new(cfg.side, cfg.side, 750e9, 128e9, 20e-9);
    let mut rng = Rng64::seed_from_u64(cfg.seed);
    let mut net = FlowNetwork::new(mesh.clone_topology());
    if let Some(f) = cfg.refill_fraction {
        net.set_refill_fraction(f);
    }

    let started = Instant::now();
    let initial = cfg.concurrency.min(cfg.flows);
    let mut drawn = 0usize;
    let first: Vec<FlowSpec> = (0..initial)
        .map(|_| {
            drawn += 1;
            draw_flow(&mesh, cfg, &mut rng, drawn - 1)
        })
        .collect();
    net.inject_batch(first)
        .expect("churn draws XY routes on a healthy mesh; injection cannot fail");

    let mut completed = 0usize;
    let mut checksum = 0.0_f64;
    while completed < cfg.flows {
        let te = net
            .next_event()
            .expect("churn stalled: flows outstanding but no pending event");
        net.advance_to(te);
        let done = net.drain_completed();
        if done.is_empty() {
            continue;
        }
        completed += done.len();
        for c in &done {
            checksum += c.completed_at.as_secs();
        }
        // Refill to the target concurrency, one batch per timestep.
        let refill = done.len().min(cfg.flows - drawn);
        if refill > 0 {
            let batch: Vec<FlowSpec> = (0..refill)
                .map(|_| {
                    drawn += 1;
                    draw_flow(&mesh, cfg, &mut rng, drawn - 1)
                })
                .collect();
            net.inject_batch(batch)
                .expect("churn draws XY routes on a healthy mesh; injection cannot fail");
        }
    }
    ChurnResult {
        makespan_secs: net.now().as_secs(),
        completion_checksum: checksum,
        // inject + drain + complete per flow.
        events: 3 * cfg.flows as u64,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// The `scaling` binary's churn sweep: 256 / 1 024 / 4 096 NPUs, the
/// largest being the acceptance gate for solver throughput.
pub const SCALING_SWEEP: [ChurnConfig; 3] = [
    ChurnConfig {
        side: 16,
        flows: 2048,
        concurrency: 128,
        locality: 4,
        seed: 0xC0FF_EE01,
        refill_fraction: None,
    },
    ChurnConfig {
        side: 32,
        flows: 6144,
        concurrency: 256,
        locality: 4,
        seed: 0xC0FF_EE02,
        refill_fraction: None,
    },
    ChurnConfig {
        side: 64,
        flows: 12288,
        concurrency: 256,
        locality: 4,
        seed: 0xC0FF_EE03,
        refill_fraction: None,
    },
];

/// Tile-local churn for the sharded simulator: every tile of a
/// `tiles × tiles` grid runs its own independent churn (endpoints
/// drawn inside the tile, XY routes never leave it), so the workload
/// exercises [`ShardedNetwork`]'s parallel path without ever fusing.
/// This is the traffic shape the paper's placement produces — MP/PP
/// groups are contiguous tiles — and the headline configuration for
/// `shard_bench`.
#[derive(Debug, Clone, Copy)]
pub struct ShardChurnConfig {
    /// Mesh side (NPUs = side × side).
    pub side: usize,
    /// Tile grid side (shards = tiles × tiles). Must divide `side`.
    pub tiles: usize,
    /// Flows pushed through each tile.
    pub flows_per_tile: usize,
    /// Target concurrently-active flows per tile.
    pub concurrency_per_tile: usize,
    /// Maximum Chebyshev distance between a flow's endpoints (clamped
    /// to the tile).
    pub locality: usize,
    /// Master seed; per-tile streams are split from it in tile order.
    pub seed: u64,
}

impl ShardChurnConfig {
    /// NPUs in the mesh.
    pub fn npus(&self) -> usize {
        self.side * self.side
    }

    /// Shards in the partition.
    pub fn shards(&self) -> usize {
        self.tiles * self.tiles
    }

    /// Total flows across all tiles.
    pub fn total_flows(&self) -> usize {
        self.shards() * self.flows_per_tile
    }

    fn tile_side(&self) -> usize {
        assert_eq!(
            self.side % self.tiles,
            0,
            "tile grid {t} must divide mesh side {s}",
            t = self.tiles,
            s = self.side
        );
        self.side / self.tiles
    }
}

/// Per-tile churn driver. Each instance owns an independent RNG stream
/// split deterministically from the master seed, so its draw sequence
/// depends only on its own completion count — never on other tiles or
/// on the thread count.
struct TileDriver<'a> {
    mesh: &'a MeshFabric,
    cfg: ShardChurnConfig,
    /// Tile origin in NPU coordinates.
    x0: usize,
    y0: usize,
    rng: Rng64,
    drawn: usize,
}

impl TileDriver<'_> {
    fn draw(&mut self, shard: usize) -> FlowSpec {
        let ts = self.cfg.tile_side();
        let src_x = self.x0 + self.rng.gen_range(0, ts);
        let src_y = self.y0 + self.rng.gen_range(0, ts);
        let src = self.mesh.npu_at(src_x, src_y);
        let reach = self.cfg.locality.max(1);
        let (lo_x, hi_x) = (self.x0, self.x0 + ts - 1);
        let (lo_y, hi_y) = (self.y0, self.y0 + ts - 1);
        let dst = loop {
            let dx = self.rng.gen_range_inclusive(0, 2 * reach) as isize - reach as isize;
            let dy = self.rng.gen_range_inclusive(0, 2 * reach) as isize - reach as isize;
            let x = (src_x as isize + dx).clamp(lo_x as isize, hi_x as isize) as usize;
            let y = (src_y as isize + dy).clamp(lo_y as isize, hi_y as isize) as usize;
            let d = self.mesh.npu_at(x, y);
            if d != src {
                break d;
            }
        };
        let bytes = 1e6 + self.rng.gen_f64() * 16e6;
        let priority = match self.drawn % 3 {
            0 => Priority::Mp,
            1 => Priority::Dp,
            _ => Priority::Bulk,
        };
        let tag = ((shard as u64) << 32) | self.drawn as u64;
        self.drawn += 1;
        FlowSpec::new(self.mesh.xy_route(src, dst), bytes)
            .with_priority(priority)
            .with_tag(tag)
    }

    fn refill(&mut self, shard: usize, want: usize, out: &mut Vec<FlowSpec>) {
        let left = self.cfg.flows_per_tile - self.drawn;
        for _ in 0..want.min(left) {
            out.push(self.draw(shard));
        }
    }
}

impl ShardDriver for TileDriver<'_> {
    fn begin(&mut self, shard: usize, out: &mut Vec<FlowSpec>) {
        self.refill(
            shard,
            self.cfg.concurrency_per_tile.min(self.cfg.flows_per_tile),
            out,
        );
    }

    fn on_completions(&mut self, shard: usize, done: &[CompletedFlow], out: &mut Vec<FlowSpec>) {
        self.refill(shard, done.len(), out);
    }
}

/// Builds the per-tile drivers for `cfg`, splitting the master RNG in
/// tile order (the determinism anchor shared by the sharded run and
/// the single-core reference).
fn tile_drivers<'a>(mesh: &'a MeshFabric, cfg: &ShardChurnConfig) -> Vec<TileDriver<'a>> {
    let ts = cfg.tile_side();
    let mut master = Rng64::seed_from_u64(cfg.seed);
    (0..cfg.shards())
        .map(|s| TileDriver {
            mesh,
            cfg: *cfg,
            x0: (s % cfg.tiles) * ts,
            y0: (s / cfg.tiles) * ts,
            rng: master.split(),
            drawn: 0,
        })
        .collect()
}

/// Completion-time checksum summed in tag order — identical bits no
/// matter which engine (or thread count) produced the completions.
fn tag_ordered_checksum(done: &[CompletedFlow]) -> f64 {
    let mut by_tag: Vec<(u64, f64)> = done
        .iter()
        .map(|c| (c.tag, c.completed_at.as_secs()))
        .collect();
    by_tag.sort_by_key(|&(tag, _)| tag);
    by_tag.iter().map(|&(_, t)| t).sum()
}

/// The mesh every sharded-churn run simulates (also what callers need
/// for `TraceOpts::name_links`).
pub fn shard_churn_mesh(cfg: &ShardChurnConfig) -> MeshFabric {
    MeshFabric::new(cfg.side, cfg.side, 750e9, 128e9, 20e-9)
}

/// Runs the tile-local churn on a [`ShardedNetwork`] with `threads`
/// workers. Deterministic contract: `makespan_secs` and
/// `completion_checksum` are bit-identical for every thread count and
/// to [`run_churn_sharded_reference`].
pub fn run_churn_sharded(cfg: &ShardChurnConfig, threads: usize) -> ChurnResult {
    let mesh = shard_churn_mesh(cfg);
    let part = mesh.tile_partition(cfg.tiles, cfg.tiles);
    let net = ShardedNetwork::new(mesh.clone_topology(), part, threads);
    run_churn_sharded_on(net, &mesh, cfg)
}

/// [`run_churn_sharded`] with telemetry recorded to `sink`. Kept
/// separate so the benchmark's timed rows stay on the zero-overhead
/// untraced path; tracing is observation only, so results remain
/// bit-identical to the untraced run.
pub fn run_churn_sharded_traced(
    cfg: &ShardChurnConfig,
    threads: usize,
    sink: Rc<dyn TraceSink>,
) -> ChurnResult {
    let mesh = shard_churn_mesh(cfg);
    let part = mesh.tile_partition(cfg.tiles, cfg.tiles);
    let net = ShardedNetwork::with_sink(mesh.clone_topology(), part, threads, sink);
    run_churn_sharded_on(net, &mesh, cfg)
}

fn run_churn_sharded_on(
    mut net: ShardedNetwork,
    mesh: &MeshFabric,
    cfg: &ShardChurnConfig,
) -> ChurnResult {
    let mut drivers = tile_drivers(mesh, cfg);
    let started = Instant::now();
    let done = net.run_sharded(&mut drivers);
    let wall = started.elapsed().as_secs_f64();
    assert_eq!(done.len(), cfg.total_flows(), "sharded churn lost flows");
    ChurnResult {
        makespan_secs: net.now().as_secs(),
        completion_checksum: tag_ordered_checksum(&done),
        events: 3 * cfg.total_flows() as u64,
        wall_secs: wall,
    }
}

// ---------------------------------------------------------------------
// Resumable sharded churn (snapshot / restore).
// ---------------------------------------------------------------------

use fred_core::codec::{SnapshotError, Value};
use fred_core::snapshot::{
    arr_of, f64_of, field, sharded_state_from_value, sharded_state_to_value, u64_of, usize_of,
    v_f64, v_u64,
};
use fred_sim::shard::ShardedState;

/// Captured mid-run state of a sharded churn: the network, each tile
/// driver's RNG stream and draw count, and the completions banked
/// before the capture point (the checksum is a tag-ordered sum, so the
/// banked pairs must travel with the snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardChurnState {
    /// The sharded network.
    pub net: ShardedState,
    /// Per-tile `(rng_state, drawn)` in tile order.
    pub drivers: Vec<(u64, usize)>,
    /// `(tag, completed_at_secs)` pairs banked so far.
    pub banked: Vec<(u64, f64)>,
}

impl ShardChurnState {
    /// Encodes the state for the shared snapshot codec.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("net".into(), sharded_state_to_value(&self.net)),
            (
                "drivers".into(),
                Value::Arr(
                    self.drivers
                        .iter()
                        .map(|&(rng, drawn)| Value::Arr(vec![v_u64(rng), v_u64(drawn as u64)]))
                        .collect(),
                ),
            ),
            (
                "banked".into(),
                Value::Arr(
                    self.banked
                        .iter()
                        .map(|&(tag, at)| Value::Arr(vec![v_u64(tag), v_f64(at)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Decodes [`ShardChurnState::to_value`] with typed errors.
    pub fn from_value(v: &Value) -> Result<ShardChurnState, SnapshotError> {
        let ctx = "shard_churn";
        let drivers = arr_of(field(v, "drivers", ctx)?, ctx)?
            .iter()
            .map(|d| {
                let d = arr_of(d, "shard_churn.driver")?;
                if d.len() != 2 {
                    return Err(SnapshotError::Mismatch(
                        "shard_churn.driver: expected 2 elements".into(),
                    ));
                }
                Ok((
                    u64_of(&d[0], "shard_churn.driver.rng")?,
                    usize_of(&d[1], "shard_churn.driver.drawn")?,
                ))
            })
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        let banked = arr_of(field(v, "banked", ctx)?, ctx)?
            .iter()
            .map(|p| {
                let p = arr_of(p, "shard_churn.banked")?;
                if p.len() != 2 {
                    return Err(SnapshotError::Mismatch(
                        "shard_churn.banked: expected 2 elements".into(),
                    ));
                }
                Ok((
                    u64_of(&p[0], "shard_churn.banked.tag")?,
                    f64_of(&p[1], "shard_churn.banked.at")?,
                ))
            })
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        Ok(ShardChurnState {
            net: sharded_state_from_value(field(v, "net", ctx)?)?,
            drivers,
            banked,
        })
    }
}

/// The facade-stepped drive loop shared by the resumable paths: global
/// event order, drivers serviced in ascending tile order. For
/// tile-local churn this is bit-identical to [`run_churn_sharded`]'s
/// per-shard loops (tiles are link-disjoint, so each shard observes
/// exactly the same event sequence either way). When `snapshot_at` is
/// set, captures the full state at the last event instant at or before
/// it.
fn churn_drive(
    net: &mut ShardedNetwork,
    drivers: &mut [TileDriver<'_>],
    cfg: &ShardChurnConfig,
    banked: &mut Vec<(u64, f64)>,
    mut snapshot_at: Option<f64>,
) -> Option<ShardChurnState> {
    let total = cfg.total_flows();
    let mut captured = None;
    while banked.len() < total {
        let te = net
            .next_event()
            .expect("resumable churn stalled: flows outstanding but no pending event");
        if let Some(t) = snapshot_at {
            if te.as_secs() > t {
                captured = Some(ShardChurnState {
                    net: net.snapshot(),
                    drivers: drivers.iter().map(|d| (d.rng.state(), d.drawn)).collect(),
                    banked: banked.clone(),
                });
                snapshot_at = None;
            }
        }
        net.advance_to(te);
        let done = net.drain_completed();
        if done.is_empty() {
            continue;
        }
        let mut specs = Vec::new();
        let mut batch = Vec::new();
        for (s, d) in drivers.iter_mut().enumerate() {
            let mine: Vec<CompletedFlow> = done
                .iter()
                .filter(|c| (c.tag >> 32) as usize == s)
                .cloned()
                .collect();
            if mine.is_empty() {
                continue;
            }
            d.on_completions(s, &mine, &mut specs);
            batch.append(&mut specs);
        }
        if !batch.is_empty() {
            net.inject_batch(batch)
                .expect("tile churn draws XY routes on a healthy mesh");
        }
        banked.extend(done.iter().map(|c| (c.tag, c.completed_at.as_secs())));
    }
    captured
}

/// Tag-ordered checksum over banked pairs — same fold order as
/// [`tag_ordered_checksum`], so resumed and uninterrupted runs agree
/// bit for bit.
fn checksum_of_banked(banked: &mut [(u64, f64)]) -> f64 {
    banked.sort_by_key(|&(tag, _)| tag);
    banked.iter().map(|&(_, t)| t).sum()
}

/// [`run_churn_sharded`] through the facade-stepped loop, optionally
/// capturing a [`ShardChurnState`] at the last event instant at or
/// before `snapshot_at` simulated seconds. The run always continues to
/// completion; the capture is a side output.
pub fn run_churn_sharded_resumable(
    cfg: &ShardChurnConfig,
    threads: usize,
    snapshot_at: Option<f64>,
) -> (ChurnResult, Option<ShardChurnState>) {
    let mesh = shard_churn_mesh(cfg);
    let part = mesh.tile_partition(cfg.tiles, cfg.tiles);
    let mut net = ShardedNetwork::new(mesh.clone_topology(), part, threads);
    let mut drivers = tile_drivers(&mesh, cfg);
    let started = Instant::now();
    let mut specs = Vec::new();
    let mut batch = Vec::new();
    for (s, d) in drivers.iter_mut().enumerate() {
        d.begin(s, &mut specs);
        batch.append(&mut specs);
    }
    net.inject_batch(batch)
        .expect("tile churn draws XY routes on a healthy mesh");
    let mut banked = Vec::new();
    let captured = churn_drive(&mut net, &mut drivers, cfg, &mut banked, snapshot_at);
    let result = ChurnResult {
        makespan_secs: net.now().as_secs(),
        completion_checksum: checksum_of_banked(&mut banked),
        events: 3 * cfg.total_flows() as u64,
        wall_secs: started.elapsed().as_secs_f64(),
    };
    (result, captured)
}

/// Resumes a [`ShardChurnState`] to completion at any thread count.
/// The returned result is bit-identical (makespan, checksum) to the
/// uninterrupted run that produced the capture.
///
/// # Panics
///
/// Panics if the state's driver count disagrees with `cfg` — a
/// snapshot/config pairing error.
pub fn resume_churn_sharded(
    cfg: &ShardChurnConfig,
    threads: usize,
    state: ShardChurnState,
) -> ChurnResult {
    let mesh = shard_churn_mesh(cfg);
    let part = mesh.tile_partition(cfg.tiles, cfg.tiles);
    let mut net = ShardedNetwork::restore(mesh.clone_topology(), part, threads, state.net);
    assert_eq!(
        state.drivers.len(),
        cfg.shards(),
        "driver count does not match the tile grid"
    );
    let ts = cfg.tile_side();
    let mut drivers: Vec<TileDriver> = state
        .drivers
        .iter()
        .enumerate()
        .map(|(s, &(rng, drawn))| TileDriver {
            mesh: &mesh,
            cfg: *cfg,
            x0: (s % cfg.tiles) * ts,
            y0: (s / cfg.tiles) * ts,
            rng: Rng64::from_state(rng),
            drawn,
        })
        .collect();
    let mut banked = state.banked;
    let started = Instant::now();
    churn_drive(&mut net, &mut drivers, cfg, &mut banked, None);
    ChurnResult {
        makespan_secs: net.now().as_secs(),
        completion_checksum: checksum_of_banked(&mut banked),
        events: 3 * cfg.total_flows() as u64,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// Single-core reference for [`run_churn_sharded`]: the identical
/// per-tile driver interactions replayed against one [`FlowNetwork`]
/// (global event order, drivers serviced in ascending tile order).
/// Differential tests pin the sharded engine to this, bit for bit.
pub fn run_churn_sharded_reference(cfg: &ShardChurnConfig) -> ChurnResult {
    let mesh = shard_churn_mesh(cfg);
    let mut net = FlowNetwork::new(mesh.clone_topology());
    let mut drivers = tile_drivers(&mesh, cfg);
    let started = Instant::now();
    let mut specs = Vec::new();
    let mut batch = Vec::new();
    for (s, d) in drivers.iter_mut().enumerate() {
        d.begin(s, &mut specs);
        batch.append(&mut specs);
    }
    net.inject_batch(batch)
        .expect("tile churn draws XY routes on a healthy mesh");
    let total = cfg.total_flows();
    let mut all: Vec<CompletedFlow> = Vec::with_capacity(total);
    while all.len() < total {
        let te = net
            .next_event()
            .expect("sharded-reference churn stalled: flows outstanding but no pending event");
        net.advance_to(te);
        let done = net.drain_completed();
        if done.is_empty() {
            continue;
        }
        let mut batch = Vec::new();
        for (s, d) in drivers.iter_mut().enumerate() {
            let mine: Vec<CompletedFlow> = done
                .iter()
                .filter(|c| (c.tag >> 32) as usize == s)
                .cloned()
                .collect();
            if mine.is_empty() {
                continue;
            }
            d.on_completions(s, &mine, &mut specs);
            batch.append(&mut specs);
        }
        if !batch.is_empty() {
            net.inject_batch(batch)
                .expect("tile churn draws XY routes on a healthy mesh");
        }
        all.extend(done);
    }
    ChurnResult {
        makespan_secs: net.now().as_secs(),
        completion_checksum: tag_ordered_checksum(&all),
        events: 3 * total as u64,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// The `shard_bench` sweep: tile-local churn at 1 024 and 4 096 NPUs
/// over a 4×4 tile grid (16 shards), the 4 096-NPU row being the
/// headline scaling number.
pub const SHARD_SWEEP: [ShardChurnConfig; 2] = [
    ShardChurnConfig {
        side: 32,
        tiles: 4,
        flows_per_tile: 384,
        concurrency_per_tile: 16,
        locality: 4,
        seed: 0x5AAD_0001,
    },
    ShardChurnConfig {
        side: 64,
        tiles: 4,
        flows_per_tile: 768,
        concurrency_per_tile: 16,
        locality: 4,
        seed: 0x5AAD_0002,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChurnConfig {
        ChurnConfig {
            side: 4,
            flows: 64,
            concurrency: 16,
            locality: 2,
            seed: 7,
            refill_fraction: None,
        }
    }

    fn tiny_sharded() -> ShardChurnConfig {
        ShardChurnConfig {
            side: 8,
            tiles: 2,
            flows_per_tile: 48,
            concurrency_per_tile: 8,
            locality: 2,
            seed: 0xD1FF_0001,
        }
    }

    #[test]
    fn sharded_churn_matches_reference_bitwise() {
        let cfg = tiny_sharded();
        let reference = run_churn_sharded_reference(&cfg);
        for threads in [1, 2, 4] {
            let sharded = run_churn_sharded(&cfg, threads);
            assert_eq!(
                sharded.makespan_secs.to_bits(),
                reference.makespan_secs.to_bits(),
                "makespan diverged at threads={threads}"
            );
            assert_eq!(
                sharded.completion_checksum.to_bits(),
                reference.completion_checksum.to_bits(),
                "checksum diverged at threads={threads}"
            );
            assert_eq!(sharded.events, reference.events);
        }
    }

    #[test]
    fn sharded_churn_is_repeatable() {
        let cfg = tiny_sharded();
        let a = run_churn_sharded(&cfg, 2);
        let b = run_churn_sharded(&cfg, 2);
        assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
        assert_eq!(
            a.completion_checksum.to_bits(),
            b.completion_checksum.to_bits()
        );
    }

    #[test]
    fn resumable_facade_loop_matches_reference_bitwise() {
        let cfg = tiny_sharded();
        let reference = run_churn_sharded_reference(&cfg);
        for threads in [1, 2, 4] {
            let (r, captured) = run_churn_sharded_resumable(&cfg, threads, None);
            assert!(captured.is_none());
            assert_eq!(
                r.makespan_secs.to_bits(),
                reference.makespan_secs.to_bits(),
                "resumable makespan diverged at threads={threads}"
            );
            assert_eq!(
                r.completion_checksum.to_bits(),
                reference.completion_checksum.to_bits(),
                "resumable checksum diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn mid_run_snapshot_resumes_bit_identically_at_any_thread_count() {
        let cfg = tiny_sharded();
        let (reference, captured) =
            run_churn_sharded_resumable(&cfg, 2, Some(reference_midpoint(&cfg)));
        let state = captured.expect("snapshot point falls inside the run");
        assert!(!state.banked.is_empty(), "capture should be mid-run");
        assert!(
            state.banked.len() < cfg.total_flows(),
            "capture should precede completion"
        );
        // Round-trip through both codecs before resuming: what resumes
        // is what a file on disk would hold.
        let v = state.to_value();
        let bin = fred_core::codec::to_binary(&v);
        let decoded =
            ShardChurnState::from_value(&fred_core::codec::from_binary(&bin).unwrap()).unwrap();
        assert_eq!(decoded, state);
        let json = fred_core::codec::to_json(&v);
        let reparsed = fred_core::codec::parse(&json).unwrap();
        assert_eq!(ShardChurnState::from_value(&reparsed).unwrap(), state);
        for threads in [1, 2, 4] {
            let resumed = resume_churn_sharded(&cfg, threads, decoded.clone());
            assert_eq!(
                resumed.makespan_secs.to_bits(),
                reference.makespan_secs.to_bits(),
                "resumed makespan diverged at threads={threads}"
            );
            assert_eq!(
                resumed.completion_checksum.to_bits(),
                reference.completion_checksum.to_bits(),
                "resumed checksum diverged at threads={threads}"
            );
        }
    }

    /// A capture point roughly halfway through the uninterrupted run.
    fn reference_midpoint(cfg: &ShardChurnConfig) -> f64 {
        run_churn_sharded_reference(cfg).makespan_secs * 0.5
    }

    #[test]
    fn churn_is_deterministic() {
        let a = run_churn(&tiny());
        let b = run_churn(&tiny());
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.completion_checksum, b.completion_checksum);
        assert_eq!(a.events, b.events);
        assert!(a.makespan_secs > 0.0);
    }

    #[test]
    fn forced_global_refill_is_result_identical() {
        // The refill threshold is a pure performance knob: incremental
        // and forced-global solves must produce the same simulation.
        let incremental = run_churn(&tiny());
        let global = run_churn(&ChurnConfig {
            refill_fraction: Some(0.0),
            ..tiny()
        });
        assert_eq!(incremental.makespan_secs, global.makespan_secs);
        assert_eq!(incremental.completion_checksum, global.completion_checksum);
    }

    #[test]
    fn churn_completes_every_flow() {
        let cfg = tiny();
        let r = run_churn(&cfg);
        assert_eq!(r.events, 3 * cfg.flows as u64);
        assert!(r.events_per_sec() > 0.0);
    }
}

//! Randomized flow-churn workload over a wafer-scale mesh.
//!
//! The solver-bound stress used by the `scaling` third section and the
//! `solver_bench` binary: a fixed population of mostly-local transfers
//! is kept at a target concurrency over an N×N mesh, so every
//! completion immediately admits a replacement. Each completion and
//! each injection changes the active-flow set, making the fair-share
//! allocator — not flow arithmetic — the dominant cost. Traffic is
//! local (bounded Chebyshev distance), so rate changes stay confined
//! to a small neighbourhood of the fabric; this is the regime where an
//! incremental solver beats from-scratch progressive filling.
//!
//! All randomness comes from [`fred_sim::rng::Rng64`], so a (config,
//! seed) pair is a fully deterministic workload: makespan and the
//! completion-time checksum are exact regression surfaces, while the
//! wall clock and events/s measure simulator throughput.

use std::time::Instant;

use fred_mesh::topology::MeshFabric;
use fred_sim::flow::{FlowSpec, Priority};
use fred_sim::netsim::FlowNetwork;
use fred_sim::rng::Rng64;

/// One churn configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Mesh side (NPUs = side × side).
    pub side: usize,
    /// Total flows pushed through the network.
    pub flows: usize,
    /// Target number of concurrently active flows.
    pub concurrency: usize,
    /// Maximum Chebyshev distance between a flow's endpoints.
    pub locality: usize,
    /// RNG seed; equal seeds give identical workloads.
    pub seed: u64,
    /// Override for the solver's global-refill threshold
    /// ([`FlowNetwork::set_refill_fraction`]); `None` keeps the
    /// default. `Some(0.0)` forces a from-scratch refill on every set
    /// change — the pre-incremental baseline `solver_bench` compares
    /// against.
    pub refill_fraction: Option<f64>,
}

impl ChurnConfig {
    /// NPUs in the mesh.
    pub fn npus(&self) -> usize {
        self.side * self.side
    }
}

/// Deterministic results plus throughput measurements of one churn run.
#[derive(Debug, Clone, Copy)]
pub struct ChurnResult {
    /// Simulated end-to-end time (deterministic).
    pub makespan_secs: f64,
    /// Sum of all completion times (deterministic; a cheap whole-run
    /// checksum for `bench-diff`).
    pub completion_checksum: f64,
    /// Flow lifecycle events processed: injections + drains +
    /// completions (deterministic).
    pub events: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_secs: f64,
}

impl ChurnResult {
    /// Lifecycle events per wall-clock second — the simulator
    /// throughput headline.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(f64::MIN_POSITIVE)
    }
}

/// Draws the next transfer: a source NPU and a destination within
/// `locality` Chebyshev distance (never equal to the source), with a
/// payload in [1, 17) MB and a priority cycling over MP/DP/Bulk.
fn draw_flow(mesh: &MeshFabric, cfg: &ChurnConfig, rng: &mut Rng64, seq: usize) -> FlowSpec {
    let side = cfg.side;
    let src = rng.gen_range(0, side * side);
    let (sx, sy) = mesh.coords(src);
    let reach = cfg.locality.max(1);
    let dst = loop {
        let dx = rng.gen_range_inclusive(0, 2 * reach) as isize - reach as isize;
        let dy = rng.gen_range_inclusive(0, 2 * reach) as isize - reach as isize;
        let x = (sx as isize + dx).clamp(0, side as isize - 1) as usize;
        let y = (sy as isize + dy).clamp(0, side as isize - 1) as usize;
        let d = mesh.npu_at(x, y);
        if d != src {
            break d;
        }
    };
    let bytes = 1e6 + rng.gen_f64() * 16e6;
    let priority = match seq % 3 {
        0 => Priority::Mp,
        1 => Priority::Dp,
        _ => Priority::Bulk,
    };
    FlowSpec::new(mesh.xy_route(src, dst), bytes).with_priority(priority)
}

/// Runs one churn configuration to completion on a fresh mesh network.
///
/// # Panics
///
/// Panics if the simulation stalls (an engine bug, not a workload
/// property).
pub fn run_churn(cfg: &ChurnConfig) -> ChurnResult {
    let mesh = MeshFabric::new(cfg.side, cfg.side, 750e9, 128e9, 20e-9);
    let mut rng = Rng64::seed_from_u64(cfg.seed);
    let mut net = FlowNetwork::new(mesh.clone_topology());
    if let Some(f) = cfg.refill_fraction {
        net.set_refill_fraction(f);
    }

    let started = Instant::now();
    let initial = cfg.concurrency.min(cfg.flows);
    let mut drawn = 0usize;
    let first: Vec<FlowSpec> = (0..initial)
        .map(|_| {
            drawn += 1;
            draw_flow(&mesh, cfg, &mut rng, drawn - 1)
        })
        .collect();
    net.inject_batch(first)
        .expect("churn draws XY routes on a healthy mesh; injection cannot fail");

    let mut completed = 0usize;
    let mut checksum = 0.0_f64;
    while completed < cfg.flows {
        let te = net
            .next_event()
            .expect("churn stalled: flows outstanding but no pending event");
        net.advance_to(te);
        let done = net.drain_completed();
        if done.is_empty() {
            continue;
        }
        completed += done.len();
        for c in &done {
            checksum += c.completed_at.as_secs();
        }
        // Refill to the target concurrency, one batch per timestep.
        let refill = done.len().min(cfg.flows - drawn);
        if refill > 0 {
            let batch: Vec<FlowSpec> = (0..refill)
                .map(|_| {
                    drawn += 1;
                    draw_flow(&mesh, cfg, &mut rng, drawn - 1)
                })
                .collect();
            net.inject_batch(batch)
                .expect("churn draws XY routes on a healthy mesh; injection cannot fail");
        }
    }
    ChurnResult {
        makespan_secs: net.now().as_secs(),
        completion_checksum: checksum,
        // inject + drain + complete per flow.
        events: 3 * cfg.flows as u64,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// The `scaling` binary's churn sweep: 256 / 1 024 / 4 096 NPUs, the
/// largest being the acceptance gate for solver throughput.
pub const SCALING_SWEEP: [ChurnConfig; 3] = [
    ChurnConfig {
        side: 16,
        flows: 2048,
        concurrency: 128,
        locality: 4,
        seed: 0xC0FF_EE01,
        refill_fraction: None,
    },
    ChurnConfig {
        side: 32,
        flows: 6144,
        concurrency: 256,
        locality: 4,
        seed: 0xC0FF_EE02,
        refill_fraction: None,
    },
    ChurnConfig {
        side: 64,
        flows: 12288,
        concurrency: 256,
        locality: 4,
        seed: 0xC0FF_EE03,
        refill_fraction: None,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChurnConfig {
        ChurnConfig {
            side: 4,
            flows: 64,
            concurrency: 16,
            locality: 2,
            seed: 7,
            refill_fraction: None,
        }
    }

    #[test]
    fn churn_is_deterministic() {
        let a = run_churn(&tiny());
        let b = run_churn(&tiny());
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.completion_checksum, b.completion_checksum);
        assert_eq!(a.events, b.events);
        assert!(a.makespan_secs > 0.0);
    }

    #[test]
    fn forced_global_refill_is_result_identical() {
        // The refill threshold is a pure performance knob: incremental
        // and forced-global solves must produce the same simulation.
        let incremental = run_churn(&tiny());
        let global = run_churn(&ChurnConfig {
            refill_fraction: Some(0.0),
            ..tiny()
        });
        assert_eq!(incremental.makespan_secs, global.makespan_secs);
        assert_eq!(incremental.completion_checksum, global.completion_checksum);
    }

    #[test]
    fn churn_completes_every_flow() {
        let cfg = tiny();
        let r = run_churn(&cfg);
        assert_eq!(r.events, 3 * cfg.flows as u64);
        assert!(r.events_per_sec() > 0.0);
    }
}

//! Aligned-table and CSV emission for the experiment binaries.

use std::fmt::Write as _;

/// A simple column-aligned text table with an optional CSV mirror.
///
/// ```
/// use fred_bench::table::Table;
/// let mut t = Table::new(vec!["config", "speedup"]);
/// t.row(vec!["Baseline".into(), "1.00".into()]);
/// t.row(vec!["Fred-D".into(), "1.76".into()]);
/// let s = t.render();
/// assert!(s.contains("Fred-D"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Table {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(*w) + "  ")
            .collect::<Vec<_>>()
            .join("");
        out.push_str(rule.trim_end());
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Renders the CSV mirror.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table, preceded by a title banner, and optionally
    /// writes the CSV next to it.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Formats seconds with engineering units.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Formats bytes/s with engineering units.
pub fn fmt_bw(b: f64) -> String {
    if b >= 1e12 {
        format!("{:.2} TB/s", b / 1e12)
    } else if b >= 1e9 {
        format!("{:.1} GB/s", b / 1e9)
    } else {
        format!("{:.1} MB/s", b / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a      bbbb"));
        assert!(lines[2].starts_with("xxxxx  1"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["a,b".into()]);
        assert_eq!(t.to_csv(), "x\n\"a,b\"\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(0.0025), "2.500 ms");
        assert_eq!(fmt_bw(3e12), "3.00 TB/s");
        assert_eq!(fmt_bw(750e9), "750.0 GB/s");
    }
}

//! `--trace` / `--metrics` command-line support for figure binaries.
//!
//! Every instrumented binary accepts:
//!
//! * `--trace <path>` — record telemetry and write a Chrome-trace /
//!   Perfetto JSON file (open at <https://ui.perfetto.dev>);
//! * `--metrics <path>` — write the aggregated metrics JSON (per-link
//!   busy time and utilization, completion-time histogram, per-phase
//!   effective GB/s per NPU).
//!
//! Either flag alone turns recording on; with neither, the binary
//! runs untraced through the zero-overhead `NullSink` and produces
//! bit-identical simulation results.

use std::path::PathBuf;
use std::rc::Rc;

use fred_sim::topology::Topology;
use fred_telemetry::metrics::Metrics;
use fred_telemetry::perfetto::{export_chrome_trace, TraceMeta};
use fred_telemetry::sink::{NullSink, RingRecorder, TraceSink};

/// Parsed tracing options plus the shared sink to simulate with.
#[derive(Debug)]
pub struct TraceOpts {
    /// Where to write the Chrome-trace JSON, if requested.
    pub trace_path: Option<PathBuf>,
    /// Where to write the metrics JSON, if requested.
    pub metrics_path: Option<PathBuf>,
    recorder: Option<Rc<RingRecorder>>,
    link_names: Vec<String>,
    process_name: String,
}

impl TraceOpts {
    /// Parses `--trace <path>` / `--metrics <path>` out of the
    /// process arguments. `process_name` labels the trace (use the
    /// figure name).
    ///
    /// # Panics
    ///
    /// Panics with a usage message when a flag is missing its value
    /// or an argument is unrecognised.
    pub fn from_args(process_name: &str) -> TraceOpts {
        let mut trace_path = None;
        let mut metrics_path = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage(process_name, "--trace"));
                    trace_path = Some(PathBuf::from(v));
                }
                "--metrics" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage(process_name, "--metrics"));
                    metrics_path = Some(PathBuf::from(v));
                }
                other => {
                    eprintln!("{process_name}: unknown argument `{other}`");
                    usage(process_name, other);
                }
            }
        }
        let recorder = if trace_path.is_some() || metrics_path.is_some() {
            Some(Rc::new(RingRecorder::new()))
        } else {
            None
        };
        TraceOpts {
            trace_path,
            metrics_path,
            recorder,
            link_names: Vec::new(),
            process_name: process_name.to_string(),
        }
    }

    /// The sink to pass into simulations: the shared ring recorder
    /// when tracing was requested, the zero-overhead [`NullSink`]
    /// otherwise.
    pub fn sink(&self) -> Rc<dyn TraceSink> {
        match &self.recorder {
            Some(r) => r.clone(),
            None => Rc::new(NullSink),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Names the trace's link-counter tracks after `topo`'s endpoints
    /// (`"src->dst"`). Call with the topology being simulated; with
    /// several topologies per run, the last call wins and earlier
    /// configs' link ids fall back to `link<i>` naming.
    pub fn name_links(&mut self, topo: &Topology) {
        if !self.enabled() {
            return;
        }
        self.link_names = topo
            .links()
            .map(|(_, l)| format!("{}->{}", topo.node(l.src).label, topo.node(l.dst).label))
            .collect();
    }

    /// Writes the requested output files and reports what was written
    /// (plus any ring overflow) on stderr. Call once, after the last
    /// simulation.
    ///
    /// # Panics
    ///
    /// Panics if an output file cannot be written.
    pub fn finish(&self) {
        let Some(rec) = &self.recorder else { return };
        let events = rec.events();
        if rec.overwritten() > 0 {
            eprintln!(
                "{}: trace ring overflowed; oldest {} events dropped",
                self.process_name,
                rec.overwritten()
            );
        }
        if let Some(path) = &self.trace_path {
            let meta = TraceMeta {
                link_names: self.link_names.clone(),
                process_name: Some(self.process_name.clone()),
            };
            let mut out = std::fs::File::create(path)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
            export_chrome_trace(&events, &meta, &mut out)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            eprintln!(
                "{}: wrote {} trace events to {} (open at https://ui.perfetto.dev)",
                self.process_name,
                events.len(),
                path.display()
            );
        }
        if let Some(path) = &self.metrics_path {
            let metrics = Metrics::from_events(&events);
            std::fs::write(path, metrics.to_json())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            eprintln!(
                "{}: wrote metrics ({} links, {} phases) to {}",
                self.process_name,
                metrics.links.len(),
                metrics.phases.len(),
                path.display()
            );
        }
    }
}

fn usage(process_name: &str, flag: &str) -> ! {
    eprintln!("usage: {process_name} [--trace <path>] [--metrics <path>]  (failed at `{flag}`)");
    std::process::exit(2);
}

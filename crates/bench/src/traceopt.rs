//! `--trace` / `--metrics` / `--report` command-line support for
//! figure binaries.
//!
//! Every instrumented binary accepts:
//!
//! * `--trace <path>` — record telemetry and write a Chrome-trace /
//!   Perfetto JSON file (open at <https://ui.perfetto.dev>);
//! * `--metrics <path>` — write the aggregated metrics JSON (per-link
//!   busy time and utilization, completion-time histogram, per-phase
//!   effective GB/s per NPU);
//! * `--report <path>` — write a versioned machine-readable
//!   [`BenchReport`](crate::report::BenchReport) JSON
//!   (`BENCH_<name>.json` by convention) with the binary's headline
//!   results, wall time, solver cost counters, and critical-path
//!   attribution — the input to `bench-diff`;
//! * `--dashboard <path>` — write a self-contained offline HTML
//!   dashboard (inline SVG sparklines and a link-utilization heatmap,
//!   no CDN) from the flight-recorder time series;
//! * `--prom <path>` — write the final series values as Prometheus
//!   text exposition;
//! * `--prof` — enable the host-side self-profiler; its site table
//!   lands in the report (`prof` section), the Prometheus output and
//!   the dashboard;
//! * `--threads <n>` — worker threads for binaries that run the
//!   sharded simulator ([`ShardedNetwork`](fred_sim::shard::ShardedNetwork));
//!   `0`/absent defers to the `FRED_THREADS` environment variable.
//!   Results are bit-identical at every thread count — this is purely
//!   a wall-clock knob;
//! * `--snapshot-at <secs>` — for binaries with a resumable
//!   simulation: capture a [`SimState`](fred_core::snapshot::SimState)
//!   snapshot at the last event at or before `<secs>` simulated
//!   seconds (written next to the binary's other outputs);
//! * `--restore <path>` — resume from a snapshot file instead of
//!   starting fresh. Resumed runs are bit-identical to uninterrupted
//!   ones.
//!
//! Any flag alone turns recording on; with none, the binary runs
//! untraced through the zero-overhead `NullSink` and produces
//! bit-identical simulation results. `--trace`/`--metrics` feed from
//! the ring recorder (whole events, bounded by overwriting);
//! `--dashboard`/`--prom` feed from the flight recorder (bounded by
//! decimation, spans the whole run); `--report` uses both.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant;

use fred_sim::solver::SolverStats;
use fred_sim::topology::Topology;
use fred_telemetry::analysis::Analysis;
use fred_telemetry::metrics::Metrics;
use fred_telemetry::perfetto::{export_chrome_trace, TraceMeta};
use fred_telemetry::prof;
use fred_telemetry::sink::{NullSink, RingRecorder, TeeSink, TraceSink};
use fred_telemetry::timeseries::FlightRecorder;
use fred_telemetry::{dashboard, prom};

use crate::report::BenchReport;

/// Parsed tracing options plus the shared sink to simulate with.
#[derive(Debug)]
pub struct TraceOpts {
    /// Where to write the Chrome-trace JSON, if requested.
    pub trace_path: Option<PathBuf>,
    /// Where to write the metrics JSON, if requested.
    pub metrics_path: Option<PathBuf>,
    /// Where to write the bench report JSON, if requested.
    pub report_path: Option<PathBuf>,
    /// Where to write the offline HTML dashboard, if requested.
    pub dashboard_path: Option<PathBuf>,
    /// Where to write Prometheus text exposition, if requested.
    pub prom_path: Option<PathBuf>,
    recorder: Option<Rc<RingRecorder>>,
    flight: Option<Rc<FlightRecorder>>,
    prof_enabled: bool,
    link_names: Vec<String>,
    process_name: String,
    metrics: Vec<(String, f64)>,
    started: Instant,
    events_at_start: u64,
    solver_at_start: SolverStats,
    compactions_at_start: u64,
    threads: usize,
    snapshot_at: Option<f64>,
    restore_path: Option<PathBuf>,
}

impl TraceOpts {
    /// Parses `--trace <path>` / `--metrics <path>` / `--report
    /// <path>` out of the process arguments. `process_name` labels the
    /// trace and report (use the figure name). Also starts the wall
    /// timer that `--report` records.
    ///
    /// # Panics
    ///
    /// Panics with a usage message when a flag is missing its value
    /// or an argument is unrecognised.
    pub fn from_args(process_name: &str) -> TraceOpts {
        TraceOpts::from_args_with(process_name, |_, _| false)
    }

    /// [`TraceOpts::from_args`] with an escape hatch for binaries that
    /// take extra flags: `custom(flag, next_arg)` is called for every
    /// argument this parser does not recognise, with a closure that
    /// pulls the flag's value off the argument stream. Return `true`
    /// if the flag was consumed; `false` falls through to the usage
    /// error.
    ///
    /// # Panics
    ///
    /// As [`TraceOpts::from_args`].
    pub fn from_args_with(
        process_name: &str,
        mut custom: impl FnMut(&str, &mut dyn FnMut() -> Option<String>) -> bool,
    ) -> TraceOpts {
        let mut trace_path = None;
        let mut metrics_path = None;
        let mut report_path = None;
        let mut dashboard_path = None;
        let mut prom_path = None;
        let mut prof_enabled = false;
        let mut threads = 0usize;
        let mut snapshot_at = None;
        let mut restore_path = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage(process_name, "--trace"));
                    trace_path = Some(PathBuf::from(v));
                }
                "--metrics" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage(process_name, "--metrics"));
                    metrics_path = Some(PathBuf::from(v));
                }
                "--report" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage(process_name, "--report"));
                    report_path = Some(PathBuf::from(v));
                }
                "--dashboard" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage(process_name, "--dashboard"));
                    dashboard_path = Some(PathBuf::from(v));
                }
                "--prom" => {
                    let v = args.next().unwrap_or_else(|| usage(process_name, "--prom"));
                    prom_path = Some(PathBuf::from(v));
                }
                "--prof" => prof_enabled = true,
                "--snapshot-at" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage(process_name, "--snapshot-at"));
                    let t: f64 = v.parse().unwrap_or_else(|_| {
                        eprintln!("{process_name}: --snapshot-at expects seconds, got `{v}`");
                        usage(process_name, "--snapshot-at");
                    });
                    if !t.is_finite() || t < 0.0 {
                        eprintln!("{process_name}: --snapshot-at expects finite secs >= 0");
                        usage(process_name, "--snapshot-at");
                    }
                    snapshot_at = Some(t);
                }
                "--restore" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage(process_name, "--restore"));
                    restore_path = Some(PathBuf::from(v));
                }
                "--threads" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage(process_name, "--threads"));
                    threads = v.parse().unwrap_or_else(|_| {
                        eprintln!("{process_name}: --threads expects an integer, got `{v}`");
                        usage(process_name, "--threads");
                    });
                }
                other => {
                    if !custom(other, &mut || args.next()) {
                        eprintln!("{process_name}: unknown argument `{other}`");
                        usage(process_name, other);
                    }
                }
            }
        }
        if prof_enabled {
            prof::set_enabled(true);
            prof::reset();
        }
        let recorder = if trace_path.is_some() || metrics_path.is_some() || report_path.is_some() {
            Some(Rc::new(RingRecorder::new()))
        } else {
            None
        };
        let flight = if dashboard_path.is_some() || prom_path.is_some() || report_path.is_some() {
            Some(Rc::new(FlightRecorder::new()))
        } else {
            None
        };
        TraceOpts {
            trace_path,
            metrics_path,
            report_path,
            dashboard_path,
            prom_path,
            recorder,
            flight,
            prof_enabled,
            link_names: Vec::new(),
            process_name: process_name.to_string(),
            metrics: Vec::new(),
            started: Instant::now(),
            events_at_start: fred_sim::netsim::global_events_processed(),
            solver_at_start: fred_sim::solver::global_solver_stats(),
            compactions_at_start: fred_sim::netsim::global_heap_compactions(),
            threads,
            snapshot_at,
            restore_path,
        }
    }

    /// The `--snapshot-at <secs>` capture point, if given. Binaries
    /// with a resumable simulation capture a snapshot at the last
    /// event at or before this simulated time; others reject the flag.
    pub fn snapshot_at(&self) -> Option<f64> {
        self.snapshot_at
    }

    /// The `--restore <path>` snapshot file to resume from, if given.
    pub fn restore_path(&self) -> Option<&PathBuf> {
        self.restore_path.as_ref()
    }

    /// Worker-thread count for sharded simulations: the `--threads N`
    /// argument, or `0` when absent — which tells
    /// [`ShardedNetwork`](fred_sim::shard::ShardedNetwork) to consult
    /// the `FRED_THREADS` environment variable and fall back to
    /// single-threaded. Pass this value straight through.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Records one headline simulation result for the bench report
    /// (e.g. `opts.metric("mesh/MP/secs", d.as_secs())`). Cheap no-op
    /// storage when `--report` was not given; keys should be stable
    /// across commits because `bench-diff` compares them leaf by
    /// leaf.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) {
        if self.report_path.is_none() {
            return;
        }
        let key = key.into();
        match self.metrics.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.metrics.push((key, value)),
        }
    }

    /// The sink to pass into simulations: the ring recorder and/or
    /// flight recorder when any output was requested, the
    /// zero-overhead [`NullSink`] otherwise.
    pub fn sink(&self) -> Rc<dyn TraceSink> {
        match (&self.recorder, &self.flight) {
            (Some(r), Some(f)) => Rc::new(TeeSink(r.clone(), f.clone())),
            (Some(r), None) => r.clone(),
            (None, Some(f)) => f.clone(),
            (None, None) => Rc::new(NullSink),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.recorder.is_some() || self.flight.is_some()
    }

    /// Names the trace's link-counter tracks after `topo`'s endpoints
    /// (`"src->dst"`). Call with the topology being simulated; with
    /// several topologies per run, the last call wins and earlier
    /// configs' link ids fall back to `link<i>` naming.
    pub fn name_links(&mut self, topo: &Topology) {
        if !self.enabled() {
            return;
        }
        self.link_names = topo
            .links()
            .map(|(_, l)| format!("{}->{}", topo.node(l.src).label, topo.node(l.dst).label))
            .collect();
    }

    /// Writes the requested output files and reports what was written
    /// (plus any ring overflow) on stderr. Call once, after the last
    /// simulation.
    ///
    /// # Panics
    ///
    /// Panics if an output file cannot be written.
    pub fn finish(&self) {
        if !self.enabled() {
            return;
        }
        let prof_sites = if self.prof_enabled {
            prof::snapshot()
        } else {
            BTreeMap::new()
        };
        let snapshot = self.flight.as_ref().map(|f| f.snapshot());
        if let Some(rec) = &self.recorder {
            let events = rec.events();
            if rec.overwritten() > 0 {
                eprintln!(
                    "{}: WARNING: trace ring overflowed; oldest {} events dropped — \
                     metrics, attribution, and reports below are incomplete",
                    self.process_name,
                    rec.overwritten()
                );
            }
            if let Some(path) = &self.trace_path {
                let meta = TraceMeta {
                    link_names: self.link_names.clone(),
                    process_name: Some(self.process_name.clone()),
                };
                let mut out = std::fs::File::create(path)
                    .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
                export_chrome_trace(&events, &meta, &mut out)
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                eprintln!(
                    "{}: wrote {} trace events to {} (open at https://ui.perfetto.dev)",
                    self.process_name,
                    events.len(),
                    path.display()
                );
            }
            if let Some(path) = &self.metrics_path {
                let metrics = Metrics::from_events(&events).with_dropped(rec.overwritten());
                std::fs::write(path, metrics.to_json())
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                eprintln!(
                    "{}: wrote metrics ({} links, {} phases) to {}",
                    self.process_name,
                    metrics.links.len(),
                    metrics.phases.len(),
                    path.display()
                );
            }
            if let Some(path) = &self.report_path {
                let mut report = BenchReport::new(self.process_name.clone());
                report.wall_secs = self.started.elapsed().as_secs_f64();
                report.sim = self.metrics.clone();
                // Simulator throughput headline, present in every report:
                // flow lifecycle events processed per wall-clock second
                // over this binary's whole run. Excluded keys (wall_secs
                // and this one) are perf measurements, not simulation
                // results — bench-diff treats them with its threshold.
                let lifecycle_events =
                    fred_sim::netsim::global_events_processed() - self.events_at_start;
                report.sim.push((
                    "events_per_sec".to_string(),
                    lifecycle_events as f64 / report.wall_secs.max(f64::MIN_POSITIVE),
                ));
                // Solver cost over this run (process-wide deltas):
                // deterministic simulation quantities, so they are part
                // of the regression surface like any other sim key.
                let sv = fred_sim::solver::global_solver_stats();
                let s0 = self.solver_at_start;
                report
                    .sim
                    .push(("solver/solves".into(), (sv.solves - s0.solves) as f64));
                report.sim.push((
                    "solver/global_solves".into(),
                    (sv.global_solves - s0.global_solves) as f64,
                ));
                report.sim.push((
                    "solver/refilled_flows".into(),
                    (sv.refilled_flows - s0.refilled_flows) as f64,
                ));
                report
                    .sim
                    .push(("solver/max_component".into(), sv.max_component as f64));
                report.sim.push((
                    "solver/heap_compactions".into(),
                    (fred_sim::netsim::global_heap_compactions() - self.compactions_at_start)
                        as f64,
                ));
                let analysis = Analysis::from_events(&events).with_dropped(rec.overwritten());
                eprint!("{}", analysis.summary());
                report.analysis = Some(analysis);
                if !prof_sites.is_empty() {
                    report.prof_json = Some(prof::to_json(&prof_sites));
                }
                if let Some(snap) = &snapshot {
                    report.timeseries_json = Some(snap.to_json());
                }
                report
                    .write(path)
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                eprintln!(
                    "{}: wrote bench report ({} sim metrics) to {} — compare with `bench-diff`",
                    self.process_name,
                    report.sim.len(),
                    path.display()
                );
            }
        }
        if let Some(snap) = &snapshot {
            if let Some(path) = &self.prom_path {
                std::fs::write(path, prom::render(snap, &prof_sites))
                    .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                eprintln!(
                    "{}: wrote Prometheus exposition to {}",
                    self.process_name,
                    path.display()
                );
            }
            if let Some(path) = &self.dashboard_path {
                std::fs::write(
                    path,
                    dashboard::render(&self.process_name, snap, &prof_sites),
                )
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
                eprintln!(
                    "{}: wrote dashboard to {} (self-contained; open in any browser)",
                    self.process_name,
                    path.display()
                );
            }
        }
        if self.prof_enabled && !prof_sites.is_empty() && self.report_path.is_none() {
            // No report to carry the table — summarize on stderr so
            // `--prof` alone is still useful.
            eprintln!("{}: profiler sites:", self.process_name);
            for (site, st) in &prof_sites {
                eprintln!(
                    "  {site}: n={} total={:.6} mean={:.9} max={:.9}",
                    st.count,
                    st.total,
                    st.mean(),
                    st.max
                );
            }
        }
    }
}

fn usage(process_name: &str, flag: &str) -> ! {
    eprintln!(
        "usage: {process_name} [--trace <path>] [--metrics <path>] [--report <path>] \
         [--dashboard <path>] [--prom <path>] [--prof] [--threads <n>] \
         [--snapshot-at <secs>] [--restore <path>]  (failed at `{flag}`)"
    );
    std::process::exit(2);
}

//! A minimal wall-clock micro-benchmark harness.
//!
//! Stands in for Criterion so the bench targets build in hermetic
//! environments with no registry access. Each measurement warms up,
//! auto-scales the iteration count to a target measurement window, and
//! reports min/median/mean so run-to-run noise is visible.

use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring one benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(800);
/// Warm-up time before measuring.
const WARMUP_WINDOW: Duration = Duration::from_millis(200);
/// Number of timed samples the window is split into.
const SAMPLES: usize = 15;

/// Runs `f` repeatedly and prints a one-line latency summary.
///
/// The return value of `f` is passed through [`std::hint::black_box`]
/// so the optimiser cannot delete the work.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up, also used to estimate per-call cost.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < WARMUP_WINDOW {
        std::hint::black_box(f());
        warm_iters += 1;
    }
    let per_call = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let iters_per_sample =
        ((MEASURE_WINDOW.as_secs_f64() / SAMPLES as f64 / per_call).ceil() as u64).max(1);

    let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        for _ in 0..iters_per_sample {
            std::hint::black_box(f());
        }
        samples.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let min = samples[0];
    let median = samples[SAMPLES / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<44} min {:>10}  median {:>10}  mean {:>10}  ({iters_per_sample} iters/sample)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
    );
}

/// Formats seconds with an auto-selected unit.
fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_duration_picks_units() {
        assert_eq!(fmt_duration(2.5), "2.500 s");
        assert_eq!(fmt_duration(2.5e-3), "2.500 ms");
        assert_eq!(fmt_duration(2.5e-6), "2.500 µs");
        assert_eq!(fmt_duration(2.5e-9), "2.5 ns");
    }
}

//! Versioned machine-readable bench reports (`BENCH_<name>.json`) and
//! the comparison logic behind the `bench-diff` binary.
//!
//! Every figure/scaling binary can emit one [`BenchReport`]: its
//! headline simulation results (`sim.*` key/value metrics), the wall
//! time, and — when recording was on — the critical-path attribution
//! summary from [`fred_telemetry::analysis`]. Two reports from
//! different commits are compared leaf by leaf with a relative
//! threshold, turning every figure into a regression test.
//!
//! The workspace is dependency-free, so reading reports back uses the
//! minimal recursive-descent JSON parser shared with the snapshot
//! machinery ([`fred_core::codec::parse`], re-exported here) — it
//! supports exactly the JSON this workspace emits (objects, arrays,
//! numbers, strings, booleans, null).

use std::fmt;
use std::io;
use std::path::Path;

use fred_telemetry::analysis::Analysis;
use fred_telemetry::json::{push_num, push_str_lit};

/// Current report schema version. Bump when the report shape changes
/// incompatibly; `bench-diff` refuses to compare mismatched versions.
pub const SCHEMA_VERSION: f64 = 1.0;

/// Relative tolerance for the attribution-sum invariant
/// (`Σ buckets == total makespan`).
pub const SUM_TOLERANCE: f64 = 1e-6;

/// One machine-readable bench report.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Report name (the figure binary, e.g. `"fig9"`).
    pub name: String,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
    /// Headline simulation metrics, in insertion order. Keys should be
    /// stable across commits (they are the regression surface).
    pub sim: Vec<(String, f64)>,
    /// Critical-path attribution, when the run recorded a trace.
    pub analysis: Option<Analysis>,
    /// Host-side profiler sites, pre-rendered with
    /// [`fred_telemetry::prof::to_json`] (wall-clock — not diffed).
    pub prof_json: Option<String>,
    /// Flight-recorder snapshot, pre-rendered with
    /// [`fred_telemetry::timeseries::FlightSnapshot::to_json`]
    /// (time-series archive — not diffed leaf-by-leaf).
    pub timeseries_json: Option<String>,
}

impl BenchReport {
    /// Creates an empty report for `name`.
    pub fn new(name: impl Into<String>) -> BenchReport {
        BenchReport {
            name: name.into(),
            ..BenchReport::default()
        }
    }

    /// Records one headline metric. Re-recording a key overwrites it.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) {
        let key = key.into();
        match self.sim.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.sim.push((key, value)),
        }
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\"schema_version\":");
        push_num(&mut s, SCHEMA_VERSION);
        s.push_str(",\"name\":");
        push_str_lit(&mut s, &self.name);
        s.push_str(",\"wall_secs\":");
        push_num(&mut s, self.wall_secs);
        s.push_str(",\"sim\":{");
        for (i, (k, v)) in self.sim.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_str_lit(&mut s, k);
            s.push(':');
            push_num(&mut s, *v);
        }
        s.push('}');
        if let Some(a) = &self.analysis {
            s.push_str(",\"analysis\":");
            s.push_str(&a.to_json());
        }
        // Additive sections under the same schema version: self_check
        // tolerates unknown fields and collect_leaves only walks sim.*
        // and analysis, so old bench-diff binaries still compare these
        // reports.
        if let Some(p) = &self.prof_json {
            s.push_str(",\"prof\":");
            s.push_str(p);
        }
        if let Some(t) = &self.timeseries_json {
            s.push_str(",\"timeseries\":");
            s.push_str(t);
        }
        s.push('}');
        s
    }

    /// Writes the report to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

// ---------------------------------------------------------------------
// JSON value + parser: shared with the snapshot codec in `fred-core`.
// ---------------------------------------------------------------------

pub use fred_core::codec::{parse, Value};

// ---------------------------------------------------------------------
// Self-check and diff.
// ---------------------------------------------------------------------

/// Validates one parsed report: schema version, required fields, and
/// the attribution-sum invariant (`Σ buckets == makespan` within
/// [`SUM_TOLERANCE`] relative, per run and in aggregate). Returns
/// human-readable info/warning lines on success.
pub fn self_check(report: &Value) -> Result<Vec<String>, String> {
    let mut info = Vec::new();
    let version = report
        .get("schema_version")
        .and_then(Value::as_f64)
        .ok_or("missing schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    let name = report
        .get("name")
        .and_then(Value::as_str)
        .ok_or("missing name")?;
    let wall = report
        .get("wall_secs")
        .and_then(Value::as_f64)
        .ok_or("missing wall_secs")?;
    if wall.is_nan() || wall < 0.0 {
        return Err(format!("wall_secs {wall} is not a non-negative number"));
    }
    let sim = report.get("sim").ok_or("missing sim object")?;
    let Value::Obj(sim_fields) = sim else {
        return Err("sim is not an object".into());
    };
    for (k, v) in sim_fields {
        if v.as_f64().is_none() {
            return Err(format!("sim metric `{k}` is not a number"));
        }
    }
    info.push(format!(
        "{name}: schema v{version}, {} sim metric(s), wall {wall:.3}s",
        sim_fields.len()
    ));

    if let Some(analysis) = report.get("analysis") {
        let truncated = analysis
            .get("trace_truncated")
            .and_then(Value::as_bool)
            .ok_or("analysis missing trace_truncated")?;
        if truncated {
            let dropped = analysis
                .get("dropped_events")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            info.push(format!(
                "WARNING: trace truncated ({dropped} events dropped); \
                 attribution is unreliable"
            ));
        }
        check_attribution_sum(analysis, "analysis", &mut info)?;
        if let Some(Value::Arr(runs)) = analysis.get("runs") {
            for (i, run) in runs.iter().enumerate() {
                check_run_sum(run, i)?;
            }
            info.push(format!(
                "attribution invariant holds over {} run(s)",
                runs.len()
            ));
        }
    }
    Ok(info)
}

fn attribution_total(node: &Value, ctx: &str) -> Result<f64, String> {
    let attr = node
        .get("attribution")
        .ok_or_else(|| format!("{ctx}: missing attribution"))?;
    let Value::Obj(buckets) = attr else {
        return Err(format!("{ctx}: attribution is not an object"));
    };
    let mut total = 0.0;
    for (k, v) in buckets {
        total += v
            .as_f64()
            .ok_or_else(|| format!("{ctx}: bucket `{k}` is not a number"))?;
    }
    Ok(total)
}

fn check_attribution_sum(node: &Value, ctx: &str, info: &mut Vec<String>) -> Result<(), String> {
    let total = attribution_total(node, ctx)?;
    let makespan = node
        .get("total_makespan_secs")
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{ctx}: missing total_makespan_secs"))?;
    let denom = makespan.abs().max(f64::MIN_POSITIVE);
    let rel = (total - makespan).abs() / denom;
    if rel > SUM_TOLERANCE {
        return Err(format!(
            "{ctx}: attribution sum {total} != makespan {makespan} \
             (relative error {rel:.3e} > {SUM_TOLERANCE:.0e})"
        ));
    }
    info.push(format!(
        "{ctx}: attribution sums to makespan ({makespan:.6}s, rel err {rel:.1e})"
    ));
    Ok(())
}

fn check_run_sum(run: &Value, i: usize) -> Result<(), String> {
    let ctx = format!("run[{i}]");
    let total = attribution_total(run, &ctx)?;
    let makespan = run
        .get("makespan_secs")
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{ctx}: missing makespan_secs"))?;
    let denom = makespan.abs().max(f64::MIN_POSITIVE);
    let rel = (total - makespan).abs() / denom;
    if rel > SUM_TOLERANCE {
        return Err(format!(
            "{ctx}: attribution sum {total} != makespan {makespan} \
             (relative error {rel:.3e})"
        ));
    }
    Ok(())
}

/// One compared leaf of two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Dotted path of the leaf (e.g. `sim.fig9/mesh/MP/secs`).
    pub key: String,
    /// Value in the baseline report (`NaN` when missing).
    pub a: f64,
    /// Value in the candidate report (`NaN` when missing).
    pub b: f64,
    /// Relative difference `|b - a| / max(|a|, |b|, ε)`.
    pub rel: f64,
}

impl DiffEntry {
    /// Whether this entry exceeds `threshold` (missing keys always
    /// do).
    pub fn exceeds(&self, threshold: f64) -> bool {
        self.a.is_nan() || self.b.is_nan() || self.rel > threshold
    }
}

impl fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.a.is_nan() {
            write!(
                f,
                "{}: missing in baseline (candidate {})",
                self.key, self.b
            )
        } else if self.b.is_nan() {
            write!(
                f,
                "{}: missing in candidate (baseline {})",
                self.key, self.a
            )
        } else {
            write!(
                f,
                "{}: {} -> {} ({:+.2}%)",
                self.key,
                self.a,
                self.b,
                100.0 * (self.b - self.a) / self.a.abs().max(f64::MIN_POSITIVE)
            )
        }
    }
}

/// Compares two parsed reports leaf by leaf over the regression
/// surface: every `sim.*` metric plus the analysis attribution buckets
/// and total makespan (wall time is excluded — too noisy to gate on).
/// Returns every compared entry; filter with
/// [`DiffEntry::exceeds`].
pub fn diff(a: &Value, b: &Value) -> Result<Vec<DiffEntry>, String> {
    for (label, v) in [("baseline", a), ("candidate", b)] {
        let version = v
            .get("schema_version")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{label}: missing schema_version"))?;
        if version != SCHEMA_VERSION {
            return Err(format!("{label}: unsupported schema_version {version}"));
        }
    }
    let mut leaves_a = Vec::new();
    let mut leaves_b = Vec::new();
    collect_leaves(a, &mut leaves_a);
    collect_leaves(b, &mut leaves_b);

    let mut out = Vec::new();
    for (key, va) in &leaves_a {
        let vb = leaves_b.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        let (va, vb) = (*va, vb.unwrap_or(f64::NAN));
        let rel = if vb.is_nan() {
            f64::INFINITY
        } else {
            (vb - va).abs() / va.abs().max(vb.abs()).max(f64::MIN_POSITIVE)
        };
        out.push(DiffEntry {
            key: key.clone(),
            a: va,
            b: vb,
            rel,
        });
    }
    for (key, vb) in &leaves_b {
        if !leaves_a.iter().any(|(k, _)| k == key) {
            out.push(DiffEntry {
                key: key.clone(),
                a: f64::NAN,
                b: *vb,
                rel: f64::INFINITY,
            });
        }
    }
    out.sort_by(|x, y| y.rel.total_cmp(&x.rel).then(x.key.cmp(&y.key)));
    Ok(out)
}

/// The numeric leaves two reports are compared over.
fn collect_leaves(report: &Value, out: &mut Vec<(String, f64)>) {
    if let Some(Value::Obj(sim)) = report.get("sim") {
        for (k, v) in sim {
            if let Some(n) = v.as_f64() {
                out.push((format!("sim.{k}"), n));
            }
        }
    }
    if let Some(analysis) = report.get("analysis") {
        if let Some(n) = analysis.get("total_makespan_secs").and_then(Value::as_f64) {
            out.push(("analysis.total_makespan_secs".into(), n));
        }
        if let Some(Value::Obj(buckets)) = analysis.get("attribution") {
            for (k, v) in buckets {
                if let Some(n) = v.as_f64() {
                    out.push((format!("analysis.attribution.{k}"), n));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let mut r = BenchReport::new("figX");
        r.wall_secs = 0.25;
        r.metric("mesh/MP/secs", 1.5);
        r.metric("fredd/MP/secs", 0.75);
        r
    }

    #[test]
    fn report_roundtrips_through_parser() {
        let r = sample_report();
        let v = parse(&r.to_json()).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("figX"));
        assert_eq!(
            v.get("schema_version").and_then(Value::as_f64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(
            v.get("sim")
                .and_then(|s| s.get("mesh/MP/secs"))
                .and_then(Value::as_f64),
            Some(1.5)
        );
        assert!(self_check(&v).is_ok());
    }

    #[test]
    fn metric_overwrites_existing_key() {
        let mut r = sample_report();
        r.metric("mesh/MP/secs", 2.0);
        assert_eq!(r.sim.iter().filter(|(k, _)| k == "mesh/MP/secs").count(), 1);
        assert_eq!(r.sim[0].1, 2.0);
    }

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let v =
            parse(r#"{"a": [1, -2.5e3, true, null], "s": "x\"y\nA", "o": {"k": 0.125}}"#).unwrap();
        let Value::Arr(a) = v.get("a").unwrap() else {
            panic!()
        };
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2500.0));
        assert_eq!(a[2].as_bool(), Some(true));
        assert_eq!(a[3], Value::Null);
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x\"y\nA"));
        assert_eq!(
            v.get("o").and_then(|o| o.get("k")).and_then(Value::as_f64),
            Some(0.125)
        );
        assert!(parse("{\"unterminated\": ").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn identical_reports_diff_clean() {
        let v = parse(&sample_report().to_json()).unwrap();
        let entries = diff(&v, &v).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|e| !e.exceeds(0.0)));
    }

    #[test]
    fn diff_flags_changes_beyond_threshold() {
        let a = parse(&sample_report().to_json()).unwrap();
        let mut changed = sample_report();
        changed.metric("mesh/MP/secs", 1.65); // +10%
        let b = parse(&changed.to_json()).unwrap();
        let entries = diff(&a, &b).unwrap();
        let bad: Vec<_> = entries.iter().filter(|e| e.exceeds(0.05)).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].key, "sim.mesh/MP/secs");
        // A 20% threshold passes.
        assert!(entries.iter().all(|e| !e.exceeds(0.2)));
    }

    #[test]
    fn diff_flags_missing_keys() {
        let a = parse(&sample_report().to_json()).unwrap();
        let mut fewer = BenchReport::new("figX");
        fewer.metric("mesh/MP/secs", 1.5);
        let b = parse(&fewer.to_json()).unwrap();
        let entries = diff(&a, &b).unwrap();
        assert!(entries
            .iter()
            .any(|e| e.key == "sim.fredd/MP/secs" && e.exceeds(f64::INFINITY)));
    }

    #[test]
    fn self_check_rejects_broken_invariant() {
        // Attribution that does not sum to the makespan.
        let doc = r#"{"schema_version":1,"name":"x","wall_secs":0,"sim":{},
            "analysis":{"trace_truncated":false,"dropped_events":0,
            "total_makespan_secs":2.0,
            "attribution":{"compute":1.0,"contention":0.5},"runs":[]}}"#;
        let v = parse(doc).unwrap();
        let err = self_check(&v).unwrap_err();
        assert!(err.contains("attribution sum"), "{err}");
    }

    #[test]
    fn self_check_accepts_valid_analysis_and_warns_on_truncation() {
        let doc = r#"{"schema_version":1,"name":"x","wall_secs":0.1,"sim":{"m":1},
            "analysis":{"trace_truncated":true,"dropped_events":9,
            "total_makespan_secs":1.5,
            "attribution":{"compute":1.0,"contention":0.5},
            "runs":[{"makespan_secs":1.5,
                     "attribution":{"compute":1.0,"contention":0.5}}]}}"#;
        let v = parse(doc).unwrap();
        let info = self_check(&v).unwrap();
        assert!(info.iter().any(|l| l.contains("WARNING")), "{info:?}");
    }

    #[test]
    fn self_check_rejects_wrong_schema_version() {
        let v = parse(r#"{"schema_version":99,"name":"x","wall_secs":0,"sim":{}}"#).unwrap();
        assert!(self_check(&v).is_err());
    }

    #[test]
    fn report_with_analysis_passes_self_check() {
        use fred_telemetry::event::{TraceEvent, Track};
        let mut r = sample_report();
        let evs = [
            TraceEvent::PhaseBegin {
                t: 0.0,
                track: Track::Compute,
                span: 1,
                label: "c".into(),
                bytes: 0.0,
                npus: 0,
                tag: 0,
            },
            TraceEvent::PhaseEnd {
                t: 2.0,
                track: Track::Compute,
                span: 1,
            },
        ];
        r.analysis = Some(Analysis::from_events(&evs));
        let v = parse(&r.to_json()).unwrap();
        let info = self_check(&v).unwrap();
        assert!(
            info.iter().any(|l| l.contains("sums to makespan")),
            "{info:?}"
        );
    }
}

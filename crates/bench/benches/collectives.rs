//! Criterion bench: collective plan construction and simulation.
//!
//! Compares the cost of compiling and simulating a wafer-wide
//! All-Reduce on every Table 5 fabric — plan building is the
//! compile-time cost, execution is the simulator's.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fred_core::params::FabricConfig;
use fred_sim::netsim::FlowNetwork;
use fred_workloads::backend::FabricBackend;

fn bench_collectives(c: &mut Criterion) {
    let group_all: Vec<usize> = (0..20).collect();
    let mut build = c.benchmark_group("plan_build");
    for config in FabricConfig::ALL {
        let backend = FabricBackend::new(config);
        build.bench_with_input(BenchmarkId::new("allreduce20", config.name()), &config, |b, _| {
            b.iter(|| backend.all_reduce(std::hint::black_box(&group_all), 1e9))
        });
    }
    build.finish();

    let mut exec = c.benchmark_group("plan_execute");
    for config in FabricConfig::ALL {
        let backend = FabricBackend::new(config);
        let plan = backend.all_reduce(&group_all, 1e9);
        exec.bench_with_input(BenchmarkId::new("allreduce20", config.name()), &config, |b, _| {
            b.iter(|| {
                let mut net = FlowNetwork::new(backend.topology());
                plan.execute(&mut net, fred_sim::flow::Priority::Dp)
            })
        });
    }
    exec.finish();
}


fn fast() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!{
    name = benches;
    config = fast();
    targets = bench_collectives
}
criterion_main!(benches);

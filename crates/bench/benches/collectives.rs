//! Bench: collective plan construction and simulation.
//!
//! Compares the cost of compiling and simulating a wafer-wide
//! All-Reduce on every Table 5 fabric — plan building is the
//! compile-time cost, execution is the simulator's.

use fred_bench::timing::bench;
use fred_core::params::FabricConfig;
use fred_sim::netsim::FlowNetwork;
use fred_workloads::backend::FabricBackend;

fn main() {
    let group_all: Vec<usize> = (0..20).collect();

    println!("== plan_build ==");
    for config in FabricConfig::ALL {
        let backend = FabricBackend::new(config);
        bench(&format!("allreduce20/{}", config.name()), || {
            backend.all_reduce(std::hint::black_box(&group_all), 1e9)
        });
    }

    println!("== plan_execute ==");
    for config in FabricConfig::ALL {
        let backend = FabricBackend::new(config);
        let plan = backend.all_reduce(&group_all, 1e9);
        bench(&format!("allreduce20/{}", config.name()), || {
            let mut net = FlowNetwork::new(backend.topology());
            plan.execute(&mut net, fred_sim::flow::Priority::Dp)
                .unwrap()
        });
    }
}

//! Bench: the max-min fair allocator (DESIGN.md ablation 1).
//!
//! The allocator runs on every flow arrival/completion; its cost versus
//! flow and link count bounds the simulator's event rate.

use fred_bench::timing::bench;
use fred_sim::fairshare::{max_min_rates, AllocFlow};
use fred_sim::flow::Priority;

fn make_case(links: usize, flows: usize, hops: usize) -> (Vec<f64>, Vec<Vec<usize>>) {
    let caps = vec![1e12; links];
    let routes: Vec<Vec<usize>> = (0..flows)
        .map(|f| (0..hops).map(|h| (f * 7 + h * 13) % links).collect())
        .collect();
    (caps, routes)
}

fn main() {
    println!("== max_min_rates ==");
    for (links, flows) in [(64usize, 32usize), (134, 100), (134, 400), (512, 1000)] {
        let (caps, routes) = make_case(links, flows, 4);
        let alloc: Vec<AllocFlow<'_>> = routes
            .iter()
            .enumerate()
            .map(|(i, r)| AllocFlow {
                links: r,
                priority: match i % 3 {
                    0 => Priority::Mp,
                    1 => Priority::Dp,
                    _ => Priority::Bulk,
                },
            })
            .collect();
        bench(&format!("links_flows/{links}x{flows}"), || {
            max_min_rates(std::hint::black_box(&caps), &alloc)
        });
    }
}

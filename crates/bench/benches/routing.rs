//! Bench: the compile-time routing pass (§5.2).
//!
//! Measures `route_flows` cost versus switch size and flow mix — the
//! cost the compiler pays once per communication phase.

use fred_bench::timing::bench;
use fred_core::flow::Flow;
use fred_core::interconnect::Interconnect;
use fred_core::routing::route_flows;

fn concurrent_pairs(ports: usize) -> Vec<Flow> {
    (0..ports / 2)
        .map(|i| Flow::all_reduce([2 * i, 2 * i + 1]).unwrap())
        .collect()
}

fn main() {
    println!("== route_flows ==");
    for ports in [8usize, 16, 32, 64] {
        let net = Interconnect::new(3, ports).unwrap();
        let wafer_ar = vec![Flow::all_reduce(0..ports).unwrap()];
        bench(&format!("wafer_allreduce/{ports}"), || {
            route_flows(&net, std::hint::black_box(&wafer_ar)).unwrap()
        });
        let pairs = concurrent_pairs(ports);
        bench(&format!("pairwise/{ports}"), || {
            route_flows(&net, std::hint::black_box(&pairs)).unwrap()
        });
    }

    println!("== route_and_verify ==");
    let net = Interconnect::new(3, 20).unwrap();
    let flows = vec![
        Flow::all_reduce([0usize, 1, 2, 3, 4]).unwrap(),
        Flow::all_reduce([5usize, 6, 7, 8, 9]).unwrap(),
        Flow::all_reduce([10usize, 11, 12, 13, 14]).unwrap(),
        Flow::all_reduce([15usize, 16, 17, 18, 19]).unwrap(),
    ];
    bench("fred3_20_four_groups", || {
        let routed = route_flows(&net, std::hint::black_box(&flows)).unwrap();
        routed.verify(&flows).unwrap();
    });
}

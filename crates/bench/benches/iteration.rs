//! Bench: one full training iteration end-to-end.
//!
//! The headline simulation cost: schedule compilation + discrete-event
//! execution of Transformer-17B's Table 6 strategy on the baseline and
//! Fred-D.

use fred_bench::timing::bench;
use fred_core::params::FabricConfig;
use fred_workloads::backend::FabricBackend;
use fred_workloads::model::DnnModel;
use fred_workloads::schedule::ScheduleParams;
use fred_workloads::trainer::simulate;

fn main() {
    let model = DnnModel::transformer_17b();
    let strategy = model.default_strategy;
    let params = ScheduleParams::paper_default(&model, strategy);
    println!("== training_iteration ==");
    for config in [FabricConfig::BaselineMesh, FabricConfig::FredD] {
        let backend = FabricBackend::new(config);
        bench(&format!("transformer17b/{}", config.name()), || {
            simulate(&model, strategy, &backend, params).unwrap()
        });
    }
}

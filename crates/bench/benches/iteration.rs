//! Criterion bench: one full training iteration end-to-end.
//!
//! The headline simulation cost: schedule compilation + discrete-event
//! execution of Transformer-17B's Table 6 strategy on the baseline and
//! Fred-D.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fred_core::params::FabricConfig;
use fred_workloads::backend::FabricBackend;
use fred_workloads::model::DnnModel;
use fred_workloads::schedule::ScheduleParams;
use fred_workloads::trainer::simulate;

fn bench_iteration(c: &mut Criterion) {
    let model = DnnModel::transformer_17b();
    let strategy = model.default_strategy;
    let params = ScheduleParams::paper_default(&model, strategy);
    let mut group = c.benchmark_group("training_iteration");
    group.sample_size(10);
    for config in [FabricConfig::BaselineMesh, FabricConfig::FredD] {
        let backend = FabricBackend::new(config);
        group.bench_with_input(
            BenchmarkId::new("transformer17b", config.name()),
            &config,
            |b, _| b.iter(|| simulate(&model, strategy, &backend, params)),
        );
    }
    group.finish();
}


fn fast() -> Criterion {
    Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!{
    name = benches;
    config = fast();
    targets = bench_iteration
}
criterion_main!(benches);

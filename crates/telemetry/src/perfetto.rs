//! Chrome-trace / Perfetto JSON export.
//!
//! Renders recorded [`TraceEvent`]s in the Trace Event Format that
//! both `chrome://tracing` and <https://ui.perfetto.dev> open
//! directly:
//!
//! * collective phases become complete (`"ph":"X"`) duration spans on
//!   one named thread-track per parallelism dimension (MP / PP / DP /
//!   bulk / compute);
//! * per-link utilization samples and the active-flow count become
//!   counter (`"ph":"C"`) tracks;
//! * trainer iteration-stage markers become instant (`"ph":"i"`)
//!   events.
//!
//! Timestamps are microseconds (the format's unit) converted from the
//! simulator's seconds.

use std::collections::HashMap;
use std::io::{self, Write};

use crate::event::{TraceEvent, Track};
use crate::json::{push_num, push_str_lit};

/// The `pid` used for span/marker tracks.
const PID_PHASES: u32 = 1;
/// The `pid` used for counter tracks.
const PID_COUNTERS: u32 = 2;

/// Exporter configuration.
#[derive(Debug, Clone, Default)]
pub struct TraceMeta {
    /// Human-readable link names, indexed by link id; links beyond the
    /// end (or an empty vec) are named `link<i>`.
    pub link_names: Vec<String>,
    /// Optional experiment name shown as the process name.
    pub process_name: Option<String>,
}

impl TraceMeta {
    fn link_name(&self, link: u32) -> String {
        self.link_names
            .get(link as usize)
            .cloned()
            .unwrap_or_else(|| format!("link{link}"))
    }
}

fn us(t: f64) -> f64 {
    t * 1e6
}

/// Writes the events as one Chrome-trace JSON document.
///
/// Unpaired [`TraceEvent::PhaseBegin`]s (a trace cut off mid-phase)
/// are closed at the last timestamp observed so the file stays valid.
pub fn export_chrome_trace(
    events: &[TraceEvent],
    meta: &TraceMeta,
    out: &mut impl Write,
) -> io::Result<()> {
    let mut body = String::with_capacity(events.len() * 96 + 1024);
    body.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    fn push_event(body: &mut String, first: &mut bool, ev: String) {
        if !*first {
            body.push(',');
        }
        *first = false;
        body.push_str(&ev);
    }

    // Process/thread naming metadata.
    let pname = meta.process_name.as_deref().unwrap_or("fred-sim");
    for (pid, suffix) in [(PID_PHASES, "phases"), (PID_COUNTERS, "counters")] {
        let mut ev = String::new();
        ev.push_str("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":");
        push_num(&mut ev, pid as f64);
        ev.push_str(",\"args\":{\"name\":");
        push_str_lit(&mut ev, &format!("{pname} — {suffix}"));
        ev.push_str("}}");
        push_event(&mut body, &mut first, ev);
    }
    for track in Track::ALL {
        let mut ev = String::new();
        ev.push_str("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":");
        push_num(&mut ev, PID_PHASES as f64);
        ev.push_str(",\"tid\":");
        push_num(&mut ev, track.index() as f64);
        ev.push_str(",\"args\":{\"name\":");
        push_str_lit(&mut ev, track.name());
        ev.push_str("}}");
        push_event(&mut body, &mut first, ev);
    }

    // Pair phase begin/end into complete ("X") events.
    struct OpenSpan {
        t: f64,
        track: Track,
        label: Box<str>,
        bytes: f64,
        npus: u32,
    }
    let mut open: HashMap<u64, OpenSpan> = HashMap::new();
    let mut last_t = 0.0_f64;

    fn emit_span(body: &mut String, first: &mut bool, s: &OpenSpan, end: f64) {
        let dur = (end - s.t).max(0.0);
        let mut ev = String::new();
        ev.push_str("{\"ph\":\"X\",\"pid\":");
        push_num(&mut ev, PID_PHASES as f64);
        ev.push_str(",\"tid\":");
        push_num(&mut ev, s.track.index() as f64);
        ev.push_str(",\"name\":");
        push_str_lit(&mut ev, &s.label);
        ev.push_str(",\"cat\":");
        push_str_lit(&mut ev, s.track.name());
        ev.push_str(",\"ts\":");
        push_num(&mut ev, us(s.t));
        ev.push_str(",\"dur\":");
        push_num(&mut ev, us(dur));
        ev.push_str(",\"args\":{\"bytes\":");
        push_num(&mut ev, s.bytes);
        ev.push_str(",\"npus\":");
        push_num(&mut ev, s.npus as f64);
        if dur > 0.0 && s.bytes > 0.0 && s.npus > 0 {
            ev.push_str(",\"eff_GBps_per_npu\":");
            push_num(&mut ev, s.bytes / dur / s.npus as f64 / 1e9);
        }
        ev.push_str("}}");
        push_event(body, first, ev);
    }

    for e in events {
        last_t = last_t.max(e.time());
        match e {
            TraceEvent::PhaseBegin {
                t,
                track,
                span,
                label,
                bytes,
                npus,
                ..
            } => {
                open.insert(
                    *span,
                    OpenSpan {
                        t: *t,
                        track: *track,
                        label: label.clone(),
                        bytes: *bytes,
                        npus: *npus,
                    },
                );
            }
            TraceEvent::PhaseEnd { t, span, .. } => {
                if let Some(s) = open.remove(span) {
                    emit_span(&mut body, &mut first, &s, *t);
                }
            }
            TraceEvent::LinkUtil {
                t,
                link,
                utilization,
            } => {
                let mut ev = String::new();
                ev.push_str("{\"ph\":\"C\",\"pid\":");
                push_num(&mut ev, PID_COUNTERS as f64);
                ev.push_str(",\"name\":");
                push_str_lit(&mut ev, &format!("util {}", meta.link_name(*link)));
                ev.push_str(",\"ts\":");
                push_num(&mut ev, us(*t));
                ev.push_str(",\"args\":{\"utilization\":");
                push_num(&mut ev, *utilization);
                ev.push_str("}}");
                push_event(&mut body, &mut first, ev);
            }
            TraceEvent::RateEpoch {
                t,
                active_flows,
                changed,
            } => {
                let mut ev = String::new();
                ev.push_str("{\"ph\":\"C\",\"pid\":");
                push_num(&mut ev, PID_COUNTERS as f64);
                ev.push_str(",\"name\":\"active flows\",\"ts\":");
                push_num(&mut ev, us(*t));
                ev.push_str(",\"args\":{\"flows\":");
                push_num(&mut ev, *active_flows as f64);
                ev.push_str(",\"changed\":");
                push_num(&mut ev, *changed as f64);
                ev.push_str("}}");
                push_event(&mut body, &mut first, ev);
            }
            TraceEvent::Fault {
                t,
                link,
                capacity_fraction,
                evicted,
            } => {
                // A fault is a process-scoped instant on the iteration
                // track: visible as a pin at the moment the fabric
                // degraded, with the details in args.
                let mut ev = String::new();
                ev.push_str("{\"ph\":\"i\",\"s\":\"p\",\"pid\":");
                push_num(&mut ev, PID_PHASES as f64);
                ev.push_str(",\"tid\":");
                push_num(&mut ev, Track::Iteration.index() as f64);
                ev.push_str(",\"name\":");
                let verb = if *capacity_fraction == 0.0 {
                    "FAULT: link failed"
                } else {
                    "FAULT: link degraded"
                };
                push_str_lit(&mut ev, &format!("{verb} {}", meta.link_name(*link)));
                ev.push_str(",\"ts\":");
                push_num(&mut ev, us(*t));
                ev.push_str(",\"args\":{\"capacity_fraction\":");
                push_num(&mut ev, *capacity_fraction);
                ev.push_str(",\"evicted_flows\":");
                push_num(&mut ev, *evicted as f64);
                ev.push_str("}}");
                push_event(&mut body, &mut first, ev);
            }
            TraceEvent::IterStage { t, label } => {
                let mut ev = String::new();
                ev.push_str("{\"ph\":\"i\",\"s\":\"p\",\"pid\":");
                push_num(&mut ev, PID_PHASES as f64);
                ev.push_str(",\"tid\":");
                push_num(&mut ev, Track::Iteration.index() as f64);
                ev.push_str(",\"name\":");
                push_str_lit(&mut ev, label);
                ev.push_str(",\"ts\":");
                push_num(&mut ev, us(*t));
                ev.push('}');
                push_event(&mut body, &mut first, ev);
            }
            // Individual flow lifecycle events are aggregated by the
            // metrics layer rather than drawn (hundreds of thousands
            // of instants would drown the phase view); topology
            TraceEvent::Sample { t, key, value } => {
                // Generic samples render as counter tracks, like
                // link utilization.
                let mut ev = String::new();
                ev.push_str("{\"ph\":\"C\",\"pid\":");
                push_num(&mut ev, PID_COUNTERS as f64);
                ev.push_str(",\"name\":");
                push_str_lit(&mut ev, key);
                ev.push_str(",\"ts\":");
                push_num(&mut ev, us(*t));
                ev.push_str(",\"args\":{\"value\":");
                push_num(&mut ev, *value);
                ev.push_str("}}");
                push_event(&mut body, &mut first, ev);
            }
            // markers and span dependencies belong to the analysis
            // layer.
            TraceEvent::FlowInjected { .. }
            | TraceEvent::FlowDrained { .. }
            | TraceEvent::FlowCompleted { .. }
            | TraceEvent::Topology { .. }
            | TraceEvent::SpanDep { .. } => {}
        }
    }

    // Close any span left open by a truncated trace.
    let still_open: Vec<OpenSpan> = open.into_values().collect();
    for s in &still_open {
        emit_span(&mut body, &mut first, s, last_t);
    }

    body.push_str("]}");
    out.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PhaseBegin {
                t: 0.0,
                track: Track::Mp,
                span: 1,
                label: "mp-allreduce".into(),
                bytes: 2e9,
                npus: 4,
                tag: 0,
            },
            TraceEvent::LinkUtil {
                t: 0.0,
                link: 0,
                utilization: 1.0,
            },
            TraceEvent::RateEpoch {
                t: 0.0,
                active_flows: 4,
                changed: 4,
            },
            TraceEvent::LinkUtil {
                t: 0.5,
                link: 0,
                utilization: 0.0,
            },
            TraceEvent::PhaseEnd {
                t: 0.5,
                track: Track::Mp,
                span: 1,
            },
            TraceEvent::IterStage {
                t: 0.5,
                label: "fwd done".into(),
            },
        ]
    }

    fn export(evs: &[TraceEvent]) -> String {
        let mut out = Vec::new();
        export_chrome_trace(evs, &TraceMeta::default(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn emits_spans_counters_and_markers() {
        let s = export(&sample_events());
        assert!(s.contains("\"ph\":\"X\""), "no duration span: {s}");
        assert!(s.contains("\"ph\":\"C\""), "no counter: {s}");
        assert!(s.contains("\"ph\":\"i\""), "no instant: {s}");
        assert!(s.contains("mp-allreduce"));
        assert!(s.contains("util link0"));
        // 0.5 s span => 500000 us duration.
        assert!(s.contains("\"dur\":500000"), "{s}");
        // Effective bandwidth: 2e9 bytes / 0.5 s / 4 npus = 1 GB/s.
        assert!(s.contains("\"eff_GBps_per_npu\":1"), "{s}");
    }

    #[test]
    fn unclosed_spans_are_flushed() {
        let evs = vec![
            TraceEvent::PhaseBegin {
                t: 0.0,
                track: Track::Dp,
                span: 9,
                label: "open".into(),
                bytes: 0.0,
                npus: 0,
                tag: 0,
            },
            TraceEvent::RateEpoch {
                t: 2.0,
                active_flows: 0,
                changed: 0,
            },
        ];
        let s = export(&evs);
        assert!(s.contains("\"name\":\"open\""));
        assert!(s.contains("\"dur\":2000000"));
    }

    #[test]
    fn output_is_balanced_json() {
        // A structural sanity check without a JSON parser: braces and
        // brackets balance and the document starts/ends as an object.
        let s = export(&sample_events());
        assert!(s.starts_with('{') && s.ends_with('}'));
        let braces: i64 = s
            .chars()
            .map(|c| match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(braces, 0);
        let brackets: i64 = s
            .chars()
            .map(|c| match c {
                '[' => 1,
                ']' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(brackets, 0);
    }

    #[test]
    fn link_names_are_used() {
        let meta = TraceMeta {
            link_names: vec!["npu0->sw0".into()],
            process_name: Some("fig9".into()),
        };
        let mut out = Vec::new();
        export_chrome_trace(&sample_events(), &meta, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("util npu0->sw0"));
        assert!(s.contains("fig9"));
    }
}

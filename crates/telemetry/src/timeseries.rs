//! Continuous time-series flight recorder.
//!
//! A [`FlightRecorder`] is a [`TraceSink`](crate::sink::TraceSink)
//! that *aggregates as it records*: instead of storing every event it
//! folds the stream into bounded per-quantity time series — per-link
//! utilization, active-flow count, open-phase mix per track, fault and
//! lifecycle counters, plus any [`TraceEvent::Sample`] gauges emitted
//! by higher layers (the cluster scheduler's per-tenant queue depth,
//! running-job counts and stretch) — and a log-bucketed
//! flow-completion-time histogram per simulation segment.
//!
//! Memory is bounded by construction, not by dropping the tail the way
//! the ring recorder must: every [`Series`] holds at most
//! [`Series::CAP`] samples and *decimates* when full (every other
//! sample is discarded and the minimum sim-time cadence between kept
//! samples doubles). A finished series therefore spans the whole run
//! at a resolution that adapted to the run's length — the flight
//! recorder never overflows and never forgets the beginning of the
//! flight. Per-link series are additionally capped at
//! [`FlightRecorder::MAX_LINK_SERIES`] per segment (wafer-scale meshes
//! have tens of thousands of links; a dashboard cannot show them all)
//! with a drop counter surfaced in the snapshot.
//!
//! Everything here is deterministic: the same event stream produces
//! bit-identical snapshots (asserted by the integration tests), so
//! exported series are a valid regression surface.

use std::cell::RefCell;
use std::collections::BTreeMap;

use crate::event::{TraceEvent, Track};
use crate::json::{push_num, push_str_lit};
use crate::sink::TraceSink;

/// How a series' values combine over time (drives the Prometheus
/// `# TYPE` line; storage is identical — both keep the current value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// A point-in-time level (utilization, queue depth).
    Gauge,
    /// A cumulative, monotonically non-decreasing count.
    Counter,
}

impl SeriesKind {
    /// Prometheus type name.
    pub fn prom_type(self) -> &'static str {
        match self {
            SeriesKind::Gauge => "gauge",
            SeriesKind::Counter => "counter",
        }
    }
}

/// One bounded time series of `(sim_seconds, value)` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name, `base/detail` by convention (`link_util/3`,
    /// `queue_depth/high`).
    pub name: String,
    /// Gauge or counter.
    pub kind: SeriesKind,
    /// Samples, ascending in time.
    pub samples: Vec<(f64, f64)>,
    /// Minimum sim-time spacing between kept samples; doubles on each
    /// decimation (0 until the first decimation: every update kept).
    min_dt: f64,
}

impl Series {
    /// Samples held per series before decimation halves the resolution.
    pub const CAP: usize = 512;

    /// Creates an empty series.
    pub fn new(name: impl Into<String>, kind: SeriesKind) -> Series {
        Series {
            name: name.into(),
            kind,
            samples: Vec::new(),
            min_dt: 0.0,
        }
    }

    /// Records the value at `t` sim-seconds. Updates inside the
    /// current cadence window overwrite the window's sample (latest
    /// value wins — both gauges and cumulative counters want the most
    /// recent level); when the buffer reaches [`Series::CAP`] it is
    /// decimated in place and the cadence doubles.
    pub fn push(&mut self, t: f64, value: f64) {
        if let Some(last) = self.samples.last_mut() {
            if t <= last.0 + self.min_dt {
                last.1 = value;
                return;
            }
        }
        self.samples.push((t, value));
        if self.samples.len() >= Series::CAP {
            let span = self.samples.last().expect("non-empty").0 - self.samples[0].0;
            let mut i = 0;
            self.samples.retain(|_| {
                i += 1;
                (i - 1) % 2 == 0
            });
            self.min_dt = (span / (Series::CAP as f64 / 2.0)).max(self.min_dt * 2.0);
        }
    }

    /// The most recent value, if any sample was recorded.
    pub fn last_value(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// Minimum and maximum recorded value (`None` when empty).
    pub fn value_range(&self) -> Option<(f64, f64)> {
        self.samples.iter().fold(None, |acc, &(_, v)| match acc {
            None => Some((v, v)),
            Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
        })
    }
}

/// A log₂-bucketed histogram of positive values.
///
/// Bucket `i` covers `[floor·2^i, floor·2^(i+1))`; values below
/// `floor` land in bucket 0, values beyond the last bucket in the
/// last. Constant memory, O(1) insert, and quantiles answered to
/// within one bucket's width — the classic flight-recorder trade.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    floor: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LogHistogram {
    /// Number of log₂ buckets: `floor` to `floor·2^64` spans any
    /// physically meaningful range (1 ns to ~584 years at ns floor).
    pub const BUCKETS: usize = 64;

    /// Creates an empty histogram with the given smallest resolvable
    /// value.
    ///
    /// # Panics
    ///
    /// Panics unless `floor` is finite and positive.
    pub fn new(floor: f64) -> LogHistogram {
        assert!(
            floor.is_finite() && floor > 0.0,
            "histogram floor must be finite and positive, got {floor}"
        );
        LogHistogram {
            floor,
            counts: vec![0; LogHistogram::BUCKETS],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(&self, v: f64) -> usize {
        if v <= self.floor || v.is_nan() {
            return 0;
        }
        ((v / self.floor).log2().floor() as usize).min(LogHistogram::BUCKETS - 1)
    }

    /// Records one value. Non-finite values are ignored (JSON cannot
    /// carry them and no simulator quantity should produce them).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let b = self.bucket_of(v);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Lower and upper bound of the bucket holding the nearest-rank
    /// `q`-quantile (0 < q ≤ 1). The exact quantile of the recorded
    /// multiset is guaranteed to lie inside the returned interval —
    /// the resolution contract the oracle test enforces. Returns
    /// `(0, 0)` when empty.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `(0, 1]`.
    pub fn quantile_bounds(&self, q: f64) -> (f64, f64) {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1], got {q}");
        if self.total == 0 {
            return (0.0, 0.0);
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = if i == 0 {
                    // Bucket 0 also absorbs sub-floor values.
                    self.min.min(self.floor)
                } else {
                    self.floor * (i as f64).exp2()
                };
                let hi = self.floor * ((i + 1) as f64).exp2();
                return (lo.min(self.max), hi.min(self.max.max(lo)));
            }
        }
        (self.max, self.max)
    }

    /// Point estimate of the `q`-quantile: the geometric midpoint of
    /// [`LogHistogram::quantile_bounds`], clamped to the observed
    /// range. Within a factor of √2̄ of a bucket edge of the true
    /// value.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        let (lo, hi) = self.quantile_bounds(q);
        if lo <= 0.0 || hi <= 0.0 {
            return lo.max(0.0);
        }
        (lo * hi).sqrt().clamp(self.min, self.max)
    }

    /// The non-empty prefix of buckets as `(upper_bound, count)` — the
    /// exporters' view (Prometheus cumulative buckets, dashboard bars).
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        let last = match self.counts.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        (0..=last)
            .map(|i| (self.floor * ((i + 1) as f64).exp2(), self.counts[i]))
            .collect()
    }

    /// Renders as a JSON object (`count`, `sum`, `min`, `max`,
    /// `p50`/`p99`, and the non-empty `buckets`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"count\":");
        push_num(&mut s, self.total as f64);
        s.push_str(",\"sum\":");
        push_num(&mut s, self.sum);
        s.push_str(",\"min\":");
        push_num(&mut s, self.min());
        s.push_str(",\"max\":");
        push_num(&mut s, self.max());
        if self.total > 0 {
            s.push_str(",\"p50\":");
            push_num(&mut s, self.quantile(0.5));
            s.push_str(",\"p99\":");
            push_num(&mut s, self.quantile(0.99));
        }
        s.push_str(",\"buckets\":[");
        for (i, (le, c)) in self.buckets().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            push_num(&mut s, *le);
            s.push(',');
            push_num(&mut s, *c as f64);
            s.push(']');
        }
        s.push_str("]}");
        s
    }
}

/// Mutable recorder state behind the [`TraceSink`] interior
/// mutability.
#[derive(Debug)]
struct FlightState {
    /// Current simulation segment (one per [`TraceEvent::Topology`];
    /// the figure binaries run several simulations into one sink).
    segment: u32,
    seen_topology: bool,
    /// Series storage, keyed `(segment, name)`.
    index: BTreeMap<(u32, String), usize>,
    series: Vec<Series>,
    /// Flow-completion-time histogram per segment (seconds, ns floor).
    fct: BTreeMap<u32, LogHistogram>,
    /// Open-phase count per track, reset at segment boundaries.
    open: [i64; Track::ALL.len()],
    injected: u64,
    completed: u64,
    faults: u64,
    link_series: usize,
    link_series_dropped: u64,
}

/// Aggregating [`TraceSink`]: bounded time series + histograms, never
/// overflows. See the [module docs](self).
#[derive(Debug)]
pub struct FlightRecorder {
    state: RefCell<FlightState>,
}

impl FlightRecorder {
    /// Per-link series cap per segment; link series beyond it are
    /// dropped (and counted) rather than exhausting memory on a
    /// 64×64-mesh churn run.
    pub const MAX_LINK_SERIES: usize = 128;

    /// Creates an empty recorder.
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            state: RefCell::new(FlightState {
                segment: 0,
                seen_topology: false,
                index: BTreeMap::new(),
                series: Vec::new(),
                fct: BTreeMap::new(),
                open: [0; Track::ALL.len()],
                injected: 0,
                completed: 0,
                faults: 0,
                link_series: 0,
                link_series_dropped: 0,
            }),
        }
    }

    /// Clones out the recorded state for export.
    pub fn snapshot(&self) -> FlightSnapshot {
        let st = self.state.borrow();
        let mut segments: BTreeMap<u32, SegmentSnapshot> = BTreeMap::new();
        for (&(seg, _), &idx) in &st.index {
            segments
                .entry(seg)
                .or_insert_with(|| SegmentSnapshot {
                    segment: seg,
                    series: Vec::new(),
                    fct: LogHistogram::new(1e-9),
                })
                .series
                .push(st.series[idx].clone());
        }
        for (&seg, fct) in &st.fct {
            segments
                .entry(seg)
                .or_insert_with(|| SegmentSnapshot {
                    segment: seg,
                    series: Vec::new(),
                    fct: LogHistogram::new(1e-9),
                })
                .fct = fct.clone();
        }
        FlightSnapshot {
            segments: segments.into_values().collect(),
            link_series_dropped: st.link_series_dropped,
        }
    }
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightState {
    fn push(&mut self, name: &str, kind: SeriesKind, t: f64, value: f64) {
        let key = (self.segment, name.to_string());
        let idx = match self.index.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.series.len();
                self.series.push(Series::new(name, kind));
                self.index.insert(key, i);
                i
            }
        };
        self.series[idx].push(t, value);
    }

    fn push_link(&mut self, link: u32, t: f64, value: f64) {
        let key = (self.segment, format!("link_util/{link}"));
        if let Some(&idx) = self.index.get(&key) {
            self.series[idx].push(t, value);
            return;
        }
        if self.link_series >= FlightRecorder::MAX_LINK_SERIES {
            self.link_series_dropped += 1;
            return;
        }
        self.link_series += 1;
        let i = self.series.len();
        self.series
            .push(Series::new(key.1.clone(), SeriesKind::Gauge));
        self.index.insert(key, i);
        self.series[i].push(t, value);
    }

    fn on_event(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::Topology { .. } => {
                if self.seen_topology {
                    self.segment += 1;
                }
                self.seen_topology = true;
                self.open = [0; Track::ALL.len()];
                self.injected = 0;
                self.completed = 0;
                self.faults = 0;
                self.link_series = 0;
            }
            TraceEvent::FlowInjected { t, .. } => {
                self.injected += 1;
                let v = self.injected as f64;
                self.push("flows_injected", SeriesKind::Counter, t, v);
            }
            TraceEvent::FlowDrained { .. } => {}
            TraceEvent::FlowCompleted { t, injected_at, .. } => {
                self.completed += 1;
                let v = self.completed as f64;
                self.push("flows_completed", SeriesKind::Counter, t, v);
                self.fct
                    .entry(self.segment)
                    .or_insert_with(|| LogHistogram::new(1e-9))
                    .record(t - injected_at);
            }
            TraceEvent::RateEpoch {
                t, active_flows, ..
            } => {
                self.push("active_flows", SeriesKind::Gauge, t, active_flows as f64);
            }
            TraceEvent::LinkUtil {
                t,
                link,
                utilization,
            } => self.push_link(link, t, utilization),
            TraceEvent::PhaseBegin { t, track, .. } => {
                self.open[track.index() as usize] += 1;
                let v = self.open[track.index() as usize] as f64;
                self.push(
                    &format!("open_phases/{}", track.short()),
                    SeriesKind::Gauge,
                    t,
                    v,
                );
            }
            TraceEvent::PhaseEnd { t, track, .. } => {
                self.open[track.index() as usize] -= 1;
                let v = self.open[track.index() as usize] as f64;
                self.push(
                    &format!("open_phases/{}", track.short()),
                    SeriesKind::Gauge,
                    t,
                    v,
                );
            }
            TraceEvent::Fault { t, .. } => {
                self.faults += 1;
                let v = self.faults as f64;
                self.push("faults", SeriesKind::Counter, t, v);
            }
            TraceEvent::Sample { t, ref key, value } => {
                self.push(key, SeriesKind::Gauge, t, value);
            }
            TraceEvent::SpanDep { .. } | TraceEvent::IterStage { .. } => {}
        }
    }
}

impl TraceSink for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, ev: TraceEvent) {
        self.state.borrow_mut().on_event(ev);
    }
}

/// One simulation segment's recorded series and completion-time
/// histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentSnapshot {
    /// Segment index, in recording order.
    pub segment: u32,
    /// Recorded series, sorted by name (the snapshot preserves the
    /// `BTreeMap` key order).
    pub series: Vec<Series>,
    /// Flow-completion-time histogram (seconds).
    pub fct: LogHistogram,
}

/// A point-in-time export of a [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSnapshot {
    /// One entry per simulation segment that recorded anything.
    pub segments: Vec<SegmentSnapshot>,
    /// Per-link series discarded beyond
    /// [`FlightRecorder::MAX_LINK_SERIES`].
    pub link_series_dropped: u64,
}

impl FlightSnapshot {
    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Renders the snapshot as a JSON object — the machine-readable
    /// `timeseries` section of a bench report.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\"link_series_dropped\":");
        push_num(&mut s, self.link_series_dropped as f64);
        s.push_str(",\"segments\":[");
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"segment\":");
            push_num(&mut s, seg.segment as f64);
            s.push_str(",\"fct_secs\":");
            s.push_str(&seg.fct.to_json());
            s.push_str(",\"series\":[");
            for (j, ser) in seg.series.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str("{\"name\":");
                push_str_lit(&mut s, &ser.name);
                s.push_str(",\"kind\":");
                push_str_lit(&mut s, ser.kind.prom_type());
                s.push_str(",\"samples\":[");
                for (k, &(t, v)) in ser.samples.iter().enumerate() {
                    if k > 0 {
                        s.push(',');
                    }
                    s.push('[');
                    push_num(&mut s, t);
                    s.push(',');
                    push_num(&mut s, v);
                    s.push(']');
                }
                s.push_str("]}");
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_decimates_and_spans_the_whole_run() {
        let mut s = Series::new("x", SeriesKind::Gauge);
        for i in 0..10_000 {
            s.push(i as f64, (i % 7) as f64);
        }
        assert!(s.samples.len() < Series::CAP);
        assert!(s.samples.len() > Series::CAP / 8);
        // First and most recent regions both survive decimation.
        assert!(s.samples[0].0 < 100.0);
        assert!(s.samples.last().unwrap().0 > 9_000.0);
        let mut prev = f64::NEG_INFINITY;
        for &(t, _) in &s.samples {
            assert!(t > prev, "samples must stay time-ordered");
            prev = t;
        }
    }

    #[test]
    fn series_same_window_keeps_latest_value() {
        let mut s = Series::new("x", SeriesKind::Gauge);
        s.push(1.0, 10.0);
        s.push(1.0, 20.0);
        assert_eq!(s.samples, vec![(1.0, 20.0)]);
        assert_eq!(s.last_value(), Some(20.0));
    }

    #[test]
    fn histogram_tracks_count_sum_extremes() {
        let mut h = LogHistogram::new(1e-9);
        for v in [1e-6, 2e-6, 1e-3] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 1.003e-3).abs() < 1e-12);
        assert_eq!(h.min(), 1e-6);
        assert_eq!(h.max(), 1e-3);
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_bounds_bracket_the_exact_quantile() {
        let mut h = LogHistogram::new(1e-9);
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 3.7e-6).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = sorted[((q * sorted.len() as f64).ceil() as usize).max(1) - 1];
            let (lo, hi) = h.quantile_bounds(q);
            assert!(
                lo <= exact && exact <= hi,
                "q={q}: exact {exact} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn recorder_builds_series_per_segment() {
        let r = FlightRecorder::new();
        r.record(TraceEvent::Topology {
            t: 0.0,
            capacities: Box::new([1.0]),
        });
        r.record(TraceEvent::LinkUtil {
            t: 0.5,
            link: 0,
            utilization: 0.8,
        });
        r.record(TraceEvent::Topology {
            t: 0.0,
            capacities: Box::new([1.0]),
        });
        r.record(TraceEvent::LinkUtil {
            t: 0.25,
            link: 0,
            utilization: 0.4,
        });
        let snap = r.snapshot();
        assert_eq!(snap.segments.len(), 2);
        assert_eq!(snap.segments[0].series[0].last_value(), Some(0.8));
        assert_eq!(snap.segments[1].series[0].last_value(), Some(0.4));
        assert!(snap.to_json().contains("link_util/0"));
    }

    #[test]
    fn link_series_cap_drops_and_counts() {
        let r = FlightRecorder::new();
        for l in 0..(FlightRecorder::MAX_LINK_SERIES as u32 + 10) {
            r.record(TraceEvent::LinkUtil {
                t: 0.1,
                link: l,
                utilization: 0.5,
            });
        }
        let snap = r.snapshot();
        assert_eq!(snap.link_series_dropped, 10);
        assert_eq!(
            snap.segments[0].series.len(),
            FlightRecorder::MAX_LINK_SERIES
        );
    }
}

//! Prometheus text exposition (version 0.0.4) export and a minimal
//! parser.
//!
//! [`render`] turns a [`FlightSnapshot`] plus optional profiler sites
//! into the classic `# HELP` / `# TYPE` / sample-line format that
//! Prometheus, VictoriaMetrics and `promtool` all ingest. Series names
//! like `link_util/3` become a metric `fred_link_util` with a
//! `{detail="3",segment="0"}` label pair; histograms become the
//! standard `_bucket{le=...}` / `_sum` / `_count` triplet. Only the
//! final value of each series is exposed — exposition is a
//! point-in-time scrape format, not a time-series archive (the
//! archive lives in the report JSON and the dashboard).
//!
//! [`parse`] implements just enough of the exposition grammar to
//! validate our own output (CI's smoke assertion and the round-trip
//! unit test): comment/TYPE lines, metric names, label sets with
//! escaped string values, and float sample values.

use std::collections::BTreeMap;

use crate::prof::SiteStats;
use crate::timeseries::{FlightSnapshot, LogHistogram};

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() && !(i == 0 && c.is_ascii_digit());
        out.push(if ok || c == '_' || c == ':' { c } else { '_' });
    }
    out
}

fn push_label_escaped(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
}

fn fmt_value(v: f64) -> String {
    crate::json::fmt_num(v)
}

fn push_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            push_label_escaped(out, v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&fmt_value(value));
    out.push('\n');
}

fn push_histogram(out: &mut String, name: &str, labels: &[(&str, &str)], h: &LogHistogram) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cum = 0u64;
    for (le, c) in h.buckets() {
        cum += c;
        let le_s = fmt_value(le);
        let mut bl: Vec<(&str, &str)> = labels.to_vec();
        bl.push(("le", &le_s));
        push_sample(out, &format!("{name}_bucket"), &bl, cum as f64);
    }
    let mut bl: Vec<(&str, &str)> = labels.to_vec();
    bl.push(("le", "+Inf"));
    push_sample(out, &format!("{name}_bucket"), &bl, h.count() as f64);
    push_sample(out, &format!("{name}_sum"), labels, h.sum());
    push_sample(out, &format!("{name}_count"), labels, h.count() as f64);
}

/// Renders a flight-recorder snapshot (and, when non-empty, profiler
/// site stats) as Prometheus text exposition. All metrics carry the
/// `fred_` prefix; multi-segment runs are distinguished by a
/// `segment` label.
pub fn render(snap: &FlightSnapshot, prof: &BTreeMap<&'static str, SiteStats>) -> String {
    let mut out = String::with_capacity(8192);
    out.push_str("# HELP fred_series Final values of fred flight-recorder series.\n");
    // Group series by sanitized metric name so each # TYPE line is
    // emitted once, as the format requires.
    type MetricRow = (String, Vec<(String, String)>, f64);
    let mut by_metric: BTreeMap<String, Vec<MetricRow>> = BTreeMap::new();
    for seg in &snap.segments {
        let seg_label = seg.segment.to_string();
        for s in &seg.series {
            let Some(v) = s.last_value() else { continue };
            let (base, detail) = match s.name.split_once('/') {
                Some((b, d)) => (b, Some(d)),
                None => (s.name.as_str(), None),
            };
            let metric = format!("fred_{}", sanitize(base));
            let mut labels = vec![("segment".to_string(), seg_label.clone())];
            if let Some(d) = detail {
                labels.push(("detail".to_string(), d.to_string()));
            }
            by_metric
                .entry(metric)
                .or_default()
                .push((s.kind.prom_type().to_string(), labels, v));
        }
    }
    for (metric, samples) in &by_metric {
        out.push_str(&format!("# TYPE {metric} {}\n", samples[0].0));
        for (_, labels, v) in samples {
            let lrefs: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            push_sample(&mut out, metric, &lrefs, *v);
        }
    }
    for seg in &snap.segments {
        if seg.fct.is_empty() {
            continue;
        }
        let seg_label = seg.segment.to_string();
        push_histogram(
            &mut out,
            "fred_flow_completion_seconds",
            &[("segment", &seg_label)],
            &seg.fct,
        );
    }
    if snap.link_series_dropped > 0 {
        out.push_str("# TYPE fred_link_series_dropped counter\n");
        push_sample(
            &mut out,
            "fred_link_series_dropped",
            &[],
            snap.link_series_dropped as f64,
        );
    }
    if !prof.is_empty() {
        out.push_str("# TYPE fred_prof_total gauge\n");
        for (site, st) in prof {
            push_sample(&mut out, "fred_prof_total", &[("site", site)], st.total);
        }
        out.push_str("# TYPE fred_prof_count counter\n");
        for (site, st) in prof {
            push_sample(
                &mut out,
                "fred_prof_count",
                &[("site", site)],
                st.count as f64,
            );
        }
    }
    out
}

/// One parsed exposition sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name.
    pub name: String,
    /// Label key/value pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parses Prometheus text exposition into its sample lines. Comment
/// (`#`) and blank lines are skipped. Returns `Err` with a
/// line-numbered message on any malformed line — this is the
/// validator CI runs against our own output.
pub fn parse(text: &str) -> Result<Vec<PromSample>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b':')
    {
        i += 1;
    }
    if i == 0 || bytes[0].is_ascii_digit() {
        return Err(format!("invalid metric name in {line:?}"));
    }
    let name = line[..i].to_string();
    let mut labels = Vec::new();
    let rest = &line[i..];
    let rest = if let Some(stripped) = rest.strip_prefix('{') {
        let close = find_label_end(stripped)
            .ok_or_else(|| format!("unterminated label set in {line:?}"))?;
        parse_labels(&stripped[..close], &mut labels)?;
        &stripped[close + 1..]
    } else {
        rest
    };
    let value_str = rest.trim();
    if value_str.is_empty() {
        return Err(format!("missing value in {line:?}"));
    }
    // Exposition allows a trailing timestamp; take the first token.
    let value_tok = value_str.split_ascii_whitespace().next().unwrap();
    let value = match value_tok {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("bad value {v:?} in {line:?}"))?,
    };
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

/// Index of the closing `}` of a label body, honouring quoted,
/// escape-capable label values.
fn find_label_end(s: &str) -> Option<usize> {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '}' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(body: &str, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("missing '=' in label body {body:?}"))?;
        let key = rest[..eq].trim().to_string();
        if key.is_empty() {
            return Err(format!("empty label name in {body:?}"));
        }
        let after = rest[eq + 1..].trim_start();
        let mut chars = after.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err(format!("label value must be quoted in {body:?}"));
        }
        let mut value = String::new();
        let mut escaped = false;
        let mut end = None;
        for (i, c) in chars {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {body:?}"))?;
        out.push((key, value));
        rest = after[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::sink::TraceSink;
    use crate::timeseries::FlightRecorder;

    fn sample_snapshot() -> FlightSnapshot {
        let r = FlightRecorder::new();
        r.record(TraceEvent::Topology {
            t: 0.0,
            capacities: Box::new([1.0, 1.0]),
        });
        r.record(TraceEvent::LinkUtil {
            t: 0.5,
            link: 1,
            utilization: 0.75,
        });
        r.record(TraceEvent::RateEpoch {
            t: 0.5,
            active_flows: 12,
            changed: 3,
        });
        r.record(TraceEvent::FlowInjected {
            t: 0.1,
            id: 0,
            tag: 7,
            bytes: 1e6,
            track: crate::event::Track::Dp,
            links: Box::new([0]),
        });
        r.record(TraceEvent::FlowCompleted {
            t: 0.9,
            id: 0,
            tag: 7,
            injected_at: 0.1,
            track: crate::event::Track::Dp,
        });
        r.snapshot()
    }

    #[test]
    fn render_parse_round_trip() {
        let snap = sample_snapshot();
        let text = render(&snap, &BTreeMap::new());
        assert!(!text.is_empty());
        let samples = parse(&text).expect("our own output must parse");
        assert!(!samples.is_empty());
        let util = samples
            .iter()
            .find(|s| s.name == "fred_link_util")
            .expect("link_util exported");
        assert_eq!(util.value, 0.75);
        assert!(util.labels.iter().any(|(k, v)| k == "detail" && v == "1"));
        let active = samples
            .iter()
            .find(|s| s.name == "fred_active_flows")
            .expect("active_flows exported");
        assert_eq!(active.value, 12.0);
        // Histogram triplet present and cumulative buckets end at count.
        let count = samples
            .iter()
            .find(|s| s.name == "fred_flow_completion_seconds_count")
            .expect("histogram count");
        assert_eq!(count.value, 1.0);
        let inf_bucket = samples
            .iter()
            .find(|s| {
                s.name == "fred_flow_completion_seconds_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .expect("+Inf bucket");
        assert_eq!(inf_bucket.value, 1.0);
    }

    #[test]
    fn parse_handles_escapes_and_rejects_garbage() {
        let ok = parse("m{a=\"x\\\"y\",b=\"z\"} 1.5 1234\n# comment\n\nn 2\n").unwrap();
        assert_eq!(ok[0].labels[0].1, "x\"y");
        assert_eq!(ok[0].value, 1.5);
        assert_eq!(ok[1].name, "n");
        assert!(parse("3bad 1\n").is_err());
        assert!(parse("m{a=unquoted} 1\n").is_err());
        assert!(parse("m{a=\"x\"} \n").is_err());
        assert!(parse("m{a=\"x\" 1\n").is_err());
    }
}

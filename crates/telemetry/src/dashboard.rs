//! Self-contained offline HTML dashboard.
//!
//! [`render`] turns a [`FlightSnapshot`] (plus optional profiler
//! sites) into a single HTML file with inline CSS and inline SVG —
//! no JavaScript, no CDN, no fetches; the acceptance criterion is
//! that the file renders per-tenant and per-link time series with
//! zero external dependencies, so it can be archived as a CI artifact
//! and opened years later.
//!
//! Layout per simulation segment:
//! - a sparkline card per non-link series (active flows, queue depth
//!   and stretch per tenant class, phase mix, counters), showing the
//!   polyline, min/max/last values, and the series kind;
//! - a link-utilization heatmap: one row per link series, time on the
//!   x-axis, utilization mapped to a blue→red ramp — transient
//!   congestion shows up as red streaks;
//! - the flow-completion-time histogram as log-bucket bars with
//!   p50/p99 annotations.

use std::collections::BTreeMap;

use crate::prof::SiteStats;
use crate::timeseries::{FlightSnapshot, LogHistogram, SegmentSnapshot, Series};

const SPARK_W: f64 = 280.0;
const SPARK_H: f64 = 48.0;
const HEAT_W: f64 = 600.0;
const HEAT_COLS: usize = 120;
const HEAT_ROW_H: f64 = 8.0;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v == v.trunc() {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn sparkline_svg(s: &Series) -> String {
    if s.samples.is_empty() {
        return String::new();
    }
    let (t0, t1) = (s.samples[0].0, s.samples.last().unwrap().0);
    let (lo, hi) = s.value_range().unwrap();
    let tspan = (t1 - t0).max(1e-30);
    let vspan = (hi - lo).max(1e-30);
    let mut points = String::new();
    for (i, &(t, v)) in s.samples.iter().enumerate() {
        if i > 0 {
            points.push(' ');
        }
        let x = (t - t0) / tspan * (SPARK_W - 4.0) + 2.0;
        let y = SPARK_H - 4.0 - (v - lo) / vspan * (SPARK_H - 8.0);
        points.push_str(&format!("{x:.1},{y:.1}"));
    }
    format!(
        "<svg width=\"{SPARK_W}\" height=\"{SPARK_H}\" viewBox=\"0 0 {SPARK_W} {SPARK_H}\">\
         <polyline points=\"{points}\" fill=\"none\" stroke=\"#2b6cb0\" stroke-width=\"1.5\"/>\
         </svg>"
    )
}

fn heat_color(frac: f64) -> String {
    // Blue (idle) → yellow → red (saturated).
    let f = frac.clamp(0.0, 1.0);
    let (r, g, b) = if f < 0.5 {
        let k = f * 2.0;
        (
            (40.0 + k * 200.0) as u8,
            (80.0 + k * 140.0) as u8,
            (200.0 - k * 150.0) as u8,
        )
    } else {
        let k = (f - 0.5) * 2.0;
        (240, (220.0 - k * 170.0) as u8, (50.0 - k * 40.0) as u8)
    };
    format!("#{r:02x}{g:02x}{b:02x}")
}

/// Resamples a series into `cols` cells over `[t0, t1]` by
/// last-value-carried-forward, the natural read for gauges.
fn resample(s: &Series, t0: f64, t1: f64, cols: usize) -> Vec<f64> {
    let mut out = vec![0.0; cols];
    if s.samples.is_empty() {
        return out;
    }
    let span = (t1 - t0).max(1e-30);
    let mut si = 0;
    let mut current = s.samples[0].1;
    for (c, cell) in out.iter_mut().enumerate() {
        let cell_t = t0 + (c as f64 + 1.0) / cols as f64 * span;
        while si < s.samples.len() && s.samples[si].0 <= cell_t {
            current = s.samples[si].1;
            si += 1;
        }
        *cell = current;
    }
    out
}

fn heatmap_svg(links: &[&Series]) -> String {
    if links.is_empty() {
        return String::new();
    }
    let t0 = links
        .iter()
        .filter_map(|s| s.samples.first().map(|p| p.0))
        .fold(f64::INFINITY, f64::min);
    let t1 = links
        .iter()
        .filter_map(|s| s.samples.last().map(|p| p.0))
        .fold(f64::NEG_INFINITY, f64::max);
    if !t0.is_finite() || !t1.is_finite() {
        return String::new();
    }
    let label_w = 70.0;
    let h = links.len() as f64 * HEAT_ROW_H + 16.0;
    let cell_w = (HEAT_W - label_w) / HEAT_COLS as f64;
    let mut svg = format!(
        "<svg width=\"{}\" height=\"{h}\" viewBox=\"0 0 {} {h}\" \
         font-family=\"monospace\" font-size=\"7\">",
        HEAT_W, HEAT_W
    );
    for (row, s) in links.iter().enumerate() {
        let y = row as f64 * HEAT_ROW_H;
        svg.push_str(&format!(
            "<text x=\"0\" y=\"{:.1}\" fill=\"#555\">{}</text>",
            y + HEAT_ROW_H - 1.0,
            esc(&s.name)
        ));
        for (c, v) in resample(s, t0, t1, HEAT_COLS).iter().enumerate() {
            let x = label_w + c as f64 * cell_w;
            svg.push_str(&format!(
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{:.2}\" height=\"{:.1}\" \
                 fill=\"{}\"/>",
                cell_w + 0.05,
                HEAT_ROW_H - 0.5,
                heat_color(*v)
            ));
        }
    }
    let legend_y = links.len() as f64 * HEAT_ROW_H + 12.0;
    svg.push_str(&format!(
        "<text x=\"{label_w}\" y=\"{legend_y:.1}\" fill=\"#555\">\
         t = {} .. {} s, color = utilization 0 (blue) .. 1 (red)</text>",
        fmt(t0),
        fmt(t1)
    ));
    svg.push_str("</svg>");
    svg
}

fn histogram_svg(h: &LogHistogram) -> String {
    let buckets = h.buckets();
    if buckets.is_empty() {
        return String::new();
    }
    let w = 280.0;
    let hh = 64.0;
    let max_c = buckets.iter().map(|&(_, c)| c).max().unwrap().max(1) as f64;
    let bar_w = w / buckets.len() as f64;
    let mut svg = format!("<svg width=\"{w}\" height=\"{hh}\" viewBox=\"0 0 {w} {hh}\">");
    for (i, &(_, c)) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let bh = (c as f64 / max_c) * (hh - 14.0);
        svg.push_str(&format!(
            "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{bh:.1}\" \
             fill=\"#6b46c1\"/>",
            i as f64 * bar_w,
            hh - 12.0 - bh,
            (bar_w - 1.0).max(0.5)
        ));
    }
    svg.push_str(&format!(
        "<text x=\"0\" y=\"{:.1}\" font-family=\"monospace\" font-size=\"8\" \
         fill=\"#555\">p50 {} s, p99 {} s, n={}</text>",
        hh - 2.0,
        fmt(h.quantile(0.5)),
        fmt(h.quantile(0.99)),
        h.count()
    ));
    svg.push_str("</svg>");
    svg
}

fn series_card(s: &Series) -> String {
    let (lo, hi) = s.value_range().unwrap_or((0.0, 0.0));
    format!(
        "<div class=\"card\"><div class=\"name\">{}</div>{}\
         <div class=\"meta\">{} &middot; min {} &middot; max {} &middot; last {}</div></div>",
        esc(&s.name),
        sparkline_svg(s),
        s.kind.prom_type(),
        fmt(lo),
        fmt(hi),
        fmt(s.last_value().unwrap_or(0.0)),
    )
}

fn segment_section(seg: &SegmentSnapshot) -> String {
    let mut html = format!("<h2>Segment {}</h2>", seg.segment);
    let (links, others): (Vec<&Series>, Vec<&Series>) = seg
        .series
        .iter()
        .partition(|s| s.name.starts_with("link_util/"));
    if !others.is_empty() {
        html.push_str("<div class=\"cards\">");
        for s in &others {
            html.push_str(&series_card(s));
        }
        html.push_str("</div>");
    }
    if !seg.fct.is_empty() {
        html.push_str(
            "<div class=\"cards\"><div class=\"card\">\
             <div class=\"name\">flow completion time</div>",
        );
        html.push_str(&histogram_svg(&seg.fct));
        html.push_str("</div></div>");
    }
    if !links.is_empty() {
        html.push_str("<h3>Link utilization</h3>");
        html.push_str(&heatmap_svg(&links));
    }
    html
}

/// Renders the dashboard. `title` names the run (typically the bench
/// name); the output is a complete standalone HTML document.
pub fn render(
    title: &str,
    snap: &FlightSnapshot,
    prof: &BTreeMap<&'static str, SiteStats>,
) -> String {
    let mut html = String::with_capacity(64 * 1024);
    html.push_str("<!DOCTYPE html><html><head><meta charset=\"utf-8\">");
    html.push_str(&format!(
        "<title>{} — fred flight recorder</title>",
        esc(title)
    ));
    html.push_str(
        "<style>\
         body{font-family:system-ui,sans-serif;margin:24px;color:#1a202c;background:#fafafa}\
         h1{font-size:20px}h2{font-size:16px;margin-top:28px}h3{font-size:13px;color:#555}\
         .cards{display:flex;flex-wrap:wrap;gap:12px}\
         .card{background:#fff;border:1px solid #e2e8f0;border-radius:6px;padding:8px 10px}\
         .name{font-family:monospace;font-size:12px;margin-bottom:4px}\
         .meta{font-size:10px;color:#718096;margin-top:2px}\
         table{border-collapse:collapse;font-size:12px}\
         td,th{border:1px solid #e2e8f0;padding:3px 8px;text-align:right}\
         th{background:#edf2f7}td.site{font-family:monospace;text-align:left}\
         </style></head><body>",
    );
    html.push_str(&format!("<h1>{} — fred flight recorder</h1>", esc(title)));
    if snap.is_empty() {
        html.push_str("<p>No time-series data was recorded for this run.</p>");
    }
    for seg in &snap.segments {
        html.push_str(&segment_section(seg));
    }
    if snap.link_series_dropped > 0 {
        html.push_str(&format!(
            "<p class=\"meta\">{} link series beyond the {}-series cap were not recorded.</p>",
            snap.link_series_dropped,
            crate::timeseries::FlightRecorder::MAX_LINK_SERIES
        ));
    }
    if !prof.is_empty() {
        html.push_str(
            "<h2>Host-side profiler</h2><table><tr><th>site</th><th>count</th>\
                       <th>total</th><th>mean</th><th>max</th></tr>",
        );
        for (site, st) in prof {
            html.push_str(&format!(
                "<tr><td class=\"site\">{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                esc(site),
                st.count,
                fmt(st.total),
                fmt(st.mean()),
                fmt(st.max)
            ));
        }
        html.push_str("</table>");
    }
    html.push_str("</body></html>");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::sink::TraceSink;
    use crate::timeseries::FlightRecorder;

    #[test]
    fn dashboard_is_self_contained() {
        let r = FlightRecorder::new();
        r.record(TraceEvent::Topology {
            t: 0.0,
            capacities: Box::new([1.0, 1.0]),
        });
        for i in 0..20 {
            let t = i as f64 * 0.1;
            r.record(TraceEvent::LinkUtil {
                t,
                link: 0,
                utilization: (i % 10) as f64 / 10.0,
            });
            r.record(TraceEvent::Sample {
                t,
                key: "queue_depth/high".into(),
                value: (i % 4) as f64,
            });
        }
        let html = render("test", &r.snapshot(), &BTreeMap::new());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("queue_depth/high"));
        assert!(html.contains("link_util/0"));
        // Self-contained: no external fetches of any kind.
        for needle in ["http://", "https://", "<script", "<link", "@import", "url("] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
    }

    #[test]
    fn heat_color_ramp_endpoints() {
        assert_eq!(heat_color(0.0), "#2850c8");
        assert!(heat_color(1.0).starts_with("#f0"));
        // Monotone-ish: red channel grows with utilization.
        let r_at = |f: f64| u8::from_str_radix(&heat_color(f)[1..3], 16).unwrap();
        assert!(r_at(0.0) < r_at(0.5));
        assert!(r_at(0.5) <= r_at(1.0));
    }
}

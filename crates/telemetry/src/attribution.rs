//! Critical-path time attribution buckets.
//!
//! Every nanosecond of a run's makespan is charged to exactly one
//! bucket, reproducing the paper's bottleneck arguments (§8): is a
//! design point limited by compute, by exposed communication of one
//! parallelism dimension, or by link contention serialising flows that
//! a conflict-free fabric would have run at full rate?
//!
//! The split between *exposed communication* and *contention* follows
//! the ideal-rate re-costing of [`crate::analysis`]: a communication
//! span on the critical path contributes its contention-free duration
//! (every flow re-costed at the bottleneck-link capacity it would get
//! running alone) to its dimension's bucket, and the remainder —
//! observed minus ideal — to [`Bucket::Contention`].

use std::fmt;

use crate::event::Track;
use crate::json::push_num;

/// Where one critical-path second is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bucket {
    /// Roofline compute on the critical worker.
    Compute,
    /// Exposed model/tensor-parallel communication at its ideal rate.
    CommMp,
    /// Exposed pipeline-parallel communication at its ideal rate.
    CommPp,
    /// Exposed data-parallel communication at its ideal rate.
    CommDp,
    /// Exposed bulk / input-load / streaming traffic at its ideal rate.
    CommBulk,
    /// Extra serialisation inflicted by link sharing: observed minus
    /// contention-free duration of critical-path communication.
    Contention,
    /// Critical-path time no recorded span or edge explains (non-zero
    /// only on truncated or partially instrumented traces).
    Unattributed,
}

impl Bucket {
    /// All buckets, in report order.
    pub const ALL: [Bucket; 7] = [
        Bucket::Compute,
        Bucket::CommMp,
        Bucket::CommPp,
        Bucket::CommDp,
        Bucket::CommBulk,
        Bucket::Contention,
        Bucket::Unattributed,
    ];

    /// Stable JSON/report key.
    pub fn key(self) -> &'static str {
        match self {
            Bucket::Compute => "compute",
            Bucket::CommMp => "comm_mp",
            Bucket::CommPp => "comm_pp",
            Bucket::CommDp => "comm_dp",
            Bucket::CommBulk => "comm_bulk",
            Bucket::Contention => "contention",
            Bucket::Unattributed => "unattributed",
        }
    }

    /// The exposed-communication bucket for a display track, or
    /// [`Bucket::Compute`] for the compute/iteration lanes.
    pub fn for_track(track: Track) -> Bucket {
        match track {
            Track::Mp => Bucket::CommMp,
            Track::Pp => Bucket::CommPp,
            Track::Dp => Bucket::CommDp,
            Track::Bulk => Bucket::CommBulk,
            Track::Compute | Track::Iteration => Bucket::Compute,
        }
    }
}

impl fmt::Display for Bucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Seconds of critical-path time per bucket. The class invariant the
/// analysis maintains (and `bench-diff --self-check` verifies) is
/// `total() == makespan` of the analysed run, within float tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Attribution {
    secs: [f64; Bucket::ALL.len()],
}

impl Attribution {
    /// Adds `secs` to `bucket` (negative contributions are clamped to
    /// zero — they can only arise from float residue).
    pub fn add(&mut self, bucket: Bucket, secs: f64) {
        self.secs[Self::index(bucket)] += secs.max(0.0);
    }

    /// Seconds charged to `bucket`.
    pub fn get(&self, bucket: Bucket) -> f64 {
        self.secs[Self::index(bucket)]
    }

    /// Sum over every bucket — equals the analysed makespan.
    pub fn total(&self) -> f64 {
        self.secs.iter().sum()
    }

    /// Sum of the per-dimension exposed-communication buckets (the
    /// ideal-rate portion, excluding contention).
    pub fn exposed_comm_total(&self) -> f64 {
        self.get(Bucket::CommMp)
            + self.get(Bucket::CommPp)
            + self.get(Bucket::CommDp)
            + self.get(Bucket::CommBulk)
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &Attribution) {
        for (a, b) in self.secs.iter_mut().zip(&other.secs) {
            *a += b;
        }
    }

    /// The bucket holding the most time (the run's bottleneck), with
    /// its seconds. `None` when the attribution is empty.
    pub fn dominant(&self) -> Option<(Bucket, f64)> {
        Bucket::ALL
            .iter()
            .map(|&b| (b, self.get(b)))
            .filter(|&(_, s)| s > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Appends `{"compute":…, "comm_mp":…, …}` to `out`.
    pub fn push_json(&self, out: &mut String) {
        out.push('{');
        for (i, b) in Bucket::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(b.key());
            out.push_str("\":");
            push_num(out, self.get(*b));
        }
        out.push('}');
    }

    fn index(bucket: Bucket) -> usize {
        Bucket::ALL
            .iter()
            .position(|&b| b == bucket)
            .expect("bucket in ALL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_have_distinct_keys() {
        let keys: std::collections::BTreeSet<&str> = Bucket::ALL.iter().map(|b| b.key()).collect();
        assert_eq!(keys.len(), Bucket::ALL.len());
    }

    #[test]
    fn track_mapping_covers_dimensions() {
        assert_eq!(Bucket::for_track(Track::Mp), Bucket::CommMp);
        assert_eq!(Bucket::for_track(Track::Pp), Bucket::CommPp);
        assert_eq!(Bucket::for_track(Track::Dp), Bucket::CommDp);
        assert_eq!(Bucket::for_track(Track::Bulk), Bucket::CommBulk);
        assert_eq!(Bucket::for_track(Track::Compute), Bucket::Compute);
    }

    #[test]
    fn totals_and_merge() {
        let mut a = Attribution::default();
        a.add(Bucket::Compute, 1.0);
        a.add(Bucket::CommDp, 0.5);
        a.add(Bucket::Contention, 0.25);
        assert!((a.total() - 1.75).abs() < 1e-12);
        assert!((a.exposed_comm_total() - 0.5).abs() < 1e-12);
        assert_eq!(a.dominant().unwrap().0, Bucket::Compute);

        let mut b = Attribution::default();
        b.add(Bucket::CommDp, 2.0);
        a.merge(&b);
        assert!((a.get(Bucket::CommDp) - 2.5).abs() < 1e-12);
        assert_eq!(a.dominant().unwrap().0, Bucket::CommDp);
    }

    #[test]
    fn negative_additions_are_clamped() {
        let mut a = Attribution::default();
        a.add(Bucket::Contention, -1.0);
        assert_eq!(a.get(Bucket::Contention), 0.0);
    }

    #[test]
    fn json_shape() {
        let mut a = Attribution::default();
        a.add(Bucket::CommMp, 0.125);
        let mut s = String::new();
        a.push_json(&mut s);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"comm_mp\":0.125"));
        assert!(s.contains("\"unattributed\":0"));
    }
}

//! Critical-path and contention attribution over a recorded trace.
//!
//! [`Analysis::from_events`] reconstructs, for every simulation
//! *segment* of a recording (segments are delimited by
//! [`TraceEvent::Topology`] markers — one per `FlowNetwork`
//! construction), the causal DAG of the run:
//!
//! * **nodes** are spans ([`TraceEvent::PhaseBegin`]/`PhaseEnd` pairs:
//!   trainer compute/comm tasks, or the serial phases of a standalone
//!   collective plan);
//! * **edges** are the recorded [`TraceEvent::SpanDep`] happens-before
//!   constraints (trainer task dependencies, plan phase ordering);
//! * **flows** attach to the span whose correlation `tag` they carry.
//!
//! From the DAG it computes the **critical path** — walking backwards
//! from the last-finishing span through, at each step, the predecessor
//! that finished last — and charges every second of the makespan to an
//! [`Attribution`] bucket. Communication spans are split by *ideal-rate
//! re-costing*: each flow is re-costed at the rate it would get running
//! alone (the bottleneck-link capacity from the segment's
//! [`TraceEvent::Topology`] record), giving the span's contention-free
//! duration; that part is exposed communication for the span's
//! dimension, the remainder is [`Bucket::Contention`].
//!
//! It also builds the per-link **contention matrix**: for every link,
//! which span pairs had flows active on it simultaneously, for how
//! long, and how much of each victim's slowdown (observed drain time
//! minus contention-free drain time) each culprit inflicted.
//!
//! An analysis over a truncated trace (ring overflow) is flagged, not
//! silently produced — attribution over missing events is wrong.

use std::collections::HashMap;

use crate::attribution::{Attribution, Bucket};
use crate::event::{TraceEvent, Track};
use crate::json::{push_num, push_str_lit};

/// Spans/steps closer in time than this are considered simultaneous.
const T_EPS: f64 = 1e-12;

/// Maximum critical-path steps and contention entries serialised into
/// JSON (the in-memory structures always hold everything).
const JSON_PATH_CAP: usize = 64;
/// Maximum contention-matrix entries serialised into JSON.
const JSON_CONTENTION_CAP: usize = 32;

/// One step of a run's critical path, latest first.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalStep {
    /// Span label.
    pub label: String,
    /// Display track.
    pub track: Track,
    /// Span begin time (seconds).
    pub begin: f64,
    /// Seconds this step contributes to the makespan.
    pub secs: f64,
    /// The step's contention-free duration (== `secs` for compute).
    pub ideal_secs: f64,
}

/// One cell of the per-link contention matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionEntry {
    /// Link index (`LinkId.0`).
    pub link: u32,
    /// Label of the span whose flows were slowed.
    pub victim: String,
    /// Label of the span sharing the link.
    pub culprit: String,
    /// Seconds the two spans had flows simultaneously active on the
    /// link.
    pub overlap_secs: f64,
    /// Victim slowdown seconds attributed to this culprit on this link
    /// (observed minus contention-free drain time, blamed
    /// proportionally to overlap).
    pub slowdown_secs: f64,
}

/// The analysis of one simulation segment.
#[derive(Debug, Clone, Default)]
pub struct RunAnalysis {
    /// End-to-end duration of the segment (latest span end / flow
    /// completion).
    pub makespan: f64,
    /// Where every makespan second went. `attribution.total()` equals
    /// `makespan` by construction.
    pub attribution: Attribution,
    /// The critical path, last-finishing step first.
    pub critical_path: Vec<CriticalStep>,
    /// Contention matrix entries, largest slowdown first.
    pub contention: Vec<ContentionEntry>,
    /// Flows observed in the segment.
    pub flows: usize,
    /// Spans observed in the segment.
    pub spans: usize,
    /// Fault events (link failures/degradations) in the segment —
    /// non-zero means part of the contention/exposed-comm attribution
    /// is fault-induced (flows re-routed over detours).
    pub faults: usize,
}

/// The full analysis of a recording: one [`RunAnalysis`] per segment
/// plus aggregate totals.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Per-segment analyses, in recording order.
    pub runs: Vec<RunAnalysis>,
    /// Events that were overwritten in the ring recorder before this
    /// analysis ran. Non-zero means [`Analysis::truncated`] — treat
    /// every number with suspicion.
    pub dropped_events: u64,
}

#[derive(Debug, Clone)]
struct FlowRec {
    bytes: f64,
    links: Box<[u32]>,
    track: Track,
    injected: f64,
    drained: Option<f64>,
    completed: Option<f64>,
    span: Option<usize>,
}

#[derive(Debug, Clone)]
struct SpanRec {
    label: Box<str>,
    track: Track,
    begin: f64,
    end: f64,
    closed: bool,
    preds: Vec<u64>,
    flow_idx: Vec<usize>,
}

impl Analysis {
    /// Analyses a recording, splitting it into segments at every
    /// [`TraceEvent::Topology`] marker.
    pub fn from_events(events: &[TraceEvent]) -> Analysis {
        let runs = segment_events(events)
            .into_iter()
            .map(analyze_segment)
            .filter(|r| r.makespan > 0.0 || r.spans > 0 || r.flows > 0)
            .collect();
        Analysis {
            runs,
            dropped_events: 0,
        }
    }

    /// Records how many events the ring recorder overwrote before the
    /// trace was read (see [`crate::sink::RingRecorder::overwritten`]).
    pub fn with_dropped(mut self, dropped: u64) -> Analysis {
        self.dropped_events = dropped;
        self
    }

    /// Whether the underlying trace lost events to ring overflow. A
    /// truncated trace yields an untrustworthy attribution.
    pub fn truncated(&self) -> bool {
        self.dropped_events > 0
    }

    /// Attribution summed over every segment. The invariant
    /// `totals().total() == total_makespan()` holds within float
    /// tolerance.
    pub fn totals(&self) -> Attribution {
        let mut t = Attribution::default();
        for r in &self.runs {
            t.merge(&r.attribution);
        }
        t
    }

    /// Sum of segment makespans.
    pub fn total_makespan(&self) -> f64 {
        self.runs.iter().map(|r| r.makespan).sum()
    }

    /// Renders the analysis as a JSON object (critical paths capped at
    /// 64 steps and contention matrices at 32 entries per segment; the
    /// in-memory structures are complete).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\"trace_truncated\":");
        s.push_str(if self.truncated() { "true" } else { "false" });
        s.push_str(",\"dropped_events\":");
        push_num(&mut s, self.dropped_events as f64);
        s.push_str(",\"total_makespan_secs\":");
        push_num(&mut s, self.total_makespan());
        s.push_str(",\"attribution\":");
        self.totals().push_json(&mut s);
        s.push_str(",\"runs\":[");
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            r.push_json(&mut s);
        }
        s.push_str("]}");
        s
    }

    /// A short human-readable bottleneck summary for stderr reporting.
    pub fn summary(&self) -> String {
        let totals = self.totals();
        let mut out = String::new();
        if self.truncated() {
            out.push_str(&format!(
                "WARNING: trace truncated ({} events dropped by ring overflow); \
                 attribution is unreliable\n",
                self.dropped_events
            ));
        }
        let makespan = self.total_makespan();
        out.push_str(&format!(
            "attribution over {} run(s), {:.6} s total:",
            self.runs.len(),
            makespan
        ));
        for b in Bucket::ALL {
            let v = totals.get(b);
            if v > 0.0 {
                out.push_str(&format!(
                    "\n  {:<13} {:.6} s ({:.1}%)",
                    b.key(),
                    v,
                    100.0 * v / makespan.max(f64::MIN_POSITIVE)
                ));
            }
        }
        let faults: usize = self.runs.iter().map(|r| r.faults).sum();
        if faults > 0 {
            out.push_str(&format!(
                "\n  {faults} fault(s) injected — contention/exposed-comm \
                 above includes fault-induced detours"
            ));
        }
        out
    }
}

impl RunAnalysis {
    fn push_json(&self, s: &mut String) {
        s.push_str("{\"makespan_secs\":");
        push_num(s, self.makespan);
        s.push_str(",\"spans\":");
        push_num(s, self.spans as f64);
        s.push_str(",\"flows\":");
        push_num(s, self.flows as f64);
        s.push_str(",\"faults\":");
        push_num(s, self.faults as f64);
        s.push_str(",\"attribution\":");
        self.attribution.push_json(s);
        s.push_str(",\"critical_path\":[");
        for (i, c) in self.critical_path.iter().take(JSON_PATH_CAP).enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"label\":");
            push_str_lit(s, &c.label);
            s.push_str(",\"track\":");
            push_str_lit(s, c.track.name());
            s.push_str(",\"begin_secs\":");
            push_num(s, c.begin);
            s.push_str(",\"secs\":");
            push_num(s, c.secs);
            s.push_str(",\"ideal_secs\":");
            push_num(s, c.ideal_secs);
            s.push('}');
        }
        s.push_str("],\"critical_path_steps\":");
        push_num(s, self.critical_path.len() as f64);
        s.push_str(",\"contention\":[");
        for (i, c) in self.contention.iter().take(JSON_CONTENTION_CAP).enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"link\":");
            push_num(s, c.link as f64);
            s.push_str(",\"victim\":");
            push_str_lit(s, &c.victim);
            s.push_str(",\"culprit\":");
            push_str_lit(s, &c.culprit);
            s.push_str(",\"overlap_secs\":");
            push_num(s, c.overlap_secs);
            s.push_str(",\"slowdown_secs\":");
            push_num(s, c.slowdown_secs);
            s.push('}');
        }
        s.push_str("],\"contention_pairs\":");
        push_num(s, self.contention.len() as f64);
        s.push('}');
    }
}

/// Splits a recording into simulation segments: a new segment starts
/// at every [`TraceEvent::Topology`] marker; events before the first
/// marker (traces from hand-built event streams or older recordings)
/// form a leading segment of their own.
pub fn segment_events(events: &[TraceEvent]) -> Vec<&[TraceEvent]> {
    let mut cuts = vec![0usize];
    for (i, e) in events.iter().enumerate() {
        if matches!(e, TraceEvent::Topology { .. }) && i > 0 {
            cuts.push(i);
        }
    }
    cuts.push(events.len());
    cuts.windows(2)
        .map(|w| &events[w[0]..w[1]])
        .filter(|s| !s.is_empty())
        .collect()
}

/// The rate a flow over `links` gets with the network to itself: the
/// bottleneck-link capacity. `None` when any link is outside the known
/// capacity table (re-costing is then impossible).
fn solo_rate(capacities: &[f64], links: &[u32]) -> Option<f64> {
    if links.is_empty() {
        return Some(f64::INFINITY);
    }
    let mut rate = f64::INFINITY;
    for &l in links {
        rate = rate.min(*capacities.get(l as usize)?);
    }
    Some(rate)
}

/// The contention-free completion time of a flow: bytes over the solo
/// rate, plus the (contention-independent) observed tail latency.
/// Falls back to the observed completion time when re-costing is
/// impossible.
fn ideal_fct(f: &FlowRec, capacities: &[f64]) -> f64 {
    let observed = f
        .completed
        .or(f.drained)
        .map(|t| (t - f.injected).max(0.0))
        .unwrap_or(0.0);
    let Some(rate) = solo_rate(capacities, &f.links) else {
        return observed;
    };
    let ideal_drain = if rate.is_finite() && rate > 0.0 {
        f.bytes / rate
    } else {
        0.0
    };
    let tail = match (f.drained, f.completed) {
        (Some(d), Some(c)) => (c - d).max(0.0),
        _ => 0.0,
    };
    (ideal_drain + tail).min(observed.max(ideal_drain + tail))
}

/// Observed minus contention-free drain time of a flow, clamped at
/// zero. `None` when the flow never drained or re-costing is
/// impossible.
fn flow_slowdown(f: &FlowRec, capacities: &[f64]) -> Option<f64> {
    let drained = f.drained?;
    let rate = solo_rate(capacities, &f.links)?;
    if !rate.is_finite() || rate <= 0.0 {
        return None;
    }
    Some(((drained - f.injected) - f.bytes / rate).max(0.0))
}

fn analyze_segment(events: &[TraceEvent]) -> RunAnalysis {
    let mut capacities: Vec<f64> = Vec::new();
    let mut spans: HashMap<u64, SpanRec> = HashMap::new();
    let mut span_order: Vec<u64> = Vec::new();
    let mut flows: Vec<FlowRec> = Vec::new();
    let mut flow_by_id: HashMap<u64, usize> = HashMap::new();
    // tag -> currently open span claiming that tag.
    let mut open_tag: HashMap<u64, u64> = HashMap::new();
    let mut last_t = 0.0_f64;
    let mut faults = 0usize;

    for e in events {
        last_t = last_t.max(e.time());
        match e {
            TraceEvent::Topology {
                capacities: caps, ..
            } => capacities = caps.to_vec(),
            TraceEvent::PhaseBegin {
                t,
                track,
                span,
                label,
                tag,
                ..
            } => {
                spans.insert(
                    *span,
                    SpanRec {
                        label: label.clone(),
                        track: *track,
                        begin: *t,
                        end: *t,
                        closed: false,
                        preds: Vec::new(),
                        flow_idx: Vec::new(),
                    },
                );
                span_order.push(*span);
                if *tag != 0 {
                    open_tag.insert(*tag, *span);
                }
            }
            TraceEvent::PhaseEnd { t, span, .. } => {
                if let Some(s) = spans.get_mut(span) {
                    s.end = (*t).max(s.begin);
                    s.closed = true;
                }
                open_tag.retain(|_, v| v != span);
            }
            TraceEvent::SpanDep { span, pred, .. } => {
                if let Some(s) = spans.get_mut(span) {
                    s.preds.push(*pred);
                }
            }
            TraceEvent::FlowInjected {
                t,
                id,
                tag,
                bytes,
                track,
                links,
            } => {
                let span_id = if *tag != 0 {
                    open_tag.get(tag).copied()
                } else {
                    None
                };
                let idx = flows.len();
                flows.push(FlowRec {
                    bytes: *bytes,
                    links: links.clone(),
                    track: *track,
                    injected: *t,
                    drained: None,
                    completed: None,
                    span: None,
                });
                flow_by_id.insert(*id, idx);
                if let Some(sid) = span_id {
                    if let Some(s) = spans.get_mut(&sid) {
                        s.flow_idx.push(idx);
                        flows[idx].span = Some(span_order.iter().position(|&x| x == sid).unwrap());
                    }
                }
            }
            TraceEvent::FlowDrained { t, id } => {
                if let Some(&i) = flow_by_id.get(id) {
                    flows[i].drained = Some(*t);
                }
            }
            TraceEvent::FlowCompleted { t, id, .. } => {
                if let Some(&i) = flow_by_id.get(id) {
                    flows[i].completed = Some(*t);
                }
            }
            TraceEvent::Fault { .. } => faults += 1,
            TraceEvent::RateEpoch { .. }
            | TraceEvent::LinkUtil { .. }
            | TraceEvent::IterStage { .. }
            | TraceEvent::Sample { .. } => {}
        }
    }

    // Close truncated spans at the last observed time so downstream
    // arithmetic stays finite.
    for s in spans.values_mut() {
        if !s.closed {
            s.end = s.end.max(last_t);
        }
    }

    let mut run = RunAnalysis {
        flows: flows.len(),
        spans: spans.len(),
        faults,
        ..RunAnalysis::default()
    };

    if spans.is_empty() {
        analyze_bare_flows(&flows, &capacities, &mut run);
    } else {
        attribute_critical_path(&spans, &flows, &capacities, &mut run);
    }
    run.contention = contention_matrix(&spans, &span_order, &flows, &capacities);
    run
}

/// Attribution for segments with spans: walk the critical path from
/// the last-finishing span backwards through latest-finishing
/// predecessors, charging each covered interval to its span's bucket
/// (split ideal/contention for communication spans).
fn attribute_critical_path(
    spans: &HashMap<u64, SpanRec>,
    flows: &[FlowRec],
    capacities: &[f64],
    run: &mut RunAnalysis,
) {
    let last = spans
        .iter()
        .max_by(|a, b| a.1.end.total_cmp(&b.1.end).then(b.0.cmp(a.0)))
        .map(|(id, _)| *id);
    let Some(mut current) = last else { return };
    run.makespan = spans[&current].end;
    let mut cursor = run.makespan;

    loop {
        let s = &spans[&current];
        // An unexplained gap between this span's end and the time the
        // critical successor started.
        if s.end < cursor - T_EPS {
            run.attribution.add(Bucket::Unattributed, cursor - s.end);
            cursor = s.end;
        }
        let seg = (cursor.min(s.end) - s.begin).max(0.0);
        if seg > 0.0 {
            let (ideal, bucket) = span_ideal(s, flows, capacities, seg);
            run.attribution.add(bucket, ideal);
            run.attribution.add(Bucket::Contention, seg - ideal);
            run.critical_path.push(CriticalStep {
                label: s.label.to_string(),
                track: s.track,
                begin: s.begin,
                secs: seg,
                ideal_secs: ideal,
            });
        }
        cursor = s.begin.min(cursor);
        if cursor <= T_EPS {
            break;
        }
        // The binding predecessor: the one that finished last.
        let next = s
            .preds
            .iter()
            .filter_map(|p| spans.get(p).map(|sp| (*p, sp.end)))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(p, _)| p);
        match next {
            Some(p) => current = p,
            None => {
                // Root span that still started after t = 0 with no
                // recorded cause.
                run.attribution.add(Bucket::Unattributed, cursor);
                break;
            }
        }
    }
    run.critical_path.shrink_to_fit();
}

/// The contention-free duration of `span` (capped at its attributed
/// share `seg`) and the bucket its ideal time belongs to.
///
/// Flows of the span are grouped into serial injection batches (one
/// per plan phase — a batch is every flow injected at the same
/// instant); the ideal duration is the sum over batches of the slowest
/// re-costed flow.
fn span_ideal(s: &SpanRec, flows: &[FlowRec], capacities: &[f64], seg: f64) -> (f64, Bucket) {
    let bucket = Bucket::for_track(s.track);
    if bucket == Bucket::Compute || s.flow_idx.is_empty() {
        return (seg, bucket);
    }
    let mut batches: Vec<(f64, f64)> = Vec::new(); // (inject_t, max ideal fct)
    for &fi in &s.flow_idx {
        let f = &flows[fi];
        let fct = ideal_fct(f, capacities);
        match batches.last_mut() {
            Some((t, m)) if (f.injected - *t).abs() <= T_EPS => *m = m.max(fct),
            _ => batches.push((f.injected, fct)),
        }
    }
    let ideal: f64 = batches.iter().map(|(_, m)| m).sum();
    (ideal.min(seg), bucket)
}

/// Attribution fallback for segments that inject flows without any
/// span structure (raw microbenchmarks): batches of simultaneous
/// injections are treated as serial phases, each charged to the track
/// of its slowest re-costed flow; the rest of the makespan is
/// contention.
fn analyze_bare_flows(flows: &[FlowRec], capacities: &[f64], run: &mut RunAnalysis) {
    run.makespan = flows
        .iter()
        .filter_map(|f| f.completed.or(f.drained))
        .fold(0.0, f64::max);
    if run.makespan <= 0.0 {
        return;
    }
    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_by(|&a, &b| flows[a].injected.total_cmp(&flows[b].injected));
    let mut remaining = run.makespan;
    let mut batch_start = None::<f64>;
    let mut batch_best: Option<(f64, Track)> = None;
    let flush = |best: &mut Option<(f64, Track)>, remaining: &mut f64, run: &mut RunAnalysis| {
        if let Some((fct, track)) = best.take() {
            let charged = fct.min(*remaining);
            run.attribution.add(Bucket::for_track(track), charged);
            *remaining -= charged;
        }
    };
    for &i in &order {
        let f = &flows[i];
        if batch_start.is_none_or(|t| (f.injected - t).abs() > T_EPS) {
            flush(&mut batch_best, &mut remaining, run);
            batch_start = Some(f.injected);
        }
        let fct = ideal_fct(f, capacities);
        if batch_best.is_none_or(|(m, _)| fct > m) {
            batch_best = Some((fct, f.track));
        }
    }
    flush(&mut batch_best, &mut remaining, run);
    run.attribution.add(Bucket::Contention, remaining);
}

/// Builds the per-link contention matrix: overlap seconds per (link,
/// victim span, culprit span) triple, plus each victim's slowdown
/// blamed proportionally to overlap.
fn contention_matrix(
    spans: &HashMap<u64, SpanRec>,
    span_order: &[u64],
    flows: &[FlowRec],
    capacities: &[f64],
) -> Vec<ContentionEntry> {
    let label_of = |f: &FlowRec| -> Box<str> {
        f.span
            .and_then(|i| span_order.get(i))
            .and_then(|id| spans.get(id))
            .map(|s| s.label.clone())
            .unwrap_or_else(|| format!("untracked ({})", f.track).into())
    };

    // Per link: active intervals (flow index, start, end).
    let mut per_link: HashMap<u32, Vec<(usize, f64, f64)>> = HashMap::new();
    for (i, f) in flows.iter().enumerate() {
        let Some(d) = f.drained else { continue };
        if d <= f.injected {
            continue;
        }
        for &l in f.links.iter() {
            per_link.entry(l).or_default().push((i, f.injected, d));
        }
    }

    // (link, victim flow) -> (culprit label -> overlap seconds).
    let mut overlap_w: HashMap<(u32, usize), HashMap<Box<str>, f64>> = HashMap::new();
    for (l, intervals) in per_link.iter_mut() {
        intervals.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        for i in 0..intervals.len() {
            let (fi, si, ei) = intervals[i];
            for &(fj, sj, ej) in intervals.iter().skip(i + 1) {
                if sj >= ei {
                    break; // sorted by start: nothing later overlaps fi
                }
                let ov = ei.min(ej) - sj.max(si);
                if ov <= 0.0 {
                    continue;
                }
                *overlap_w
                    .entry((*l, fi))
                    .or_default()
                    .entry(label_of(&flows[fj]))
                    .or_insert(0.0) += ov;
                *overlap_w
                    .entry((*l, fj))
                    .or_default()
                    .entry(label_of(&flows[fi]))
                    .or_insert(0.0) += ov;
            }
        }
    }

    // Distribute each flow's slowdown over its (link, culprit) overlap
    // weights; accumulate per (link, victim label, culprit label).
    type CellKey = (u32, Box<str>, Box<str>);
    let mut cells: HashMap<CellKey, (f64, f64)> = HashMap::new();
    for (i, f) in flows.iter().enumerate() {
        let victim = label_of(f);
        let total_w: f64 = f
            .links
            .iter()
            .filter_map(|l| overlap_w.get(&(*l, i)))
            .flat_map(|m| m.values())
            .sum();
        let slowdown = flow_slowdown(f, capacities).unwrap_or(0.0);
        for &l in f.links.iter() {
            let Some(m) = overlap_w.get(&(l, i)) else {
                continue;
            };
            for (culprit, w) in m {
                let cell = cells
                    .entry((l, victim.clone(), culprit.clone()))
                    .or_insert((0.0, 0.0));
                cell.0 += w;
                if total_w > 0.0 {
                    cell.1 += slowdown * w / total_w;
                }
            }
        }
    }

    let mut out: Vec<ContentionEntry> = cells
        .into_iter()
        .map(
            |((link, victim, culprit), (overlap, slow))| ContentionEntry {
                link,
                victim: victim.into(),
                culprit: culprit.into(),
                overlap_secs: overlap,
                slowdown_secs: slow,
            },
        )
        .collect();
    out.sort_by(|a, b| {
        b.slowdown_secs
            .total_cmp(&a.slowdown_secs)
            .then(b.overlap_secs.total_cmp(&a.overlap_secs))
            .then(a.link.cmp(&b.link))
            .then(a.victim.cmp(&b.victim))
            .then(a.culprit.cmp(&b.culprit))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(t: f64, track: Track, span: u64, label: &str, tag: u64) -> TraceEvent {
        TraceEvent::PhaseBegin {
            t,
            track,
            span,
            label: label.into(),
            bytes: 0.0,
            npus: 0,
            tag,
        }
    }

    fn end(t: f64, track: Track, span: u64) -> TraceEvent {
        TraceEvent::PhaseEnd { t, track, span }
    }

    fn dep(t: f64, span: u64, pred: u64) -> TraceEvent {
        TraceEvent::SpanDep { t, span, pred }
    }

    #[test]
    fn serial_plan_path_equals_makespan() {
        // Three chained compute spans: 0-1, 1-3, 3-6.
        let evs = vec![
            begin(0.0, Track::Compute, 1, "a", 0),
            end(1.0, Track::Compute, 1),
            begin(1.0, Track::Compute, 2, "b", 0),
            dep(1.0, 2, 1),
            end(3.0, Track::Compute, 2),
            begin(3.0, Track::Compute, 3, "c", 0),
            dep(3.0, 3, 2),
            end(6.0, Track::Compute, 3),
        ];
        let a = Analysis::from_events(&evs);
        assert_eq!(a.runs.len(), 1);
        let r = &a.runs[0];
        assert!((r.makespan - 6.0).abs() < 1e-12);
        assert_eq!(r.critical_path.len(), 3);
        // Path time == makespan; every second is compute.
        let path_secs: f64 = r.critical_path.iter().map(|c| c.secs).sum();
        assert!((path_secs - 6.0).abs() < 1e-12);
        assert!((r.attribution.get(Bucket::Compute) - 6.0).abs() < 1e-12);
        assert!((r.attribution.total() - r.makespan).abs() < 1e-12);
    }

    #[test]
    fn independent_phases_path_is_max() {
        // Two independent spans 0-2 and 0-5: the path is the longer
        // one, and the attribution covers exactly the makespan.
        let evs = vec![
            begin(0.0, Track::Mp, 1, "short", 0),
            begin(0.0, Track::Dp, 2, "long", 0),
            end(2.0, Track::Mp, 1),
            end(5.0, Track::Dp, 2),
        ];
        let a = Analysis::from_events(&evs);
        let r = &a.runs[0];
        assert!((r.makespan - 5.0).abs() < 1e-12);
        assert_eq!(r.critical_path.len(), 1);
        assert_eq!(r.critical_path[0].label, "long");
        // No flows recorded: the whole span charges to its dimension.
        assert!((r.attribution.get(Bucket::CommDp) - 5.0).abs() < 1e-12);
        assert_eq!(r.attribution.get(Bucket::CommMp), 0.0);
        assert!((r.attribution.total() - r.makespan).abs() < 1e-12);
    }

    #[test]
    fn unexplained_start_is_unattributed() {
        // A single span starting at t=2 with no predecessor: the lead-in
        // is unattributed, keeping the sum == makespan invariant.
        let evs = vec![
            begin(2.0, Track::Compute, 1, "late", 0),
            end(3.0, Track::Compute, 1),
        ];
        let a = Analysis::from_events(&evs);
        let r = &a.runs[0];
        assert!((r.makespan - 3.0).abs() < 1e-12);
        assert!((r.attribution.get(Bucket::Compute) - 1.0).abs() < 1e-12);
        assert!((r.attribution.get(Bucket::Unattributed) - 2.0).abs() < 1e-12);
        assert!((r.attribution.total() - r.makespan).abs() < 1e-12);
    }

    /// Two single-flow phases sharing one 100 B/s link: each flow has
    /// 100 bytes, both run 0→2 s at the 50 B/s fair share. Solo, each
    /// would finish in 1 s, so each suffers 1 s of slowdown — blamed
    /// entirely on the other phase.
    fn shared_link_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Topology {
                t: 0.0,
                capacities: Box::new([100.0]),
            },
            begin(0.0, Track::Mp, 1, "phase-a", 11),
            begin(0.0, Track::Dp, 2, "phase-b", 22),
            TraceEvent::FlowInjected {
                t: 0.0,
                id: 0,
                tag: 11,
                bytes: 100.0,
                track: Track::Mp,
                links: Box::new([0]),
            },
            TraceEvent::FlowInjected {
                t: 0.0,
                id: 1,
                tag: 22,
                bytes: 100.0,
                track: Track::Dp,
                links: Box::new([0]),
            },
            TraceEvent::FlowDrained { t: 2.0, id: 0 },
            TraceEvent::FlowDrained { t: 2.0, id: 1 },
            TraceEvent::FlowCompleted {
                t: 2.0,
                id: 0,
                tag: 11,
                injected_at: 0.0,
                track: Track::Mp,
            },
            TraceEvent::FlowCompleted {
                t: 2.0,
                id: 1,
                tag: 22,
                injected_at: 0.0,
                track: Track::Dp,
            },
            end(2.0, Track::Mp, 1),
            end(2.0, Track::Dp, 2),
        ]
    }

    #[test]
    fn contention_matrix_blames_the_sharing_phase() {
        let a = Analysis::from_events(&shared_link_events());
        let r = &a.runs[0];
        assert!((r.makespan - 2.0).abs() < 1e-12);

        // The matrix has both directed pairs on link 0, each with 2 s
        // of overlap and 1 s of inflicted slowdown.
        let find = |victim: &str, culprit: &str| {
            r.contention
                .iter()
                .find(|c| c.victim == victim && c.culprit == culprit)
                .unwrap_or_else(|| panic!("no ({victim}, {culprit}) cell: {:?}", r.contention))
        };
        let ab = find("phase-a", "phase-b");
        assert_eq!(ab.link, 0);
        assert!((ab.overlap_secs - 2.0).abs() < 1e-9, "{ab:?}");
        assert!((ab.slowdown_secs - 1.0).abs() < 1e-9, "{ab:?}");
        let ba = find("phase-b", "phase-a");
        assert!((ba.slowdown_secs - 1.0).abs() < 1e-9, "{ba:?}");
    }

    #[test]
    fn ideal_recosting_splits_comm_and_contention() {
        let a = Analysis::from_events(&shared_link_events());
        let r = &a.runs[0];
        // Critical path: one of the two phases (2 s observed, 1 s
        // ideal): 1 s exposed comm + 1 s contention.
        let comm = r.attribution.get(Bucket::CommMp) + r.attribution.get(Bucket::CommDp);
        assert!((comm - 1.0).abs() < 1e-9, "{:?}", r.attribution);
        assert!(
            (r.attribution.get(Bucket::Contention) - 1.0).abs() < 1e-9,
            "{:?}",
            r.attribution
        );
        assert!((r.attribution.total() - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn segments_split_on_topology_markers() {
        let mut evs = shared_link_events();
        evs.extend(shared_link_events());
        let a = Analysis::from_events(&evs);
        assert_eq!(a.runs.len(), 2);
        assert!((a.total_makespan() - 4.0).abs() < 1e-9);
        assert!((a.totals().total() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bare_flow_segment_still_attributes() {
        // A flow with no span structure at all.
        let evs = vec![
            TraceEvent::Topology {
                t: 0.0,
                capacities: Box::new([100.0]),
            },
            TraceEvent::FlowInjected {
                t: 0.0,
                id: 0,
                tag: 0,
                bytes: 200.0,
                track: Track::Bulk,
                links: Box::new([0]),
            },
            TraceEvent::FlowDrained { t: 2.0, id: 0 },
            TraceEvent::FlowCompleted {
                t: 2.5,
                id: 0,
                tag: 0,
                injected_at: 0.0,
                track: Track::Bulk,
            },
        ];
        let a = Analysis::from_events(&evs);
        let r = &a.runs[0];
        assert!((r.makespan - 2.5).abs() < 1e-12);
        // Solo: 200 B / 100 B/s + 0.5 s tail = 2.5 s — all ideal bulk.
        assert!((r.attribution.get(Bucket::CommBulk) - 2.5).abs() < 1e-9);
        assert_eq!(r.attribution.get(Bucket::Contention), 0.0);
        assert!((r.attribution.total() - r.makespan).abs() < 1e-9);
    }

    #[test]
    fn truncation_is_flagged() {
        let a = Analysis::from_events(&[]).with_dropped(42);
        assert!(a.truncated());
        assert!(a.to_json().contains("\"trace_truncated\":true"));
        assert!(a.summary().contains("WARNING"));
    }

    #[test]
    fn json_is_balanced() {
        let a = Analysis::from_events(&shared_link_events());
        let j = a.to_json();
        let braces: i64 = j
            .chars()
            .map(|c| match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(braces, 0);
        assert!(j.contains("\"attribution\""));
        assert!(j.contains("\"contention\""));
    }
}

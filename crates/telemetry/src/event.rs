//! Structured simulation events.
//!
//! Events carry raw identifiers and `f64` seconds so every layer of
//! the stack (netsim, collectives, trainer) can emit without this
//! crate depending on any of them. [`TraceEvent::FlowDrained`],
//! [`TraceEvent::FlowCompleted`], [`TraceEvent::RateEpoch`] and
//! [`TraceEvent::LinkUtil`] are `Copy` data end to end;
//! [`TraceEvent::FlowInjected`] carries its route (one small boxed
//! slice per flow) so the analysis layer can re-cost every flow at its
//! contention-free rate and attribute link contention to phase pairs.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which display track an event belongs to — one per parallelism
/// dimension plus housekeeping tracks. Mirrors the paper's MP / PP /
/// DP phase taxonomy (§3.1) and the virtual-channel classes (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// Model/tensor-parallel collectives.
    Mp,
    /// Pipeline-parallel stage transfers.
    Pp,
    /// Data-parallel gradient collectives.
    Dp,
    /// Input loading, weight streaming and other bulk traffic.
    Bulk,
    /// Compute tasks (trainer roofline spans).
    Compute,
    /// Whole-iteration stage markers.
    Iteration,
}

impl Track {
    /// All tracks, in display order.
    pub const ALL: [Track; 6] = [
        Track::Mp,
        Track::Pp,
        Track::Dp,
        Track::Bulk,
        Track::Compute,
        Track::Iteration,
    ];

    /// Stable small integer for exporters (Perfetto `tid`).
    pub fn index(self) -> u32 {
        match self {
            Track::Mp => 0,
            Track::Pp => 1,
            Track::Dp => 2,
            Track::Bulk => 3,
            Track::Compute => 4,
            Track::Iteration => 5,
        }
    }

    /// Short lowercase slug for series names and label values
    /// (`open_phases/mp`, `queue_depth/dp`).
    pub fn short(self) -> &'static str {
        match self {
            Track::Mp => "mp",
            Track::Pp => "pp",
            Track::Dp => "dp",
            Track::Bulk => "bulk",
            Track::Compute => "compute",
            Track::Iteration => "iter",
        }
    }

    /// Human-readable track name.
    pub fn name(self) -> &'static str {
        match self {
            Track::Mp => "MP (tensor parallel)",
            Track::Pp => "PP (pipeline parallel)",
            Track::Dp => "DP (data parallel)",
            Track::Bulk => "bulk / streaming",
            Track::Compute => "compute",
            Track::Iteration => "iteration",
        }
    }
}

impl fmt::Display for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured simulation event. Times are simulation seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A fresh simulator was constructed over a topology. Marks the
    /// start of a new simulation *segment* within one recording (the
    /// figure binaries run several simulations into one sink) and
    /// carries the per-link capacities the analysis layer needs to
    /// re-cost flows at their contention-free rate.
    Topology {
        /// Simulation time (always the new simulator's clock zero).
        t: f64,
        /// Capacity in bytes/s per link, indexed by `LinkId.0`.
        capacities: Box<[f64]>,
    },
    /// A flow started draining bytes into the network.
    FlowInjected {
        /// Simulation time.
        t: f64,
        /// Flow id (unique per network).
        id: u64,
        /// Caller-supplied tag (collective phase, task id, …).
        tag: u64,
        /// Payload bytes.
        bytes: f64,
        /// Priority-derived track.
        track: Track,
        /// Route as link indices (`LinkId.0`), in traversal order.
        links: Box<[u32]>,
    },
    /// A flow pushed its last byte (stops consuming bandwidth).
    FlowDrained {
        /// Simulation time.
        t: f64,
        /// Flow id.
        id: u64,
    },
    /// A flow's tail arrived at the destination.
    FlowCompleted {
        /// Simulation time.
        t: f64,
        /// Flow id.
        id: u64,
        /// Caller-supplied tag.
        tag: u64,
        /// When the flow was injected (for completion-time metrics).
        injected_at: f64,
        /// Priority-derived track.
        track: Track,
    },
    /// The fair-share solver refilled rates after the active set
    /// changed (a rate-reallocation epoch). Emission is delta-aware:
    /// epochs where no rate actually moved are suppressed.
    RateEpoch {
        /// Simulation time.
        t: f64,
        /// Flows holding bandwidth after the refill.
        active_flows: u32,
        /// Flows whose rate actually changed in this refill (always
        /// non-zero for emitted epochs).
        changed: u32,
    },
    /// Utilization sample for one link, emitted when its allocated
    /// rate changes at a rate epoch.
    LinkUtil {
        /// Simulation time.
        t: f64,
        /// Link index (`LinkId.0`).
        link: u32,
        /// Allocated rate / capacity, in `[0, 1]`.
        utilization: f64,
    },
    /// A collective phase (or other span) began.
    PhaseBegin {
        /// Simulation time.
        t: f64,
        /// Display track.
        track: Track,
        /// Span id pairing this with its [`TraceEvent::PhaseEnd`].
        span: u64,
        /// Span label (plan label, task name, …).
        label: Box<str>,
        /// Bytes the phase moves (0 when unknown).
        bytes: f64,
        /// Endpoints participating (0 when unknown).
        npus: u32,
        /// Correlation tag: flows injected with this
        /// [`TraceEvent::FlowInjected::tag`] while the span is open
        /// belong to it (0 when the span owns no flows).
        tag: u64,
    },
    /// A collective phase ended.
    PhaseEnd {
        /// Simulation time.
        t: f64,
        /// Display track.
        track: Track,
        /// Span id of the matching [`TraceEvent::PhaseBegin`].
        span: u64,
    },
    /// A happens-before edge between two spans: `span` could not start
    /// before `pred` finished (a trainer task dependency or the serial
    /// phase ordering of a collective plan). The analysis layer uses
    /// these edges to reconstruct the causal DAG and its critical path.
    SpanDep {
        /// Simulation time the edge was observed (the successor's
        /// start).
        t: f64,
        /// The successor span id.
        span: u64,
        /// The predecessor span id.
        pred: u64,
    },
    /// An instantaneous trainer iteration-stage marker.
    IterStage {
        /// Simulation time.
        t: f64,
        /// Marker label.
        label: Box<str>,
    },
    /// A fault fired: a link lost capacity (failure or degradation).
    /// Lets traces and the attribution analyzer show which stalls and
    /// re-routes are fault-induced.
    Fault {
        /// Simulation time.
        t: f64,
        /// Link index (`LinkId.0`).
        link: u32,
        /// Remaining capacity as a fraction of the link's design
        /// bandwidth: `0.0` for a full failure, `(0, 1)` for a
        /// degradation.
        capacity_fraction: f64,
        /// In-flight flows evicted for re-routing (0 for degradations).
        evicted: u32,
    },
    /// A generic named measurement for quantities the core event
    /// vocabulary doesn't model — the cluster scheduler's per-class
    /// queue depth, running-job counts and per-job stretch flow
    /// through here. The flight recorder folds samples into a gauge
    /// series per `key`; other consumers may ignore them.
    Sample {
        /// Simulation time.
        t: f64,
        /// Series name, `base/detail` by convention
        /// (`queue_depth/high`, `stretch/job3`).
        key: Box<str>,
        /// Sampled value.
        value: f64,
    },
}

impl TraceEvent {
    /// The simulation time the event occurred at.
    pub fn time(&self) -> f64 {
        match *self {
            TraceEvent::Topology { t, .. }
            | TraceEvent::FlowInjected { t, .. }
            | TraceEvent::FlowDrained { t, .. }
            | TraceEvent::FlowCompleted { t, .. }
            | TraceEvent::RateEpoch { t, .. }
            | TraceEvent::LinkUtil { t, .. }
            | TraceEvent::PhaseBegin { t, .. }
            | TraceEvent::PhaseEnd { t, .. }
            | TraceEvent::SpanDep { t, .. }
            | TraceEvent::IterStage { t, .. }
            | TraceEvent::Fault { t, .. }
            | TraceEvent::Sample { t, .. } => t,
        }
    }
}

/// Process-wide span-id source for [`TraceEvent::PhaseBegin`] /
/// [`TraceEvent::PhaseEnd`] pairs. Ids are unique within a process;
/// they never affect simulation results, only trace pairing.
pub fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_unique() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, b);
    }

    #[test]
    fn time_accessor_covers_all_variants() {
        let evs = [
            TraceEvent::FlowInjected {
                t: 1.0,
                id: 0,
                tag: 0,
                bytes: 1.0,
                track: Track::Mp,
                links: Box::new([0]),
            },
            TraceEvent::FlowDrained { t: 2.0, id: 0 },
            TraceEvent::FlowCompleted {
                t: 3.0,
                id: 0,
                tag: 0,
                injected_at: 1.0,
                track: Track::Mp,
            },
            TraceEvent::RateEpoch {
                t: 4.0,
                active_flows: 2,
                changed: 1,
            },
            TraceEvent::LinkUtil {
                t: 5.0,
                link: 0,
                utilization: 0.5,
            },
            TraceEvent::PhaseBegin {
                t: 6.0,
                track: Track::Dp,
                span: 1,
                label: "x".into(),
                bytes: 0.0,
                npus: 0,
                tag: 0,
            },
            TraceEvent::PhaseEnd {
                t: 7.0,
                track: Track::Dp,
                span: 1,
            },
            TraceEvent::IterStage {
                t: 8.0,
                label: "fwd".into(),
            },
            TraceEvent::Topology {
                t: 9.0,
                capacities: Box::new([100.0]),
            },
            TraceEvent::SpanDep {
                t: 10.0,
                span: 2,
                pred: 1,
            },
            TraceEvent::Fault {
                t: 11.0,
                link: 3,
                capacity_fraction: 0.0,
                evicted: 2,
            },
            TraceEvent::Sample {
                t: 12.0,
                key: "queue_depth/high".into(),
                value: 4.0,
            },
        ];
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.time(), (i + 1) as f64);
        }
    }

    #[test]
    fn track_indices_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for t in Track::ALL {
            assert!(seen.insert(t.index()), "duplicate tid for {t}");
        }
    }
}

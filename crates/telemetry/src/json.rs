//! A minimal JSON writer.
//!
//! The exporters emit JSON by hand (this repo builds with no external
//! dependencies); these helpers keep escaping and number formatting
//! correct in one place.

use std::fmt::Write as _;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite JSON number. Non-finite values (which JSON cannot
/// represent) are clamped: NaN becomes 0, infinities become ±1e308.
pub fn push_num(out: &mut String, x: f64) {
    let x = if x.is_nan() {
        0.0
    } else if x == f64::INFINITY {
        1e308
    } else if x == f64::NEG_INFINITY {
        -1e308
    } else {
        x
    };
    if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

/// [`push_num`] as an owned string — the one number formatter shared by
/// the JSON writers, the Prometheus exporter and the snapshot codec.
/// For finite inputs the rendering round-trips through `str::parse`
/// bit-exactly (integers collapse to `i64` form only below 2^53, where
/// the conversion is lossless; everything else uses Rust's
/// shortest-round-trip `Display`), with the single exception of `-0.0`,
/// which prints as `0`.
pub fn fmt_num(x: f64) -> String {
    let mut out = String::new();
    push_num(&mut out, x);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> String {
        let mut out = String::new();
        push_str_lit(&mut out, s);
        out
    }

    fn num(x: f64) -> String {
        let mut out = String::new();
        push_num(&mut out, x);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(lit("a\"b"), r#""a\"b""#);
        assert_eq!(lit("a\\b"), r#""a\\b""#);
        assert_eq!(lit("a\nb"), r#""a\nb""#);
        assert_eq!(lit("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(-2.0), "-2");
        assert_eq!(num(0.5), "0.5");
    }

    #[test]
    fn non_finite_is_clamped() {
        assert_eq!(num(f64::NAN), "0");
        assert!(num(f64::INFINITY).starts_with("1"));
        assert!(num(f64::NEG_INFINITY).starts_with("-1"));
    }

    #[test]
    fn fmt_num_round_trips_finite_values() {
        for &x in &[
            0.0,
            3.0,
            -2.0,
            0.1,
            1.0 / 3.0,
            1e-300,
            123456789.123456,
            9.007199254740991e15, // 2^53 - 1, above the i64-collapse cap
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let s = fmt_num(x);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} rendered as {s}");
        }
    }
}

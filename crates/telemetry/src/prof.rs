//! Scoped host-side self-profiler.
//!
//! Wall-clock instrumentation for the simulator's own hot paths
//! (solver solves, batch injection, placement search, preemption
//! scans). Unlike the flight recorder — which lives in *sim* time —
//! this layer measures where *host* time goes, the scouting data the
//! ROADMAP's sharded-core work needs.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when off.** The profiler defaults to disabled;
//!    every instrumentation site is guarded by a single `Relaxed`
//!    atomic load ([`enabled`]) before any clock is read or
//!    thread-local touched. `solver_bench` asserts the overhead budget
//!    (disabled *and* enabled runs must stay within 5% of baseline
//!    throughput), which is why scopes are placed on infrequent paths
//!    — per solve / per batch, never per event.
//! 2. **No dependencies, no unsafe.** Storage is a thread-local
//!    `BTreeMap<&'static str, SiteStats>`; site names are `'static`
//!    string literals so no allocation happens on the hot path after
//!    a site's first hit.
//! 3. **Scoped, not sampled.** A [`ScopeTimer`] records on drop, so
//!    early returns and `?` propagation are timed correctly.
//!
//! Sites also accept plain values via [`record_value`] — the solver
//! reports its dirty-component sizes through the same table, so one
//! snapshot carries both wall-clock and `SolverStats`-style series.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::{push_num, push_str_lit};

static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static SITES: RefCell<BTreeMap<&'static str, SiteStats>> =
        const { RefCell::new(BTreeMap::new()) };
}

/// Samples flushed out of worker threads' locals (see
/// [`flush_thread`]). Locked only at flush/snapshot/reset — never on
/// the instrumentation hot path, which stays thread-local.
static FLUSHED: Mutex<BTreeMap<&'static str, SiteStats>> = Mutex::new(BTreeMap::new());

/// Aggregate statistics for one instrumentation site.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SiteStats {
    /// Times the site fired (scope completions or value records).
    pub count: u64,
    /// Sum of recorded values — seconds for scopes, the raw quantity
    /// for [`record_value`] sites.
    pub total: f64,
    /// Largest single recorded value.
    pub max: f64,
}

impl SiteStats {
    /// Mean recorded value (0 when the site never fired).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }
}

/// Turns profiling on or off process-wide. Off by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is currently on — the one check every
/// instrumentation site pays when disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts timing `site` if profiling is on. Bind the result to a
/// local (`let _scope = prof::scope("solver.solve");`): the elapsed
/// wall-clock is recorded when the guard drops.
#[inline]
pub fn scope(site: &'static str) -> Option<ScopeTimer> {
    if enabled() {
        Some(ScopeTimer {
            site,
            start: Instant::now(),
        })
    } else {
        None
    }
}

/// Records a plain value (a component size, a heap depth) against
/// `site` if profiling is on.
#[inline]
pub fn record_value(site: &'static str, value: f64) {
    if enabled() {
        add(site, value);
    }
}

fn add(site: &'static str, value: f64) {
    SITES.with(|s| {
        let mut map = s.borrow_mut();
        let st = map.entry(site).or_default();
        st.count += 1;
        st.total += value;
        if value > st.max {
            st.max = value;
        }
    });
}

/// RAII guard returned by [`scope`]; records elapsed seconds on drop.
#[derive(Debug)]
pub struct ScopeTimer {
    site: &'static str,
    start: Instant,
}

impl Drop for ScopeTimer {
    fn drop(&mut self) {
        add(self.site, self.start.elapsed().as_secs_f64());
    }
}

impl SiteStats {
    fn merge(&mut self, other: &SiteStats) {
        self.count += other.count;
        self.total += other.total;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// Moves this thread's accumulated samples into the process-wide
/// flushed table, leaving the local table empty. Worker threads call
/// this right before exiting (the sharded runtime does it at every
/// barrier join) so their samples survive the thread and show up in
/// the draining thread's [`snapshot`]. Cheap no-op when the local
/// table is empty.
pub fn flush_thread() {
    SITES.with(|s| {
        let mut local = s.borrow_mut();
        if local.is_empty() {
            return;
        }
        let mut global = FLUSHED.lock().expect("prof flush table poisoned");
        for (name, st) in std::mem::take(&mut *local) {
            global.entry(name).or_default().merge(&st);
        }
    });
}

/// Clones out the accumulated site table: this thread's samples merged
/// with everything worker threads have [`flush_thread`]-ed. A
/// single-threaded caller sees exactly its own table, as before the
/// profiler became multi-thread-aware.
pub fn snapshot() -> BTreeMap<&'static str, SiteStats> {
    let mut out = FLUSHED.lock().expect("prof flush table poisoned").clone();
    SITES.with(|s| {
        for (name, st) in s.borrow().iter() {
            out.entry(name).or_default().merge(st);
        }
    });
    out
}

/// Clears this thread's site table *and* the flushed cross-thread
/// table (the enabled flag is untouched). Samples still sitting in
/// other live threads' locals are not reachable and not cleared; flush
/// or join those threads first.
pub fn reset() {
    FLUSHED.lock().expect("prof flush table poisoned").clear();
    SITES.with(|s| s.borrow_mut().clear());
}

/// Renders a snapshot as a JSON object keyed by site name, each value
/// `{count, total, mean, max}` — the `prof` section of a bench report.
pub fn to_json(sites: &BTreeMap<&'static str, SiteStats>) -> String {
    let mut s = String::with_capacity(256);
    s.push('{');
    for (i, (name, st)) in sites.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_str_lit(&mut s, name);
        s.push_str(":{\"count\":");
        push_num(&mut s, st.count as f64);
        s.push_str(",\"total\":");
        push_num(&mut s, st.total);
        s.push_str(",\"mean\":");
        push_num(&mut s, st.mean());
        s.push_str(",\"max\":");
        push_num(&mut s, st.max);
        s.push('}');
    }
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the enabled flag is process-global and
    // the default harness runs tests concurrently.
    #[test]
    fn disabled_is_silent_then_enabled_accumulates() {
        set_enabled(false);
        reset();
        {
            let _t = scope("test.noop");
            record_value("test.value", 42.0);
        }
        assert!(snapshot().is_empty());

        set_enabled(true);
        {
            let _t = scope("test.scope");
        }
        record_value("test.value", 3.0);
        record_value("test.value", 5.0);
        let snap = snapshot();
        set_enabled(false);
        let sc = snap["test.scope"];
        assert_eq!(sc.count, 1);
        assert!(sc.total >= 0.0);
        let v = snap["test.value"];
        assert_eq!(v.count, 2);
        assert_eq!(v.total, 8.0);
        assert_eq!(v.max, 5.0);
        assert_eq!(v.mean(), 4.0);
        let json = to_json(&snap);
        assert!(json.contains("\"test.value\""));
        assert!(json.contains("\"max\":5"));
        reset();
        assert!(snapshot().is_empty());

        // Worker-thread samples reach the parent's snapshot once the
        // worker flushes (and only then).
        set_enabled(true);
        record_value("test.cross", 1.0);
        std::thread::scope(|s| {
            s.spawn(|| {
                record_value("test.cross", 2.0);
                record_value("test.worker_only", 7.0);
                flush_thread();
            });
        });
        let snap = snapshot();
        set_enabled(false);
        let c = snap["test.cross"];
        assert_eq!(c.count, 2);
        assert_eq!(c.total, 3.0);
        assert_eq!(c.max, 2.0);
        assert_eq!(snap["test.worker_only"].count, 1);
        reset();
        assert!(snapshot().is_empty());
    }
}

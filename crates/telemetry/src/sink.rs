//! Trace sinks: where instrumented layers send their events.
//!
//! The contract instrumentation relies on:
//!
//! * call [`TraceSink::enabled`] first and skip event construction
//!   when it returns `false` — this is what makes the [`NullSink`]
//!   default zero-overhead (no event is built, no branch beyond one
//!   virtual call);
//! * [`TraceSink::record`] takes `&self`: sinks use interior
//!   mutability, so one sink can be shared by the network, the
//!   collective executor and the trainer simultaneously.

use std::cell::{Cell, RefCell};
use std::fmt::Debug;

use crate::event::TraceEvent;

/// A consumer of [`TraceEvent`]s.
pub trait TraceSink: Debug {
    /// Whether recording is on. Instrumented code checks this before
    /// building an event, so a disabled sink costs one virtual call
    /// and nothing else.
    fn enabled(&self) -> bool;

    /// Records one event. May drop it (ring overflow).
    fn record(&self, ev: TraceEvent);

    /// How many events this sink has lost so far (ring overwrites,
    /// caps). Consumers surface this so a truncated recording is
    /// never mistaken for a complete one. Defaults to 0 for sinks
    /// that never drop.
    fn dropped(&self) -> u64 {
        0
    }
}

impl<T: TraceSink + ?Sized> TraceSink for std::rc::Rc<T> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&self, ev: TraceEvent) {
        (**self).record(ev)
    }

    fn dropped(&self) -> u64 {
        (**self).dropped()
    }
}

/// The zero-overhead default: reports disabled, drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _ev: TraceEvent) {}
}

/// A single-threaded, preallocated ring-buffer recorder.
///
/// The buffer is allocated once at construction; recording into a
/// non-full ring writes into reserved capacity and recording into a
/// full ring overwrites the oldest event in place — neither path
/// allocates. ("Lock-free-ish": interior mutability via `Cell` /
/// `RefCell`, no locks, single-threaded by construction — the
/// simulator itself is single-threaded per experiment.)
#[derive(Debug)]
pub struct RingRecorder {
    buf: RefCell<Vec<TraceEvent>>,
    /// Index of the oldest event once the ring has wrapped.
    head: Cell<usize>,
    cap: usize,
    overwritten: Cell<u64>,
}

impl RingRecorder {
    /// Default ring capacity: plenty for any single figure experiment
    /// while bounding worst-case memory to ~100 MB of events.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a recorder holding at most `cap` events (the most
    /// recent ones win).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_capacity(cap: usize) -> RingRecorder {
        assert!(cap > 0, "ring capacity must be positive");
        RingRecorder {
            buf: RefCell::new(Vec::with_capacity(cap)),
            head: Cell::new(0),
            cap,
            overwritten: Cell::new(0),
        }
    }

    /// Creates a recorder with [`RingRecorder::DEFAULT_CAPACITY`].
    pub fn new() -> RingRecorder {
        RingRecorder::with_capacity(RingRecorder::DEFAULT_CAPACITY)
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were overwritten because the ring was full.
    pub fn overwritten(&self) -> u64 {
        self.overwritten.get()
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let buf = self.buf.borrow();
        let head = self.head.get();
        let mut out = Vec::with_capacity(buf.len());
        out.extend_from_slice(&buf[head..]);
        out.extend_from_slice(&buf[..head]);
        out
    }

    /// Clears the ring (capacity is retained).
    pub fn clear(&self) {
        self.buf.borrow_mut().clear();
        self.head.set(0);
        self.overwritten.set(0);
    }
}

impl Default for RingRecorder {
    fn default() -> RingRecorder {
        RingRecorder::new()
    }
}

impl TraceSink for RingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, ev: TraceEvent) {
        let mut buf = self.buf.borrow_mut();
        if buf.len() < self.cap {
            buf.push(ev);
        } else {
            let head = self.head.get();
            buf[head] = ev;
            self.head.set((head + 1) % self.cap);
            self.overwritten.set(self.overwritten.get() + 1);
        }
    }

    fn dropped(&self) -> u64 {
        self.overwritten()
    }
}

/// Fans every event out to two sinks (e.g. a ring recorder and a
/// streaming metrics accumulator).
#[derive(Debug)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn record(&self, ev: TraceEvent) {
        if self.0.enabled() {
            self.0.record(ev.clone());
        }
        if self.1.enabled() {
            self.1.record(ev);
        }
    }

    fn dropped(&self) -> u64 {
        self.0.dropped() + self.1.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marker(t: f64) -> TraceEvent {
        TraceEvent::RateEpoch {
            t,
            active_flows: 0,
            changed: 0,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
        s.record(marker(0.0)); // no-op, no panic
    }

    #[test]
    fn ring_records_in_order() {
        let r = RingRecorder::with_capacity(8);
        for i in 0..5 {
            r.record(marker(i as f64));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[0].time(), 0.0);
        assert_eq!(evs[4].time(), 4.0);
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let r = RingRecorder::with_capacity(4);
        for i in 0..10 {
            r.record(marker(i as f64));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 4);
        // The last four survive, oldest first.
        let times: Vec<f64> = evs.iter().map(|e| e.time()).collect();
        assert_eq!(times, vec![6.0, 7.0, 8.0, 9.0]);
        assert_eq!(r.overwritten(), 6);
    }

    #[test]
    fn ring_never_reallocates_after_construction() {
        let r = RingRecorder::with_capacity(16);
        let cap_before = r.buf.borrow().capacity();
        for i in 0..100 {
            r.record(marker(i as f64));
        }
        assert_eq!(r.buf.borrow().capacity(), cap_before);
    }

    #[test]
    fn clear_resets_state() {
        let r = RingRecorder::with_capacity(2);
        r.record(marker(0.0));
        r.record(marker(1.0));
        r.record(marker(2.0));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.overwritten(), 0);
        r.record(marker(3.0));
        assert_eq!(r.events()[0].time(), 3.0);
    }

    #[test]
    fn tee_fans_out() {
        let t = TeeSink(
            RingRecorder::with_capacity(4),
            RingRecorder::with_capacity(4),
        );
        assert!(t.enabled());
        t.record(marker(1.0));
        assert_eq!(t.0.len(), 1);
        assert_eq!(t.1.len(), 1);
    }

    #[test]
    fn dropped_propagates_through_tee_and_rc() {
        let t = TeeSink(
            std::rc::Rc::new(RingRecorder::with_capacity(2)),
            RingRecorder::with_capacity(4),
        );
        for i in 0..6 {
            t.record(marker(i as f64));
        }
        assert_eq!(t.0.dropped(), 4);
        assert_eq!(t.1.dropped(), 2);
        assert_eq!(t.dropped(), 6);
        assert_eq!(NullSink.dropped(), 0);
    }
}

#![warn(missing_docs)]

//! # fred-telemetry — simulation observability
//!
//! FRED's claims are about *where time and bandwidth go* inside one
//! training iteration: link-level contention, overlapping MP/PP/DP
//! collective phases, effective per-NPU bandwidth. This crate gives
//! every layer of the reproduction a common way to make that visible:
//!
//! * [`event::TraceEvent`] — structured simulation events: flow
//!   lifecycle (injected / drained / completed), rate-reallocation
//!   epochs with per-link utilization samples, collective phase
//!   begin/end, and trainer iteration stages;
//! * [`sink::TraceSink`] — the recording trait the simulator layers
//!   emit through. [`sink::NullSink`] is the zero-overhead default
//!   (instrumented code checks [`sink::TraceSink::enabled`] and skips
//!   event construction entirely); [`sink::RingRecorder`] is a
//!   preallocated ring-buffer recorder that never allocates per event
//!   once constructed;
//! * [`perfetto`] — a Chrome-trace / Perfetto JSON exporter. Open the
//!   emitted file at <https://ui.perfetto.dev>: collective phases
//!   render as duration spans, one track per parallelism dimension
//!   (MP / PP / DP), per-link utilization and active-flow counts as
//!   counter tracks;
//! * [`metrics`] — an aggregation layer computing per-link busy time,
//!   peak/mean utilization, flow-completion-time histograms, and
//!   per-phase effective bandwidth in GB/s per NPU (the paper's §8.1
//!   metric);
//! * [`analysis`] / [`attribution`] — critical-path reconstruction
//!   over the recorded span DAG, charging every makespan second to
//!   {compute, exposed MP/PP/DP/bulk communication, contention,
//!   unattributed} via ideal-rate re-costing, plus the per-link
//!   contention matrix (which phase pairs shared a link and how much
//!   slowdown each inflicted);
//! * [`timeseries`] — the continuous flight recorder: a streaming
//!   [`sink::TraceSink`] that folds the event stream into bounded,
//!   decimating time series (per-link utilization, per-tenant queue
//!   depth and stretch, phase mix) and log-bucketed completion-time
//!   histograms;
//! * [`prof`] — the scoped host-side self-profiler for the
//!   simulator's own hot paths (solver solves, batch injection,
//!   placement search), one relaxed atomic load when disabled;
//! * [`prom`] / [`dashboard`] — exporters over a flight-recorder
//!   snapshot: Prometheus text exposition (with a validating parser)
//!   and a self-contained offline HTML dashboard of inline-SVG
//!   sparklines and a link-utilization heatmap.
//!
//! The crate is dependency-free and knows nothing about the simulator:
//! events carry raw ids (`u64` flows, `u32` links) and seconds as
//! `f64`, so `fred-sim`, `fred-collectives` and `fred-workloads` can
//! all emit into one sink without a layering cycle.
//!
//! ## Example
//!
//! ```
//! use fred_telemetry::event::{TraceEvent, Track};
//! use fred_telemetry::sink::{RingRecorder, TraceSink};
//! use fred_telemetry::metrics::Metrics;
//!
//! let rec = RingRecorder::with_capacity(1024);
//! rec.record(TraceEvent::PhaseBegin {
//!     t: 0.0, track: Track::Mp, span: 1, label: "ring-allreduce".into(),
//!     bytes: 1e9, npus: 20, tag: 0,
//! });
//! rec.record(TraceEvent::PhaseEnd { t: 0.5, track: Track::Mp, span: 1 });
//! let m = Metrics::from_events(&rec.events());
//! assert_eq!(m.phases.len(), 1);
//! let mut json = Vec::new();
//! fred_telemetry::perfetto::export_chrome_trace(&rec.events(), &Default::default(), &mut json)
//!     .unwrap();
//! assert!(String::from_utf8(json).unwrap().contains("traceEvents"));
//! ```

pub mod analysis;
pub mod attribution;
pub mod dashboard;
pub mod event;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod prof;
pub mod prom;
pub mod sink;
pub mod timeseries;

pub use analysis::Analysis;
pub use attribution::{Attribution, Bucket};
pub use event::{TraceEvent, Track};
pub use metrics::Metrics;
pub use sink::{NullSink, RingRecorder, TeeSink, TraceSink};
pub use timeseries::{FlightRecorder, FlightSnapshot, LogHistogram, Series, SeriesKind};

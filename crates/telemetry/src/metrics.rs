//! Aggregate metrics computed from a recorded event stream.
//!
//! Where the Perfetto export answers "what happened when", this layer
//! answers "how much, overall": per-link busy time and peak/mean
//! utilization, the flow-completion-time distribution, and effective
//! bandwidth per phase in GB/s per NPU — the unit the paper reports in
//! §8.1.

use std::collections::HashMap;

use crate::event::{TraceEvent, Track};
use crate::json::{push_num, push_str_lit};

/// Number of log₁₀ buckets in the completion-time histogram
/// (`[1 ns, 10 ns)`, …, `[100 s, ∞)`).
pub const FCT_BUCKETS: usize = 12;
/// Lower edge of the first histogram bucket, in seconds.
const FCT_FLOOR: f64 = 1e-9;

/// Per-link utilization summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkMetrics {
    /// Link index (`LinkId.0`).
    pub link: u32,
    /// Seconds with nonzero allocated rate.
    pub busy_secs: f64,
    /// Time-weighted mean utilization over the link's observed time.
    /// Observed time sums every interval between consecutive samples
    /// of this link, so it stays well-defined even when one recording
    /// spans several simulations that each restart at `t = 0`.
    pub mean_utilization: f64,
    /// Peak utilization observed.
    pub peak_utilization: f64,
}

/// Flow-completion-time distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct FctHistogram {
    /// Count per log₁₀ bucket; bucket `i` covers
    /// `[1e-9 × 10^i, 1e-9 × 10^(i+1))` seconds, the last is open.
    pub buckets: [u64; FCT_BUCKETS],
    /// Completed-flow count.
    pub count: u64,
    /// Shortest completion time (seconds).
    pub min_secs: f64,
    /// Longest completion time (seconds).
    pub max_secs: f64,
    /// Sum of completion times (for the mean).
    pub total_secs: f64,
}

impl Default for FctHistogram {
    fn default() -> FctHistogram {
        FctHistogram {
            buckets: [0; FCT_BUCKETS],
            count: 0,
            min_secs: f64::INFINITY,
            max_secs: 0.0,
            total_secs: 0.0,
        }
    }
}

impl FctHistogram {
    fn add(&mut self, secs: f64) {
        let secs = secs.max(0.0);
        let idx = if secs < FCT_FLOOR {
            0
        } else {
            (((secs / FCT_FLOOR).log10()) as usize).min(FCT_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.min_secs = self.min_secs.min(secs);
        self.max_secs = self.max_secs.max(secs);
        self.total_secs += secs;
    }

    /// Mean completion time in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs / self.count as f64
        }
    }
}

/// One completed phase span.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMetrics {
    /// Phase label.
    pub label: String,
    /// Display track (parallelism dimension).
    pub track: Track,
    /// Phase duration in seconds.
    pub secs: f64,
    /// Bytes the phase moved.
    pub bytes: f64,
    /// Participating endpoints.
    pub npus: u32,
}

impl PhaseMetrics {
    /// Effective bandwidth in GB/s per NPU (the §8.1 metric);
    /// 0 when duration, bytes or NPU count is unknown.
    pub fn effective_gbps_per_npu(&self) -> f64 {
        if self.secs > 0.0 && self.npus > 0 {
            self.bytes / self.secs / self.npus as f64 / 1e9
        } else {
            0.0
        }
    }
}

/// The full aggregation of one recorded run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Per-link summaries, densest first (sorted by busy time).
    pub links: Vec<LinkMetrics>,
    /// Completion-time histogram over all flows.
    pub fct: FctHistogram,
    /// Completed phases, in end order.
    pub phases: Vec<PhaseMetrics>,
    /// Rate-reallocation epochs observed.
    pub rate_epochs: u64,
    /// Flows injected.
    pub flows_injected: u64,
    /// Fault events observed (link failures + degradations).
    pub faults: u64,
    /// Flows evicted by link failures (re-routed by the caller).
    pub flows_evicted: u64,
    /// Last event timestamp (the observation window end), seconds.
    pub end_time: f64,
    /// Events the ring recorder overwrote before aggregation (see
    /// [`crate::sink::RingRecorder::overwritten`]). Non-zero means
    /// every aggregate here was computed over a truncated trace.
    pub dropped_events: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct LinkAccum {
    last_t: f64,
    last_util: f64,
    busy: f64,
    util_integral: f64,
    observed: f64,
    peak: f64,
    seen: bool,
}

impl Metrics {
    /// Aggregates `events` (oldest first, as returned by
    /// `RingRecorder::events`).
    pub fn from_events(events: &[TraceEvent]) -> Metrics {
        let mut m = Metrics::default();
        let mut links: HashMap<u32, LinkAccum> = HashMap::new();
        struct Open {
            label: Box<str>,
            track: Track,
            t: f64,
            bytes: f64,
            npus: u32,
        }
        let mut open: HashMap<u64, Open> = HashMap::new();

        for e in events {
            m.end_time = m.end_time.max(e.time());
            match e {
                TraceEvent::FlowInjected { .. } => m.flows_injected += 1,
                TraceEvent::FlowDrained { .. } => {}
                TraceEvent::FlowCompleted { t, injected_at, .. } => {
                    m.fct.add(t - injected_at);
                }
                TraceEvent::RateEpoch { .. } => m.rate_epochs += 1,
                TraceEvent::LinkUtil {
                    t,
                    link,
                    utilization,
                } => {
                    let a = links.entry(*link).or_default();
                    if a.seen {
                        // A negative step means a new simulation
                        // restarted the clock; skip that interval.
                        let dt = (t - a.last_t).max(0.0);
                        if a.last_util > 0.0 {
                            a.busy += dt;
                        }
                        a.util_integral += a.last_util * dt;
                        a.observed += dt;
                    }
                    a.seen = true;
                    a.last_t = *t;
                    a.last_util = *utilization;
                    a.peak = a.peak.max(*utilization);
                }
                TraceEvent::PhaseBegin {
                    t,
                    track,
                    span,
                    label,
                    bytes,
                    npus,
                    ..
                } => {
                    open.insert(
                        *span,
                        Open {
                            label: label.clone(),
                            track: *track,
                            t: *t,
                            bytes: *bytes,
                            npus: *npus,
                        },
                    );
                }
                TraceEvent::PhaseEnd { t, span, .. } => {
                    if let Some(o) = open.remove(span) {
                        m.phases.push(PhaseMetrics {
                            label: o.label.into(),
                            track: o.track,
                            secs: (t - o.t).max(0.0),
                            bytes: o.bytes,
                            npus: o.npus,
                        });
                    }
                }
                TraceEvent::Fault { evicted, .. } => {
                    m.faults += 1;
                    m.flows_evicted += *evicted as u64;
                }
                TraceEvent::IterStage { .. }
                | TraceEvent::Topology { .. }
                | TraceEvent::SpanDep { .. }
                | TraceEvent::Sample { .. } => {}
            }
        }

        // Close the utilization integrals at the window end.
        let window = m.end_time;
        m.links = links
            .into_iter()
            .map(|(link, mut a)| {
                let dt = (window - a.last_t).max(0.0);
                if a.last_util > 0.0 {
                    a.busy += dt;
                }
                a.util_integral += a.last_util * dt;
                a.observed += dt;
                LinkMetrics {
                    link,
                    busy_secs: a.busy,
                    mean_utilization: if a.observed > 0.0 {
                        a.util_integral / a.observed
                    } else {
                        0.0
                    },
                    peak_utilization: a.peak,
                }
            })
            .collect();
        m.links.sort_by(|a, b| {
            b.busy_secs
                .partial_cmp(&a.busy_secs)
                .unwrap()
                .then(a.link.cmp(&b.link))
        });
        m
    }

    /// Records how many events the ring recorder overwrote before the
    /// trace was aggregated.
    pub fn with_dropped(mut self, dropped: u64) -> Metrics {
        self.dropped_events = dropped;
        self
    }

    /// Whether the underlying trace lost events to ring overflow.
    pub fn truncated(&self) -> bool {
        self.dropped_events > 0
    }

    /// Renders the metrics as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\"window_secs\":");
        push_num(&mut s, self.end_time);
        s.push_str(",\"trace_truncated\":");
        s.push_str(if self.truncated() { "true" } else { "false" });
        s.push_str(",\"dropped_events\":");
        push_num(&mut s, self.dropped_events as f64);
        s.push_str(",\"flows_injected\":");
        push_num(&mut s, self.flows_injected as f64);
        s.push_str(",\"rate_epochs\":");
        push_num(&mut s, self.rate_epochs as f64);
        s.push_str(",\"faults\":");
        push_num(&mut s, self.faults as f64);
        s.push_str(",\"flows_evicted\":");
        push_num(&mut s, self.flows_evicted as f64);

        s.push_str(",\"fct\":{\"count\":");
        push_num(&mut s, self.fct.count as f64);
        s.push_str(",\"min_secs\":");
        push_num(
            &mut s,
            if self.fct.count == 0 {
                0.0
            } else {
                self.fct.min_secs
            },
        );
        s.push_str(",\"mean_secs\":");
        push_num(&mut s, self.fct.mean_secs());
        s.push_str(",\"max_secs\":");
        push_num(&mut s, self.fct.max_secs);
        s.push_str(",\"log10_buckets_from_1ns\":[");
        for (i, b) in self.fct.buckets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_num(&mut s, *b as f64);
        }
        s.push_str("]}");

        s.push_str(",\"links\":[");
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"link\":");
            push_num(&mut s, l.link as f64);
            s.push_str(",\"busy_secs\":");
            push_num(&mut s, l.busy_secs);
            s.push_str(",\"mean_utilization\":");
            push_num(&mut s, l.mean_utilization);
            s.push_str(",\"peak_utilization\":");
            push_num(&mut s, l.peak_utilization);
            s.push('}');
        }
        s.push(']');

        s.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"label\":");
            push_str_lit(&mut s, &p.label);
            s.push_str(",\"track\":");
            push_str_lit(&mut s, p.track.name());
            s.push_str(",\"secs\":");
            push_num(&mut s, p.secs);
            s.push_str(",\"bytes\":");
            push_num(&mut s, p.bytes);
            s.push_str(",\"npus\":");
            push_num(&mut s, p.npus as f64);
            s.push_str(",\"eff_GBps_per_npu\":");
            push_num(&mut s, p.effective_gbps_per_npu());
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PhaseBegin {
                t: 0.0,
                track: Track::Dp,
                span: 1,
                label: "dp-allreduce".into(),
                bytes: 4e9,
                npus: 2,
                tag: 0,
            },
            TraceEvent::FlowInjected {
                t: 0.0,
                id: 0,
                tag: 0,
                bytes: 2e9,
                track: Track::Dp,
                links: Box::new([2, 3]),
            },
            TraceEvent::RateEpoch {
                t: 0.0,
                active_flows: 1,
                changed: 1,
            },
            TraceEvent::LinkUtil {
                t: 0.0,
                link: 3,
                utilization: 0.8,
            },
            TraceEvent::FlowDrained { t: 1.0, id: 0 },
            TraceEvent::LinkUtil {
                t: 1.0,
                link: 3,
                utilization: 0.0,
            },
            TraceEvent::RateEpoch {
                t: 1.0,
                active_flows: 0,
                changed: 1,
            },
            TraceEvent::FlowCompleted {
                t: 1.5,
                id: 0,
                tag: 0,
                injected_at: 0.0,
                track: Track::Dp,
            },
            TraceEvent::PhaseEnd {
                t: 2.0,
                track: Track::Dp,
                span: 1,
            },
        ]
    }

    #[test]
    fn aggregates_links_flows_and_phases() {
        let m = Metrics::from_events(&events());
        assert_eq!(m.flows_injected, 1);
        assert_eq!(m.rate_epochs, 2);
        assert_eq!(m.end_time, 2.0);

        assert_eq!(m.links.len(), 1);
        let l = &m.links[0];
        assert_eq!(l.link, 3);
        assert!((l.busy_secs - 1.0).abs() < 1e-12, "busy {}", l.busy_secs);
        // 0.8 for 1 s out of a 2 s window.
        assert!((l.mean_utilization - 0.4).abs() < 1e-12);
        assert!((l.peak_utilization - 0.8).abs() < 1e-12);

        assert_eq!(m.fct.count, 1);
        assert!((m.fct.mean_secs() - 1.5).abs() < 1e-12);

        assert_eq!(m.phases.len(), 1);
        let p = &m.phases[0];
        assert!((p.secs - 2.0).abs() < 1e-12);
        // 4e9 bytes / 2 s / 2 npus = 1 GB/s per NPU.
        assert!((p.effective_gbps_per_npu() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fct_buckets_are_log_scale() {
        let mut h = FctHistogram::default();
        h.add(5e-9); // bucket 0: [1ns, 10ns)
        h.add(5e-6); // bucket 3: [1us, 10us)
        h.add(5.0); // bucket 9: [1s, 10s)
        h.add(1e9); // clamped to the last bucket
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[9], 1);
        assert_eq!(h.buckets[FCT_BUCKETS - 1], 1);
        assert_eq!(h.count, 4);
    }

    #[test]
    fn json_roundtrip_structure() {
        let m = Metrics::from_events(&events());
        let j = m.to_json();
        assert!(j.contains("\"links\""));
        assert!(j.contains("\"phases\""));
        assert!(j.contains("dp-allreduce"));
        let braces: i64 = j
            .chars()
            .map(|c| match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(braces, 0);
    }

    #[test]
    fn dropped_events_surface_in_json() {
        let m = Metrics::from_events(&events()).with_dropped(7);
        assert!(m.truncated());
        let j = m.to_json();
        assert!(j.contains("\"trace_truncated\":true"));
        assert!(j.contains("\"dropped_events\":7"));
        let clean = Metrics::from_events(&events());
        assert!(!clean.truncated());
        assert!(clean.to_json().contains("\"trace_truncated\":false"));
    }

    #[test]
    fn empty_events_give_empty_metrics() {
        let m = Metrics::from_events(&[]);
        assert_eq!(m.flows_injected, 0);
        assert!(m.links.is_empty());
        assert!(m.phases.is_empty());
        assert_eq!(m.fct.mean_secs(), 0.0);
        let _ = m.to_json();
    }
}

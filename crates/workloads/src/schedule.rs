//! Per-iteration training task graphs (§3.1, §7.3).
//!
//! A training iteration is compiled into a DAG of *compute* tasks
//! (roofline-timed layer execution on a virtual worker — one MP group
//! at a (dp, pp) coordinate, whose members run in lockstep) and *comm*
//! tasks (compiled [`CommPlan`]s with a priority class and an exposure
//! type). Two execution modes are supported:
//!
//! * **weight stationary** (§3.1.1): GPipe microbatch pipelining with
//!   Megatron MP All-Reduces inside every forward/backward stage, PP
//!   multicasts at stage boundaries, and ZeRO-2 DP communication
//!   (gradient Reduce-Scatter + parameter All-Gather) at the end;
//! * **weight streaming** (§3.1.2): the model flows through the wafer
//!   in windows of `pp` consecutive layers; each window is streamed in
//!   (double-buffered with compute), microbatches traverse the window
//!   pipeline, and during the backward pass weight gradients stream
//!   back out, reduced across DP on the way (the reverse of Fig 4).

use fred_collectives::plan::CommPlan;
use fred_core::placement::{Placement, Strategy3D};
use fred_sim::flow::Priority;
use fred_sim::time::Duration;

use crate::backend::FabricBackend;
use crate::model::{DnnModel, ExecutionMode};
use crate::report::CommType;

/// Index of a task within a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

/// Index of a virtual worker (`w = pp + PP · dp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub usize);

/// What a task does.
#[derive(Debug, Clone)]
pub enum TaskBody {
    /// Busy compute on one virtual worker.
    Compute {
        /// The worker that executes (and is occupied by) this task.
        worker: WorkerId,
        /// Roofline duration.
        duration: Duration,
    },
    /// A communication operation.
    Comm {
        /// The compiled plan.
        plan: CommPlan,
        /// Virtual-channel priority class (§5.4: MP > PP > DP > bulk).
        priority: Priority,
        /// Exposure attribution (Fig 10 stack segment).
        ctype: CommType,
    },
}

/// One node of the iteration DAG.
#[derive(Debug, Clone)]
pub struct Task {
    /// Payload.
    pub body: TaskBody,
    /// Tasks that must finish before this one starts.
    pub deps: Vec<TaskId>,
}

/// A compiled training iteration.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// All tasks; `TaskId` indexes into this.
    pub tasks: Vec<Task>,
    /// Per virtual worker, the ordered list of tasks it waits on
    /// (computes it runs + comms that block it) — the basis for
    /// exposed-communication accounting.
    pub worker_chains: Vec<Vec<TaskId>>,
    /// Strategy string for reports.
    pub strategy: String,
    /// Minibatch samples per iteration.
    pub minibatch: usize,
}

/// Scheduling inputs beyond the model and strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleParams {
    /// Minibatch samples per iteration (§7.3: DP × 16 or DP × 40).
    pub minibatch: usize,
    /// Microbatches the minibatch is split into (§7.3 footnote 6).
    pub microbatches: usize,
    /// Per-NPU peak FLOP/s.
    pub npu_flops: f64,
    /// Weight-streaming double-buffering: when true (the default and
    /// the paper's setting), the next layer window streams in while the
    /// current one computes; when false, every round serialises
    /// stream-then-compute — the prefetch ablation.
    pub stream_double_buffer: bool,
}

impl ScheduleParams {
    /// The paper's §8.1–8.2 setting: minibatch = DP × 16, with the
    /// Table 6 microbatch counts (8 for Transformer-17B PP(2), 2 for
    /// GPT-3 PP(2), 1 otherwise).
    pub fn paper_default(model: &DnnModel, strategy: Strategy3D) -> ScheduleParams {
        let microbatches = if strategy.pp == 1 {
            1
        } else if model.execution == ExecutionMode::WeightStreaming {
            strategy.pp
        } else {
            4 * strategy.pp
        };
        ScheduleParams {
            minibatch: strategy.dp * 16,
            microbatches,
            npu_flops: fred_core::params::PhysicalParams::paper().npu_flops,
            stream_double_buffer: true,
        }
    }

    /// The §8.3 sweep setting: minibatch = DP × 40, microbatches per
    /// footnote 6 (≈ proportional to PP for fine-grained pipelining).
    pub fn sweep_default(model: &DnnModel, strategy: Strategy3D) -> ScheduleParams {
        let microbatches = match (model.execution, strategy.pp) {
            (_, 1) => 1,
            (ExecutionMode::WeightStreaming, pp) => pp,
            (ExecutionMode::WeightStationary, 2) => 10,
            (ExecutionMode::WeightStationary, pp) if pp <= 10 => 20,
            (ExecutionMode::WeightStationary, _) => 40,
        };
        ScheduleParams {
            minibatch: strategy.dp * 40,
            microbatches,
            npu_flops: fred_core::params::PhysicalParams::paper().npu_flops,
            stream_double_buffer: true,
        }
    }
}

struct Builder<'a> {
    model: &'a DnnModel,
    strategy: Strategy3D,
    placement: &'a Placement,
    backend: &'a FabricBackend,
    params: ScheduleParams,
    tasks: Vec<Task>,
    chains: Vec<Vec<TaskId>>,
}

impl<'a> Builder<'a> {
    fn worker(&self, dp: usize, pp: usize) -> WorkerId {
        WorkerId(pp + self.strategy.pp * dp)
    }

    fn push(&mut self, body: TaskBody, deps: Vec<TaskId>) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task { body, deps });
        id
    }

    fn push_compute(&mut self, w: WorkerId, secs: f64, deps: Vec<TaskId>) -> TaskId {
        let id = self.push(
            TaskBody::Compute {
                worker: w,
                duration: Duration::from_secs(secs.max(0.0)),
            },
            deps,
        );
        self.chains[w.0].push(id);
        id
    }

    fn push_comm(
        &mut self,
        plan: CommPlan,
        priority: Priority,
        ctype: CommType,
        deps: Vec<TaskId>,
        blocked: &[WorkerId],
    ) -> TaskId {
        let id = self.push(
            TaskBody::Comm {
                plan,
                priority,
                ctype,
            },
            deps,
        );
        for w in blocked {
            self.chains[w.0].push(id);
        }
        id
    }

    /// Samples per microbatch per DP replica.
    fn mb_samples(&self) -> f64 {
        self.params.minibatch as f64 / self.strategy.dp as f64 / self.params.microbatches as f64
    }

    /// Roofline seconds for `layers` layers of one microbatch on one
    /// NPU (MP-sharded).
    fn compute_secs(&self, layers: f64, backward: bool) -> f64 {
        let per_sample = if backward {
            self.model.flops_per_sample_bwd()
        } else {
            self.model.flops_per_sample_fwd()
        };
        let share = layers / self.model.layers as f64 / self.strategy.mp as f64;
        per_sample * self.mb_samples() * share
            / (self.params.npu_flops
                * self.model.compute_efficiency
                * self.model.compute_calibration)
    }

    /// Combined Megatron MP All-Reduce bytes for `layers` layers of one
    /// microbatch in one pass.
    fn mp_bytes(&self, layers: f64) -> f64 {
        self.model.mp_all_reduces_per_layer() as f64
            * layers
            * self.model.activation_bytes(self.mb_samples())
    }

    fn mp_comm(&mut self, dp: usize, pp: usize, layers: f64, deps: Vec<TaskId>) -> TaskId {
        let group = self
            .backend
            .physical_group(&self.placement.mp_group_npus(dp, pp));
        let plan = self.backend.all_reduce(&group, self.mp_bytes(layers));
        let w = self.worker(dp, pp);
        self.push_comm(plan, Priority::Mp, CommType::Mp, deps, &[w])
    }

    /// PP boundary: the source MP group feeds the destination MP group
    /// member-to-member (identical outputs, §8.1 footnote 8).
    fn pp_comm(&mut self, dp: usize, from_pp: usize, to_pp: usize, deps: Vec<TaskId>) -> TaskId {
        let srcs = self
            .backend
            .physical_group(&self.placement.mp_group_npus(dp, from_pp));
        let dsts = self
            .backend
            .physical_group(&self.placement.mp_group_npus(dp, to_pp));
        let bytes = self.model.activation_bytes(self.mb_samples());
        let plan = self.backend.stage_transfer(&srcs, &dsts, bytes);
        let w = self.worker(dp, to_pp);
        self.push_comm(plan, Priority::Pp, CommType::Pp, deps, &[w])
    }

    #[allow(clippy::needless_range_loop)]
    fn build_weight_stationary(mut self) -> Schedule {
        let s = self.strategy;
        let m = self.params.microbatches;
        let layers_per_stage = self.model.layers as f64 / s.pp as f64;

        // Input load feeds every stage-0 worker's first microbatch.
        let load_bytes = self.params.minibatch as f64 * self.model.sample_bytes;
        let load_plan = self.backend.input_load(load_bytes);
        let stage0: Vec<WorkerId> = (0..s.dp).map(|d| self.worker(d, 0)).collect();
        let load = self.push_comm(
            load_plan,
            Priority::Bulk,
            CommType::InputLoad,
            vec![],
            &stage0,
        );

        // fwd_done[d][p][mb] = task that completes (compute + MP) fwd.
        let mut fwd_done = vec![vec![vec![TaskId(0); m]; s.pp]; s.dp];
        let mut prev_in_worker: Vec<Option<TaskId>> = vec![None; s.dp * s.pp];
        // Forward pass with GPipe pipelining.
        for mb in 0..m {
            for d in 0..s.dp {
                for p in 0..s.pp {
                    let w = self.worker(d, p);
                    let mut deps = Vec::new();
                    if let Some(prev) = prev_in_worker[w.0] {
                        deps.push(prev);
                    }
                    if p == 0 {
                        if mb == 0 {
                            deps.push(load);
                        }
                    } else {
                        // Activation arrival from the previous stage.
                        let arrive = self.pp_comm(d, p - 1, p, vec![fwd_done[d][p - 1][mb]]);
                        deps.push(arrive);
                    }
                    let c = self.push_compute(w, self.compute_secs(layers_per_stage, false), deps);
                    let done = if s.mp > 1 {
                        self.mp_comm(d, p, layers_per_stage, vec![c])
                    } else {
                        c
                    };
                    fwd_done[d][p][mb] = done;
                    prev_in_worker[w.0] = Some(done);
                }
            }
        }

        // Backward pass (GPipe flush: last stage starts after its final
        // forward microbatch).
        let mut bwd_done = vec![vec![vec![TaskId(0); m]; s.pp]; s.dp];
        for mb in 0..m {
            for d in 0..s.dp {
                for p in (0..s.pp).rev() {
                    let w = self.worker(d, p);
                    let mut deps = Vec::new();
                    if let Some(prev) = prev_in_worker[w.0] {
                        deps.push(prev);
                    }
                    if p + 1 < s.pp {
                        // Gradient arrival from the next stage.
                        let arrive = self.pp_comm(d, p + 1, p, vec![bwd_done[d][p + 1][mb]]);
                        deps.push(arrive);
                    }
                    let c = self.push_compute(w, self.compute_secs(layers_per_stage, true), deps);
                    let done = if s.mp > 1 {
                        self.mp_comm(d, p, layers_per_stage, vec![c])
                    } else {
                        c
                    };
                    bwd_done[d][p][mb] = done;
                    prev_in_worker[w.0] = Some(done);
                }
            }
        }

        // ZeRO-2 DP communication: gradient Reduce-Scatter followed by
        // parameter All-Gather per (mp, pp) DP group (§7.3).
        if s.dp > 1 {
            let grad_bytes_per_member = self.model.grad_bytes() / (s.mp as f64 * s.pp as f64);
            for mp in 0..s.mp {
                for p in 0..s.pp {
                    let group = self
                        .backend
                        .physical_group(&self.placement.dp_group_npus(mp, p));
                    let deps: Vec<TaskId> = (0..s.dp).map(|d| bwd_done[d][p][m - 1]).collect();
                    let blocked: Vec<WorkerId> = (0..s.dp).map(|d| self.worker(d, p)).collect();
                    let rs = self.backend.reduce_scatter(&group, grad_bytes_per_member);
                    let rs_id = self.push_comm(rs, Priority::Dp, CommType::Dp, deps, &blocked);
                    let ag = self.backend.all_gather(&group, grad_bytes_per_member);
                    self.push_comm(ag, Priority::Dp, CommType::Dp, vec![rs_id], &blocked);
                }
            }
        }

        Schedule {
            tasks: self.tasks,
            worker_chains: self.chains,
            strategy: s.to_string(),
            minibatch: self.params.minibatch,
        }
    }

    #[allow(clippy::needless_range_loop)]
    fn build_weight_streaming(mut self) -> Schedule {
        let s = self.strategy;
        let m = self.params.microbatches;
        // Each round streams in a window of `pp` consecutive layers —
        // one layer per pipeline stage (§7.3: GPT-3's PP = 2 brings 2
        // consecutive layers onto the wafer at a time).
        let rounds = self.model.layers.div_ceil(s.pp);
        let chunk_bytes = self.model.model_bytes() / rounds as f64;
        let grad_chunk = self.model.grad_bytes() / rounds as f64;
        let all_workers: Vec<WorkerId> = (0..s.dp)
            .flat_map(|d| (0..s.pp).map(move |p| WorkerId(p + s.pp * d)))
            .collect();

        // Input load (cannot be prefetched during streaming — the I/O
        // channels are busy, §8.2).
        let load_bytes = self.params.minibatch as f64 * self.model.sample_bytes;
        let load_plan = self.backend.input_load(load_bytes);
        let load = self.push_comm(
            load_plan,
            Priority::Bulk,
            CommType::InputLoad,
            vec![],
            &all_workers,
        );

        let mut prev_in_worker: Vec<Option<TaskId>> = vec![None; s.dp * s.pp];
        let mut prev_stream: Option<TaskId> = None;
        let mut prev_round_done: [Vec<TaskId>; 2] = [Vec::new(), Vec::new()];
        let mut prev_grad_stream: Option<TaskId> = None;

        let mut run_pass = |this: &mut Builder<'a>, backward: bool| {
            for r in 0..rounds {
                // Stream the window in (serialised on the I/O channels,
                // double-buffered against compute two rounds back).
                let mut deps = Vec::new();
                if let Some(prev) = prev_stream {
                    deps.push(prev);
                }
                if r == 0 && !backward {
                    deps.push(load);
                }
                let buf = if this.params.stream_double_buffer {
                    r % 2
                } else {
                    0
                };
                deps.extend(prev_round_done[buf].iter().copied());
                let stream = this.push_comm(
                    this.backend.stream_in(chunk_bytes),
                    Priority::Bulk,
                    CommType::Streaming,
                    deps,
                    &all_workers,
                );
                prev_stream = Some(stream);

                // The window pipeline: microbatches through pp stages of
                // one layer each.
                let mut done_stage = vec![vec![TaskId(0); m]; s.pp];
                for mb in 0..m {
                    for d in 0..s.dp {
                        for p in 0..s.pp {
                            let w = this.worker(d, p);
                            let mut deps = vec![stream];
                            if let Some(prev) = prev_in_worker[w.0] {
                                deps.push(prev);
                            }
                            if p > 0 {
                                let arrive = this.pp_comm(d, p - 1, p, vec![done_stage[p - 1][mb]]);
                                deps.push(arrive);
                            }
                            let c = this.push_compute(w, this.compute_secs(1.0, backward), deps);
                            let done = if s.mp > 1 {
                                this.mp_comm(d, p, 1.0, vec![c])
                            } else {
                                c
                            };
                            done_stage[p][mb] = done;
                            prev_in_worker[w.0] = Some(done);
                        }
                    }
                }
                // The round's barrier: every worker's last task.
                let round_done: Vec<TaskId> = prev_in_worker.iter().flatten().copied().collect();
                let buf = if this.params.stream_double_buffer {
                    r % 2
                } else {
                    0
                };
                prev_round_done[buf] = round_done.clone();

                // Backward rounds stream the window's weight gradients
                // back out, reduced across DP on the way (§7.3).
                if backward {
                    let mut gdeps = round_done;
                    if let Some(prev) = prev_grad_stream {
                        gdeps.push(prev);
                    }
                    let g = this.push_comm(
                        this.backend.stream_out(grad_chunk),
                        Priority::Bulk,
                        CommType::Streaming,
                        gdeps,
                        &[],
                    );
                    prev_grad_stream = Some(g);
                }
            }
        };

        run_pass(&mut self, false);
        run_pass(&mut self, true);

        // The iteration ends when the last gradient chunk has left the
        // wafer; block every worker on it.
        if let Some(g) = prev_grad_stream {
            for w in &all_workers {
                self.chains[w.0].push(g);
            }
            let _ = g;
        }

        Schedule {
            tasks: self.tasks,
            worker_chains: self.chains,
            strategy: s.to_string(),
            minibatch: self.params.minibatch,
        }
    }
}

/// Compiles one training iteration for `model` under `strategy`,
/// placed by `placement`, on `backend`.
///
/// # Panics
///
/// Panics if the strategy needs more workers than the backend has NPUs
/// or if `minibatch` is not a positive multiple of `dp × microbatches`
/// granularity (fractional samples per microbatch are permitted, zero
/// is not).
pub fn build_schedule(
    model: &DnnModel,
    strategy: Strategy3D,
    placement: &Placement,
    backend: &FabricBackend,
    params: ScheduleParams,
) -> Schedule {
    assert!(
        placement.max_slot() < backend.npu_count(),
        "{strategy} needs NPU slots up to {}, backend has {}",
        placement.max_slot(),
        backend.npu_count()
    );
    assert!(params.minibatch > 0 && params.microbatches > 0);
    let builder = Builder {
        model,
        strategy,
        placement,
        backend,
        params,
        tasks: Vec::new(),
        chains: vec![Vec::new(); strategy.dp * strategy.pp],
    };
    match model.execution {
        ExecutionMode::WeightStationary => builder.build_weight_stationary(),
        ExecutionMode::WeightStreaming => builder.build_weight_streaming(),
    }
}

impl Schedule {
    /// Total busy-compute seconds of worker `w`.
    pub fn worker_compute_secs(&self, w: usize) -> f64 {
        self.worker_chains[w]
            .iter()
            .filter_map(|&t| match &self.tasks[t.0].body {
                TaskBody::Compute { duration, .. } => Some(duration.as_secs()),
                TaskBody::Comm { .. } => None,
            })
            .sum()
    }

    /// Number of communication tasks.
    pub fn comm_task_count(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| matches!(t.body, TaskBody::Comm { .. }))
            .count()
    }

    /// Exports the stage DAG as `(task, dependency)` index pairs — the
    /// same happens-before edges the traced trainer records as
    /// `SpanDep` events. Every edge points backwards (`dep < task`)
    /// because the builder emits tasks in topological order.
    pub fn dag_edges(&self) -> Vec<(usize, usize)> {
        self.tasks
            .iter()
            .enumerate()
            .flat_map(|(i, t)| t.deps.iter().map(move |d| (i, d.0)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_core::params::FabricConfig;
    use fred_core::placement::PlacementPolicy;

    fn build(
        model: &DnnModel,
        strategy: Strategy3D,
        config: FabricConfig,
    ) -> (Schedule, FabricBackend) {
        let backend = FabricBackend::new(config);
        let placement = Placement::new(strategy, PlacementPolicy::MpPpDp);
        let params = ScheduleParams::paper_default(model, strategy);
        (
            build_schedule(model, strategy, &placement, &backend, params),
            backend,
        )
    }

    #[test]
    fn resnet_schedule_is_pure_dp() {
        let m = DnnModel::resnet152();
        let (s, _) = build(&m, m.default_strategy, FabricConfig::BaselineMesh);
        // 20 workers, each: 1 fwd + 1 bwd compute; plus input load and
        // 1 RS + 1 AG DP comm.
        assert_eq!(s.worker_chains.len(), 20);
        let computes = s.tasks.len() - s.comm_task_count();
        assert_eq!(computes, 40);
        assert_eq!(s.comm_task_count(), 1 + 2);
        assert!(s.worker_compute_secs(0) > 0.0);
    }

    #[test]
    fn transformer17b_schedule_has_all_three_comm_types() {
        let m = DnnModel::transformer_17b();
        let (s, _) = build(&m, m.default_strategy, FabricConfig::FredD);
        let mut kinds = std::collections::BTreeSet::new();
        for t in &s.tasks {
            if let TaskBody::Comm { ctype, .. } = &t.body {
                kinds.insert(*ctype);
            }
        }
        assert!(kinds.contains(&CommType::Mp));
        assert!(kinds.contains(&CommType::Pp));
        assert!(kinds.contains(&CommType::Dp));
        assert!(kinds.contains(&CommType::InputLoad));
        assert!(!kinds.contains(&CommType::Streaming));
    }

    #[test]
    fn streaming_schedule_streams_model_three_times() {
        let m = DnnModel::gpt3();
        let (s, _) = build(&m, m.default_strategy, FabricConfig::FredD);
        let mut stream_bytes = 0.0;
        for t in &s.tasks {
            if let TaskBody::Comm {
                plan,
                ctype: CommType::Streaming,
                ..
            } = &t.body
            {
                // Streaming plans are single-phase; count the payload
                // entering/leaving through the ext-memory links (one
                // transfer per channel carries the chunk shard).
                stream_bytes += plan
                    .phases
                    .iter()
                    .flat_map(|p| &p.transfers)
                    .filter(|tr| {
                        tr.src == crate::backend::EXT_LABEL || tr.dst == crate::backend::EXT_LABEL
                    })
                    .map(|tr| tr.bytes)
                    .sum::<f64>();
            }
        }
        // fwd in + bwd in + grads out = 3 model sizes (within rounding).
        let expected = 3.0 * m.model_bytes();
        assert!(
            (stream_bytes - expected).abs() / expected < 0.05,
            "streamed {stream_bytes:.3e}, expected {expected:.3e}"
        );
    }

    #[test]
    fn streaming_schedule_counts_io_transfers() {
        let m = DnnModel::transformer_1t();
        let (s, _) = build(&m, m.default_strategy, FabricConfig::BaselineMesh);
        // 120 layers, PP=1: 120 rounds x 2 passes stream-ins + 120 grad
        // stream-outs + 1 input load.
        let streams = s
            .tasks
            .iter()
            .filter(|t| {
                matches!(
                    &t.body,
                    TaskBody::Comm {
                        ctype: CommType::Streaming,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(streams, 120 * 2 + 120);
    }

    #[test]
    fn pipeline_dependencies_are_acyclic_and_ordered() {
        let m = DnnModel::transformer_17b();
        let (s, _) = build(&m, m.default_strategy, FabricConfig::BaselineMesh);
        // All deps point backwards (the builder emits in topological
        // order), which guarantees acyclicity.
        for (i, t) in s.tasks.iter().enumerate() {
            for d in &t.deps {
                assert!(d.0 < i, "task {i} depends on later task {}", d.0);
            }
        }
    }

    #[test]
    fn dag_edges_match_task_deps_and_point_backwards() {
        let m = DnnModel::transformer_17b();
        let (s, _) = build(&m, m.default_strategy, FabricConfig::BaselineMesh);
        let edges = s.dag_edges();
        let total_deps: usize = s.tasks.iter().map(|t| t.deps.len()).sum();
        assert_eq!(edges.len(), total_deps);
        assert!(!edges.is_empty());
        for (task, dep) in edges {
            assert!(dep < task, "edge ({task}, {dep}) points forward");
            assert!(s.tasks[task].deps.contains(&TaskId(dep)));
        }
    }

    #[test]
    fn microbatching_divides_compute() {
        let m = DnnModel::transformer_17b();
        let strategy = Strategy3D::new(1, 1, 2);
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let placement = Placement::new(strategy, PlacementPolicy::MpPpDp);
        let mut params = ScheduleParams::paper_default(&m, strategy);
        params.microbatches = 8;
        let s = build_schedule(&m, strategy, &placement, &backend, params);
        // Each of 2 workers runs 8 fwd + 8 bwd computes.
        let computes = s.tasks.len() - s.comm_task_count();
        assert_eq!(computes, 2 * 16);
        // Total compute per worker is independent of microbatch count.
        params.microbatches = 1;
        let s1 = build_schedule(&m, strategy, &placement, &backend, params);
        assert!((s.worker_compute_secs(0) - s1.worker_compute_secs(0)).abs() < 1e-9);
    }

    #[test]
    fn double_buffering_hides_streaming() {
        // Prefetch ablation: with double-buffering off, every round
        // serialises stream-then-compute, so the iteration slows down.
        let m = DnnModel::gpt3();
        let strategy = m.default_strategy;
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let placement = Placement::new(strategy, PlacementPolicy::MpPpDp);
        let mut params = ScheduleParams::paper_default(&m, strategy);
        let with = crate::trainer::run_iteration(
            &build_schedule(&m, strategy, &placement, &backend, params),
            &backend,
        )
        .unwrap();
        params.stream_double_buffer = false;
        let without = crate::trainer::run_iteration(
            &build_schedule(&m, strategy, &placement, &backend, params),
            &backend,
        )
        .unwrap();
        assert!(
            without.makespan.as_secs() > with.makespan.as_secs() * 1.02,
            "no prefetch {} should be clearly slower than prefetch {}",
            without.makespan.as_secs(),
            with.makespan.as_secs()
        );
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn oversize_strategy_rejected() {
        let m = DnnModel::transformer_17b();
        let _ = build(&m, Strategy3D::new(7, 3, 1), FabricConfig::FredD);
    }
}

//! Training-time breakdown records (§7.4 "Metric of Evaluation").
//!
//! The paper reports end-to-end training time decomposed into total
//! compute time and *exposed* communication times — time the workload
//! spends blocked on communication that is not overlapped with compute —
//! per source: input load, MP, DP, PP and weight streaming.

use std::collections::BTreeMap;
use std::fmt;

use fred_sim::time::Duration;

/// The sources of exposed communication time (Fig 10's stack segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommType {
    /// Initial input-minibatch load.
    InputLoad,
    /// Model/tensor-parallel collectives.
    Mp,
    /// Pipeline-parallel stage transfers.
    Pp,
    /// Data-parallel gradient collectives.
    Dp,
    /// Weight/gradient streaming (weight-streaming execution only).
    Streaming,
}

impl CommType {
    /// All types in report order.
    pub const ALL: [CommType; 5] = [
        CommType::InputLoad,
        CommType::Mp,
        CommType::Pp,
        CommType::Dp,
        CommType::Streaming,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CommType::InputLoad => "input_load",
            CommType::Mp => "mp",
            CommType::Pp => "pp",
            CommType::Dp => "dp",
            CommType::Streaming => "streaming",
        }
    }
}

impl fmt::Display for CommType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The collective patterns each parallelism type incurs (Table 1).
///
/// ```
/// use fred_workloads::report::{patterns_for, CommType};
/// assert!(patterns_for(CommType::Dp).contains(&"all-reduce"));
/// assert!(patterns_for(CommType::Pp).contains(&"point-to-point"));
/// ```
pub fn patterns_for(parallelism: CommType) -> &'static [&'static str] {
    match parallelism {
        // Model parallelism: everything but point-to-point (Table 1).
        CommType::Mp => &["reduce-scatter", "all-gather", "all-reduce", "all-to-all"],
        // Data parallelism: reduce-scatter / all-gather (ZeRO) and
        // all-reduce.
        CommType::Dp => &["reduce-scatter", "all-gather", "all-reduce"],
        // Pipeline parallelism: stage-boundary transfers only.
        CommType::Pp => &["point-to-point"],
        // I/O paths: streaming multicast/reduce and scatter loads.
        CommType::InputLoad | CommType::Streaming => &["multicast", "reduce", "scatter"],
    }
}

/// Breakdown of one simulated training iteration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainingReport {
    /// Workload name.
    pub workload: String,
    /// Fabric configuration name.
    pub config: String,
    /// Parallelization strategy, e.g. `MP(2)-DP(5)-PP(2)`.
    pub strategy: String,
    /// Minibatch samples per iteration.
    pub minibatch: usize,
    /// End-to-end iteration time.
    pub total: Duration,
    /// Average per-NPU busy compute time.
    pub compute: Duration,
    /// Exposed communication per type (averaged over workers).
    pub exposed: BTreeMap<CommType, Duration>,
}

impl TrainingReport {
    /// Sum of all exposed communication.
    pub fn exposed_total(&self) -> Duration {
        self.exposed.values().fold(Duration::ZERO, |a, &b| a + b)
    }

    /// Exposed time for one type (zero if absent).
    pub fn exposed_for(&self, t: CommType) -> Duration {
        self.exposed.get(&t).copied().unwrap_or(Duration::ZERO)
    }

    /// Iteration time divided by minibatch size — the normalisation the
    /// paper applies when comparing strategies with different minibatch
    /// sizes (§7.4).
    pub fn time_per_sample(&self) -> f64 {
        self.total.as_secs() / self.minibatch.max(1) as f64
    }

    /// Speedup of `self` over `other` on per-sample time.
    pub fn speedup_over(&self, other: &TrainingReport) -> f64 {
        other.time_per_sample() / self.time_per_sample()
    }
}

impl fmt::Display for TrainingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: total {} (compute {}, ",
            self.workload, self.config, self.strategy, self.total, self.compute
        )?;
        let mut first = true;
        for t in CommType::ALL {
            let d = self.exposed_for(t);
            if d > Duration::ZERO {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{t} {d}")?;
                first = false;
            }
        }
        if first {
            write!(f, "no exposed comm")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainingReport {
        let mut exposed = BTreeMap::new();
        exposed.insert(CommType::Dp, Duration::from_secs(0.2));
        exposed.insert(CommType::Mp, Duration::from_secs(0.3));
        TrainingReport {
            workload: "Test".into(),
            config: "Baseline".into(),
            strategy: "MP(2)-DP(2)-PP(1)".into(),
            minibatch: 32,
            total: Duration::from_secs(1.5),
            compute: Duration::from_secs(1.0),
            exposed,
        }
    }

    #[test]
    fn exposed_accounting() {
        let r = sample();
        assert!((r.exposed_total().as_secs() - 0.5).abs() < 1e-12);
        assert_eq!(r.exposed_for(CommType::Pp), Duration::ZERO);
        assert!((r.exposed_for(CommType::Mp).as_secs() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn normalisation_and_speedup() {
        let a = sample();
        let mut b = sample();
        b.total = Duration::from_secs(3.0);
        b.minibatch = 32;
        assert!((a.time_per_sample() - 1.5 / 32.0).abs() < 1e-12);
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-12);
        // Different minibatches normalise fairly.
        b.minibatch = 64;
        assert!((a.speedup_over(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table1_pattern_matrix() {
        // Table 1: 3D parallelism incurs the union of all patterns.
        let td: std::collections::BTreeSet<&str> = CommType::ALL
            .iter()
            .flat_map(|&t| patterns_for(t).iter().copied())
            .collect();
        for p in [
            "reduce-scatter",
            "all-gather",
            "all-reduce",
            "all-to-all",
            "point-to-point",
        ] {
            assert!(td.contains(p), "3D union missing {p}");
        }
        // DP never needs all-to-all; PP only point-to-point.
        assert!(!patterns_for(CommType::Dp).contains(&"all-to-all"));
        assert_eq!(patterns_for(CommType::Pp), &["point-to-point"]);
    }

    #[test]
    fn display_lists_nonzero_components() {
        let s = sample().to_string();
        assert!(s.contains("mp"));
        assert!(s.contains("dp"));
        assert!(!s.contains("streaming"));
    }
}

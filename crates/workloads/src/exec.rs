//! Resumable schedule execution against a shared network.
//!
//! [`ScheduleExecutor`] is the trainer's event loop factored into a
//! state machine that does not own the clock: it reacts to flow
//! completions and due compute finishes pushed in by a driver, and
//! stages/injects its own flows into a [`FlowNetwork`] it is handed by
//! reference. Two drivers exist:
//!
//! * [`crate::trainer::run_iteration_faulted`] — one executor, one
//!   private network: the classic single-job iteration. The driver is a
//!   thin loop around the executor, so the refactor is structurally
//!   bit-identical to the pre-executor trainer.
//! * `fred-cluster`'s scheduler — many executors interleaved through
//!   one shared network under a single global clock, each namespaced by
//!   a disjoint correlation-tag range and a tenant rank.
//!
//! Namespacing: flows are tagged `tag_base + task_index + 1` (tag 0
//! stays the "foreign flow" sentinel) and carry the executor's tenant
//! rank, so the allocator isolates tenants and completions route back
//! to the owning executor by tag range alone.

use std::collections::BTreeMap;
use std::rc::Rc;

use fred_sim::events::EventQueue;
use fred_sim::flow::FlowSpec;
use fred_sim::netsim::FlowNetwork;
use fred_sim::time::Time;
use fred_sim::topology::LinkId;
use fred_telemetry::event::{next_span_id, TraceEvent, Track};
use fred_telemetry::sink::TraceSink;

use crate::backend::FabricBackend;
use crate::error::{PendingTask, TrainError};
use crate::schedule::{Schedule, TaskBody, TaskId};
use crate::trainer::track_of_comm;

/// Per-task timing from one simulated iteration.
#[derive(Debug, Clone)]
pub struct IterationTiming {
    /// Start time per task.
    pub start: Vec<Time>,
    /// Finish time per task.
    pub finish: Vec<Time>,
    /// End-to-end iteration time.
    pub makespan: Time,
}

#[derive(Debug)]
struct CommState {
    phase: usize,
    outstanding: usize,
}

/// Maps a flow-completion tag back to the comm-task index. The trainer
/// tags flows with `task index + 1`; tag 0 is reserved for untagged
/// (foreign) flows and maps to no task.
pub fn comm_task_of_tag(tag: u64) -> Option<usize> {
    tag.checked_sub(1).map(|v| v as usize)
}

/// Re-routes any of `flows` whose route crosses a failed link onto a
/// surviving path (fabric-aware when both endpoints are NPUs, generic
/// BFS otherwise). A no-op returning the flows untouched when the
/// network has no failed links — the zero-fault code path stays
/// bit-identical. Priority, tag and tenant are preserved.
pub fn repair_flows(
    net: &FlowNetwork,
    backend: &FabricBackend,
    flows: Vec<FlowSpec>,
) -> Result<Vec<FlowSpec>, TrainError> {
    if !net.any_link_failed() {
        return Ok(flows);
    }
    let blocked = |l: LinkId| net.is_link_failed(l);
    let topo = net.topology();
    let mut out = Vec::with_capacity(flows.len());
    for f in flows {
        if !f.route.iter().any(|&l| blocked(l)) {
            out.push(f);
            continue;
        }
        let task = comm_task_of_tag(f.tag).map(TaskId);
        let src = topo.link(f.route[0]).src;
        let dst = topo.link(*f.route.last().expect("non-empty route")).dst;
        let detour = match (backend.npu_index(src), backend.npu_index(dst)) {
            (Some(a), Some(b)) => backend.npu_route_avoiding(a, b, blocked),
            _ => topo.shortest_path_avoiding(src, dst, blocked),
        }
        .ok_or(TrainError::Unroutable { task })?;
        out.push(
            FlowSpec::new(detour, f.bytes)
                .with_priority(f.priority)
                .with_tag(f.tag)
                .with_tenant(f.tenant),
        );
    }
    Ok(out)
}

/// Identity of one executor within a shared network: its tag namespace,
/// tenant rank and (optional) telemetry label prefix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecConfig {
    /// Flows are tagged `tag_base + task_index + 1`; drivers sharing a
    /// network give each executor a disjoint range of
    /// `schedule.tasks.len()` tags starting at `tag_base + 1`. Zero for
    /// single-job runs (the classic trainer tags).
    pub tag_base: u64,
    /// Tenant rank stamped on every flow (0 = highest precedence; see
    /// [`FlowSpec::tenant`]). Zero for single-job runs.
    pub tenant: u8,
    /// Telemetry span-label prefix (`"<prefix>/<label>"`), so per-job
    /// attribution stays readable in shared traces. `None` keeps the
    /// classic single-job labels byte-for-byte.
    pub label: Option<String>,
}

/// Captured executor progress: everything [`ScheduleExecutor`] mutates
/// while running, as plain data.
///
/// The schedule itself, the trace sink and the derived `dependents`
/// adjacency are configuration — a restore is handed the same schedule
/// and rebuilds them. Telemetry span bookkeeping (`spans`/`span_ids`)
/// is deliberately excluded: traces restart at the restore point, so
/// tasks already running resume without an open span (the dependency
/// edge emitter skips the zero sentinel).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecState {
    /// The executor's namespace identity.
    pub cfg: ExecConfig,
    /// Remaining unfinished-dependency count per task.
    pub indegree: Vec<usize>,
    /// Start time per task (ZERO until started).
    pub start: Vec<Time>,
    /// Finish time per task (ZERO until finished).
    pub finish: Vec<Time>,
    /// Finished flag per task.
    pub done: Vec<bool>,
    /// In-flight comm tasks as `(task, next_phase, outstanding)`,
    /// sorted by task index.
    pub comm: Vec<(usize, usize, usize)>,
    /// Pending compute finishes (see
    /// [`fred_sim::events::EventQueue::entries`]).
    pub compute_queue: Vec<(Time, u64, usize)>,
    /// The compute queue's next tie-break sequence number.
    pub compute_next_seq: u64,
    /// Tasks finished so far.
    pub completed: usize,
    /// Tasks ready to start (popped back-to-front).
    pub ready_stack: Vec<usize>,
    /// Tasks that finished at the current instant, awaiting settle.
    pub finished_now: Vec<usize>,
    /// Flows staged but not yet injected.
    pub staged: Vec<FlowSpec>,
}

/// The trainer's dependency-driven event loop as a resumable state
/// machine over an external clock. See the [module docs](self) for the
/// driver contract.
#[derive(Debug)]
pub struct ScheduleExecutor {
    schedule: Rc<Schedule>,
    cfg: ExecConfig,
    sink: Rc<dyn TraceSink>,
    tracing: bool,
    indegree: Vec<usize>,
    dependents: Vec<Vec<TaskId>>,
    start: Vec<Time>,
    finish: Vec<Time>,
    done: Vec<bool>,
    comm: BTreeMap<usize, CommState>,
    compute_queue: EventQueue<usize>,
    completed: usize,
    // Open span per running task / persistent span id per task
    // (telemetry only; the id survives PhaseEnd so dependency edges can
    // reference predecessors that already finished).
    spans: Vec<Option<u64>>,
    span_ids: Vec<u64>,
    ready_stack: Vec<usize>,
    finished_now: Vec<usize>,
    /// Flows staged by comm tasks at the current timestep, injected as
    /// one batch (one solver delta) by the next flush.
    staged: Vec<FlowSpec>,
}

impl ScheduleExecutor {
    /// Creates an executor with every dependency-free task ready to
    /// start. Nothing touches the network until the first
    /// [`ScheduleExecutor::settle`].
    pub fn new(schedule: Rc<Schedule>, cfg: ExecConfig, sink: Rc<dyn TraceSink>) -> Self {
        let n = schedule.tasks.len();
        let indegree: Vec<usize> = schedule.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (i, t) in schedule.tasks.iter().enumerate() {
            for d in &t.deps {
                dependents[d.0].push(TaskId(i));
            }
        }
        // Tasks with no dependencies start in schedule order; the stack
        // pops them back-to-front exactly like the classic trainer.
        let ready_stack: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        for &i in &ready_stack {
            debug_assert_eq!(indegree[i], 0);
        }
        let tracing = sink.enabled();
        ScheduleExecutor {
            schedule,
            cfg,
            sink,
            tracing,
            indegree,
            dependents,
            start: vec![Time::ZERO; n],
            finish: vec![Time::ZERO; n],
            done: vec![false; n],
            comm: BTreeMap::new(),
            compute_queue: EventQueue::new(),
            completed: 0,
            spans: vec![None; n],
            span_ids: vec![0; n],
            ready_stack,
            finished_now: Vec::new(),
            staged: Vec::new(),
        }
    }

    /// Captures every piece of mutable executor state as plain data.
    /// Restoring with [`ScheduleExecutor::restore`] against the same
    /// schedule resumes bit-identically (modulo telemetry spans — see
    /// [`ExecState`]).
    pub fn snapshot(&self) -> ExecState {
        ExecState {
            cfg: self.cfg.clone(),
            indegree: self.indegree.clone(),
            start: self.start.clone(),
            finish: self.finish.clone(),
            done: self.done.clone(),
            comm: self
                .comm
                .iter()
                .map(|(&i, s)| (i, s.phase, s.outstanding))
                .collect(),
            compute_queue: self.compute_queue.entries(),
            compute_next_seq: self.compute_queue.next_seq(),
            completed: self.completed,
            ready_stack: self.ready_stack.clone(),
            finished_now: self.finished_now.clone(),
            staged: self.staged.clone(),
        }
    }

    /// Rebuilds an executor from a [`ScheduleExecutor::snapshot`] and
    /// the same schedule it was captured against.
    ///
    /// # Panics
    ///
    /// If the state's per-task vectors do not match the schedule's task
    /// count or reference out-of-range tasks — a snapshot/schedule
    /// pairing error, not file corruption (which the codec layer
    /// reports as typed errors before state structs are ever built).
    pub fn restore(schedule: Rc<Schedule>, sink: Rc<dyn TraceSink>, state: ExecState) -> Self {
        let n = schedule.tasks.len();
        assert_eq!(state.indegree.len(), n, "indegree/task-count mismatch");
        assert_eq!(state.start.len(), n, "start/task-count mismatch");
        assert_eq!(state.finish.len(), n, "finish/task-count mismatch");
        assert_eq!(state.done.len(), n, "done/task-count mismatch");
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (i, t) in schedule.tasks.iter().enumerate() {
            for d in &t.deps {
                dependents[d.0].push(TaskId(i));
            }
        }
        let mut comm = BTreeMap::new();
        for &(i, phase, outstanding) in &state.comm {
            assert!(i < n, "comm task {i} out of range");
            comm.insert(i, CommState { phase, outstanding });
        }
        for &i in state.ready_stack.iter().chain(&state.finished_now) {
            assert!(i < n, "task {i} out of range");
        }
        let tracing = sink.enabled();
        ScheduleExecutor {
            schedule,
            cfg: state.cfg,
            sink,
            tracing,
            indegree: state.indegree,
            dependents,
            start: state.start,
            finish: state.finish,
            done: state.done,
            comm,
            compute_queue: EventQueue::from_entries(state.compute_queue, state.compute_next_seq),
            completed: state.completed,
            spans: vec![None; n],
            span_ids: vec![0; n],
            ready_stack: state.ready_stack,
            finished_now: state.finished_now,
            staged: state.staged,
        }
    }

    /// The schedule being executed.
    pub fn schedule(&self) -> &Rc<Schedule> {
        &self.schedule
    }

    /// Tasks finished so far.
    pub fn completed_count(&self) -> usize {
        self.completed
    }

    /// Total tasks in the schedule.
    pub fn total_tasks(&self) -> usize {
        self.schedule.tasks.len()
    }

    /// Whether every task has finished.
    pub fn is_done(&self) -> bool {
        self.completed == self.schedule.tasks.len()
    }

    /// Whether `tag` belongs to this executor's namespace.
    pub fn owns_tag(&self, tag: u64) -> bool {
        tag > self.cfg.tag_base && tag <= self.cfg.tag_base + self.schedule.tasks.len() as u64
    }

    /// One past the last tag this executor uses (`tag_base +
    /// task_count`); the next executor sharing the network starts its
    /// namespace here.
    pub fn tag_end(&self) -> u64 {
        self.cfg.tag_base + self.schedule.tasks.len() as u64
    }

    /// The earliest pending compute finish, if any.
    pub fn next_compute_time(&self) -> Option<Time> {
        self.compute_queue.peek_time()
    }

    /// Every unfinished task with its unfinished dependencies — the
    /// stall diagnostic payload.
    pub fn pending_tasks(&self) -> Vec<PendingTask> {
        (0..self.schedule.tasks.len())
            .filter(|&i| !self.done[i])
            .map(|i| PendingTask {
                id: TaskId(i),
                blocked_on: self.schedule.tasks[i]
                    .deps
                    .iter()
                    .copied()
                    .filter(|d| !self.done[d.0])
                    .collect(),
            })
            .collect()
    }

    /// The stall error for the current state (no pending events but
    /// unfinished tasks).
    pub fn stalled(&self) -> TrainError {
        TrainError::Stalled {
            completed: self.completed,
            total: self.schedule.tasks.len(),
            pending: self.pending_tasks(),
        }
    }

    /// Per-task timing collected so far. Meaningful once
    /// [`ScheduleExecutor::is_done`]; times are absolute on the shared
    /// clock (a cluster driver subtracts the job's start).
    pub fn timing(&self) -> IterationTiming {
        let makespan = self.finish.iter().copied().max().unwrap_or(Time::ZERO);
        IterationTiming {
            start: self.start.clone(),
            finish: self.finish.clone(),
            makespan,
        }
    }

    /// The instant the last task finished (absolute).
    pub fn completion_time(&self) -> Time {
        self.finish.iter().copied().max().unwrap_or(Time::ZERO)
    }

    /// Routes a flow completion with `tag` back into the owning comm
    /// task; the task's next phase is staged when its last outstanding
    /// transfer lands. Tags at or below `tag_base` (foreign/sentinel)
    /// are ignored.
    ///
    /// # Errors
    ///
    /// [`TrainError::UnknownCommTag`] if the tag is in this executor's
    /// namespace arithmetic but maps to no in-flight comm task.
    pub fn handle_completion(&mut self, tag: u64) -> Result<(), TrainError> {
        let Some(i) = tag
            .checked_sub(self.cfg.tag_base)
            .and_then(comm_task_of_tag)
        else {
            return Ok(());
        };
        let Some(state) = self.comm.get_mut(&i) else {
            return Err(TrainError::UnknownCommTag { tag });
        };
        state.outstanding -= 1;
        if state.outstanding == 0 && self.advance_comm(i) {
            self.finished_now.push(i);
        }
        Ok(())
    }

    /// Moves every compute task due exactly at `now` into the
    /// finished-now set; a following [`ScheduleExecutor::settle`]
    /// completes them.
    pub fn release_computes_due(&mut self, now: Time) {
        while self.compute_queue.peek_time() == Some(now) {
            let ev = self.compute_queue.pop().expect("peeked");
            self.finished_now.push(ev.event);
        }
    }

    /// Releases staged flows into `net` as one batch, re-planned around
    /// failed links first when faults are active. No-op when nothing is
    /// staged.
    ///
    /// # Errors
    ///
    /// [`TrainError::Unroutable`] / [`TrainError::Route`] as in
    /// [`repair_flows`] and injection.
    pub fn flush_staged(
        &mut self,
        net: &mut FlowNetwork,
        backend: &FabricBackend,
    ) -> Result<(), TrainError> {
        if !self.staged.is_empty() {
            let _prof = fred_telemetry::prof::scope("exec.flush_staged");
            let flows = repair_flows(net, backend, std::mem::take(&mut self.staged))?;
            net.inject_batch(flows)?;
        }
        Ok(())
    }

    /// Runs the zero-time cascade at the current instant: starts every
    /// ready task, injects staged flows, settles finished tasks and the
    /// tasks those releases make ready, until the state is quiescent and
    /// only the clock can make progress. This is the classic trainer's
    /// inner loop verbatim — same network-operation order, so solo runs
    /// through a driver are bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates staged-flow injection failures (see
    /// [`ScheduleExecutor::flush_staged`]).
    pub fn settle(
        &mut self,
        net: &mut FlowNetwork,
        backend: &FabricBackend,
    ) -> Result<(), TrainError> {
        loop {
            // Start everything that became ready at the current time.
            while let Some(i) = self.ready_stack.pop() {
                self.start_task(i, net);
            }
            // Release every flow staged by the ready tasks as one batch.
            self.flush_staged(net, backend)?;
            // Settle zero-duration completions before advancing time.
            if self.finished_now.is_empty() {
                return Ok(());
            }
            let mut finished = std::mem::take(&mut self.finished_now);
            for i in finished.drain(..) {
                self.finish_task(i, net);
            }
            self.finished_now = finished;
        }
    }

    /// Stages the next non-empty phase of comm task `i`; returns true
    /// if the task is finished instead (no phases left). All flows
    /// staged at one timestep are released with a single `inject_batch`
    /// (one solver delta).
    fn advance_comm(&mut self, i: usize) -> bool {
        let schedule = self.schedule.clone();
        let TaskBody::Comm { plan, priority, .. } = &schedule.tasks[i].body else {
            unreachable!("advance_comm on a compute task")
        };
        let state = self.comm.get_mut(&i).expect("comm state exists");
        while state.phase < plan.phases.len() {
            let transfers = &plan.phases[state.phase].transfers;
            state.phase += 1;
            if !transfers.is_empty() {
                // The tag is the task index shifted by one past the
                // namespace base: tag 0 stays the "no owner" sentinel.
                let tag = self.cfg.tag_base + i as u64 + 1;
                self.staged.extend(transfers.iter().map(|t| {
                    FlowSpec::new(t.route.clone(), t.bytes)
                        .with_priority(*priority)
                        .with_tag(tag)
                        .with_tenant(self.cfg.tenant)
                }));
                state.outstanding = transfers.len();
                return false;
            }
        }
        true
    }

    /// Starts task `i` at the network's current time.
    fn start_task(&mut self, i: usize, net: &FlowNetwork) {
        let t = net.now();
        self.start[i] = t;
        if self.tracing {
            self.emit_phase_begin(i, t);
        }
        let schedule = self.schedule.clone();
        match &schedule.tasks[i].body {
            TaskBody::Compute { duration, .. } => {
                self.compute_queue.schedule(t + *duration, i);
            }
            TaskBody::Comm { .. } => {
                self.comm.insert(
                    i,
                    CommState {
                        phase: 0,
                        outstanding: 0,
                    },
                );
                if self.advance_comm(i) {
                    self.finished_now.push(i);
                }
            }
        }
    }

    /// Marks task `i` finished at the current time and releases its
    /// dependents.
    fn finish_task(&mut self, i: usize, net: &FlowNetwork) {
        if self.done[i] {
            return;
        }
        self.done[i] = true;
        self.finish[i] = net.now();
        self.completed += 1;
        if let Some(span) = self.spans[i].take() {
            let track = match &self.schedule.tasks[i].body {
                TaskBody::Compute { .. } => Track::Compute,
                TaskBody::Comm { ctype, .. } => track_of_comm(*ctype),
            };
            self.sink.record(TraceEvent::PhaseEnd {
                t: net.now().as_secs(),
                track,
                span,
            });
        }
        let deps = std::mem::take(&mut self.dependents[i]);
        for &dep in &deps {
            self.indegree[dep.0] -= 1;
            if self.indegree[dep.0] == 0 {
                self.ready_stack.push(dep.0);
            }
        }
        self.dependents[i] = deps;
    }

    /// Telemetry for a task start: its span, correlation tag and
    /// happens-before edges.
    fn emit_phase_begin(&mut self, i: usize, t: Time) {
        let (track, label, bytes, npus) = match &self.schedule.tasks[i].body {
            TaskBody::Compute { worker, .. } => {
                (Track::Compute, format!("compute w{}", worker.0), 0.0, 0)
            }
            TaskBody::Comm { plan, ctype, .. } => {
                let mut srcs: Vec<usize> = plan
                    .phases
                    .iter()
                    .flat_map(|p| p.transfers.iter().map(|tr| tr.src))
                    .collect();
                srcs.sort_unstable();
                srcs.dedup();
                (
                    track_of_comm(*ctype),
                    plan.label.clone(),
                    plan.total_bytes(),
                    srcs.len() as u32,
                )
            }
        };
        let label = match &self.cfg.label {
            Some(prefix) => format!("{prefix}/{label}"),
            None => label,
        };
        let span = next_span_id();
        self.spans[i] = Some(span);
        self.span_ids[i] = span;
        // Comm spans claim their flows through the namespaced
        // correlation tag (see advance_comm).
        let tag = match &self.schedule.tasks[i].body {
            TaskBody::Comm { .. } => self.cfg.tag_base + i as u64 + 1,
            TaskBody::Compute { .. } => 0,
        };
        self.sink.record(TraceEvent::PhaseBegin {
            t: t.as_secs(),
            track,
            span,
            label: label.into(),
            bytes,
            npus,
            tag,
        });
        // The schedule's dependency edges become the trace's
        // happens-before DAG.
        for d in &self.schedule.tasks[i].deps {
            let pred = self.span_ids[d.0];
            if pred != 0 {
                self.sink.record(TraceEvent::SpanDep {
                    t: t.as_secs(),
                    span,
                    pred,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot serialization.
// ---------------------------------------------------------------------

use fred_core::codec::{SnapshotError, Value};
use fred_core::snapshot::{
    arr_of, bools, bools_of, field, flow_spec_from_value, flow_spec_to_value, time_of, u64_of,
    usize_of, usizes, usizes_of, v_time, v_u64,
};

impl ExecState {
    /// Encodes the state for the shared snapshot codec.
    pub fn to_value(&self) -> Value {
        let comm = Value::Arr(
            self.comm
                .iter()
                .map(|&(i, phase, outstanding)| {
                    Value::Arr(vec![
                        v_u64(i as u64),
                        v_u64(phase as u64),
                        v_u64(outstanding as u64),
                    ])
                })
                .collect(),
        );
        let queue = Value::Arr(
            self.compute_queue
                .iter()
                .map(|&(at, seq, task)| {
                    Value::Arr(vec![v_time(at), v_u64(seq), v_u64(task as u64)])
                })
                .collect(),
        );
        Value::Obj(vec![
            ("tag_base".into(), v_u64(self.cfg.tag_base)),
            ("tenant".into(), v_u64(u64::from(self.cfg.tenant))),
            (
                "label".into(),
                match &self.cfg.label {
                    Some(l) => Value::Str(l.clone()),
                    None => Value::Null,
                },
            ),
            ("indegree".into(), usizes(&self.indegree)),
            (
                "start".into(),
                Value::Arr(self.start.iter().map(|&t| v_time(t)).collect()),
            ),
            (
                "finish".into(),
                Value::Arr(self.finish.iter().map(|&t| v_time(t)).collect()),
            ),
            ("done".into(), bools(&self.done)),
            ("comm".into(), comm),
            ("compute_queue".into(), queue),
            ("compute_next_seq".into(), v_u64(self.compute_next_seq)),
            ("completed".into(), v_u64(self.completed as u64)),
            ("ready_stack".into(), usizes(&self.ready_stack)),
            ("finished_now".into(), usizes(&self.finished_now)),
            (
                "staged".into(),
                Value::Arr(self.staged.iter().map(flow_spec_to_value).collect()),
            ),
        ])
    }

    /// Decodes [`ExecState::to_value`] with typed errors on any shape
    /// mismatch.
    pub fn from_value(v: &Value) -> Result<ExecState, SnapshotError> {
        let ctx = "exec";
        let comm = arr_of(field(v, "comm", ctx)?, ctx)?
            .iter()
            .map(|e| {
                let e = arr_of(e, "exec.comm")?;
                if e.len() != 3 {
                    return Err(SnapshotError::Mismatch(
                        "exec.comm: expected 3 elements".into(),
                    ));
                }
                Ok((
                    usize_of(&e[0], "exec.comm.task")?,
                    usize_of(&e[1], "exec.comm.phase")?,
                    usize_of(&e[2], "exec.comm.outstanding")?,
                ))
            })
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        let compute_queue = arr_of(field(v, "compute_queue", ctx)?, ctx)?
            .iter()
            .map(|e| {
                let e = arr_of(e, "exec.compute_queue")?;
                if e.len() != 3 {
                    return Err(SnapshotError::Mismatch(
                        "exec.compute_queue: expected 3 elements".into(),
                    ));
                }
                Ok((
                    time_of(&e[0], "exec.compute_queue.at")?,
                    u64_of(&e[1], "exec.compute_queue.seq")?,
                    usize_of(&e[2], "exec.compute_queue.task")?,
                ))
            })
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        let staged = arr_of(field(v, "staged", ctx)?, ctx)?
            .iter()
            .map(|f| flow_spec_from_value(f, "exec.staged"))
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        let label = match field(v, "label", ctx)? {
            Value::Null => None,
            Value::Str(s) => Some(s.clone()),
            other => {
                return Err(SnapshotError::Mismatch(format!(
                    "exec.label: expected string or null, found {other:?}"
                )))
            }
        };
        let time_vec = |key: &str| -> Result<Vec<Time>, SnapshotError> {
            arr_of(field(v, key, ctx)?, ctx)?
                .iter()
                .map(|t| time_of(t, key))
                .collect()
        };
        Ok(ExecState {
            cfg: ExecConfig {
                tag_base: u64_of(field(v, "tag_base", ctx)?, ctx)?,
                tenant: u64_of(field(v, "tenant", ctx)?, ctx)? as u8,
                label,
            },
            indegree: usizes_of(field(v, "indegree", ctx)?, ctx)?,
            start: time_vec("start")?,
            finish: time_vec("finish")?,
            done: bools_of(field(v, "done", ctx)?, ctx)?,
            comm,
            compute_queue,
            compute_next_seq: u64_of(field(v, "compute_next_seq", ctx)?, ctx)?,
            completed: usize_of(field(v, "completed", ctx)?, ctx)?,
            ready_stack: usizes_of(field(v, "ready_stack", ctx)?, ctx)?,
            finished_now: usizes_of(field(v, "finished_now", ctx)?, ctx)?,
            staged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_state_round_trips_through_value() {
        let state = ExecState {
            cfg: ExecConfig {
                tag_base: 64,
                tenant: 2,
                label: Some("job3".into()),
            },
            indegree: vec![0, 1, 2],
            start: vec![Time::ZERO, Time::from_secs(0.5), Time::ZERO],
            finish: vec![Time::from_secs(0.25), Time::ZERO, Time::ZERO],
            done: vec![true, false, false],
            comm: vec![(1, 2, 3)],
            compute_queue: vec![(Time::from_secs(1.5), 7, 2)],
            compute_next_seq: 8,
            completed: 1,
            ready_stack: vec![2],
            finished_now: vec![],
            staged: vec![FlowSpec::new(vec![LinkId(0), LinkId(3)], 1e9)
                .with_tag(66)
                .with_tenant(2)],
        };
        let v = state.to_value();
        assert_eq!(ExecState::from_value(&v).unwrap(), state);
        // And through the binary codec.
        let bytes = fred_core::codec::to_binary(&v);
        let back = fred_core::codec::from_binary(&bytes).unwrap();
        assert_eq!(ExecState::from_value(&back).unwrap(), state);
    }
}

#![warn(missing_docs)]

//! # fred-workloads — DNN models, 3D parallelism and the trainer
//!
//! The workload layer of the reproduction (the role ASTRA-SIM's
//! workload frontend plays in the paper, §7.3–§7.4):
//!
//! * [`model`] — the model zoo (ResNet-152, Transformer-17B, GPT-3,
//!   Transformer-1T) described as layer graphs with FLOPs, parameter
//!   and activation sizes (Table 6),
//! * [`backend`] — network backends gluing the baseline mesh and the
//!   Fred-A/B/C/D fabrics to a common collective interface (Table 5),
//! * [`schedule`] — the per-iteration task graph: forward/backward
//!   passes, GPipe microbatching, MP/DP/PP collectives, ZeRO-2 DP
//!   sharding, weight-stationary vs weight-streaming execution (§3.1),
//! * [`exec`] — the resumable schedule executor: one job's task graph
//!   advanced as a state machine over a (possibly shared) flow
//!   network, namespaced by flow-tag base and tenant rank,
//! * [`trainer`] — the discrete-event trainer overlapping compute and
//!   communication and accounting exposed communication per type,
//!   with deterministic fault injection and re-routing,
//! * [`error`] — typed trainer failures ([`error::TrainError`]):
//!   stalls, unroutable transfers, rejected flows,
//! * [`report`] — the training-time breakdown records used by the
//!   benchmark harness.

pub mod backend;
pub mod error;
pub mod exec;
pub mod memory;
pub mod model;
pub mod report;
pub mod schedule;
pub mod strategies;
pub mod trainer;

//! The discrete-event trainer (the role of ASTRA-SIM's system layer,
//! §7.4).
//!
//! [`run_iteration`] executes a compiled [`Schedule`] against the
//! flow-level network simulator: compute tasks occupy their virtual
//! worker for a roofline duration; comm tasks progress phase by phase
//! through the shared network, contending with every other in-flight
//! collective under max-min fairness and MP > PP > DP priority.
//! Completion times feed the exposed-communication accounting of
//! [`TrainingReport`] (§7.4: exposed time = time the workload waits on
//! communication not overlapped with compute).

use std::collections::BTreeMap;
use std::rc::Rc;

use fred_core::placement::{Placement, PlacementPolicy, Strategy3D};
use fred_sim::events::EventQueue;
use fred_sim::flow::FlowSpec;
use fred_sim::netsim::FlowNetwork;
use fred_sim::time::{Duration, Time};
use fred_telemetry::event::{next_span_id, TraceEvent, Track};
use fred_telemetry::sink::{NullSink, TraceSink};

use crate::backend::FabricBackend;
use crate::model::DnnModel;
use crate::report::{CommType, TrainingReport};
use crate::schedule::{build_schedule, Schedule, ScheduleParams, TaskBody, TaskId};

/// Maps an exposure type to its telemetry display track.
pub fn track_of_comm(ctype: CommType) -> Track {
    match ctype {
        CommType::Mp => Track::Mp,
        CommType::Pp => Track::Pp,
        CommType::Dp => Track::Dp,
        CommType::InputLoad | CommType::Streaming => Track::Bulk,
    }
}

/// Per-task timing from one simulated iteration.
#[derive(Debug, Clone)]
pub struct IterationTiming {
    /// Start time per task.
    pub start: Vec<Time>,
    /// Finish time per task.
    pub finish: Vec<Time>,
    /// End-to-end iteration time.
    pub makespan: Time,
}

#[derive(Debug)]
struct CommState {
    phase: usize,
    outstanding: usize,
}

/// Executes `schedule` on a fresh simulator over `backend`'s topology.
///
/// # Panics
///
/// Panics if the schedule's dependency graph is malformed (a cycle or a
/// reference to a missing task) or a plan route is invalid.
pub fn run_iteration(schedule: &Schedule, backend: &FabricBackend) -> IterationTiming {
    run_iteration_traced(schedule, backend, Rc::new(NullSink))
}

/// [`run_iteration`] with telemetry: every network event, collective
/// phase and trainer task is recorded into `sink`. Timing results are
/// bit-identical to an untraced run.
///
/// # Panics
///
/// Panics under the same conditions as [`run_iteration`].
pub fn run_iteration_traced(
    schedule: &Schedule,
    backend: &FabricBackend,
    sink: Rc<dyn TraceSink>,
) -> IterationTiming {
    let n = schedule.tasks.len();
    let mut net = FlowNetwork::with_sink(backend.topology(), sink.clone());
    let tracing = sink.enabled();
    // Open span per running task (telemetry only).
    let mut spans: Vec<Option<u64>> = vec![None; n];
    // Persistent span id per task (survives PhaseEnd) so dependency
    // edges can reference predecessors that already finished.
    let mut span_ids: Vec<u64> = vec![0; n];
    if tracing {
        sink.record(TraceEvent::IterStage {
            t: 0.0,
            label: "iteration-start".into(),
        });
    }
    let mut indegree: Vec<usize> = schedule.tasks.iter().map(|t| t.deps.len()).collect();
    let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for (i, t) in schedule.tasks.iter().enumerate() {
        for d in &t.deps {
            dependents[d.0].push(TaskId(i));
        }
    }

    let mut start = vec![Time::ZERO; n];
    let mut finish = vec![Time::ZERO; n];
    let mut done = vec![false; n];
    let mut comm: BTreeMap<usize, CommState> = BTreeMap::new();
    let mut compute_queue: EventQueue<usize> = EventQueue::new();
    let mut completed = 0usize;

    // Stages the next non-empty phase of comm task `i` into the shared
    // per-timestep flow buffer; returns true if the task is finished
    // instead (no phases left). All flows staged at one timestep are
    // released with a single `inject_batch` (one solver delta).
    fn advance_comm(
        schedule: &Schedule,
        staged: &mut Vec<FlowSpec>,
        comm: &mut BTreeMap<usize, CommState>,
        i: usize,
    ) -> bool {
        let TaskBody::Comm { plan, priority, .. } = &schedule.tasks[i].body else {
            unreachable!("advance_comm on a compute task")
        };
        let state = comm.get_mut(&i).expect("comm state exists");
        while state.phase < plan.phases.len() {
            let transfers = &plan.phases[state.phase].transfers;
            state.phase += 1;
            if !transfers.is_empty() {
                // The tag is the task index shifted by one: tag 0 is
                // reserved for "no owner" in the telemetry layer.
                staged.extend(transfers.iter().map(|t| {
                    FlowSpec::new(t.route.clone(), t.bytes)
                        .with_priority(*priority)
                        .with_tag(i as u64 + 1)
                }));
                state.outstanding = transfers.len();
                return false;
            }
        }
        true
    }

    // Start a task at time `t`.
    let mut ready_stack: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut finished_now: Vec<usize> = Vec::new();
    // Flows staged by comm tasks at the current timestep, injected as
    // one batch before time advances.
    let mut staged_flows: Vec<FlowSpec> = Vec::new();

    loop {
        // Start everything that became ready at the current time.
        while let Some(i) = ready_stack.pop() {
            let t = net.now();
            start[i] = t;
            if tracing {
                let (track, label, bytes, npus) = match &schedule.tasks[i].body {
                    TaskBody::Compute { worker, .. } => {
                        (Track::Compute, format!("compute w{}", worker.0), 0.0, 0)
                    }
                    TaskBody::Comm { plan, ctype, .. } => {
                        let mut srcs: Vec<usize> = plan
                            .phases
                            .iter()
                            .flat_map(|p| p.transfers.iter().map(|tr| tr.src))
                            .collect();
                        srcs.sort_unstable();
                        srcs.dedup();
                        (
                            track_of_comm(*ctype),
                            plan.label.clone(),
                            plan.total_bytes(),
                            srcs.len() as u32,
                        )
                    }
                };
                let span = next_span_id();
                spans[i] = Some(span);
                span_ids[i] = span;
                // Comm spans claim their flows through the task-index
                // correlation tag (shifted by one; see advance_comm).
                let tag = match &schedule.tasks[i].body {
                    TaskBody::Comm { .. } => i as u64 + 1,
                    TaskBody::Compute { .. } => 0,
                };
                sink.record(TraceEvent::PhaseBegin {
                    t: t.as_secs(),
                    track,
                    span,
                    label: label.into(),
                    bytes,
                    npus,
                    tag,
                });
                // The schedule's dependency edges become the trace's
                // happens-before DAG.
                for d in &schedule.tasks[i].deps {
                    let pred = span_ids[d.0];
                    if pred != 0 {
                        sink.record(TraceEvent::SpanDep {
                            t: t.as_secs(),
                            span,
                            pred,
                        });
                    }
                }
            }
            match &schedule.tasks[i].body {
                TaskBody::Compute { duration, .. } => {
                    compute_queue.schedule(t + *duration, i);
                }
                TaskBody::Comm { .. } => {
                    comm.insert(
                        i,
                        CommState {
                            phase: 0,
                            outstanding: 0,
                        },
                    );
                    if advance_comm(schedule, &mut staged_flows, &mut comm, i) {
                        finished_now.push(i);
                    }
                }
            }
        }

        // Release every flow staged by the ready tasks as one batch.
        if !staged_flows.is_empty() {
            net.inject_batch(std::mem::take(&mut staged_flows));
        }

        // Settle zero-duration completions before advancing time.
        if !finished_now.is_empty() {
            for i in finished_now.drain(..) {
                if !done[i] {
                    done[i] = true;
                    finish[i] = net.now();
                    completed += 1;
                    if let Some(span) = spans[i].take() {
                        let track = match &schedule.tasks[i].body {
                            TaskBody::Compute { .. } => Track::Compute,
                            TaskBody::Comm { ctype, .. } => track_of_comm(*ctype),
                        };
                        sink.record(TraceEvent::PhaseEnd {
                            t: net.now().as_secs(),
                            track,
                            span,
                        });
                    }
                    for &dep in &dependents[i] {
                        indegree[dep.0] -= 1;
                        if indegree[dep.0] == 0 {
                            ready_stack.push(dep.0);
                        }
                    }
                }
            }
            continue;
        }

        if completed == n {
            break;
        }

        // Advance to the next event (compute finish or network event).
        let tc = compute_queue.peek_time();
        let tn = net.next_event();
        let next = match (tc, tn) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => panic!(
                "trainer stalled: {completed}/{n} tasks done but no pending events \
                 (dependency deadlock?)"
            ),
        };
        net.advance_to(next);

        // Network completions: progress comm tasks (the tag carries
        // the task index shifted by one).
        for c in net.drain_completed() {
            let i = (c.tag - 1) as usize;
            let state = comm.get_mut(&i).expect("completion for unknown comm task");
            state.outstanding -= 1;
            if state.outstanding == 0 && advance_comm(schedule, &mut staged_flows, &mut comm, i) {
                finished_now.push(i);
            }
        }
        if !staged_flows.is_empty() {
            net.inject_batch(std::mem::take(&mut staged_flows));
        }
        // Compute completions at this instant.
        while compute_queue.peek_time() == Some(next) {
            let ev = compute_queue.pop().expect("peeked");
            finished_now.push(ev.event);
        }
    }

    let makespan = finish.iter().copied().max().unwrap_or(Time::ZERO);
    if tracing {
        sink.record(TraceEvent::IterStage {
            t: makespan.as_secs(),
            label: "iteration-end".into(),
        });
    }
    IterationTiming {
        start,
        finish,
        makespan,
    }
}

/// Builds the exposed-communication breakdown from a timed iteration
/// (§7.4): walking each worker's wait chain, a comm task contributes
/// the time by which its completion extends past everything the worker
/// had already waited for.
pub fn breakdown(
    schedule: &Schedule,
    timing: &IterationTiming,
    workload: &str,
    config: &str,
) -> TrainingReport {
    let workers = schedule.worker_chains.len().max(1) as f64;
    let mut exposed: BTreeMap<CommType, f64> = BTreeMap::new();
    let mut compute_total = 0.0;
    for chain in &schedule.worker_chains {
        let mut horizon = Time::ZERO;
        for &t in chain {
            match &schedule.tasks[t.0].body {
                TaskBody::Compute { duration, .. } => {
                    compute_total += duration.as_secs();
                    horizon = horizon.max(timing.finish[t.0]);
                }
                TaskBody::Comm { ctype, .. } => {
                    let f = timing.finish[t.0];
                    if f > horizon {
                        *exposed.entry(*ctype).or_insert(0.0) += (f - horizon).as_secs();
                        horizon = f;
                    }
                }
            }
        }
    }
    TrainingReport {
        workload: workload.into(),
        config: config.into(),
        strategy: schedule.strategy.clone(),
        minibatch: schedule.minibatch,
        total: timing.makespan - Time::ZERO,
        compute: Duration::from_secs(compute_total / workers),
        exposed: exposed
            .into_iter()
            .map(|(k, v)| (k, Duration::from_secs(v / workers)))
            .collect(),
    }
}

/// End-to-end convenience: place, schedule, simulate and report one
/// training iteration of `model` under `strategy` on `backend`.
///
/// The placement policy follows the paper: FRED uses the §5.3
/// MP-PP-DP policy; the mesh baseline uses the MP-favouring mapping of
/// Fig 5(a).
pub fn simulate(
    model: &DnnModel,
    strategy: Strategy3D,
    backend: &FabricBackend,
    params: ScheduleParams,
) -> TrainingReport {
    simulate_traced(model, strategy, backend, params, Rc::new(NullSink))
}

/// [`simulate`] with telemetry recorded into `sink` (see
/// [`run_iteration_traced`]).
pub fn simulate_traced(
    model: &DnnModel,
    strategy: Strategy3D,
    backend: &FabricBackend,
    params: ScheduleParams,
    sink: Rc<dyn TraceSink>,
) -> TrainingReport {
    let policy = if backend.config().is_fred() {
        PlacementPolicy::MpPpDp
    } else {
        PlacementPolicy::MpDpPp
    };
    let placement = Placement::new(strategy, policy);
    let schedule = build_schedule(model, strategy, &placement, backend, params);
    let timing = run_iteration_traced(&schedule, backend, sink);
    breakdown(&schedule, &timing, &model.name, backend.config().name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DnnModel;
    use fred_core::params::FabricConfig;

    fn quick_params(minibatch: usize, microbatches: usize) -> ScheduleParams {
        ScheduleParams {
            minibatch,
            microbatches,
            npu_flops: 1000e12,
            stream_double_buffer: true,
        }
    }

    #[test]
    fn resnet_dp_iteration_runs_and_breaks_down() {
        let m = DnnModel::resnet152();
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let r = simulate(&m, m.default_strategy, &backend, quick_params(320, 1));
        assert!(r.total.as_secs() > 0.0);
        assert!(r.compute.as_secs() > 0.0);
        // Pure DP: DP must be the dominant exposed type; no MP/PP.
        assert!(r.exposed_for(CommType::Dp).as_secs() > 0.0);
        assert_eq!(r.exposed_for(CommType::Mp), Duration::ZERO);
        assert_eq!(r.exposed_for(CommType::Pp), Duration::ZERO);
        // Total >= compute (nothing can hide compute).
        assert!(r.total.as_secs() >= r.compute.as_secs() * 0.99);
    }

    #[test]
    fn fred_d_beats_baseline_on_resnet() {
        // Fig 10 headline: Fred-D improves ResNet-152 end-to-end time.
        let m = DnnModel::resnet152();
        let base = simulate(
            &m,
            m.default_strategy,
            &FabricBackend::new(FabricConfig::BaselineMesh),
            quick_params(320, 1),
        );
        let fred = simulate(
            &m,
            m.default_strategy,
            &FabricBackend::new(FabricConfig::FredD),
            quick_params(320, 1),
        );
        let speedup = fred.speedup_over(&base);
        assert!(speedup > 1.05, "Fred-D speedup {speedup:.2} <= 1.05");
        // And the DP exposed time specifically shrinks.
        assert!(fred.exposed_for(CommType::Dp) < base.exposed_for(CommType::Dp));
    }

    #[test]
    fn transformer_pipeline_exposes_all_types() {
        let m = DnnModel::transformer_17b();
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let r = simulate(&m, m.default_strategy, &backend, quick_params(48, 4));
        assert!(r.exposed_for(CommType::Mp).as_secs() > 0.0);
        assert!(r.exposed_for(CommType::Dp).as_secs() > 0.0);
        assert!(r.total >= r.compute);
    }

    #[test]
    fn streaming_workload_is_streaming_bound() {
        let m = DnnModel::transformer_1t();
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let r = simulate(&m, m.default_strategy, &backend, quick_params(20, 1));
        let streaming = r.exposed_for(CommType::Streaming).as_secs();
        assert!(streaming > 0.0, "no streaming exposure: {r}");
        // 2 TB x 3 passes over ~1.5 TBps effective: streaming dominates
        // every other comm type.
        for t in [CommType::Mp, CommType::Pp, CommType::Dp] {
            assert!(r.exposed_for(t).as_secs() <= streaming);
        }
    }

    #[test]
    fn makespan_bounded_below_by_critical_compute() {
        let m = DnnModel::transformer_17b();
        let backend = FabricBackend::new(FabricConfig::FredD);
        let params = quick_params(48, 4);
        let placement = Placement::new(m.default_strategy, PlacementPolicy::MpPpDp);
        let schedule = build_schedule(&m, m.default_strategy, &placement, &backend, params);
        let timing = run_iteration(&schedule, &backend);
        let w0_compute = schedule.worker_compute_secs(0);
        assert!(timing.makespan.as_secs() >= w0_compute);
        // Start/finish are consistent.
        for i in 0..schedule.tasks.len() {
            assert!(timing.finish[i] >= timing.start[i]);
            for d in &schedule.tasks[i].deps {
                assert!(timing.start[i] >= timing.finish[d.0]);
            }
        }
    }

    #[test]
    fn priorities_let_mp_cut_ahead_of_dp() {
        // Construct contention: run T-17B on the mesh where MP/DP share
        // links; MP (higher priority) exposure should stay bounded even
        // under DP pressure. This is a smoke test of the §5.4 policy.
        let m = DnnModel::transformer_17b();
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let r = simulate(
            &m,
            fred_core::placement::Strategy3D::new(2, 5, 2),
            &backend,
            quick_params(80, 2),
        );
        assert!(r.total.as_secs() > 0.0);
    }
}

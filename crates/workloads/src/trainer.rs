//! The discrete-event trainer (the role of ASTRA-SIM's system layer,
//! §7.4).
//!
//! [`run_iteration`] executes a compiled [`Schedule`] against the
//! flow-level network simulator: compute tasks occupy their virtual
//! worker for a roofline duration; comm tasks progress phase by phase
//! through the shared network, contending with every other in-flight
//! collective under max-min fairness and MP > PP > DP priority.
//! Completion times feed the exposed-communication accounting of
//! [`TrainingReport`] (§7.4: exposed time = time the workload waits on
//! communication not overlapped with compute).

use std::collections::BTreeMap;
use std::rc::Rc;

use fred_core::placement::{Placement, PlacementPolicy, Strategy3D};
use fred_sim::fault::FaultPlan;
use fred_sim::flow::FlowSpec;
use fred_sim::netsim::FlowNetwork;
use fred_sim::time::{Duration, Time};
use fred_telemetry::event::{TraceEvent, Track};
use fred_telemetry::sink::{NullSink, TraceSink};

use crate::backend::FabricBackend;
use crate::error::TrainError;
use crate::exec::{ExecConfig, ScheduleExecutor};
use crate::model::DnnModel;
use crate::report::{CommType, TrainingReport};
use crate::schedule::{build_schedule, Schedule, ScheduleParams, TaskBody};

pub use crate::exec::{comm_task_of_tag, repair_flows, IterationTiming};

/// Maps an exposure type to its telemetry display track.
pub fn track_of_comm(ctype: CommType) -> Track {
    match ctype {
        CommType::Mp => Track::Mp,
        CommType::Pp => Track::Pp,
        CommType::Dp => Track::Dp,
        CommType::InputLoad | CommType::Streaming => Track::Bulk,
    }
}

/// Executes `schedule` on a fresh simulator over `backend`'s topology.
///
/// # Errors
///
/// [`TrainError::Stalled`] if the dependency graph deadlocks,
/// [`TrainError::Route`] if a plan route is invalid.
pub fn run_iteration(
    schedule: &Schedule,
    backend: &FabricBackend,
) -> Result<IterationTiming, TrainError> {
    run_iteration_traced(schedule, backend, Rc::new(NullSink))
}

/// [`run_iteration`] with telemetry: every network event, collective
/// phase and trainer task is recorded into `sink`. Timing results are
/// bit-identical to an untraced run.
///
/// # Errors
///
/// Fails under the same conditions as [`run_iteration`].
pub fn run_iteration_traced(
    schedule: &Schedule,
    backend: &FabricBackend,
    sink: Rc<dyn TraceSink>,
) -> Result<IterationTiming, TrainError> {
    run_iteration_faulted(schedule, backend, &FaultPlan::none(), sink)
}

/// [`run_iteration_traced`] under a deterministic [`FaultPlan`]: when a
/// scheduled fault fires, the affected link loses capacity, in-flight
/// flows crossing it are evicted and re-injected over surviving routes
/// (with their already-moved bytes credited), and every later transfer
/// is re-planned around the failure at injection time. With
/// [`FaultPlan::none`] the fault machinery is never touched and the
/// result is bit-identical to [`run_iteration_traced`].
///
/// # Errors
///
/// In addition to [`run_iteration`]'s errors:
/// [`TrainError::Unroutable`] if failures cut some transfer's endpoints
/// apart, [`TrainError::UnknownCommTag`] if a completion cannot be
/// attributed to a comm task.
pub fn run_iteration_faulted(
    schedule: &Schedule,
    backend: &FabricBackend,
    faults: &FaultPlan,
    sink: Rc<dyn TraceSink>,
) -> Result<IterationTiming, TrainError> {
    let mut net = FlowNetwork::with_sink(backend.topology(), sink.clone());
    let tracing = sink.enabled();
    if tracing {
        sink.record(TraceEvent::IterStage {
            t: 0.0,
            label: "iteration-start".into(),
        });
    }
    // One executor with the default (zero) namespace: the classic
    // single-job tags and tenant rank, driven to completion over a
    // private network. The cluster scheduler drives many of these
    // through one shared network instead.
    let mut ex = ScheduleExecutor::new(
        Rc::new(schedule.clone()),
        ExecConfig::default(),
        sink.clone(),
    );
    // Cursor into the (time-sorted) fault plan.
    let mut fault_cursor = 0usize;

    ex.settle(&mut net, backend)?;
    loop {
        if ex.is_done() {
            break;
        }

        // Advance to the next event: compute finish, network event, or
        // fault horizon — whichever comes first.
        let tc = ex.next_compute_time();
        let tn = net.next_event();
        let tf = faults.next_at(fault_cursor);
        let Some(next) = [tc, tn, tf].into_iter().flatten().min() else {
            return Err(ex.stalled());
        };
        net.advance_to(next);

        // Fire every fault due by now: the link loses capacity, its
        // in-flight flows are evicted and immediately re-injected over
        // surviving routes with their remaining bytes (the moved bytes
        // were already credited by the eviction).
        if !faults.is_empty() {
            let mut evicted_specs: Vec<FlowSpec> = Vec::new();
            while let Some(ev) = faults.events().get(fault_cursor) {
                if ev.at > next {
                    break;
                }
                fault_cursor += 1;
                evicted_specs.extend(ev.apply(&mut net).into_iter().map(|e| {
                    FlowSpec::new(e.route, e.remaining_bytes)
                        .with_priority(e.priority)
                        .with_tag(e.tag)
                        .with_tenant(e.tenant)
                }));
            }
            if !evicted_specs.is_empty() {
                let flows = repair_flows(&net, backend, evicted_specs)?;
                net.inject_batch(flows)?;
            }
        }

        // Network completions progress comm tasks; freshly staged
        // phases are injected before computes settle, exactly as the
        // pre-executor trainer ordered its events.
        for c in net.drain_completed() {
            ex.handle_completion(c.tag)?;
        }
        ex.flush_staged(&mut net, backend)?;
        ex.release_computes_due(next);
        ex.settle(&mut net, backend)?;
    }

    let timing = ex.timing();
    if tracing {
        sink.record(TraceEvent::IterStage {
            t: timing.makespan.as_secs(),
            label: "iteration-end".into(),
        });
    }
    Ok(timing)
}

/// Builds the exposed-communication breakdown from a timed iteration
/// (§7.4): walking each worker's wait chain, a comm task contributes
/// the time by which its completion extends past everything the worker
/// had already waited for.
pub fn breakdown(
    schedule: &Schedule,
    timing: &IterationTiming,
    workload: &str,
    config: &str,
) -> TrainingReport {
    let workers = schedule.worker_chains.len().max(1) as f64;
    let mut exposed: BTreeMap<CommType, f64> = BTreeMap::new();
    let mut compute_total = 0.0;
    for chain in &schedule.worker_chains {
        let mut horizon = Time::ZERO;
        for &t in chain {
            match &schedule.tasks[t.0].body {
                TaskBody::Compute { duration, .. } => {
                    compute_total += duration.as_secs();
                    horizon = horizon.max(timing.finish[t.0]);
                }
                TaskBody::Comm { ctype, .. } => {
                    let f = timing.finish[t.0];
                    if f > horizon {
                        *exposed.entry(*ctype).or_insert(0.0) += (f - horizon).as_secs();
                        horizon = f;
                    }
                }
            }
        }
    }
    TrainingReport {
        workload: workload.into(),
        config: config.into(),
        strategy: schedule.strategy.clone(),
        minibatch: schedule.minibatch,
        total: timing.makespan - Time::ZERO,
        compute: Duration::from_secs(compute_total / workers),
        exposed: exposed
            .into_iter()
            .map(|(k, v)| (k, Duration::from_secs(v / workers)))
            .collect(),
    }
}

/// End-to-end convenience: place, schedule, simulate and report one
/// training iteration of `model` under `strategy` on `backend`.
///
/// The placement policy follows the paper: FRED uses the §5.3
/// MP-PP-DP policy; the mesh baseline uses the MP-favouring mapping of
/// Fig 5(a).
pub fn simulate(
    model: &DnnModel,
    strategy: Strategy3D,
    backend: &FabricBackend,
    params: ScheduleParams,
) -> Result<TrainingReport, TrainError> {
    simulate_traced(model, strategy, backend, params, Rc::new(NullSink))
}

/// [`simulate`] with telemetry recorded into `sink` (see
/// [`run_iteration_traced`]).
///
/// # Errors
///
/// Fails under the same conditions as [`run_iteration`].
pub fn simulate_traced(
    model: &DnnModel,
    strategy: Strategy3D,
    backend: &FabricBackend,
    params: ScheduleParams,
    sink: Rc<dyn TraceSink>,
) -> Result<TrainingReport, TrainError> {
    simulate_faulted(model, strategy, backend, params, &FaultPlan::none(), sink)
}

/// [`simulate_traced`] under a deterministic [`FaultPlan`] (see
/// [`run_iteration_faulted`]). With [`FaultPlan::none`] the result is
/// bit-identical to [`simulate_traced`].
///
/// # Errors
///
/// Fails under the same conditions as [`run_iteration_faulted`].
pub fn simulate_faulted(
    model: &DnnModel,
    strategy: Strategy3D,
    backend: &FabricBackend,
    params: ScheduleParams,
    faults: &FaultPlan,
    sink: Rc<dyn TraceSink>,
) -> Result<TrainingReport, TrainError> {
    let policy = if backend.config().is_fred() {
        PlacementPolicy::MpPpDp
    } else {
        PlacementPolicy::MpDpPp
    };
    let placement = Placement::new(strategy, policy);
    let schedule = build_schedule(model, strategy, &placement, backend, params);
    let timing = run_iteration_faulted(&schedule, backend, faults, sink)?;
    Ok(breakdown(
        &schedule,
        &timing,
        &model.name,
        backend.config().name(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DnnModel;
    use crate::schedule::TaskId;
    use fred_core::params::FabricConfig;

    fn quick_params(minibatch: usize, microbatches: usize) -> ScheduleParams {
        ScheduleParams {
            minibatch,
            microbatches,
            npu_flops: 1000e12,
            stream_double_buffer: true,
        }
    }

    #[test]
    fn resnet_dp_iteration_runs_and_breaks_down() {
        let m = DnnModel::resnet152();
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let r = simulate(&m, m.default_strategy, &backend, quick_params(320, 1)).unwrap();
        assert!(r.total.as_secs() > 0.0);
        assert!(r.compute.as_secs() > 0.0);
        // Pure DP: DP must be the dominant exposed type; no MP/PP.
        assert!(r.exposed_for(CommType::Dp).as_secs() > 0.0);
        assert_eq!(r.exposed_for(CommType::Mp), Duration::ZERO);
        assert_eq!(r.exposed_for(CommType::Pp), Duration::ZERO);
        // Total >= compute (nothing can hide compute).
        assert!(r.total.as_secs() >= r.compute.as_secs() * 0.99);
    }

    #[test]
    fn fred_d_beats_baseline_on_resnet() {
        // Fig 10 headline: Fred-D improves ResNet-152 end-to-end time.
        let m = DnnModel::resnet152();
        let base = simulate(
            &m,
            m.default_strategy,
            &FabricBackend::new(FabricConfig::BaselineMesh),
            quick_params(320, 1),
        )
        .unwrap();
        let fred = simulate(
            &m,
            m.default_strategy,
            &FabricBackend::new(FabricConfig::FredD),
            quick_params(320, 1),
        )
        .unwrap();
        let speedup = fred.speedup_over(&base);
        assert!(speedup > 1.05, "Fred-D speedup {speedup:.2} <= 1.05");
        // And the DP exposed time specifically shrinks.
        assert!(fred.exposed_for(CommType::Dp) < base.exposed_for(CommType::Dp));
    }

    #[test]
    fn transformer_pipeline_exposes_all_types() {
        let m = DnnModel::transformer_17b();
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let r = simulate(&m, m.default_strategy, &backend, quick_params(48, 4)).unwrap();
        assert!(r.exposed_for(CommType::Mp).as_secs() > 0.0);
        assert!(r.exposed_for(CommType::Dp).as_secs() > 0.0);
        assert!(r.total >= r.compute);
    }

    #[test]
    fn streaming_workload_is_streaming_bound() {
        let m = DnnModel::transformer_1t();
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let r = simulate(&m, m.default_strategy, &backend, quick_params(20, 1)).unwrap();
        let streaming = r.exposed_for(CommType::Streaming).as_secs();
        assert!(streaming > 0.0, "no streaming exposure: {r}");
        // 2 TB x 3 passes over ~1.5 TBps effective: streaming dominates
        // every other comm type.
        for t in [CommType::Mp, CommType::Pp, CommType::Dp] {
            assert!(r.exposed_for(t).as_secs() <= streaming);
        }
    }

    #[test]
    fn makespan_bounded_below_by_critical_compute() {
        let m = DnnModel::transformer_17b();
        let backend = FabricBackend::new(FabricConfig::FredD);
        let params = quick_params(48, 4);
        let placement = Placement::new(m.default_strategy, PlacementPolicy::MpPpDp);
        let schedule = build_schedule(&m, m.default_strategy, &placement, &backend, params);
        let timing = run_iteration(&schedule, &backend).unwrap();
        let w0_compute = schedule.worker_compute_secs(0);
        assert!(timing.makespan.as_secs() >= w0_compute);
        // Start/finish are consistent.
        for i in 0..schedule.tasks.len() {
            assert!(timing.finish[i] >= timing.start[i]);
            for d in &schedule.tasks[i].deps {
                assert!(timing.start[i] >= timing.finish[d.0]);
            }
        }
    }

    #[test]
    fn priorities_let_mp_cut_ahead_of_dp() {
        // Construct contention: run T-17B on the mesh where MP/DP share
        // links; MP (higher priority) exposure should stay bounded even
        // under DP pressure. This is a smoke test of the §5.4 policy.
        let m = DnnModel::transformer_17b();
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let r = simulate(
            &m,
            fred_core::placement::Strategy3D::new(2, 5, 2),
            &backend,
            quick_params(80, 2),
        )
        .unwrap();
        assert!(r.total.as_secs() > 0.0);
    }

    #[test]
    fn cyclic_schedule_stalls_with_diagnostics() {
        use crate::schedule::Task;
        use fred_sim::time::Duration as D;
        // t0 is fine; t1 and t2 wait on each other — a dependency cycle
        // the trainer must surface as a typed stall, not a panic.
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let mk = |deps: Vec<TaskId>| Task {
            deps,
            body: TaskBody::Compute {
                worker: crate::schedule::WorkerId(0),
                duration: D::from_secs(1.0),
            },
        };
        let schedule = Schedule {
            tasks: vec![mk(vec![]), mk(vec![TaskId(2)]), mk(vec![TaskId(1)])],
            worker_chains: vec![vec![TaskId(0), TaskId(1), TaskId(2)]],
            strategy: "cyclic-test".into(),
            minibatch: 1,
        };
        let err = run_iteration(&schedule, &backend).unwrap_err();
        let TrainError::Stalled {
            completed,
            total,
            pending,
        } = err
        else {
            panic!("expected Stalled, got {err:?}");
        };
        assert_eq!((completed, total), (1, 3));
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].id, TaskId(1));
        assert_eq!(pending[0].blocked_on, vec![TaskId(2)]);
        assert_eq!(pending[1].blocked_on, vec![TaskId(1)]);
    }

    #[test]
    fn tag_zero_maps_to_no_comm_task() {
        // Tag 0 is the "foreign flow" sentinel: it must never be
        // translated into a task index (the old `(tag - 1) as usize`
        // underflowed to usize::MAX here).
        assert_eq!(comm_task_of_tag(0), None);
        assert_eq!(comm_task_of_tag(1), Some(0));
        assert_eq!(comm_task_of_tag(42), Some(41));
    }

    #[test]
    fn faulted_iteration_degrades_but_completes() {
        use fred_sim::fault::FaultPlan;
        use fred_sim::time::Time;
        let m = DnnModel::transformer_17b();
        let backend = FabricBackend::new(FabricConfig::FredD);
        let base = simulate(&m, m.default_strategy, &backend, quick_params(48, 4)).unwrap();
        let topo = backend.topology();
        let faults = FaultPlan::seeded_link_failures(&topo, 0.02, Time::ZERO, 7);
        assert!(!faults.is_empty());
        let placement = Placement::new(m.default_strategy, PlacementPolicy::MpPpDp);
        let schedule = build_schedule(
            &m,
            m.default_strategy,
            &placement,
            &backend,
            quick_params(48, 4),
        );
        let timing =
            run_iteration_faulted(&schedule, &backend, &faults, Rc::new(NullSink)).unwrap();
        // Degradation can only slow the iteration down.
        assert!(timing.makespan.as_secs() >= base.total.as_secs() * 0.999);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let m = DnnModel::resnet152();
        let backend = FabricBackend::new(FabricConfig::FredD);
        let placement = Placement::new(m.default_strategy, PlacementPolicy::MpPpDp);
        let schedule = build_schedule(
            &m,
            m.default_strategy,
            &placement,
            &backend,
            quick_params(320, 1),
        );
        let plain = run_iteration(&schedule, &backend).unwrap();
        let faulted =
            run_iteration_faulted(&schedule, &backend, &FaultPlan::none(), Rc::new(NullSink))
                .unwrap();
        assert_eq!(plain.makespan, faulted.makespan);
        assert_eq!(plain.finish, faulted.finish);
    }
}

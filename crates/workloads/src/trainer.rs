//! The discrete-event trainer (the role of ASTRA-SIM's system layer,
//! §7.4).
//!
//! [`run_iteration`] executes a compiled [`Schedule`] against the
//! flow-level network simulator: compute tasks occupy their virtual
//! worker for a roofline duration; comm tasks progress phase by phase
//! through the shared network, contending with every other in-flight
//! collective under max-min fairness and MP > PP > DP priority.
//! Completion times feed the exposed-communication accounting of
//! [`TrainingReport`] (§7.4: exposed time = time the workload waits on
//! communication not overlapped with compute).

use std::collections::BTreeMap;
use std::rc::Rc;

use fred_core::placement::{Placement, PlacementPolicy, Strategy3D};
use fred_sim::events::EventQueue;
use fred_sim::fault::FaultPlan;
use fred_sim::flow::FlowSpec;
use fred_sim::netsim::FlowNetwork;
use fred_sim::time::{Duration, Time};
use fred_sim::topology::LinkId;
use fred_telemetry::event::{next_span_id, TraceEvent, Track};
use fred_telemetry::sink::{NullSink, TraceSink};

use crate::backend::FabricBackend;
use crate::error::{PendingTask, TrainError};
use crate::model::DnnModel;
use crate::report::{CommType, TrainingReport};
use crate::schedule::{build_schedule, Schedule, ScheduleParams, TaskBody, TaskId};

/// Maps an exposure type to its telemetry display track.
pub fn track_of_comm(ctype: CommType) -> Track {
    match ctype {
        CommType::Mp => Track::Mp,
        CommType::Pp => Track::Pp,
        CommType::Dp => Track::Dp,
        CommType::InputLoad | CommType::Streaming => Track::Bulk,
    }
}

/// Per-task timing from one simulated iteration.
#[derive(Debug, Clone)]
pub struct IterationTiming {
    /// Start time per task.
    pub start: Vec<Time>,
    /// Finish time per task.
    pub finish: Vec<Time>,
    /// End-to-end iteration time.
    pub makespan: Time,
}

#[derive(Debug)]
struct CommState {
    phase: usize,
    outstanding: usize,
}

/// Maps a flow-completion tag back to the comm-task index. The trainer
/// tags flows with `task index + 1`; tag 0 is reserved for untagged
/// (foreign) flows and maps to no task.
fn comm_task_of_tag(tag: u64) -> Option<usize> {
    tag.checked_sub(1).map(|v| v as usize)
}

/// Re-routes any of `flows` whose route crosses a failed link onto a
/// surviving path (fabric-aware when both endpoints are NPUs, generic
/// BFS otherwise). A no-op returning the flows untouched when the
/// network has no failed links — the zero-fault code path stays
/// bit-identical.
fn repair_flows(
    net: &FlowNetwork,
    backend: &FabricBackend,
    flows: Vec<FlowSpec>,
) -> Result<Vec<FlowSpec>, TrainError> {
    if !net.any_link_failed() {
        return Ok(flows);
    }
    let blocked = |l: LinkId| net.is_link_failed(l);
    let topo = net.topology();
    let mut out = Vec::with_capacity(flows.len());
    for f in flows {
        if !f.route.iter().any(|&l| blocked(l)) {
            out.push(f);
            continue;
        }
        let task = comm_task_of_tag(f.tag).map(TaskId);
        let src = topo.link(f.route[0]).src;
        let dst = topo.link(*f.route.last().expect("non-empty route")).dst;
        let detour = match (backend.npu_index(src), backend.npu_index(dst)) {
            (Some(a), Some(b)) => backend.npu_route_avoiding(a, b, blocked),
            _ => topo.shortest_path_avoiding(src, dst, blocked),
        }
        .ok_or(TrainError::Unroutable { task })?;
        out.push(
            FlowSpec::new(detour, f.bytes)
                .with_priority(f.priority)
                .with_tag(f.tag),
        );
    }
    Ok(out)
}

/// Executes `schedule` on a fresh simulator over `backend`'s topology.
///
/// # Errors
///
/// [`TrainError::Stalled`] if the dependency graph deadlocks,
/// [`TrainError::Route`] if a plan route is invalid.
pub fn run_iteration(
    schedule: &Schedule,
    backend: &FabricBackend,
) -> Result<IterationTiming, TrainError> {
    run_iteration_traced(schedule, backend, Rc::new(NullSink))
}

/// [`run_iteration`] with telemetry: every network event, collective
/// phase and trainer task is recorded into `sink`. Timing results are
/// bit-identical to an untraced run.
///
/// # Errors
///
/// Fails under the same conditions as [`run_iteration`].
pub fn run_iteration_traced(
    schedule: &Schedule,
    backend: &FabricBackend,
    sink: Rc<dyn TraceSink>,
) -> Result<IterationTiming, TrainError> {
    run_iteration_faulted(schedule, backend, &FaultPlan::none(), sink)
}

/// [`run_iteration_traced`] under a deterministic [`FaultPlan`]: when a
/// scheduled fault fires, the affected link loses capacity, in-flight
/// flows crossing it are evicted and re-injected over surviving routes
/// (with their already-moved bytes credited), and every later transfer
/// is re-planned around the failure at injection time. With
/// [`FaultPlan::none`] the fault machinery is never touched and the
/// result is bit-identical to [`run_iteration_traced`].
///
/// # Errors
///
/// In addition to [`run_iteration`]'s errors:
/// [`TrainError::Unroutable`] if failures cut some transfer's endpoints
/// apart, [`TrainError::UnknownCommTag`] if a completion cannot be
/// attributed to a comm task.
pub fn run_iteration_faulted(
    schedule: &Schedule,
    backend: &FabricBackend,
    faults: &FaultPlan,
    sink: Rc<dyn TraceSink>,
) -> Result<IterationTiming, TrainError> {
    let n = schedule.tasks.len();
    let mut net = FlowNetwork::with_sink(backend.topology(), sink.clone());
    let tracing = sink.enabled();
    // Open span per running task (telemetry only).
    let mut spans: Vec<Option<u64>> = vec![None; n];
    // Persistent span id per task (survives PhaseEnd) so dependency
    // edges can reference predecessors that already finished.
    let mut span_ids: Vec<u64> = vec![0; n];
    if tracing {
        sink.record(TraceEvent::IterStage {
            t: 0.0,
            label: "iteration-start".into(),
        });
    }
    let mut indegree: Vec<usize> = schedule.tasks.iter().map(|t| t.deps.len()).collect();
    let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for (i, t) in schedule.tasks.iter().enumerate() {
        for d in &t.deps {
            dependents[d.0].push(TaskId(i));
        }
    }

    let mut start = vec![Time::ZERO; n];
    let mut finish = vec![Time::ZERO; n];
    let mut done = vec![false; n];
    let mut comm: BTreeMap<usize, CommState> = BTreeMap::new();
    let mut compute_queue: EventQueue<usize> = EventQueue::new();
    let mut completed = 0usize;
    // Cursor into the (time-sorted) fault plan.
    let mut fault_cursor = 0usize;

    // Stages the next non-empty phase of comm task `i` into the shared
    // per-timestep flow buffer; returns true if the task is finished
    // instead (no phases left). All flows staged at one timestep are
    // released with a single `inject_batch` (one solver delta).
    fn advance_comm(
        schedule: &Schedule,
        staged: &mut Vec<FlowSpec>,
        comm: &mut BTreeMap<usize, CommState>,
        i: usize,
    ) -> bool {
        let TaskBody::Comm { plan, priority, .. } = &schedule.tasks[i].body else {
            unreachable!("advance_comm on a compute task")
        };
        let state = comm.get_mut(&i).expect("comm state exists");
        while state.phase < plan.phases.len() {
            let transfers = &plan.phases[state.phase].transfers;
            state.phase += 1;
            if !transfers.is_empty() {
                // The tag is the task index shifted by one: tag 0 is
                // reserved for "no owner" in the telemetry layer.
                staged.extend(transfers.iter().map(|t| {
                    FlowSpec::new(t.route.clone(), t.bytes)
                        .with_priority(*priority)
                        .with_tag(i as u64 + 1)
                }));
                state.outstanding = transfers.len();
                return false;
            }
        }
        true
    }

    // Start a task at time `t`.
    let mut ready_stack: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut finished_now: Vec<usize> = Vec::new();
    // Flows staged by comm tasks at the current timestep, injected as
    // one batch before time advances.
    let mut staged_flows: Vec<FlowSpec> = Vec::new();

    loop {
        // Start everything that became ready at the current time.
        while let Some(i) = ready_stack.pop() {
            let t = net.now();
            start[i] = t;
            if tracing {
                let (track, label, bytes, npus) = match &schedule.tasks[i].body {
                    TaskBody::Compute { worker, .. } => {
                        (Track::Compute, format!("compute w{}", worker.0), 0.0, 0)
                    }
                    TaskBody::Comm { plan, ctype, .. } => {
                        let mut srcs: Vec<usize> = plan
                            .phases
                            .iter()
                            .flat_map(|p| p.transfers.iter().map(|tr| tr.src))
                            .collect();
                        srcs.sort_unstable();
                        srcs.dedup();
                        (
                            track_of_comm(*ctype),
                            plan.label.clone(),
                            plan.total_bytes(),
                            srcs.len() as u32,
                        )
                    }
                };
                let span = next_span_id();
                spans[i] = Some(span);
                span_ids[i] = span;
                // Comm spans claim their flows through the task-index
                // correlation tag (shifted by one; see advance_comm).
                let tag = match &schedule.tasks[i].body {
                    TaskBody::Comm { .. } => i as u64 + 1,
                    TaskBody::Compute { .. } => 0,
                };
                sink.record(TraceEvent::PhaseBegin {
                    t: t.as_secs(),
                    track,
                    span,
                    label: label.into(),
                    bytes,
                    npus,
                    tag,
                });
                // The schedule's dependency edges become the trace's
                // happens-before DAG.
                for d in &schedule.tasks[i].deps {
                    let pred = span_ids[d.0];
                    if pred != 0 {
                        sink.record(TraceEvent::SpanDep {
                            t: t.as_secs(),
                            span,
                            pred,
                        });
                    }
                }
            }
            match &schedule.tasks[i].body {
                TaskBody::Compute { duration, .. } => {
                    compute_queue.schedule(t + *duration, i);
                }
                TaskBody::Comm { .. } => {
                    comm.insert(
                        i,
                        CommState {
                            phase: 0,
                            outstanding: 0,
                        },
                    );
                    if advance_comm(schedule, &mut staged_flows, &mut comm, i) {
                        finished_now.push(i);
                    }
                }
            }
        }

        // Release every flow staged by the ready tasks as one batch,
        // re-planned around failed links first when faults are active.
        if !staged_flows.is_empty() {
            let flows = repair_flows(&net, backend, std::mem::take(&mut staged_flows))?;
            net.inject_batch(flows)?;
        }

        // Settle zero-duration completions before advancing time.
        if !finished_now.is_empty() {
            for i in finished_now.drain(..) {
                if !done[i] {
                    done[i] = true;
                    finish[i] = net.now();
                    completed += 1;
                    if let Some(span) = spans[i].take() {
                        let track = match &schedule.tasks[i].body {
                            TaskBody::Compute { .. } => Track::Compute,
                            TaskBody::Comm { ctype, .. } => track_of_comm(*ctype),
                        };
                        sink.record(TraceEvent::PhaseEnd {
                            t: net.now().as_secs(),
                            track,
                            span,
                        });
                    }
                    for &dep in &dependents[i] {
                        indegree[dep.0] -= 1;
                        if indegree[dep.0] == 0 {
                            ready_stack.push(dep.0);
                        }
                    }
                }
            }
            continue;
        }

        if completed == n {
            break;
        }

        // Advance to the next event: compute finish, network event, or
        // fault horizon — whichever comes first.
        let tc = compute_queue.peek_time();
        let tn = net.next_event();
        let tf = faults.next_at(fault_cursor);
        let Some(next) = [tc, tn, tf].into_iter().flatten().min() else {
            let pending: Vec<PendingTask> = (0..n)
                .filter(|&i| !done[i])
                .map(|i| PendingTask {
                    id: TaskId(i),
                    blocked_on: schedule.tasks[i]
                        .deps
                        .iter()
                        .copied()
                        .filter(|d| !done[d.0])
                        .collect(),
                })
                .collect();
            return Err(TrainError::Stalled {
                completed,
                total: n,
                pending,
            });
        };
        net.advance_to(next);

        // Fire every fault due by now: the link loses capacity, its
        // in-flight flows are evicted and immediately re-injected over
        // surviving routes with their remaining bytes (the moved bytes
        // were already credited by the eviction).
        if !faults.is_empty() {
            let mut evicted_specs: Vec<FlowSpec> = Vec::new();
            while let Some(ev) = faults.events().get(fault_cursor) {
                if ev.at > next {
                    break;
                }
                fault_cursor += 1;
                evicted_specs.extend(ev.apply(&mut net).into_iter().map(|e| {
                    FlowSpec::new(e.route, e.remaining_bytes)
                        .with_priority(e.priority)
                        .with_tag(e.tag)
                }));
            }
            if !evicted_specs.is_empty() {
                let flows = repair_flows(&net, backend, evicted_specs)?;
                net.inject_batch(flows)?;
            }
        }

        // Network completions: progress comm tasks (the tag carries
        // the task index shifted by one; tag 0 marks foreign flows the
        // trainer never staged and are skipped).
        for c in net.drain_completed() {
            let Some(i) = comm_task_of_tag(c.tag) else {
                continue;
            };
            let Some(state) = comm.get_mut(&i) else {
                return Err(TrainError::UnknownCommTag { tag: c.tag });
            };
            state.outstanding -= 1;
            if state.outstanding == 0 && advance_comm(schedule, &mut staged_flows, &mut comm, i) {
                finished_now.push(i);
            }
        }
        if !staged_flows.is_empty() {
            let flows = repair_flows(&net, backend, std::mem::take(&mut staged_flows))?;
            net.inject_batch(flows)?;
        }
        // Compute completions at this instant.
        while compute_queue.peek_time() == Some(next) {
            let ev = compute_queue.pop().expect("peeked");
            finished_now.push(ev.event);
        }
    }

    let makespan = finish.iter().copied().max().unwrap_or(Time::ZERO);
    if tracing {
        sink.record(TraceEvent::IterStage {
            t: makespan.as_secs(),
            label: "iteration-end".into(),
        });
    }
    Ok(IterationTiming {
        start,
        finish,
        makespan,
    })
}

/// Builds the exposed-communication breakdown from a timed iteration
/// (§7.4): walking each worker's wait chain, a comm task contributes
/// the time by which its completion extends past everything the worker
/// had already waited for.
pub fn breakdown(
    schedule: &Schedule,
    timing: &IterationTiming,
    workload: &str,
    config: &str,
) -> TrainingReport {
    let workers = schedule.worker_chains.len().max(1) as f64;
    let mut exposed: BTreeMap<CommType, f64> = BTreeMap::new();
    let mut compute_total = 0.0;
    for chain in &schedule.worker_chains {
        let mut horizon = Time::ZERO;
        for &t in chain {
            match &schedule.tasks[t.0].body {
                TaskBody::Compute { duration, .. } => {
                    compute_total += duration.as_secs();
                    horizon = horizon.max(timing.finish[t.0]);
                }
                TaskBody::Comm { ctype, .. } => {
                    let f = timing.finish[t.0];
                    if f > horizon {
                        *exposed.entry(*ctype).or_insert(0.0) += (f - horizon).as_secs();
                        horizon = f;
                    }
                }
            }
        }
    }
    TrainingReport {
        workload: workload.into(),
        config: config.into(),
        strategy: schedule.strategy.clone(),
        minibatch: schedule.minibatch,
        total: timing.makespan - Time::ZERO,
        compute: Duration::from_secs(compute_total / workers),
        exposed: exposed
            .into_iter()
            .map(|(k, v)| (k, Duration::from_secs(v / workers)))
            .collect(),
    }
}

/// End-to-end convenience: place, schedule, simulate and report one
/// training iteration of `model` under `strategy` on `backend`.
///
/// The placement policy follows the paper: FRED uses the §5.3
/// MP-PP-DP policy; the mesh baseline uses the MP-favouring mapping of
/// Fig 5(a).
pub fn simulate(
    model: &DnnModel,
    strategy: Strategy3D,
    backend: &FabricBackend,
    params: ScheduleParams,
) -> Result<TrainingReport, TrainError> {
    simulate_traced(model, strategy, backend, params, Rc::new(NullSink))
}

/// [`simulate`] with telemetry recorded into `sink` (see
/// [`run_iteration_traced`]).
///
/// # Errors
///
/// Fails under the same conditions as [`run_iteration`].
pub fn simulate_traced(
    model: &DnnModel,
    strategy: Strategy3D,
    backend: &FabricBackend,
    params: ScheduleParams,
    sink: Rc<dyn TraceSink>,
) -> Result<TrainingReport, TrainError> {
    simulate_faulted(model, strategy, backend, params, &FaultPlan::none(), sink)
}

/// [`simulate_traced`] under a deterministic [`FaultPlan`] (see
/// [`run_iteration_faulted`]). With [`FaultPlan::none`] the result is
/// bit-identical to [`simulate_traced`].
///
/// # Errors
///
/// Fails under the same conditions as [`run_iteration_faulted`].
pub fn simulate_faulted(
    model: &DnnModel,
    strategy: Strategy3D,
    backend: &FabricBackend,
    params: ScheduleParams,
    faults: &FaultPlan,
    sink: Rc<dyn TraceSink>,
) -> Result<TrainingReport, TrainError> {
    let policy = if backend.config().is_fred() {
        PlacementPolicy::MpPpDp
    } else {
        PlacementPolicy::MpDpPp
    };
    let placement = Placement::new(strategy, policy);
    let schedule = build_schedule(model, strategy, &placement, backend, params);
    let timing = run_iteration_faulted(&schedule, backend, faults, sink)?;
    Ok(breakdown(
        &schedule,
        &timing,
        &model.name,
        backend.config().name(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DnnModel;
    use fred_core::params::FabricConfig;

    fn quick_params(minibatch: usize, microbatches: usize) -> ScheduleParams {
        ScheduleParams {
            minibatch,
            microbatches,
            npu_flops: 1000e12,
            stream_double_buffer: true,
        }
    }

    #[test]
    fn resnet_dp_iteration_runs_and_breaks_down() {
        let m = DnnModel::resnet152();
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let r = simulate(&m, m.default_strategy, &backend, quick_params(320, 1)).unwrap();
        assert!(r.total.as_secs() > 0.0);
        assert!(r.compute.as_secs() > 0.0);
        // Pure DP: DP must be the dominant exposed type; no MP/PP.
        assert!(r.exposed_for(CommType::Dp).as_secs() > 0.0);
        assert_eq!(r.exposed_for(CommType::Mp), Duration::ZERO);
        assert_eq!(r.exposed_for(CommType::Pp), Duration::ZERO);
        // Total >= compute (nothing can hide compute).
        assert!(r.total.as_secs() >= r.compute.as_secs() * 0.99);
    }

    #[test]
    fn fred_d_beats_baseline_on_resnet() {
        // Fig 10 headline: Fred-D improves ResNet-152 end-to-end time.
        let m = DnnModel::resnet152();
        let base = simulate(
            &m,
            m.default_strategy,
            &FabricBackend::new(FabricConfig::BaselineMesh),
            quick_params(320, 1),
        )
        .unwrap();
        let fred = simulate(
            &m,
            m.default_strategy,
            &FabricBackend::new(FabricConfig::FredD),
            quick_params(320, 1),
        )
        .unwrap();
        let speedup = fred.speedup_over(&base);
        assert!(speedup > 1.05, "Fred-D speedup {speedup:.2} <= 1.05");
        // And the DP exposed time specifically shrinks.
        assert!(fred.exposed_for(CommType::Dp) < base.exposed_for(CommType::Dp));
    }

    #[test]
    fn transformer_pipeline_exposes_all_types() {
        let m = DnnModel::transformer_17b();
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let r = simulate(&m, m.default_strategy, &backend, quick_params(48, 4)).unwrap();
        assert!(r.exposed_for(CommType::Mp).as_secs() > 0.0);
        assert!(r.exposed_for(CommType::Dp).as_secs() > 0.0);
        assert!(r.total >= r.compute);
    }

    #[test]
    fn streaming_workload_is_streaming_bound() {
        let m = DnnModel::transformer_1t();
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let r = simulate(&m, m.default_strategy, &backend, quick_params(20, 1)).unwrap();
        let streaming = r.exposed_for(CommType::Streaming).as_secs();
        assert!(streaming > 0.0, "no streaming exposure: {r}");
        // 2 TB x 3 passes over ~1.5 TBps effective: streaming dominates
        // every other comm type.
        for t in [CommType::Mp, CommType::Pp, CommType::Dp] {
            assert!(r.exposed_for(t).as_secs() <= streaming);
        }
    }

    #[test]
    fn makespan_bounded_below_by_critical_compute() {
        let m = DnnModel::transformer_17b();
        let backend = FabricBackend::new(FabricConfig::FredD);
        let params = quick_params(48, 4);
        let placement = Placement::new(m.default_strategy, PlacementPolicy::MpPpDp);
        let schedule = build_schedule(&m, m.default_strategy, &placement, &backend, params);
        let timing = run_iteration(&schedule, &backend).unwrap();
        let w0_compute = schedule.worker_compute_secs(0);
        assert!(timing.makespan.as_secs() >= w0_compute);
        // Start/finish are consistent.
        for i in 0..schedule.tasks.len() {
            assert!(timing.finish[i] >= timing.start[i]);
            for d in &schedule.tasks[i].deps {
                assert!(timing.start[i] >= timing.finish[d.0]);
            }
        }
    }

    #[test]
    fn priorities_let_mp_cut_ahead_of_dp() {
        // Construct contention: run T-17B on the mesh where MP/DP share
        // links; MP (higher priority) exposure should stay bounded even
        // under DP pressure. This is a smoke test of the §5.4 policy.
        let m = DnnModel::transformer_17b();
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let r = simulate(
            &m,
            fred_core::placement::Strategy3D::new(2, 5, 2),
            &backend,
            quick_params(80, 2),
        )
        .unwrap();
        assert!(r.total.as_secs() > 0.0);
    }

    #[test]
    fn cyclic_schedule_stalls_with_diagnostics() {
        use crate::schedule::Task;
        use fred_sim::time::Duration as D;
        // t0 is fine; t1 and t2 wait on each other — a dependency cycle
        // the trainer must surface as a typed stall, not a panic.
        let backend = FabricBackend::new(FabricConfig::BaselineMesh);
        let mk = |deps: Vec<TaskId>| Task {
            deps,
            body: TaskBody::Compute {
                worker: crate::schedule::WorkerId(0),
                duration: D::from_secs(1.0),
            },
        };
        let schedule = Schedule {
            tasks: vec![mk(vec![]), mk(vec![TaskId(2)]), mk(vec![TaskId(1)])],
            worker_chains: vec![vec![TaskId(0), TaskId(1), TaskId(2)]],
            strategy: "cyclic-test".into(),
            minibatch: 1,
        };
        let err = run_iteration(&schedule, &backend).unwrap_err();
        let TrainError::Stalled {
            completed,
            total,
            pending,
        } = err
        else {
            panic!("expected Stalled, got {err:?}");
        };
        assert_eq!((completed, total), (1, 3));
        assert_eq!(pending.len(), 2);
        assert_eq!(pending[0].id, TaskId(1));
        assert_eq!(pending[0].blocked_on, vec![TaskId(2)]);
        assert_eq!(pending[1].blocked_on, vec![TaskId(1)]);
    }

    #[test]
    fn tag_zero_maps_to_no_comm_task() {
        // Tag 0 is the "foreign flow" sentinel: it must never be
        // translated into a task index (the old `(tag - 1) as usize`
        // underflowed to usize::MAX here).
        assert_eq!(comm_task_of_tag(0), None);
        assert_eq!(comm_task_of_tag(1), Some(0));
        assert_eq!(comm_task_of_tag(42), Some(41));
    }

    #[test]
    fn faulted_iteration_degrades_but_completes() {
        use fred_sim::fault::FaultPlan;
        use fred_sim::time::Time;
        let m = DnnModel::transformer_17b();
        let backend = FabricBackend::new(FabricConfig::FredD);
        let base = simulate(&m, m.default_strategy, &backend, quick_params(48, 4)).unwrap();
        let topo = backend.topology();
        let faults = FaultPlan::seeded_link_failures(&topo, 0.02, Time::ZERO, 7);
        assert!(!faults.is_empty());
        let placement = Placement::new(m.default_strategy, PlacementPolicy::MpPpDp);
        let schedule = build_schedule(
            &m,
            m.default_strategy,
            &placement,
            &backend,
            quick_params(48, 4),
        );
        let timing =
            run_iteration_faulted(&schedule, &backend, &faults, Rc::new(NullSink)).unwrap();
        // Degradation can only slow the iteration down.
        assert!(timing.makespan.as_secs() >= base.total.as_secs() * 0.999);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let m = DnnModel::resnet152();
        let backend = FabricBackend::new(FabricConfig::FredD);
        let placement = Placement::new(m.default_strategy, PlacementPolicy::MpPpDp);
        let schedule = build_schedule(
            &m,
            m.default_strategy,
            &placement,
            &backend,
            quick_params(320, 1),
        );
        let plain = run_iteration(&schedule, &backend).unwrap();
        let faulted =
            run_iteration_faulted(&schedule, &backend, &FaultPlan::none(), Rc::new(NullSink))
                .unwrap();
        assert_eq!(plain.makespan, faulted.makespan);
        assert_eq!(plain.finish, faulted.finish);
    }
}

//! Strategy-space enumeration (§8.3, Fig 2/11 sweeps).
//!
//! The compiler searching for the best parallelization strategy needs
//! the space of candidate (MP, DP, PP) triples for a given NPU count —
//! including non-aligned strategies that leave NPUs idle (§3.2.3),
//! which FRED makes viable.

use fred_core::placement::Strategy3D;

/// All strategies whose worker count is exactly `npus` (aligned
/// strategies), ordered MP-descending.
pub fn aligned_strategies(npus: usize) -> Vec<Strategy3D> {
    let mut out = Vec::new();
    for mp in (1..=npus).rev() {
        if !npus.is_multiple_of(mp) {
            continue;
        }
        let rest = npus / mp;
        for dp in 1..=rest {
            if !rest.is_multiple_of(dp) {
                continue;
            }
            out.push(Strategy3D::new(mp, dp, rest / dp));
        }
    }
    out
}

/// Aligned strategies plus non-aligned ones using at least
/// `min_utilisation` of the NPUs (e.g. MP(5)-DP(3)-PP(1) on 20 NPUs at
/// 0.75 utilisation).
///
/// # Panics
///
/// Panics if `min_utilisation` is not in `(0, 1]`.
pub fn strategies_with_slack(npus: usize, min_utilisation: f64) -> Vec<Strategy3D> {
    assert!(
        min_utilisation > 0.0 && min_utilisation <= 1.0,
        "utilisation must be in (0, 1]"
    );
    let floor = (npus as f64 * min_utilisation).ceil() as usize;
    let mut out = Vec::new();
    for mp in 1..=npus {
        for dp in 1..=npus / mp {
            for pp in 1..=npus / (mp * dp) {
                let workers = mp * dp * pp;
                if workers >= floor && workers <= npus {
                    out.push(Strategy3D::new(mp, dp, pp));
                }
            }
        }
    }
    out.sort_by_key(|s| (usize::MAX - s.worker_count(), usize::MAX - s.mp, s.dp));
    out
}

/// Filters strategies by shape constraints typical for a model:
/// MP must divide the attention heads (approximated by `hidden`
/// divisibility), PP must not exceed the layer count.
pub fn feasible_for_model(
    strategies: &[Strategy3D],
    hidden: usize,
    layers: usize,
) -> Vec<Strategy3D> {
    strategies
        .iter()
        .copied()
        .filter(|s| s.pp <= layers && (s.mp == 1 || hidden.is_multiple_of(s.mp)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_count_for_20() {
        let all = aligned_strategies(20);
        // d(20) triples: number of ordered factorizations of 20 into 3
        // factors = 18.
        assert_eq!(all.len(), 18);
        assert!(all.contains(&Strategy3D::new(20, 1, 1)));
        assert!(all.contains(&Strategy3D::new(2, 5, 2)));
        assert!(all.contains(&Strategy3D::new(1, 20, 1)));
        assert!(all.iter().all(|s| s.worker_count() == 20));
        // MP-descending order: first entry is MP(20).
        assert_eq!(all[0], Strategy3D::new(20, 1, 1));
    }

    #[test]
    fn slack_admits_non_aligned() {
        let all = strategies_with_slack(20, 0.75);
        assert!(
            all.contains(&Strategy3D::new(5, 3, 1)),
            "the Fig 6 strategy"
        );
        assert!(all
            .iter()
            .all(|s| s.worker_count() >= 15 && s.worker_count() <= 20));
        // Full-utilisation strategies are still present.
        assert!(all.contains(&Strategy3D::new(2, 5, 2)));
        // And they come first (sorted by worker count descending).
        assert_eq!(all[0].worker_count(), 20);
    }

    #[test]
    fn model_feasibility_filters() {
        let all = aligned_strategies(20);
        // hidden=4256 = 2^5 * 7 * 19: divisible by 2 and 4, not 5.
        let feasible = feasible_for_model(&all, 4256, 78);
        assert!(feasible.contains(&Strategy3D::new(4, 5, 1)));
        assert!(!feasible.contains(&Strategy3D::new(5, 4, 1)));
        assert!(!feasible.contains(&Strategy3D::new(20, 1, 1))); // 4256 % 20 != 0
                                                                 // PP bound: layers=2 forbids PP > 2.
        let shallow = feasible_for_model(&all, 4096, 2);
        assert!(shallow.iter().all(|s| s.pp <= 2));
    }

    #[test]
    #[should_panic(expected = "utilisation")]
    fn zero_utilisation_rejected() {
        let _ = strategies_with_slack(20, 0.0);
    }
}

//! Typed trainer failures.
//!
//! The trainer used to `panic!` on a stalled schedule or a rejected
//! flow; under fault injection those conditions are *expected* outcomes
//! (a cut fabric, a dependency deadlock exposed by re-planning), so
//! they are surfaced as [`TrainError`] values the caller can inspect —
//! the fault sweep turns them into data points instead of aborts.

use std::fmt;

use fred_sim::topology::RouteError;

use crate::schedule::TaskId;

/// One unfinished task at the moment the trainer stalled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingTask {
    /// The task that never finished.
    pub id: TaskId,
    /// Its direct dependencies that were also unfinished — the edges a
    /// deadlock cycle (if any) runs through.
    pub blocked_on: Vec<TaskId>,
}

/// Why a training iteration could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The trainer ran out of pending events with tasks unfinished:
    /// a dependency deadlock in the schedule, or traffic that was
    /// silently dropped. Carries the full pending-task list so the
    /// cycle can be diagnosed without re-running.
    Stalled {
        /// Tasks that did finish.
        completed: usize,
        /// Total tasks in the schedule.
        total: usize,
        /// Every unfinished task with its unfinished dependencies.
        pending: Vec<PendingTask>,
    },
    /// A flow completion carried a correlation tag that maps to no
    /// in-flight comm task — a tagging bug in the scheduler or a
    /// foreign flow leaked into the trainer's network.
    UnknownCommTag {
        /// The offending tag (task index + 1 by the trainer's scheme).
        tag: u64,
    },
    /// The network rejected staged flows outright (invalid route).
    Route(RouteError),
    /// Link failures cut a transfer's endpoints apart: no surviving
    /// route exists, so the schedule cannot make progress even after
    /// re-planning.
    Unroutable {
        /// The comm task whose transfer became unroutable, when known.
        task: Option<TaskId>,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Stalled {
                completed,
                total,
                pending,
            } => {
                write!(
                    f,
                    "trainer stalled: {completed}/{total} tasks done but no pending events; \
                     unfinished:"
                )?;
                for p in pending.iter().take(8) {
                    write!(f, " t{}(waits:", p.id.0)?;
                    for (k, b) in p.blocked_on.iter().enumerate() {
                        write!(f, "{}t{}", if k > 0 { "," } else { "" }, b.0)?;
                    }
                    write!(f, ")")?;
                }
                if pending.len() > 8 {
                    write!(f, " … {} more", pending.len() - 8)?;
                }
                Ok(())
            }
            TrainError::UnknownCommTag { tag } => {
                write!(f, "flow completion with unknown comm tag {tag}")
            }
            TrainError::Route(e) => write!(f, "network rejected staged flows: {e}"),
            TrainError::Unroutable { task: Some(t) } => write!(
                f,
                "comm task t{} has no surviving route around failed links",
                t.0
            ),
            TrainError::Unroutable { task: None } => {
                write!(f, "a transfer has no surviving route around failed links")
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Route(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RouteError> for TrainError {
    fn from(e: RouteError) -> TrainError {
        TrainError::Route(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_sim::topology::LinkId;

    #[test]
    fn display_summarises_pending_tasks() {
        let e = TrainError::Stalled {
            completed: 1,
            total: 3,
            pending: vec![
                PendingTask {
                    id: TaskId(1),
                    blocked_on: vec![TaskId(2)],
                },
                PendingTask {
                    id: TaskId(2),
                    blocked_on: vec![TaskId(1)],
                },
            ],
        };
        let s = e.to_string();
        assert!(s.contains("1/3"), "{s}");
        assert!(s.contains("t1(waits:t2)"), "{s}");
        assert!(s.contains("t2(waits:t1)"), "{s}");
    }

    #[test]
    fn route_errors_convert_and_chain() {
        let e: TrainError = RouteError::FailedLink(LinkId(4)).into();
        assert!(e.to_string().contains("failed link l4"));
        assert!(std::error::Error::source(&e).is_some());
    }
}

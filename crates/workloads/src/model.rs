//! The workload model zoo (Table 6, §7.3).
//!
//! Each model is described by the quantities that drive distributed
//! training cost: parameter count, layer count, hidden/sequence sizes,
//! per-sample FLOPs, and the execution mode it uses on the wafer
//! (weight-stationary when the model fits in the 20 × 80 GB of HBM,
//! weight-streaming otherwise, §3.1).
//!
//! Transformer-1T follows the Switch-Transformer lineage the paper
//! cites: 1 T parameters but sparsely activated, so its per-token
//! compute corresponds to a fraction of the parameters while the full
//! 2 TB of weights must still be streamed — which is exactly why weight
//! streaming sits on its critical path (§8.2).

use fred_core::placement::Strategy3D;

/// Gradient/parameter precision (§7.3: FP16).
pub const BYTES_PER_PARAM: f64 = 2.0;

/// Execution mode on the wafer (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionMode {
    /// The whole model lives in on-wafer HBM; only inputs are loaded
    /// per iteration (§3.1.1).
    WeightStationary,
    /// Weights are streamed from external memory every pass; gradients
    /// are streamed (and reduced) back out (§3.1.2).
    WeightStreaming,
}

/// Broad architecture class (drives which collectives MP sharding
/// incurs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelClass {
    /// Convolutional network (ResNet): pure-DP in the paper.
    Cnn,
    /// Transformer language model: Megatron-style MP (two All-Reduces
    /// per layer per pass, §7.3).
    TransformerLm,
}

/// A DNN training workload.
#[derive(Debug, Clone, PartialEq)]
pub struct DnnModel {
    /// Display name.
    pub name: String,
    /// Architecture class.
    pub class: ModelClass,
    /// Total parameters.
    pub params: f64,
    /// Stackable layers (transformer blocks / conv stages).
    pub layers: usize,
    /// Hidden dimension (transformers) or equivalent feature width.
    pub hidden: usize,
    /// Tokens per sample (transformers) or 1 for CNNs.
    pub seq: usize,
    /// Fraction of parameters active per token (1.0 dense; < 1 for
    /// MoE/Switch models).
    pub active_param_fraction: f64,
    /// Input bytes per training sample.
    pub sample_bytes: f64,
    /// Execution mode from Table 6.
    pub execution: ExecutionMode,
    /// The parallelization strategy evaluated in Table 6 / Fig 10.
    pub default_strategy: Strategy3D,
    /// Fraction of peak FLOPs the compute roofline sustains.
    pub compute_efficiency: f64,
    /// Calibration multiplier on effective compute speed, fitted so the
    /// *baseline's* Fig 10 compute/communication breakdown proportions
    /// match the paper's (the authors' ASTRA-SIM compute backend and its
    /// constants are unpublished; every communication quantity in this
    /// reproduction is mechanistic, only this compute magnitude is
    /// fitted — see EXPERIMENTS.md).
    pub compute_calibration: f64,
}

impl DnnModel {
    /// ResNet-152: 60 M parameters, ImageNet-scale samples, pure DP,
    /// weight stationary (Table 6).
    pub fn resnet152() -> DnnModel {
        DnnModel {
            name: "ResNet-152".into(),
            class: ModelClass::Cnn,
            params: 60.2e6,
            layers: 152,
            hidden: 2048,
            seq: 1,
            active_param_fraction: 1.0,
            sample_bytes: 224.0 * 224.0 * 3.0 * BYTES_PER_PARAM,
            execution: ExecutionMode::WeightStationary,
            default_strategy: Strategy3D::new(1, 20, 1),
            compute_efficiency: 0.30,
            compute_calibration: 10.0,
        }
    }

    /// Transformer-17B (Turing-NLG class): 78 layers, hidden 4256,
    /// weight stationary, MP(3)-DP(3)-PP(2) (Table 6).
    pub fn transformer_17b() -> DnnModel {
        DnnModel {
            name: "Transformer-17B".into(),
            class: ModelClass::TransformerLm,
            params: 17.2e9,
            layers: 78,
            hidden: 4256,
            seq: 1024,
            active_param_fraction: 1.0,
            sample_bytes: 1024.0 * BYTES_PER_PARAM,
            execution: ExecutionMode::WeightStationary,
            default_strategy: Strategy3D::new(3, 3, 2),
            compute_efficiency: 0.45,
            compute_calibration: 15.0,
        }
    }

    /// GPT-3: 175 B parameters, 96 layers, hidden 12288, weight
    /// streaming with MP(2)-DP(5)-PP(2) (Table 6).
    pub fn gpt3() -> DnnModel {
        DnnModel {
            name: "GPT-3".into(),
            class: ModelClass::TransformerLm,
            params: 175e9,
            layers: 96,
            hidden: 12288,
            seq: 2048,
            active_param_fraction: 1.0,
            sample_bytes: 2048.0 * BYTES_PER_PARAM,
            execution: ExecutionMode::WeightStreaming,
            default_strategy: Strategy3D::new(2, 5, 2),
            compute_efficiency: 0.45,
            compute_calibration: 23.0,
        }
    }

    /// Transformer-1T (Switch-Transformer class): 1 T parameters,
    /// sparsely activated (1/64 of experts per token), weight streaming,
    /// pure DP(20) (Table 6).
    pub fn transformer_1t() -> DnnModel {
        DnnModel {
            name: "Transformer-1T".into(),
            class: ModelClass::TransformerLm,
            params: 1.0e12,
            layers: 120,
            hidden: 25600,
            seq: 2048,
            active_param_fraction: 1.0 / 64.0,
            sample_bytes: 2048.0 * BYTES_PER_PARAM,
            execution: ExecutionMode::WeightStreaming,
            default_strategy: Strategy3D::new(1, 20, 1),
            compute_efficiency: 0.45,
            compute_calibration: 3.5,
        }
    }

    /// The four Table 6 workloads.
    pub fn all_paper_workloads() -> Vec<DnnModel> {
        vec![
            DnnModel::resnet152(),
            DnnModel::transformer_17b(),
            DnnModel::gpt3(),
            DnnModel::transformer_1t(),
        ]
    }

    /// Model weights in bytes.
    pub fn model_bytes(&self) -> f64 {
        self.params * BYTES_PER_PARAM
    }

    /// Gradient bytes (same precision as weights, §7.3).
    pub fn grad_bytes(&self) -> f64 {
        self.model_bytes()
    }

    /// Forward-pass FLOPs for one sample through the whole model.
    /// Transformers: `2 · active_params · seq`; CNNs: the standard
    /// per-sample figure (~11.6 GFLOPs for ResNet-152 at 224²).
    pub fn flops_per_sample_fwd(&self) -> f64 {
        match self.class {
            ModelClass::Cnn => 11.6e9,
            ModelClass::TransformerLm => {
                2.0 * self.params * self.active_param_fraction * self.seq as f64
            }
        }
    }

    /// Backward-pass FLOPs for one sample (2× forward).
    pub fn flops_per_sample_bwd(&self) -> f64 {
        2.0 * self.flops_per_sample_fwd()
    }

    /// Bytes of one layer's activations for `samples` samples — the
    /// payload of each Megatron MP All-Reduce and of PP stage
    /// transfers.
    pub fn activation_bytes(&self, samples: f64) -> f64 {
        match self.class {
            ModelClass::Cnn => samples * 56.0 * 56.0 * 256.0 * BYTES_PER_PARAM,
            ModelClass::TransformerLm => {
                samples * self.seq as f64 * self.hidden as f64 * BYTES_PER_PARAM
            }
        }
    }

    /// Number of MP All-Reduces per layer per pass under Megatron
    /// sharding (§7.3: two per transformer stack per pass).
    pub fn mp_all_reduces_per_layer(&self) -> usize {
        match self.class {
            ModelClass::Cnn => 0,
            ModelClass::TransformerLm => 2,
        }
    }

    /// Whether this model fits on-wafer (20 NPUs × 80 GB), which is
    /// what forces Table 6's execution-mode split. Training state is
    /// ~16 bytes/parameter: FP16 weights + FP16 gradients + FP32 Adam
    /// moments and master copy (ZeRO-2 shards these across DP but the
    /// wafer-wide total is unchanged).
    pub fn fits_on_wafer(&self, hbm_total_bytes: f64) -> bool {
        16.0 * self.params < hbm_total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_strategies() {
        assert_eq!(
            DnnModel::resnet152().default_strategy,
            Strategy3D::new(1, 20, 1)
        );
        assert_eq!(
            DnnModel::transformer_17b().default_strategy,
            Strategy3D::new(3, 3, 2)
        );
        assert_eq!(DnnModel::gpt3().default_strategy, Strategy3D::new(2, 5, 2));
        assert_eq!(
            DnnModel::transformer_1t().default_strategy,
            Strategy3D::new(1, 20, 1)
        );
    }

    #[test]
    fn execution_mode_follows_wafer_capacity() {
        // 20 NPUs x 80 GB = 1.6 TB of HBM.
        let hbm = 20.0 * 80e9;
        for m in DnnModel::all_paper_workloads() {
            let fits = m.fits_on_wafer(hbm);
            match m.execution {
                ExecutionMode::WeightStationary => assert!(fits, "{} should fit", m.name),
                ExecutionMode::WeightStreaming => assert!(!fits, "{} should not fit", m.name),
            }
        }
    }

    #[test]
    fn model_sizes_match_names() {
        assert!((DnnModel::gpt3().model_bytes() - 350e9).abs() < 1e9);
        assert!((DnnModel::transformer_1t().model_bytes() - 2e12).abs() < 1e10);
        assert!(DnnModel::resnet152().model_bytes() < 150e6);
    }

    #[test]
    fn transformer_flops_scale_with_active_params() {
        let dense = DnnModel::gpt3();
        let sparse = DnnModel::transformer_1t();
        // Sparse 1T per-token compute is less than dense GPT-3's despite
        // 5.7x the parameters.
        let per_token = |m: &DnnModel| m.flops_per_sample_fwd() / m.seq as f64;
        assert!(per_token(&sparse) < per_token(&dense));
        // Backward is 2x forward.
        assert_eq!(
            dense.flops_per_sample_bwd(),
            2.0 * dense.flops_per_sample_fwd()
        );
    }

    #[test]
    fn mp_collective_sizes() {
        let m = DnnModel::transformer_17b();
        // 16 samples: 16 * 1024 * 4256 * 2 B ≈ 139 MB per AR.
        let ar = m.activation_bytes(16.0);
        assert!((ar - 16.0 * 1024.0 * 4256.0 * 2.0).abs() < 1.0);
        assert_eq!(m.mp_all_reduces_per_layer(), 2);
        assert_eq!(DnnModel::resnet152().mp_all_reduces_per_layer(), 0);
    }

    #[test]
    fn resnet_is_compute_heavy_per_byte() {
        // ResNet's small model + large compute/param ratio is why
        // pure-DP weight-stationary works for it.
        let r = DnnModel::resnet152();
        assert!(r.flops_per_sample_fwd() / r.model_bytes() > 50.0);
    }
}

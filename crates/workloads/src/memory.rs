//! Per-NPU memory footprints (§3.1).
//!
//! Whether a model can run weight-stationary — and which strategies are
//! even admissible — is a memory question: weights are replicated
//! across DP but sharded by MP×PP; ZeRO-2 (§7.3) shards gradients and
//! optimizer state across DP; activations scale with the per-replica
//! minibatch and shrink with MP and PP. This module computes the
//! breakdown so strategy sweeps can filter infeasible points, the
//! "discarded strategies" the paper's intro worries about.

use fred_core::placement::Strategy3D;

use crate::model::{DnnModel, ModelClass, BYTES_PER_PARAM};

/// FP32 Adam moments + master weights per parameter (ZeRO-2 shards
/// this across DP).
pub const OPTIMIZER_BYTES_PER_PARAM: f64 = 12.0;

/// Per-NPU memory breakdown, bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Footprint {
    /// FP16 weights (replicated across DP, sharded by MP×PP).
    pub weights: f64,
    /// FP16 gradients (ZeRO-2: sharded across DP too).
    pub gradients: f64,
    /// FP32 optimizer state (ZeRO-2: sharded across DP).
    pub optimizer: f64,
    /// Stored activations for the backward pass (layer-boundary
    /// checkpoints; per-layer interiors are recomputed).
    pub activations: f64,
}

impl Footprint {
    /// Total bytes.
    pub fn total(&self) -> f64 {
        self.weights + self.gradients + self.optimizer + self.activations
    }
}

/// Computes the per-NPU footprint of `model` under `strategy` with
/// `minibatch` total samples per iteration.
///
/// # Panics
///
/// Panics if the strategy has a zero dimension (prevented by
/// [`Strategy3D::new`]).
pub fn footprint(model: &DnnModel, strategy: Strategy3D, minibatch: usize) -> Footprint {
    let shard = (strategy.mp * strategy.pp) as f64;
    let dp = strategy.dp as f64;
    let weights = model.params * BYTES_PER_PARAM / shard;
    let gradients = weights / dp; // ZeRO-2
    let optimizer = model.params * OPTIMIZER_BYTES_PER_PARAM / shard / dp;
    // Boundary activations: one per layer hosted on this NPU, for the
    // replica's share of the minibatch.
    let samples = minibatch as f64 / dp;
    let layers_here = model.layers as f64 / strategy.pp as f64;
    let act_per_layer = match model.class {
        ModelClass::Cnn => model.activation_bytes(samples),
        ModelClass::TransformerLm => model.activation_bytes(samples) / strategy.mp as f64,
    };
    Footprint {
        weights,
        gradients,
        optimizer,
        activations: act_per_layer * layers_here,
    }
}

/// Whether the strategy fits weight-stationary in `hbm_bytes` per NPU.
pub fn fits_weight_stationary(
    model: &DnnModel,
    strategy: Strategy3D,
    minibatch: usize,
    hbm_bytes: f64,
) -> bool {
    footprint(model, strategy, minibatch).total() <= hbm_bytes
}

/// Filters a strategy list to those that fit weight-stationary — the
/// admissible set the compiler may search (§3.1.1).
pub fn feasible_strategies(
    model: &DnnModel,
    strategies: &[Strategy3D],
    minibatch_per_dp: usize,
    hbm_bytes: f64,
) -> Vec<Strategy3D> {
    strategies
        .iter()
        .copied()
        .filter(|&s| fits_weight_stationary(model, s, s.dp * minibatch_per_dp, hbm_bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const HBM: f64 = 80e9;

    #[test]
    fn resnet_fits_everywhere() {
        let m = DnnModel::resnet152();
        let fp = footprint(&m, Strategy3D::new(1, 20, 1), 320);
        assert!(fp.total() < HBM, "{fp:?}");
        // Weights dominate nothing; activations do for CNNs.
        assert!(fp.activations > fp.weights);
    }

    #[test]
    fn transformer_17b_fits_with_sharding() {
        let m = DnnModel::transformer_17b();
        // Table 6 strategy MP(3)-DP(3)-PP(2): weights 17.2e9*2/6 = 5.7 GB.
        let s = m.default_strategy;
        let fp = footprint(&m, s, 48);
        assert!(fp.total() < HBM, "{fp:?} exceeds HBM");
        assert!((fp.weights - 17.2e9 * 2.0 / 6.0).abs() < 1e6);
        // ZeRO-2 shards optimizer: 17.2e9*12/6/3 = 11.5 GB.
        assert!((fp.optimizer - 17.2e9 * 12.0 / 18.0).abs() < 1e6);
    }

    #[test]
    fn transformer_17b_pure_dp_is_marginal() {
        // Without MP/PP sharding, weights (34.4 GB) + ZeRO-2 shards +
        // activations for 40 samples/replica land just under the 80 GB
        // budget (~74 GB) — and double the per-replica minibatch blows
        // it. This is the §3.1 cliff that makes sharded strategies
        // attractive for 17B-class models.
        let m = DnnModel::transformer_17b();
        let fp = footprint(&m, Strategy3D::new(1, 20, 1), 800);
        assert!(
            fp.total() > 0.85 * HBM && fp.total() < HBM,
            "{:.1} GB",
            fp.total() / 1e9
        );
        let fp2 = footprint(&m, Strategy3D::new(1, 20, 1), 1600);
        assert!(
            fp2.total() > HBM,
            "{:.1} GB should not fit",
            fp2.total() / 1e9
        );
    }

    #[test]
    fn gpt3_never_fits_on_wafer() {
        let m = DnnModel::gpt3();
        // Even fully sharded across all 20 NPUs (MP(2)-PP(10) style),
        // weights are 350/20 = 17.5 GB but the optimizer and
        // activations blow the budget at any DP >= 1... check the
        // Table 6 strategy specifically.
        let fp = footprint(&m, m.default_strategy, 80);
        assert!(
            fp.total() > HBM,
            "GPT-3 should need weight streaming: {fp:?}"
        );
    }

    #[test]
    fn feasibility_filter_matches_direct_check() {
        let m = DnnModel::transformer_17b();
        let all = crate::strategies::aligned_strategies(20);
        let feasible = feasible_strategies(&m, &all, 16, HBM);
        assert!(!feasible.is_empty());
        for s in &all {
            let direct = fits_weight_stationary(&m, *s, s.dp * 16, HBM);
            assert_eq!(direct, feasible.contains(s), "{s}");
        }
        // Sharded strategies are feasible (the Table 6 strategy itself
        // uses 18 of 20 NPUs, so check an aligned analogue).
        assert!(feasible.contains(&Strategy3D::new(2, 5, 2)));
    }

    #[test]
    fn sharding_monotonically_reduces_weights() {
        let m = DnnModel::transformer_17b();
        let w = |mp, pp| footprint(&m, Strategy3D::new(mp, 1, pp), 16).weights;
        assert!(w(2, 1) < w(1, 1));
        assert!(w(2, 2) < w(2, 1));
        assert_eq!(w(4, 1), w(2, 2));
    }
}

//! Network backends: the Table 5 configurations behind one interface.
//!
//! [`FabricBackend`] compiles every communication operation the trainer
//! issues into a [`CommPlan`], using:
//!
//! * the **baseline mesh**: snake-ring / hierarchical-2D endpoint
//!   collectives with X-Y routes, Fig 4 streaming trees;
//! * **Fred-A/C**: endpoint collectives on the tree (hierarchical
//!   2-level ring over the L1 partition, §7.2), binomial trees for
//!   multicast, pipelined streaming over endpoint trees;
//! * **Fred-B/D**: in-network collectives — each touched link carries
//!   exactly the collective payload once (§2.2).
//!
//! In-network operations compile to a *single-phase* plan whose
//! transfers are the per-link flows (pipelined through the switches);
//! endpoint operations keep their serial phase structure.

use fred_collectives::hierarchical;
use fred_collectives::plan::{CommPlan, Phase, Transfer};
use fred_collectives::ring::{self, Direction};
use fred_collectives::tree;
use fred_core::fabric::WaferFabric;
use fred_core::params::{FabricConfig, PhysicalParams};
use fred_mesh::topology::MeshFabric;
use fred_mesh::{rings, streaming};
use fred_sim::flow::{FlowSpec, Priority};
use fred_sim::topology::{LinkId, NodeId, Route, Topology};

/// Label offset for I/O-controller endpoints in [`Transfer`] records.
pub const IO_LABEL_BASE: usize = 10_000;
/// Label for the external-memory endpoint in [`Transfer`] records.
pub const EXT_LABEL: usize = 20_000;

/// A Table 5 fabric configuration ready to compile communication
/// operations.
///
/// ```
/// use fred_core::params::FabricConfig;
/// use fred_workloads::backend::FabricBackend;
///
/// let fred_d = FabricBackend::new(FabricConfig::FredD);
/// // In-network All-Reduce: one phase, D bytes per touched link.
/// let plan = fred_d.all_reduce(&[0, 1, 2, 3], 1e9);
/// assert_eq!(plan.phase_count(), 1);
///
/// let mesh = FabricBackend::new(FabricConfig::BaselineMesh);
/// // Endpoint ring on the mesh: 2(n-1) serial phases.
/// let plan = mesh.all_reduce(&[0, 1, 2, 3], 1e9);
/// assert_eq!(plan.phase_count(), 6);
/// ```
#[derive(Debug, Clone)]
pub enum FabricBackend {
    /// The 5×4 baseline mesh.
    Mesh(MeshFabric),
    /// A FRED tree (A/B/C/D per its `FabricConfig`).
    Fred(WaferFabric),
}

impl FabricBackend {
    /// Builds the backend for `config` with the paper's physical
    /// parameters.
    pub fn new(config: FabricConfig) -> FabricBackend {
        let params = PhysicalParams::paper();
        match config {
            FabricConfig::BaselineMesh => FabricBackend::Mesh(MeshFabric::paper_baseline()),
            c => FabricBackend::Fred(WaferFabric::new(c, &params)),
        }
    }

    /// The configuration this backend implements.
    pub fn config(&self) -> FabricConfig {
        match self {
            FabricBackend::Mesh(_) => FabricConfig::BaselineMesh,
            FabricBackend::Fred(f) => f.config(),
        }
    }

    /// Number of NPUs.
    pub fn npu_count(&self) -> usize {
        match self {
            FabricBackend::Mesh(m) => m.npu_count(),
            FabricBackend::Fred(f) => f.npu_count(),
        }
    }

    /// Number of I/O channels.
    pub fn io_count(&self) -> usize {
        match self {
            FabricBackend::Mesh(m) => m.io_count(),
            FabricBackend::Fred(f) => f.io_count(),
        }
    }

    /// A clone of the topology for the simulator.
    pub fn topology(&self) -> Topology {
        match self {
            FabricBackend::Mesh(m) => m.clone_topology(),
            FabricBackend::Fred(f) => f.clone_topology(),
        }
    }

    /// NPU-to-NPU route.
    pub fn npu_route(&self, src: usize, dst: usize) -> Route {
        match self {
            FabricBackend::Mesh(m) => m.xy_route(src, dst),
            FabricBackend::Fred(f) => f.npu_route(src, dst),
        }
    }

    /// The NPU index owning topology node `node`, if it is an NPU.
    pub fn npu_index(&self, node: NodeId) -> Option<usize> {
        match self {
            FabricBackend::Mesh(m) => m.npu_index(node),
            FabricBackend::Fred(f) => f.npu_index(node),
        }
    }

    /// NPU-to-NPU route avoiding `blocked` links: the fabric's standard
    /// route when it survives, otherwise its fault-detour policy (YX
    /// then BFS on the mesh, neighbour-trunk BFS on the tree). `None`
    /// if the failures disconnect the pair.
    pub fn npu_route_avoiding(
        &self,
        src: usize,
        dst: usize,
        blocked: impl Fn(LinkId) -> bool,
    ) -> Option<Route> {
        match self {
            FabricBackend::Mesh(m) => m.xy_route_avoiding(src, dst, blocked),
            FabricBackend::Fred(f) => f.npu_route_avoiding(src, dst, blocked),
        }
    }

    /// Maps a *placement slot* (consecutive logical position produced by
    /// the device-placement policy) to a physical NPU id. On the mesh,
    /// consecutive slots follow the boustrophedon (snake) walk so that
    /// slot `i` and slot `i+1` are always physically adjacent — the
    /// 2D-aware layout real mesh placements use (§3.2.2). On the FRED
    /// tree the identity suffices: consecutive NPUs share an L1 switch.
    pub fn physical_npu(&self, slot: usize) -> usize {
        match self {
            FabricBackend::Mesh(m) => {
                let cols = m.cols();
                let y = slot / cols;
                let x = slot % cols;
                let x = if y.is_multiple_of(2) { x } else { cols - 1 - x };
                y * cols + x
            }
            FabricBackend::Fred(_) => slot,
        }
    }

    /// Maps a whole group of placement slots to physical NPU ids.
    pub fn physical_group(&self, slots: &[usize]) -> Vec<usize> {
        slots.iter().map(|&s| self.physical_npu(s)).collect()
    }

    fn in_network(&self) -> bool {
        self.config().in_network_collectives()
    }

    /// All-Reduce of `bytes` among `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty.
    pub fn all_reduce(&self, group: &[usize], bytes: f64) -> CommPlan {
        assert!(!group.is_empty());
        if group.len() == 1 {
            return CommPlan::new("allreduce-noop");
        }
        match self {
            FabricBackend::Mesh(m) => rings::wafer_all_reduce(m, group, bytes),
            FabricBackend::Fred(f) => {
                if self.in_network() {
                    flows_to_plan(
                        "innet-allreduce",
                        f.in_network_all_reduce(group, bytes, Priority::Bulk, 0),
                    )
                } else {
                    let clusters = f.partition_by_l1(group);
                    hierarchical::all_reduce(
                        &clusters,
                        bytes,
                        Direction::Unidirectional,
                        &|a, b| f.npu_route(a, b),
                    )
                }
            }
        }
    }

    /// Reduce-Scatter of `bytes` among `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty.
    pub fn reduce_scatter(&self, group: &[usize], bytes: f64) -> CommPlan {
        assert!(!group.is_empty());
        if group.len() == 1 {
            return CommPlan::new("rs-noop");
        }
        match self {
            FabricBackend::Mesh(m) => rings::reduce_scatter(m, group, bytes),
            FabricBackend::Fred(f) => {
                if self.in_network() {
                    flows_to_plan(
                        "innet-reduce-scatter",
                        f.in_network_reduce_scatter(group, bytes, Priority::Bulk, 0),
                    )
                } else {
                    let clusters = f.partition_by_l1(group);
                    hierarchical::reduce_scatter(
                        &clusters,
                        bytes,
                        Direction::Unidirectional,
                        &|a, b| f.npu_route(a, b),
                    )
                }
            }
        }
    }

    /// All-Gather of `bytes` among `group`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty.
    pub fn all_gather(&self, group: &[usize], bytes: f64) -> CommPlan {
        assert!(!group.is_empty());
        if group.len() == 1 {
            return CommPlan::new("ag-noop");
        }
        match self {
            FabricBackend::Mesh(m) => rings::all_gather(m, group, bytes),
            FabricBackend::Fred(f) => {
                if self.in_network() {
                    flows_to_plan(
                        "innet-allgather",
                        f.in_network_all_gather(group, bytes, Priority::Bulk, 0),
                    )
                } else {
                    let clusters = f.partition_by_l1(group);
                    hierarchical::all_gather(
                        &clusters,
                        bytes,
                        Direction::Unidirectional,
                        &|a, b| f.npu_route(a, b),
                    )
                }
            }
        }
    }

    /// All-to-All of `bytes` among `group` (no reduction, so always
    /// endpoint-based).
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty.
    pub fn all_to_all(&self, group: &[usize], bytes: f64) -> CommPlan {
        assert!(!group.is_empty());
        match self {
            FabricBackend::Mesh(m) => rings::all_to_all(m, group, bytes),
            FabricBackend::Fred(f) => ring::all_to_all(group, bytes, &|a, b| f.npu_route(a, b)),
        }
    }

    /// Point-to-point transfer (PP stage boundary).
    pub fn p2p(&self, src: usize, dst: usize, bytes: f64) -> CommPlan {
        match self {
            FabricBackend::Mesh(m) => ring::point_to_point(src, dst, bytes, m),
            FabricBackend::Fred(f) => {
                ring::point_to_point(src, dst, bytes, &|a, b| f.npu_route(a, b))
            }
        }
    }

    /// Multicast of `bytes` from NPU `src` to `dsts` (PP activation
    /// forwarding when the next stage has MP peers, §8.1 footnote 8).
    ///
    /// # Panics
    ///
    /// Panics if `dsts` is empty.
    pub fn multicast(&self, src: usize, dsts: &[usize], bytes: f64) -> CommPlan {
        assert!(!dsts.is_empty());
        match self {
            FabricBackend::Mesh(m) => tree::multicast(src, dsts, bytes, m),
            FabricBackend::Fred(f) => {
                if self.in_network() {
                    flows_to_plan(
                        "innet-multicast",
                        f.in_network_multicast_from_npu(src, dsts, bytes, Priority::Bulk, 0),
                    )
                } else {
                    tree::multicast(src, dsts, bytes, &|a, b| f.npu_route(a, b))
                }
            }
        }
    }

    /// PP stage-boundary transfer from one MP group to the next (§8.1
    /// footnote 8): every member of an MP group holds the same output
    /// activations, so each destination member is fed by a distinct
    /// source member in parallel (one hop at line rate). When the
    /// groups' sizes differ, sources are reused round-robin.
    ///
    /// # Panics
    ///
    /// Panics if either group is empty.
    pub fn stage_transfer(&self, src_group: &[usize], dst_group: &[usize], bytes: f64) -> CommPlan {
        assert!(!src_group.is_empty() && !dst_group.is_empty());
        let mut phase = Phase::default();
        for (i, &dst) in dst_group.iter().enumerate() {
            let src = src_group[i % src_group.len()];
            if src != dst {
                phase.transfers.push(Transfer {
                    src,
                    dst,
                    bytes,
                    route: self.npu_route(src, dst),
                });
            }
        }
        CommPlan {
            label: "pp-stage-transfer".into(),
            phases: vec![phase],
        }
    }

    /// Streams `total_bytes` of weights from external memory onto the
    /// wafer, broadcast to all NPUs: every I/O channel carries an equal
    /// shard concurrently (pipelined; single phase).
    pub fn stream_in(&self, total_bytes: f64) -> CommPlan {
        let per_channel = total_bytes / self.io_count() as f64;
        match self {
            FabricBackend::Mesh(m) => {
                let mut phase = Phase::default();
                for io in 0..m.io_count() {
                    // The first flow is the external-memory ingress; the
                    // rest are broadcast-tree edges (label src/dst 0 so
                    // traffic accounting can separate I/O from fabric).
                    for (i, f) in
                        streaming::streaming_in_flows(m, io, per_channel, Priority::Bulk, io as u64)
                            .into_iter()
                            .enumerate()
                    {
                        let src = if i == 0 { EXT_LABEL } else { 0 };
                        phase.transfers.push(flow_to_transfer(f, src, 0));
                    }
                }
                CommPlan {
                    label: "mesh-stream-in".into(),
                    phases: vec![phase],
                }
            }
            FabricBackend::Fred(f) => {
                let group: Vec<usize> = (0..f.npu_count()).collect();
                let mut phase = Phase::default();
                if self.in_network() {
                    for io in 0..f.io_count() {
                        for (i, fl) in f
                            .in_network_multicast_from_io(
                                &group,
                                io,
                                per_channel,
                                Priority::Bulk,
                                io as u64,
                            )
                            .into_iter()
                            .enumerate()
                        {
                            let src = if i == 0 { EXT_LABEL } else { 0 };
                            phase.transfers.push(flow_to_transfer(fl, src, 0));
                        }
                    }
                } else {
                    // Endpoint streaming: each channel feeds one NPU under
                    // its L1; a pipelined *hierarchical* tree spreads it on
                    // (one representative per L1 cluster, then L1-local
                    // fan-out) so each L1–L2 trunk carries the stream once
                    // per cluster rather than once per receiver.
                    for io in 0..f.io_count() {
                        let entry = io % f.npu_count();
                        phase.transfers.push(Transfer {
                            src: EXT_LABEL,
                            dst: entry,
                            bytes: per_channel,
                            route: f.ext_to_npu_route(io, entry),
                        });
                        for cluster in f.partition_by_l1(&group) {
                            // Rotate the representative per channel so no
                            // single NPU's link serves every stream.
                            let rep = if cluster.contains(&entry) {
                                entry
                            } else {
                                cluster[io % cluster.len()]
                            };
                            if rep != entry {
                                phase.transfers.push(Transfer {
                                    src: entry,
                                    dst: rep,
                                    bytes: per_channel,
                                    route: f.npu_route(entry, rep),
                                });
                            }
                            for &n in &cluster {
                                if n != rep {
                                    phase.transfers.push(Transfer {
                                        src: rep,
                                        dst: n,
                                        bytes: per_channel,
                                        route: f.npu_route(rep, n),
                                    });
                                }
                            }
                        }
                    }
                }
                CommPlan {
                    label: "fred-stream-in".into(),
                    phases: vec![phase],
                }
            }
        }
    }

    /// Streams `total_bytes` of weight gradients off the wafer,
    /// reduced across all NPUs on the way out (the reverse of Fig 4).
    pub fn stream_out(&self, total_bytes: f64) -> CommPlan {
        let per_channel = total_bytes / self.io_count() as f64;
        match self {
            FabricBackend::Mesh(m) => {
                let mut phase = Phase::default();
                for io in 0..m.io_count() {
                    // The last flow is the external-memory egress.
                    let flows = streaming::streaming_out_flows(
                        m,
                        io,
                        per_channel,
                        Priority::Bulk,
                        io as u64,
                    );
                    let last = flows.len() - 1;
                    for (i, f) in flows.into_iter().enumerate() {
                        let dst = if i == last { EXT_LABEL } else { 0 };
                        phase.transfers.push(flow_to_transfer(f, 0, dst));
                    }
                }
                CommPlan {
                    label: "mesh-stream-out".into(),
                    phases: vec![phase],
                }
            }
            FabricBackend::Fred(f) => {
                let group: Vec<usize> = (0..f.npu_count()).collect();
                let mut phase = Phase::default();
                if self.in_network() {
                    for io in 0..f.io_count() {
                        let flows = f.in_network_reduce_to_io(
                            &group,
                            io,
                            per_channel,
                            Priority::Bulk,
                            io as u64,
                        );
                        let last = flows.len() - 1;
                        for (i, fl) in flows.into_iter().enumerate() {
                            let dst = if i == last { EXT_LABEL } else { 0 };
                            phase.transfers.push(flow_to_transfer(fl, 0, dst));
                        }
                    }
                } else {
                    // Mirror of stream_in: L1-local reduction to one
                    // representative per cluster, representatives to the
                    // exit NPU, exit to external memory.
                    for io in 0..f.io_count() {
                        let exit = io % f.npu_count();
                        for cluster in f.partition_by_l1(&group) {
                            let rep = if cluster.contains(&exit) {
                                exit
                            } else {
                                cluster[io % cluster.len()]
                            };
                            for &n in &cluster {
                                if n != rep {
                                    phase.transfers.push(Transfer {
                                        src: n,
                                        dst: rep,
                                        bytes: per_channel,
                                        route: f.npu_route(n, rep),
                                    });
                                }
                            }
                            if rep != exit {
                                phase.transfers.push(Transfer {
                                    src: rep,
                                    dst: exit,
                                    bytes: per_channel,
                                    route: f.npu_route(rep, exit),
                                });
                            }
                        }
                        phase.transfers.push(Transfer {
                            src: exit,
                            dst: EXT_LABEL,
                            bytes: per_channel,
                            route: f.npu_to_ext_route(exit, io),
                        });
                    }
                }
                CommPlan {
                    label: "fred-stream-out".into(),
                    phases: vec![phase],
                }
            }
        }
    }

    /// Loads `total_bytes` of input samples: each channel delivers an
    /// equal shard to NPUs round-robin (scatter — inputs differ per
    /// NPU, so no broadcast).
    pub fn input_load(&self, total_bytes: f64) -> CommPlan {
        let per_channel = total_bytes / self.io_count() as f64;
        let mut phase = Phase::default();
        for io in 0..self.io_count() {
            let npu = io % self.npu_count();
            let route = match self {
                FabricBackend::Mesh(m) => m.ext_to_npu_route(io, npu),
                FabricBackend::Fred(f) => f.ext_to_npu_route(io, npu),
            };
            phase.transfers.push(Transfer {
                src: EXT_LABEL,
                dst: npu,
                bytes: per_channel,
                route,
            });
        }
        CommPlan {
            label: "input-load".into(),
            phases: vec![phase],
        }
    }
}

fn flow_to_transfer(f: FlowSpec, src: usize, dst: usize) -> Transfer {
    Transfer {
        src,
        dst,
        bytes: f.bytes,
        route: f.route,
    }
}

fn flows_to_plan(label: &str, flows: Vec<FlowSpec>) -> CommPlan {
    let mut phase = Phase::default();
    for f in flows {
        phase.transfers.push(flow_to_transfer(f, 0, 0));
    }
    CommPlan {
        label: label.into(),
        phases: vec![phase],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_collectives::plan::execute_standalone;

    fn backends() -> Vec<FabricBackend> {
        FabricConfig::ALL
            .iter()
            .map(|&c| FabricBackend::new(c))
            .collect()
    }

    #[test]
    fn all_backends_build_and_expose_shape() {
        for b in backends() {
            assert_eq!(b.npu_count(), 20);
            assert_eq!(b.io_count(), 18);
            assert!(b.topology().node_count() > 20);
        }
    }

    #[test]
    fn all_collectives_have_valid_routes() {
        let group: Vec<usize> = (0..20).collect();
        let sub: Vec<usize> = vec![0, 4, 8, 12, 16];
        for b in backends() {
            let topo = b.topology();
            for plan in [
                b.all_reduce(&group, 1e6),
                b.all_reduce(&sub, 1e6),
                b.reduce_scatter(&group, 1e6),
                b.all_gather(&sub, 1e6),
                b.all_to_all(&sub, 1e6),
                b.p2p(0, 19, 1e6),
                b.multicast(0, &[5, 10, 15], 1e6),
                b.stream_in(1e9),
                b.stream_out(1e9),
                b.input_load(1e6),
            ] {
                for phase in &plan.phases {
                    for t in &phase.transfers {
                        topo.validate_route(&t.route)
                            .unwrap_or_else(|e| panic!("{} / {}: {e}", b.config(), plan.label));
                    }
                }
            }
        }
    }

    /// §8.1 Fig 9 left: wafer-wide All-Reduce effective-bandwidth
    /// ordering across configurations: Fred-D ≥ Fred-C > Fred-B >
    /// Fred-A, with the baseline between Fred-A and Fred-C.
    #[test]
    fn fig9_wafer_allreduce_ordering() {
        let group: Vec<usize> = (0..20).collect();
        let d = 10e9;
        let mut t = std::collections::HashMap::new();
        for b in backends() {
            let plan = b.all_reduce(&group, d);
            let (dur, _) = execute_standalone(b.topology(), &plan, d).unwrap();
            t.insert(b.config(), dur.as_secs());
        }
        use FabricConfig::*;
        assert!(
            t[&FredD] < t[&FredB],
            "D {:?} vs B {:?}",
            t[&FredD],
            t[&FredB]
        );
        assert!(t[&FredC] < t[&FredA], "C vs A");
        assert!(
            t[&FredD] < t[&BaselineMesh] / 1.5,
            "D must beat baseline clearly"
        );
        assert!(t[&FredB] < t[&FredA], "in-network helps at equal bisection");
        // Fred-D's effective NPU bandwidth ~3 TBps with D bytes traffic:
        // duration ~ D/3e12.
        assert!(
            (t[&FredD] - d / 3e12).abs() / (d / 3e12) < 0.1,
            "FredD {}",
            t[&FredD]
        );
    }

    /// §8.1 Fig 9 right: the DP phase of MP(2)-DP(5)-PP(2). Fred-A is
    /// *worse* than the baseline (375 GBps vs 750 GBps effective), the
    /// crossover the paper uses to motivate Fred-C/D.
    #[test]
    fn fig9_dp_phase_fred_a_loses_to_baseline() {
        use fred_core::placement::{Placement, PlacementPolicy, Strategy3D};
        let pl = Placement::new(Strategy3D::new(2, 5, 2), PlacementPolicy::MpPpDp);
        let d = 10e9;
        let time_for = |cfg: FabricConfig| {
            let b = FabricBackend::new(cfg);
            // All 4 concurrent DP All-Reduces (one per (mp, pp)).
            let plans: Vec<CommPlan> = pl
                .all_dp_groups()
                .into_iter()
                .map(|g| b.all_reduce(&g, d))
                .collect();
            let merged = fred_collectives::hierarchical::merge_concurrent("dp", plans);
            let (dur, _) = execute_standalone(b.topology(), &merged, d).unwrap();
            dur.as_secs()
        };
        let baseline = time_for(FabricConfig::BaselineMesh);
        let fred_a = time_for(FabricConfig::FredA);
        let fred_c = time_for(FabricConfig::FredC);
        let fred_d = time_for(FabricConfig::FredD);
        assert!(
            fred_a > baseline,
            "Fred-A {fred_a} should lose to baseline {baseline}"
        );
        assert!(
            fred_c < baseline,
            "Fred-C {fred_c} should beat baseline {baseline}"
        );
        assert!(
            fred_d < fred_c * 1.01,
            "Fred-D {fred_d} at least matches Fred-C {fred_c}"
        );
    }

    #[test]
    fn stream_in_faster_on_fred_than_mesh() {
        // §8.2: the mesh streams at 0.65x line rate; FRED at full rate.
        let bytes = 18.0 * 128e9; // 1 s at full line rate
        let mesh = FabricBackend::new(FabricConfig::BaselineMesh);
        let fred = FabricBackend::new(FabricConfig::FredD);
        let (tm, _) = execute_standalone(mesh.topology(), &mesh.stream_in(bytes), bytes).unwrap();
        let (tf, _) = execute_standalone(fred.topology(), &fred.stream_in(bytes), bytes).unwrap();
        assert!((tf.as_secs() - 1.0).abs() < 0.05, "fred stream {tf}");
        let ratio = tf.as_secs() / tm.as_secs();
        assert!((ratio - 0.65).abs() < 0.05, "line-rate fraction {ratio}");
    }

    #[test]
    fn singleton_groups_compile_to_noops() {
        for b in backends() {
            assert_eq!(b.all_reduce(&[3], 1e9).phase_count(), 0);
            assert_eq!(b.reduce_scatter(&[3], 1e9).phase_count(), 0);
            assert_eq!(b.all_gather(&[3], 1e9).phase_count(), 0);
        }
    }
}

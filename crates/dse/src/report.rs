//! The canonical `BENCH_dse.json` metric rows for a sweep.
//!
//! Emitted here (rather than inline in the bench binary) so the
//! determinism property tests compare *exactly* what the report
//! contains: the bin and the tests call the same function.

use crate::pareto::ParetoFront;
use crate::runner::{PointOutcome, PointRow};

/// `status` metric values.
pub const STATUS_OK: f64 = 0.0;
/// Excluded by the feasibility gate.
pub const STATUS_INFEASIBLE: f64 = 1.0;
/// Panicked or returned a typed error.
pub const STATUS_ERROR: f64 = 2.0;

/// Flattens a sweep into the stable metric keys `bench-diff`
/// compares: per-point rows (`dse/p<i>/…`) followed by sweep
/// aggregates (`dse/…`). Deterministic in the rows — same rows, same
/// key-value list.
pub fn bench_metrics(rows: &[PointRow], front: &ParetoFront) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for row in rows {
        let p = format!("dse/p{}", row.point.index);
        match &row.outcome {
            PointOutcome::Metrics(m) => {
                out.push((format!("{p}/status"), STATUS_OK));
                out.push((format!("{p}/norm_makespan_secs"), m.norm_makespan_secs));
                out.push((format!("{p}/area_mm2"), m.area_mm2));
                out.push((format!("{p}/power_w"), m.power_w));
                out.push((format!("{p}/tco_dollars"), m.tco_dollars));
                out.push((format!("{p}/mean_stretch"), m.mean_stretch));
            }
            PointOutcome::Infeasible { hub_gb_required } => {
                out.push((format!("{p}/status"), STATUS_INFEASIBLE));
                out.push((format!("{p}/hub_gb_required"), *hub_gb_required));
            }
            PointOutcome::Error(_) => {
                out.push((format!("{p}/status"), STATUS_ERROR));
            }
        }
    }
    out.push(("dse/points".into(), rows.len() as f64));
    let ok = rows
        .iter()
        .filter(|r| matches!(r.outcome, PointOutcome::Metrics(_)))
        .count();
    out.push(("dse/ok".into(), ok as f64));
    out.push(("dse/infeasible".into(), front.infeasible as f64));
    out.push(("dse/errors".into(), front.errors as f64));
    out.push(("dse/front_size".into(), front.front.len() as f64));
    out.push(("dse/dominated".into(), front.dominated as f64));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::pareto_front;
    use crate::runner::{run_sweep, RunOpts};
    use crate::spec::{SweepSpec, Workload};

    #[test]
    fn metrics_cover_every_row_and_balance_the_counts() {
        let mut spec = SweepSpec::smoke();
        spec.jobs = 3;
        spec.workload = vec![Workload::Rn152];
        spec.random_points = 0;
        let rows = run_sweep(&spec, &RunOpts::default()).unwrap().rows;
        let front = pareto_front(&rows);
        let metrics = bench_metrics(&rows, &front);
        let get = |k: &str| {
            metrics
                .iter()
                .find(|(key, _)| key == k)
                .unwrap_or_else(|| panic!("missing key {k}"))
                .1
        };
        assert_eq!(get("dse/points"), rows.len() as f64);
        assert_eq!(
            get("dse/ok") + get("dse/infeasible") + get("dse/errors"),
            rows.len() as f64
        );
        assert_eq!(
            get("dse/front_size") + get("dse/dominated"),
            get("dse/ok"),
            "every simulated point is on the front or dominated"
        );
        for row in &rows {
            assert!(metrics
                .iter()
                .any(|(k, _)| *k == format!("dse/p{}/status", row.point.index)));
        }
    }
}

//! The chunked, panic-isolated, checkpointable sweep runner.
//!
//! Points are evaluated in chunks of [`SweepSpec::chunk`]. Within a
//! chunk, `std::thread::scope` workers claim points through an atomic
//! counter and each evaluation runs under `catch_unwind`: a crashing
//! point becomes a typed [`PointOutcome::Error`] row and the sweep
//! continues — one adversarial configuration never kills the other
//! 199. After every chunk joins, rows are appended *in enumeration
//! order* and, when a checkpoint path is set, the completed prefix is
//! written as a versioned [`SimState`] via `fred_core::codec`. A
//! killed sweep resumes from the last completed chunk and the resumed
//! row list is bit-identical to an uninterrupted run — per-point
//! randomness is pre-derived during enumeration
//! ([`SweepSpec::enumerate`]), so neither thread count nor resume
//! history can reach it.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fred_cluster::arrivals::poisson_arrivals;
use fred_cluster::{run_cluster, ClusterConfig};
use fred_core::codec::{SnapshotError, Value};
use fred_core::params::FabricConfig;
use fred_core::snapshot::{arr_of, f64_of, field, u64_of, usize_of, v_f64, v_u64, SimState};
use fred_sim::fault::{FaultEvent, FaultKind, FaultPlan};
use fred_sim::rng::Rng64;
use fred_sim::time::Time;
use fred_telemetry::event::TraceEvent;
use fred_telemetry::prof;
use fred_telemetry::sink::TraceSink;
use fred_workloads::backend::FabricBackend;

use crate::cost::{design_cost, hub_gb_required, normalized_makespan, tco_dollars};
use crate::spec::{SweepPoint, SweepSpec, Workload};

/// Measured + modeled results of one successfully simulated point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointMetrics {
    /// Measured cluster makespan on the paper fabric, seconds.
    pub makespan_secs: f64,
    /// Weak-scaling-normalized makespan for the point's array,
    /// seconds — the Pareto performance axis.
    pub norm_makespan_secs: f64,
    /// Mean per-job makespan stretch.
    pub mean_stretch: f64,
    /// 99th-percentile per-job stretch.
    pub p99_stretch: f64,
    /// Jain's fairness index over per-job speed.
    pub fairness: f64,
    /// NPU-slot utilization.
    pub utilization: f64,
    /// Modeled silicon area, mm² — Pareto axis.
    pub area_mm2: f64,
    /// Modeled power draw, W — Pareto axis.
    pub power_w: f64,
    /// Modeled dollars to finish the normalized run — Pareto axis.
    pub tco_dollars: f64,
}

/// A point evaluation that did not produce metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct PointError {
    /// Panic payload or typed simulation error, as text.
    pub message: String,
}

/// What happened at one design point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// Simulated successfully.
    Metrics(PointMetrics),
    /// Excluded before simulation: the external-memory hub cannot
    /// hold the workload's optimizer spill.
    Infeasible {
        /// Hub capacity the workload would need, GB per NPU.
        hub_gb_required: f64,
    },
    /// The evaluation panicked or the cluster returned a typed error;
    /// the sweep continued without it.
    Error(PointError),
}

/// One row of the sweep result: the point and its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRow {
    /// The design point evaluated.
    pub point: SweepPoint,
    /// Its outcome.
    pub outcome: PointOutcome,
}

/// Runner options. `Default` is a serial, checkpoint-free run.
#[derive(Default)]
pub struct RunOpts {
    /// Worker threads; `0` reads `FRED_THREADS` (defaulting to 1).
    pub threads: usize,
    /// Checkpoint file written after every completed chunk.
    pub checkpoint: Option<PathBuf>,
    /// Resume from `checkpoint` if it exists (hard error if it was
    /// written by a different spec).
    pub resume: bool,
    /// Stop (successfully) after this many chunks — the test hook
    /// that simulates a killed sweep.
    pub stop_after_chunks: Option<usize>,
    /// Force the point with this index to panic — the test hook for
    /// panic isolation.
    pub panic_at: Option<usize>,
    /// Progress sink: a `dse/completed_points` sample is recorded
    /// after every chunk (coordinator thread only — sinks are not
    /// `Send`).
    pub sink: Option<Rc<dyn TraceSink>>,
}

/// The result of [`run_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// One row per evaluated point, in enumeration order. Shorter
    /// than the spec's point count only when `stop_after_chunks`
    /// interrupted the run.
    pub rows: Vec<PointRow>,
    /// Rows loaded from the checkpoint instead of evaluated.
    pub resumed_rows: usize,
    /// Chunks evaluated in this invocation.
    pub chunks_run: usize,
}

/// Evaluates one design point (no panic isolation — the runner wraps
/// this in `catch_unwind`).
///
/// The point's fabric knobs are encoded as a [`FaultPlan`] attached
/// to the first-arriving job, so they take effect the moment the
/// cluster starts running: `fault_fraction` becomes a survivable
/// seeded link-failure set, and `bw_ratio < 1` becomes a
/// [`FaultKind::LinkDegrade`] on every *surviving* link (degrading a
/// killed link would resurrect it — the failure set is excluded).
pub fn evaluate_point(spec: &SweepSpec, point: &SweepPoint) -> PointRow {
    let _scope = prof::scope("dse.point");
    let templates = point.workload.templates();
    let required = hub_gb_required(&templates);
    if required > point.hub_gb {
        return PointRow {
            point: point.clone(),
            outcome: PointOutcome::Infeasible {
                hub_gb_required: required,
            },
        };
    }
    let mut prng = Rng64::from_state(point.rng_state);
    let arrival_seed = prng.split().state();
    let fault_seed = prng.split().state();
    let mut jobs = poisson_arrivals(
        &templates,
        spec.arrival_rate,
        spec.jobs,
        point.tenant_mix,
        arrival_seed,
    );
    let cfg = ClusterConfig::new(FabricConfig::FredD);
    let topo = FabricBackend::new(cfg.fabric).topology();
    let mut events: Vec<FaultEvent> = Vec::new();
    if point.fault_fraction > 0.0 {
        let failures =
            FaultPlan::seeded_link_failures(&topo, point.fault_fraction, Time::ZERO, fault_seed);
        events.extend(failures.events().iter().cloned());
    }
    if point.bw_ratio < 1.0 {
        let failed: HashSet<usize> = events.iter().map(|e| e.link.0).collect();
        for (link, _) in topo.links() {
            if !failed.contains(&link.0) {
                events.push(FaultEvent {
                    at: Time::ZERO,
                    link,
                    kind: FaultKind::LinkDegrade(point.bw_ratio),
                });
            }
        }
    }
    if !events.is_empty() {
        // Job faults are job-relative offsets from first start; the
        // first-arriving job starts first, so a zero-offset plan on it
        // reshapes the fabric before any traffic flows.
        jobs[0].faults = FaultPlan::new(events);
    }
    let outcome = match run_cluster(&cfg, jobs) {
        Ok(report) => {
            let makespan = report.makespan.as_secs();
            let norm = normalized_makespan(makespan, point.npus());
            let cost = design_cost(point);
            PointOutcome::Metrics(PointMetrics {
                makespan_secs: makespan,
                norm_makespan_secs: norm,
                mean_stretch: report.mean_stretch(),
                p99_stretch: report.stretch(0.99),
                fairness: report.jain_fairness(),
                utilization: report.utilization(),
                area_mm2: cost.area_mm2,
                power_w: cost.power_w,
                tco_dollars: tco_dollars(&cost, norm),
            })
        }
        Err(e) => PointOutcome::Error(PointError {
            message: format!("cluster error: {e:?}"),
        }),
    };
    PointRow {
        point: point.clone(),
        outcome,
    }
}

/// Runs the sweep: chunked work-queue execution with per-point panic
/// isolation, optional mid-sweep checkpointing and resume. See the
/// [module docs](self) for the execution model and determinism
/// argument.
///
/// # Errors
///
/// Only checkpoint I/O and resume-validation errors are returned;
/// per-point failures become [`PointOutcome::Error`] rows.
pub fn run_sweep(spec: &SweepSpec, opts: &RunOpts) -> Result<SweepOutcome, SnapshotError> {
    let points = spec.enumerate();
    let mut rows: Vec<PointRow> = Vec::new();
    if opts.resume {
        if let Some(path) = &opts.checkpoint {
            if path.exists() {
                rows = load_checkpoint(spec, path)?;
                if rows.len() > points.len() {
                    return Err(SnapshotError::Mismatch(format!(
                        "checkpoint has {} rows but the spec enumerates {} points",
                        rows.len(),
                        points.len()
                    )));
                }
            }
        }
    }
    let resumed_rows = rows.len();
    let threads = resolve_threads(opts.threads);
    // Hoisted out of the worker closures: `opts` itself holds the
    // (non-`Sync`) coordinator sink.
    let panic_at = opts.panic_at;
    let mut chunks_run = 0usize;
    for chunk in points[resumed_rows..].chunks(spec.chunk) {
        if opts.stop_after_chunks == Some(chunks_run) {
            break;
        }
        let slots: Vec<Mutex<Option<PointRow>>> = chunk.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = threads.min(chunk.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= chunk.len() {
                            break;
                        }
                        let point = &chunk[i];
                        let row = catch_unwind(AssertUnwindSafe(|| {
                            if panic_at == Some(point.index) {
                                panic!("injected panic at point {}", point.index);
                            }
                            evaluate_point(spec, point)
                        }))
                        .unwrap_or_else(|payload| PointRow {
                            point: point.clone(),
                            outcome: PointOutcome::Error(PointError {
                                message: panic_message(payload.as_ref()),
                            }),
                        });
                        *slots[i]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(row);
                    }
                    prof::flush_thread();
                });
            }
        });
        for slot in slots {
            let row = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every claimed slot is filled at the join barrier");
            rows.push(row);
        }
        chunks_run += 1;
        if let Some(path) = &opts.checkpoint {
            write_checkpoint(spec, &rows, path)?;
        }
        if let Some(sink) = &opts.sink {
            sink.record(TraceEvent::Sample {
                t: rows.len() as f64,
                key: "dse/completed_points".into(),
                value: rows.len() as f64 / points.len() as f64,
            });
        }
        prof::record_value("dse.chunk_points", chunk.len() as f64);
    }
    Ok(SweepOutcome {
        rows,
        resumed_rows,
        chunks_run,
    })
}

/// `0` → `FRED_THREADS` (default 1), clamped to at least 1. Mirrors
/// the sharded simulator's convention so `--threads`/`FRED_THREADS`
/// mean the same thing everywhere.
fn resolve_threads(threads: usize) -> usize {
    let threads = if threads == 0 {
        std::env::var("FRED_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(1)
    } else {
        threads
    };
    threads.max(1)
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Checkpoint layout version (bump on incompatible row changes).
const CHECKPOINT_VERSION: u64 = 1;

/// Writes the completed row prefix as a binary [`SimState`].
pub fn write_checkpoint(
    spec: &SweepSpec,
    rows: &[PointRow],
    path: &Path,
) -> Result<(), SnapshotError> {
    let mut sim = SimState::new();
    sim.insert(
        "dse",
        Value::Obj(vec![
            ("version".into(), v_u64(CHECKPOINT_VERSION)),
            ("fingerprint".into(), v_u64(spec.fingerprint())),
            (
                "rows".into(),
                Value::Arr(rows.iter().map(row_to_value).collect()),
            ),
        ]),
    );
    sim.write_binary(path)
}

/// Reads a checkpoint back, validating the layout version and the
/// spec fingerprint.
pub fn load_checkpoint(spec: &SweepSpec, path: &Path) -> Result<Vec<PointRow>, SnapshotError> {
    let sim = SimState::read_binary(path)?;
    let dse = sim.section("dse")?;
    let version = u64_of(field(dse, "version", "dse")?, "dse.version")?;
    if version != CHECKPOINT_VERSION {
        return Err(SnapshotError::Mismatch(format!(
            "dse checkpoint version {version} (this build reads {CHECKPOINT_VERSION})"
        )));
    }
    let fp = u64_of(field(dse, "fingerprint", "dse")?, "dse.fingerprint")?;
    if fp != spec.fingerprint() {
        return Err(SnapshotError::Mismatch(
            "checkpoint was written by a different sweep spec".into(),
        ));
    }
    arr_of(field(dse, "rows", "dse")?, "dse.rows")?
        .iter()
        .map(row_from_value)
        .collect()
}

fn row_to_value(row: &PointRow) -> Value {
    let p = &row.point;
    let mut fields = vec![
        ("index".into(), v_u64(p.index as u64)),
        ("cols".into(), v_u64(p.array.0 as u64)),
        ("rows".into(), v_u64(p.array.1 as u64)),
        ("bw_ratio".into(), v_f64(p.bw_ratio)),
        ("hub_gb".into(), v_f64(p.hub_gb)),
        ("workload".into(), v_u64(p.workload.tag())),
        ("fault_fraction".into(), v_f64(p.fault_fraction)),
        (
            "mix".into(),
            Value::Arr(p.tenant_mix.iter().map(|&x| v_f64(x)).collect()),
        ),
        ("rng_state".into(), v_u64(p.rng_state)),
    ];
    match &row.outcome {
        PointOutcome::Metrics(m) => {
            fields.push(("outcome".into(), Value::Str("ok".into())));
            fields.push((
                "metrics".into(),
                Value::Obj(vec![
                    ("makespan_secs".into(), v_f64(m.makespan_secs)),
                    ("norm_makespan_secs".into(), v_f64(m.norm_makespan_secs)),
                    ("mean_stretch".into(), v_f64(m.mean_stretch)),
                    ("p99_stretch".into(), v_f64(m.p99_stretch)),
                    ("fairness".into(), v_f64(m.fairness)),
                    ("utilization".into(), v_f64(m.utilization)),
                    ("area_mm2".into(), v_f64(m.area_mm2)),
                    ("power_w".into(), v_f64(m.power_w)),
                    ("tco_dollars".into(), v_f64(m.tco_dollars)),
                ]),
            ));
        }
        PointOutcome::Infeasible { hub_gb_required } => {
            fields.push(("outcome".into(), Value::Str("infeasible".into())));
            fields.push(("hub_gb_required".into(), v_f64(*hub_gb_required)));
        }
        PointOutcome::Error(e) => {
            fields.push(("outcome".into(), Value::Str("error".into())));
            fields.push(("message".into(), Value::Str(e.message.clone())));
        }
    }
    Value::Obj(fields)
}

fn str_of<'a>(v: &'a Value, ctx: &str) -> Result<&'a str, SnapshotError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(SnapshotError::Mismatch(format!(
            "{ctx}: expected string, found {other:?}"
        ))),
    }
}

fn row_from_value(v: &Value) -> Result<PointRow, SnapshotError> {
    let ctx = "dse.row";
    let mix_vals = arr_of(field(v, "mix", ctx)?, "dse.row.mix")?;
    if mix_vals.len() != 3 {
        return Err(SnapshotError::Mismatch(
            "dse.row.mix: expected 3 fractions".into(),
        ));
    }
    let mut tenant_mix = [0.0; 3];
    for (i, m) in mix_vals.iter().enumerate() {
        tenant_mix[i] = f64_of(m, "dse.row.mix")?;
    }
    let tag = u64_of(field(v, "workload", ctx)?, "dse.row.workload")?;
    let workload = Workload::from_tag(tag)
        .ok_or_else(|| SnapshotError::Mismatch(format!("dse.row.workload: unknown tag {tag}")))?;
    let point = SweepPoint {
        index: usize_of(field(v, "index", ctx)?, "dse.row.index")?,
        array: (
            usize_of(field(v, "cols", ctx)?, "dse.row.cols")?,
            usize_of(field(v, "rows", ctx)?, "dse.row.rows")?,
        ),
        bw_ratio: f64_of(field(v, "bw_ratio", ctx)?, "dse.row.bw_ratio")?,
        hub_gb: f64_of(field(v, "hub_gb", ctx)?, "dse.row.hub_gb")?,
        workload,
        fault_fraction: f64_of(field(v, "fault_fraction", ctx)?, "dse.row.fault_fraction")?,
        tenant_mix,
        rng_state: u64_of(field(v, "rng_state", ctx)?, "dse.row.rng_state")?,
    };
    let outcome = match str_of(field(v, "outcome", ctx)?, "dse.row.outcome")? {
        "ok" => {
            let m = field(v, "metrics", ctx)?;
            let g = |key: &str| f64_of(field(m, key, "dse.row.metrics")?, key);
            PointOutcome::Metrics(PointMetrics {
                makespan_secs: g("makespan_secs")?,
                norm_makespan_secs: g("norm_makespan_secs")?,
                mean_stretch: g("mean_stretch")?,
                p99_stretch: g("p99_stretch")?,
                fairness: g("fairness")?,
                utilization: g("utilization")?,
                area_mm2: g("area_mm2")?,
                power_w: g("power_w")?,
                tco_dollars: g("tco_dollars")?,
            })
        }
        "infeasible" => PointOutcome::Infeasible {
            hub_gb_required: f64_of(field(v, "hub_gb_required", ctx)?, "dse.row.hub_gb_required")?,
        },
        "error" => PointOutcome::Error(PointError {
            message: str_of(field(v, "message", ctx)?, "dse.row.message")?.to_string(),
        }),
        other => {
            return Err(SnapshotError::Mismatch(format!(
                "dse.row.outcome: unknown variant `{other}`"
            )))
        }
    };
    Ok(PointRow { point, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        // 4 grid points + 1 random, rn152-only (fast, always feasible),
        // chunk of 2 so checkpoints land mid-sweep.
        SweepSpec {
            name: "tiny".into(),
            seed: 7,
            jobs: 3,
            arrival_rate: 20.0,
            chunk: 2,
            array_dims: vec![(5, 4), (4, 4)],
            bw_ratio: vec![1.0, 0.5],
            hub_gb: vec![64.0],
            workload: vec![Workload::Rn152],
            fault_fraction: vec![0.0],
            tenant_mix: vec![[0.2, 0.6, 0.2]],
            random_points: 1,
        }
    }

    #[test]
    fn rows_roundtrip_through_the_codec_bit_identically() {
        let spec = tiny_spec();
        let rows = run_sweep(&spec, &RunOpts::default()).unwrap().rows;
        assert_eq!(rows.len(), 5);
        let dir = std::env::temp_dir().join("fred_dse_roundtrip_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        write_checkpoint(&spec, &rows, &path).unwrap();
        let back = load_checkpoint(&spec, &path).unwrap();
        assert_eq!(back, rows, "codec roundtrip must be exact");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn degraded_bandwidth_slows_the_cluster_down() {
        let spec = tiny_spec();
        let points = spec.enumerate();
        // Points 0 and 1 differ only in bw_ratio (1.0 vs 0.5) — same
        // array, same workload, same rng stream shape.
        let full = evaluate_point(&spec, &points[0]);
        let half = evaluate_point(&spec, &points[1]);
        let (PointOutcome::Metrics(f), PointOutcome::Metrics(h)) = (&full.outcome, &half.outcome)
        else {
            panic!("both points must simulate: {full:?} {half:?}");
        };
        assert!(
            h.makespan_secs > f.makespan_secs,
            "half bandwidth must not be faster: {} vs {}",
            h.makespan_secs,
            f.makespan_secs
        );
        assert!(h.power_w < f.power_w, "thinner links draw less power");
    }

    #[test]
    fn infeasible_hub_points_are_gated_not_simulated() {
        let mut spec = tiny_spec();
        spec.workload = vec![Workload::T17b];
        spec.hub_gb = vec![32.0];
        let points = spec.enumerate();
        let row = evaluate_point(&spec, &points[0]);
        match row.outcome {
            PointOutcome::Infeasible { hub_gb_required } => {
                assert!(hub_gb_required > 32.0);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn injected_panic_becomes_a_typed_error_row() {
        let spec = tiny_spec();
        let opts = RunOpts {
            panic_at: Some(2),
            ..RunOpts::default()
        };
        let out = run_sweep(&spec, &opts).unwrap();
        assert_eq!(out.rows.len(), 5, "the sweep must not abort");
        match &out.rows[2].outcome {
            PointOutcome::Error(e) => {
                assert!(e.message.contains("injected panic at point 2"), "{e:?}");
            }
            other => panic!("expected error row, got {other:?}"),
        }
        assert!(out
            .rows
            .iter()
            .enumerate()
            .all(|(i, r)| i == 2 || matches!(r.outcome, PointOutcome::Metrics(_))));
    }

    #[test]
    fn resume_from_mid_sweep_checkpoint_is_bit_identical() {
        let spec = tiny_spec();
        let baseline = run_sweep(&spec, &RunOpts::default()).unwrap().rows;

        let dir = std::env::temp_dir().join("fred_dse_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.bin");
        std::fs::remove_file(&path).ok();

        // "Kill" the sweep after one chunk (2 of 5 points)…
        let killed = run_sweep(
            &spec,
            &RunOpts {
                checkpoint: Some(path.clone()),
                stop_after_chunks: Some(1),
                ..RunOpts::default()
            },
        )
        .unwrap();
        assert_eq!(killed.rows.len(), 2);
        assert_eq!(killed.chunks_run, 1);

        // …then resume to completion.
        let resumed = run_sweep(
            &spec,
            &RunOpts {
                checkpoint: Some(path.clone()),
                resume: true,
                ..RunOpts::default()
            },
        )
        .unwrap();
        assert_eq!(resumed.resumed_rows, 2);
        assert_eq!(
            resumed.rows, baseline,
            "resumed sweep must be bit-identical to the uninterrupted run"
        );

        // A different spec must refuse the checkpoint.
        let mut other = spec.clone();
        other.seed ^= 0xFF;
        let err = run_sweep(
            &other,
            &RunOpts {
                checkpoint: Some(path.clone()),
                resume: true,
                ..RunOpts::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn thread_count_does_not_change_the_rows() {
        let spec = tiny_spec();
        let serial = run_sweep(
            &spec,
            &RunOpts {
                threads: 1,
                ..RunOpts::default()
            },
        )
        .unwrap();
        let parallel = run_sweep(
            &spec,
            &RunOpts {
                threads: 4,
                ..RunOpts::default()
            },
        )
        .unwrap();
        assert_eq!(serial.rows, parallel.rows);
    }
}

//! Pareto-front extraction over the four capacity-planning
//! objectives: normalized makespan, silicon area, power, and TCO —
//! all minimized.
//!
//! Only rows that actually simulated ([`PointOutcome::Metrics`])
//! compete; infeasible and errored rows are counted but excluded. A
//! point is on the front iff no other candidate is at least as good
//! on every objective and strictly better on one. Exact duplicates of
//! a front member stay on the front (non-strict dominance), so
//! symmetric designs are all reported.

use crate::runner::{PointMetrics, PointOutcome, PointRow};

/// The four minimized objectives of one candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Weak-scaling-normalized makespan, seconds.
    pub norm_makespan_secs: f64,
    /// Silicon area, mm².
    pub area_mm2: f64,
    /// Power draw, W.
    pub power_w: f64,
    /// Dollars to finish the normalized run.
    pub tco_dollars: f64,
}

impl Objectives {
    /// Extracts the objective vector from a row's metrics.
    pub fn of(m: &PointMetrics) -> Objectives {
        Objectives {
            norm_makespan_secs: m.norm_makespan_secs,
            area_mm2: m.area_mm2,
            power_w: m.power_w,
            tco_dollars: m.tco_dollars,
        }
    }

    fn as_array(&self) -> [f64; 4] {
        [
            self.norm_makespan_secs,
            self.area_mm2,
            self.power_w,
            self.tco_dollars,
        ]
    }

    /// Whether `self` dominates `other`: at least as good everywhere,
    /// strictly better somewhere.
    pub fn dominates(&self, other: &Objectives) -> bool {
        let a = self.as_array();
        let b = other.as_array();
        a.iter().zip(&b).all(|(x, y)| x <= y) && a.iter().zip(&b).any(|(x, y)| x < y)
    }
}

/// The extracted front plus the dominated-point accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFront {
    /// Indices (into the row slice) of non-dominated simulated rows,
    /// ascending.
    pub front: Vec<usize>,
    /// Simulated rows dominated by some other simulated row.
    pub dominated: usize,
    /// Rows excluded by the feasibility gate.
    pub infeasible: usize,
    /// Rows that errored or panicked.
    pub errors: usize,
}

/// Extracts the Pareto front from a sweep's rows. `O(n²)` — sweeps
/// are hundreds of points, not millions.
pub fn pareto_front(rows: &[PointRow]) -> ParetoFront {
    let mut candidates: Vec<(usize, Objectives)> = Vec::new();
    let mut infeasible = 0;
    let mut errors = 0;
    for (i, row) in rows.iter().enumerate() {
        match &row.outcome {
            PointOutcome::Metrics(m) => candidates.push((i, Objectives::of(m))),
            PointOutcome::Infeasible { .. } => infeasible += 1,
            PointOutcome::Error(_) => errors += 1,
        }
    }
    let mut front = Vec::new();
    let mut dominated = 0;
    for (i, obj) in &candidates {
        if candidates
            .iter()
            .any(|(j, other)| j != i && other.dominates(obj))
        {
            dominated += 1;
        } else {
            front.push(*i);
        }
    }
    ParetoFront {
        front,
        dominated,
        infeasible,
        errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PointError;
    use crate::spec::{SweepSpec, Workload};

    fn row(outcome: PointOutcome) -> PointRow {
        let mut point = SweepSpec::smoke().enumerate().remove(0);
        point.workload = Workload::Rn152;
        PointRow { point, outcome }
    }

    fn metrics(norm: f64, area: f64, power: f64, tco: f64) -> PointOutcome {
        PointOutcome::Metrics(PointMetrics {
            makespan_secs: norm,
            norm_makespan_secs: norm,
            mean_stretch: 1.0,
            p99_stretch: 1.0,
            fairness: 1.0,
            utilization: 0.5,
            area_mm2: area,
            power_w: power,
            tco_dollars: tco,
        })
    }

    #[test]
    fn front_keeps_tradeoffs_and_drops_dominated_points() {
        let rows = vec![
            row(metrics(10.0, 100.0, 50.0, 5.0)), // fast but big
            row(metrics(20.0, 40.0, 20.0, 2.0)),  // slow but small
            row(metrics(25.0, 100.0, 50.0, 5.0)), // dominated by row 0
            row(PointOutcome::Infeasible {
                hub_gb_required: 120.0,
            }),
            row(PointOutcome::Error(PointError {
                message: "boom".into(),
            })),
        ];
        let f = pareto_front(&rows);
        assert_eq!(f.front, vec![0, 1]);
        assert_eq!(f.dominated, 1);
        assert_eq!(f.infeasible, 1);
        assert_eq!(f.errors, 1);
    }

    #[test]
    fn exact_duplicates_share_the_front() {
        let rows = vec![
            row(metrics(10.0, 100.0, 50.0, 5.0)),
            row(metrics(10.0, 100.0, 50.0, 5.0)),
        ];
        let f = pareto_front(&rows);
        assert_eq!(f.front, vec![0, 1], "ties are not dominated");
        assert_eq!(f.dominated, 0);
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        let a = Objectives {
            norm_makespan_secs: 1.0,
            area_mm2: 2.0,
            power_w: 3.0,
            tco_dollars: 4.0,
        };
        assert!(!a.dominates(&a), "a point never dominates itself");
        let mut b = a;
        b.power_w = 3.5;
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        let mut c = a;
        c.norm_makespan_secs = 0.5;
        c.area_mm2 = 5.0;
        assert!(!a.dominates(&c) && !c.dominates(&a), "tradeoffs coexist");
    }

    #[test]
    fn empty_and_all_failed_sweeps_have_empty_fronts() {
        assert_eq!(pareto_front(&[]).front, Vec::<usize>::new());
        let rows = vec![row(PointOutcome::Error(PointError {
            message: "x".into(),
        }))];
        let f = pareto_front(&rows);
        assert!(f.front.is_empty());
        assert_eq!(f.errors, 1);
    }
}

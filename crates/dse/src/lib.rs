#![warn(missing_docs)]

//! # fred-dse — design-space exploration over the FRED simulator
//!
//! The capacity-planning engine of ROADMAP item 4: a declarative
//! sweep service that evaluates hundreds of fabric configurations
//! against the multi-tenant cluster simulator and extracts the
//! Pareto-efficient designs over makespan, area, power and TCO.
//!
//! * [`spec`] — [`SweepSpec`]: six design axes (NPU array dims, link
//!   bandwidth ratio, external-memory hub capacity, model-zoo
//!   workload, fault severity, tenant mix) as grid values plus seeded
//!   random fill-in points, with deterministic enumeration and
//!   per-point [`fred_sim::rng::Rng64`] split streams;
//! * [`runner`] — chunked work-queue execution over
//!   `std::thread::scope` with per-point panic isolation (a crashing
//!   point becomes a typed [`PointOutcome::Error`] row), mid-sweep
//!   checkpointing through `fred_core::codec`, and bit-identical
//!   kill/resume;
//! * [`cost`] — the analytic [`fred_hwmodel`]-based area/power/TCO
//!   model, weak-scaling makespan normalization, and the
//!   external-memory feasibility gate;
//! * [`pareto`] — non-dominated front extraction with
//!   dominated/infeasible/error accounting.
//!
//! See `DESIGN.md` §13 for the sweep model, the point-isolation and
//! resume semantics, and the provenance of each Pareto axis. The
//! `dse_sweep` bench binary drives this crate and emits
//! `BENCH_dse.json`.

pub mod cost;
pub mod pareto;
pub mod report;
pub mod runner;
pub mod spec;

pub use cost::{design_cost, hub_gb_required, normalized_makespan, DesignCost};
pub use pareto::{pareto_front, Objectives, ParetoFront};
pub use report::bench_metrics;
pub use runner::{
    evaluate_point, load_checkpoint, run_sweep, write_checkpoint, PointError, PointMetrics,
    PointOutcome, PointRow, RunOpts, SweepOutcome,
};
pub use spec::{SweepPoint, SweepSpec, Workload};

//! Analytic area / power / TCO model over [`fred_hwmodel`], plus the
//! external-memory feasibility gate.
//!
//! The cluster simulation always runs on the paper's 20-NPU wafer
//! (`FabricBackend` is calibrated to Table 3/4 and is not
//! parameterizable); the array-dimension axis is evaluated
//! *analytically* by scaling the [`WaferBudget::paper_fred`] budget
//! per NPU and weak-scaling-normalizing the measured makespan: an
//! array of `n` NPUs runs `n / 20` of the offered job stream
//! concurrently, so its normalized makespan is `measured × 20 / n` —
//! bigger arrays buy normalized throughput with area, power and
//! capital. The bandwidth-ratio axis scales fabric power (escape
//! wiring and switch power are bandwidth-proportional, Table 4) while
//! its performance cost is *measured*, via the uniform link degrade
//! the runner injects.
//!
//! Dollar figures are illustrative capacity-planning constants, not
//! paper data; they are documented here and surfaced per run in
//! `BENCH_dse.json` so regressions in the *model* are visible.

use fred_cluster::arrivals::JobTemplate;
use fred_hwmodel::wafer::WaferBudget;
use fred_workloads::memory::footprint;

use crate::spec::SweepPoint;

/// Wafer capital cost per mm² of claimed area, $. Illustrative:
/// ~\$52k for a fully used 300 mm wafer budget.
pub const DOLLARS_PER_MM2: f64 = 1.0;

/// Capital amortization horizon, seconds (3 years).
pub const AMORTIZATION_SECS: f64 = 3.0 * 365.0 * 24.0 * 3600.0;

/// Energy price, $ per kWh.
pub const DOLLARS_PER_KWH: f64 = 0.10;

/// External-memory hub cost per GB per NPU, $ (HBM-class pooled
/// memory).
pub const HUB_DOLLARS_PER_GB: f64 = 8.0;

/// NPUs in the paper instance the budget is calibrated to.
pub const PAPER_NPUS: f64 = 20.0;

/// The analytic design-cost summary of one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignCost {
    /// Total claimed silicon area, mm².
    pub area_mm2: f64,
    /// Total power draw, W.
    pub power_w: f64,
    /// Cost rate: amortized capital + energy, $ per hour.
    pub tco_per_hour: f64,
}

/// Scales the paper wafer budget to a point's array and bandwidth
/// provisioning.
///
/// * compute area/power scale linearly with the NPU count (each NPU
///   brings its share of I/O controllers);
/// * fabric area scales with the NPU count (switch chiplets per
///   served NPU, Table 4) — and fabric *power* additionally scales
///   with the provisioned bandwidth ratio;
/// * the external-memory hub adds capital but no wafer area.
pub fn design_cost(point: &SweepPoint) -> DesignCost {
    let paper = WaferBudget::paper_fred();
    let scale = point.npus() as f64 / PAPER_NPUS;
    let area_mm2 = (paper.compute_area + paper.fabric_area) * scale;
    let power_w =
        (paper.npu_power + paper.io_power) * scale + paper.fabric_power * scale * point.bw_ratio;
    let capex =
        area_mm2 * DOLLARS_PER_MM2 + point.hub_gb * point.npus() as f64 * HUB_DOLLARS_PER_GB;
    let capital_per_hour = capex / (AMORTIZATION_SECS / 3600.0);
    let energy_per_hour = power_w / 1000.0 * DOLLARS_PER_KWH;
    DesignCost {
        area_mm2,
        power_w,
        tco_per_hour: capital_per_hour + energy_per_hour,
    }
}

/// Weak-scaling-normalized makespan: the measured 20-NPU makespan
/// credited to an `npus`-wide array serving `npus / 20` times the job
/// stream concurrently.
pub fn normalized_makespan(measured_secs: f64, npus: usize) -> f64 {
    measured_secs * PAPER_NPUS / npus as f64
}

/// Dollars to finish the normalized run at the design's cost rate.
pub fn tco_dollars(cost: &DesignCost, norm_makespan_secs: f64) -> f64 {
    cost.tco_per_hour * norm_makespan_secs / 3600.0
}

/// Per-NPU external-memory bytes a template spills to the hub: the
/// ZeRO-2 gradient + optimizer shards (weights and activations stay
/// in on-NPU HBM).
pub fn hub_bytes_needed(template: &JobTemplate) -> f64 {
    let fp = footprint(
        &template.model,
        template.strategy,
        template.params.minibatch,
    );
    fp.gradients + fp.optimizer
}

/// The hub capacity (GB per NPU) a workload needs: the worst template
/// in its mix. A point whose `hub_gb` is below this is infeasible —
/// the optimizer state has nowhere to live — and is excluded from the
/// Pareto front (but still counted in the sweep report).
pub fn hub_gb_required(templates: &[JobTemplate]) -> f64 {
    templates
        .iter()
        .map(|t| hub_bytes_needed(t) / 1e9)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SweepSpec, Workload};

    fn point() -> SweepPoint {
        SweepSpec::smoke().enumerate().remove(0)
    }

    #[test]
    fn paper_array_at_full_bandwidth_matches_the_wafer_budget() {
        let mut p = point();
        p.array = (5, 4);
        p.bw_ratio = 1.0;
        let c = design_cost(&p);
        let b = WaferBudget::paper_fred();
        assert!((c.area_mm2 - b.total_area()).abs() < 1e-9);
        assert!((c.power_w - b.total_power()).abs() < 1e-9);
        assert!(c.tco_per_hour > 0.0);
    }

    #[test]
    fn bigger_arrays_cost_more_but_normalize_faster() {
        let mut small = point();
        small.array = (4, 4);
        let mut big = small.clone();
        big.array = (8, 5);
        let cs = design_cost(&small);
        let cb = design_cost(&big);
        assert!(cb.area_mm2 > cs.area_mm2);
        assert!(cb.power_w > cs.power_w);
        assert!(cb.tco_per_hour > cs.tco_per_hour);
        let m = 100.0;
        assert!(normalized_makespan(m, 40) < normalized_makespan(m, 16));
    }

    #[test]
    fn thinner_links_save_fabric_power_only() {
        let mut full = point();
        full.bw_ratio = 1.0;
        let mut half = full.clone();
        half.bw_ratio = 0.5;
        let cf = design_cost(&full);
        let ch = design_cost(&half);
        assert_eq!(cf.area_mm2, ch.area_mm2);
        assert!(ch.power_w < cf.power_w);
        let fabric = WaferBudget::paper_fred().fabric_power;
        assert!((cf.power_w - ch.power_w - 0.5 * fabric).abs() < 1e-9);
    }

    #[test]
    fn hub_requirement_separates_the_model_zoo() {
        // The 17B transformer's MP(2)-DP(1) template spills > 100 GB
        // of FP32 optimizer state; ResNet-152 spills almost nothing.
        let t17b = hub_gb_required(&Workload::T17b.templates());
        let rn = hub_gb_required(&Workload::Rn152.templates());
        assert!(t17b > 100.0, "t17b hub need {t17b} GB");
        assert!(rn < 2.0, "rn152 hub need {rn} GB");
        let mixed = hub_gb_required(&Workload::Mixed.templates());
        assert_eq!(mixed, t17b, "the mix is gated by its worst template");
    }

    #[test]
    fn tco_integrates_the_rate_over_the_run() {
        let c = design_cost(&point());
        assert!((tco_dollars(&c, 3600.0) - c.tco_per_hour).abs() < 1e-12);
        assert_eq!(tco_dollars(&c, 0.0), 0.0);
    }
}

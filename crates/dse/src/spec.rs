//! Declarative sweep specifications and deterministic point
//! enumeration.
//!
//! A [`SweepSpec`] is pure data: six design axes (grid values each),
//! an optional count of seeded random points filling the gaps between
//! grid lines, and the per-point workload parameters. Enumeration is
//! deterministic — the same spec always yields the same ordered point
//! list, with the same per-point [`Rng64`] stream states — so a sweep
//! can be killed, resumed, re-enumerated and compared bit for bit.
//!
//! Per-point randomness is derived *sequentially* during enumeration
//! via [`Rng64::split`] from one root stream seeded with
//! [`SweepSpec::seed`]: point `i`'s stream state depends only on the
//! spec, never on which worker thread later evaluates the point or in
//! what wall-clock order. That is the whole determinism argument for
//! the runner.

use fred_cluster::arrivals::{paper_mix, JobTemplate};
use fred_sim::rng::Rng64;

/// Which slice of the model zoo a point offers to the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Transformer-17B templates only (wide, fabric-hungry jobs).
    T17b,
    /// ResNet-152 templates only (narrow data-parallel jobs).
    Rn152,
    /// The full multi-tenant paper mix.
    Mixed,
}

impl Workload {
    /// Stable tag used in checkpoints and reports.
    pub fn tag(self) -> u64 {
        match self {
            Workload::T17b => 0,
            Workload::Rn152 => 1,
            Workload::Mixed => 2,
        }
    }

    /// Inverse of [`Workload::tag`].
    pub fn from_tag(tag: u64) -> Option<Workload> {
        match tag {
            0 => Some(Workload::T17b),
            1 => Some(Workload::Rn152),
            2 => Some(Workload::Mixed),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::T17b => "t17b",
            Workload::Rn152 => "rn152",
            Workload::Mixed => "mixed",
        }
    }

    /// The job templates this workload draws arrivals from — the
    /// paper mix filtered by name stem.
    pub fn templates(self) -> Vec<JobTemplate> {
        let all = paper_mix();
        match self {
            Workload::Mixed => all,
            Workload::T17b => all.into_iter().filter(|t| t.stem == "t17b").collect(),
            Workload::Rn152 => all.into_iter().filter(|t| t.stem == "rn152").collect(),
        }
    }
}

/// One design point: a coordinate on every axis plus its private
/// random stream state.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Position in enumeration order (stable across re-enumeration).
    pub index: usize,
    /// NPU array dimensions `(cols, rows)`; the paper instance is
    /// `(5, 4)` = 20 NPUs.
    pub array: (usize, usize),
    /// Provisioned link bandwidth as a fraction of the paper fabric's,
    /// in `(0, 1]`. Applied as a uniform capacity degrade.
    pub bw_ratio: f64,
    /// External-memory hub capacity per NPU, GB — must hold the
    /// ZeRO-2 optimizer + gradient shards the NPUs spill.
    pub hub_gb: f64,
    /// Model-zoo slice offered to the cluster.
    pub workload: Workload,
    /// Fraction of fabric links the point's fault plan kills.
    pub fault_fraction: f64,
    /// Tenant class mix `[High, Normal, Low]` fractions.
    pub tenant_mix: [f64; 3],
    /// [`Rng64`] stream state all of the point's randomness (arrival
    /// trace, fault placement) derives from.
    pub rng_state: u64,
}

impl SweepPoint {
    /// NPU count of the point's array.
    pub fn npus(&self) -> usize {
        self.array.0 * self.array.1
    }

    /// One-line coordinate summary for tables and error messages.
    pub fn label(&self) -> String {
        format!(
            "{}x{} bw{:.2} hub{:.0} {} f{:.2} mix{:.1}/{:.1}/{:.1}",
            self.array.0,
            self.array.1,
            self.bw_ratio,
            self.hub_gb,
            self.workload.name(),
            self.fault_fraction,
            self.tenant_mix[0],
            self.tenant_mix[1],
            self.tenant_mix[2],
        )
    }
}

/// A declarative sweep: the grid values of each design axis, optional
/// seeded random fill-in points, and the per-point cluster workload
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (labels reports and checkpoints).
    pub name: String,
    /// Root seed every point's randomness derives from.
    pub seed: u64,
    /// Jobs offered to the cluster at each point.
    pub jobs: usize,
    /// Poisson arrival rate, jobs per simulated second.
    pub arrival_rate: f64,
    /// Points per checkpoint chunk (the kill/resume granularity).
    pub chunk: usize,
    /// Grid values: NPU array dimensions.
    pub array_dims: Vec<(usize, usize)>,
    /// Grid values: link-bandwidth ratios in `(0, 1]`.
    pub bw_ratio: Vec<f64>,
    /// Grid values: external-memory hub capacity per NPU, GB.
    pub hub_gb: Vec<f64>,
    /// Grid values: model-zoo workloads.
    pub workload: Vec<Workload>,
    /// Grid values: fault-plan severities (fraction of links killed).
    pub fault_fraction: Vec<f64>,
    /// Grid values: tenant class mixes.
    pub tenant_mix: Vec<[f64; 3]>,
    /// Seeded random points appended after the grid: discrete axes
    /// drawn uniformly from their grid values, continuous axes
    /// (bandwidth ratio, fault fraction) uniform over their grid's
    /// min–max range.
    pub random_points: usize,
}

impl SweepSpec {
    /// The CI smoke sweep: a 16-point grid plus 2 random points, small
    /// enough to run in debug mode in seconds.
    pub fn smoke() -> SweepSpec {
        SweepSpec {
            name: "smoke".into(),
            seed: 0xD5E_0001,
            jobs: 5,
            arrival_rate: 10.0,
            chunk: 6,
            array_dims: vec![(5, 4), (6, 5)],
            bw_ratio: vec![0.6, 1.0],
            hub_gb: vec![64.0, 192.0],
            workload: vec![Workload::Rn152, Workload::Mixed],
            fault_fraction: vec![0.0],
            tenant_mix: vec![[0.2, 0.6, 0.2]],
            random_points: 2,
        }
    }

    /// The full capacity-planning sweep: a 216-point grid plus 8
    /// random points (≥ 200 points total).
    pub fn full() -> SweepSpec {
        SweepSpec {
            name: "full".into(),
            seed: 0xD5E_0002,
            jobs: 6,
            arrival_rate: 10.0,
            chunk: 32,
            array_dims: vec![(4, 4), (5, 4), (6, 5)],
            bw_ratio: vec![0.5, 0.75, 1.0],
            hub_gb: vec![64.0, 192.0],
            workload: vec![Workload::T17b, Workload::Rn152, Workload::Mixed],
            fault_fraction: vec![0.0, 0.1],
            tenant_mix: vec![[0.2, 0.6, 0.2], [0.6, 0.3, 0.1]],
            random_points: 8,
        }
    }

    /// Number of points the spec enumerates.
    pub fn point_count(&self) -> usize {
        self.array_dims.len()
            * self.bw_ratio.len()
            * self.hub_gb.len()
            * self.workload.len()
            * self.fault_fraction.len()
            * self.tenant_mix.len()
            + self.random_points
    }

    /// Panics with a descriptive message if any axis is empty or a
    /// value is out of its documented domain.
    pub fn validate(&self) {
        assert!(!self.array_dims.is_empty(), "array_dims axis is empty");
        assert!(!self.bw_ratio.is_empty(), "bw_ratio axis is empty");
        assert!(!self.hub_gb.is_empty(), "hub_gb axis is empty");
        assert!(!self.workload.is_empty(), "workload axis is empty");
        assert!(
            !self.fault_fraction.is_empty(),
            "fault_fraction axis is empty"
        );
        assert!(!self.tenant_mix.is_empty(), "tenant_mix axis is empty");
        assert!(self.jobs > 0, "jobs per point must be positive");
        assert!(self.chunk > 0, "chunk size must be positive");
        assert!(
            self.arrival_rate > 0.0 && self.arrival_rate.is_finite(),
            "arrival rate must be positive"
        );
        for &(c, r) in &self.array_dims {
            assert!(c > 0 && r > 0, "array dims must be positive, got {c}x{r}");
        }
        for &b in &self.bw_ratio {
            assert!(b > 0.0 && b <= 1.0, "bw_ratio {b} outside (0, 1]");
        }
        for &h in &self.hub_gb {
            assert!(h > 0.0 && h.is_finite(), "hub capacity {h} GB invalid");
        }
        for &f in &self.fault_fraction {
            assert!((0.0..1.0).contains(&f), "fault_fraction {f} outside [0, 1)");
        }
        for m in &self.tenant_mix {
            let sum: f64 = m.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "tenant mix {m:?} must sum to 1");
        }
    }

    /// Enumerates every design point in deterministic order: the full
    /// cartesian grid (axes nested in declaration order), then the
    /// seeded random points. Point `i` always receives the same
    /// [`SweepPoint::rng_state`], regardless of thread count or
    /// resume history.
    ///
    /// # Panics
    ///
    /// As [`SweepSpec::validate`].
    pub fn enumerate(&self) -> Vec<SweepPoint> {
        self.validate();
        let mut root = Rng64::seed_from_u64(self.seed);
        let mut points = Vec::with_capacity(self.point_count());
        for &array in &self.array_dims {
            for &bw_ratio in &self.bw_ratio {
                for &hub_gb in &self.hub_gb {
                    for &workload in &self.workload {
                        for &fault_fraction in &self.fault_fraction {
                            for &tenant_mix in &self.tenant_mix {
                                points.push(SweepPoint {
                                    index: points.len(),
                                    array,
                                    bw_ratio,
                                    hub_gb,
                                    workload,
                                    fault_fraction,
                                    tenant_mix,
                                    rng_state: root.split().state(),
                                });
                            }
                        }
                    }
                }
            }
        }
        let span = |xs: &[f64]| {
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            (lo, hi)
        };
        let (bw_lo, bw_hi) = span(&self.bw_ratio);
        let (ff_lo, ff_hi) = span(&self.fault_fraction);
        for _ in 0..self.random_points {
            // Draws use the root stream directly (before the split) so
            // they are part of the same deterministic sequence.
            let array = self.array_dims[root.gen_range(0, self.array_dims.len())];
            let bw_ratio = bw_lo + root.gen_f64() * (bw_hi - bw_lo);
            let hub_gb = self.hub_gb[root.gen_range(0, self.hub_gb.len())];
            let workload = self.workload[root.gen_range(0, self.workload.len())];
            let fault_fraction = ff_lo + root.gen_f64() * (ff_hi - ff_lo);
            let tenant_mix = self.tenant_mix[root.gen_range(0, self.tenant_mix.len())];
            points.push(SweepPoint {
                index: points.len(),
                array,
                bw_ratio,
                hub_gb,
                workload,
                fault_fraction,
                tenant_mix,
                rng_state: root.split().state(),
            });
        }
        points
    }

    /// FNV-1a fingerprint of every spec field, stored in checkpoints:
    /// resuming with a different spec is a hard error, not silent
    /// garbage.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.bytes(self.name.as_bytes());
        h.u64(self.seed);
        h.u64(self.jobs as u64);
        h.u64(self.arrival_rate.to_bits());
        h.u64(self.chunk as u64);
        for &(c, r) in &self.array_dims {
            h.u64(c as u64);
            h.u64(r as u64);
        }
        for &b in &self.bw_ratio {
            h.u64(b.to_bits());
        }
        for &g in &self.hub_gb {
            h.u64(g.to_bits());
        }
        for &w in &self.workload {
            h.u64(w.tag());
        }
        for &f in &self.fault_fraction {
            h.u64(f.to_bits());
        }
        for m in &self.tenant_mix {
            for &x in m {
                h.u64(x.to_bits());
            }
        }
        h.u64(self.random_points as u64);
        h.finish()
    }
}

/// Minimal FNV-1a accumulator (the workspace is dependency-free).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }
    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }
    fn u64(&mut self, x: u64) {
        self.bytes(&x.to_le_bytes());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_deterministic_and_complete() {
        let spec = SweepSpec::smoke();
        let a = spec.enumerate();
        let b = spec.enumerate();
        assert_eq!(a, b, "double enumeration must be identical");
        assert_eq!(a.len(), spec.point_count());
        assert_eq!(a.len(), 2 * 2 * 2 * 2 + 2);
        for (i, p) in a.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // Per-point streams are distinct.
        let mut states: Vec<u64> = a.iter().map(|p| p.rng_state).collect();
        states.sort_unstable();
        states.dedup();
        assert_eq!(states.len(), a.len(), "rng streams must not collide");
    }

    #[test]
    fn random_points_stay_inside_axis_ranges() {
        let spec = SweepSpec::full();
        let pts = spec.enumerate();
        assert!(pts.len() >= 200, "full sweep must have >= 200 points");
        for p in &pts[spec.point_count() - spec.random_points..] {
            assert!(p.bw_ratio >= 0.5 && p.bw_ratio <= 1.0);
            assert!((0.0..0.1 + 1e-12).contains(&p.fault_fraction));
            assert!(spec.array_dims.contains(&p.array));
            assert!(spec.hub_gb.contains(&p.hub_gb));
        }
    }

    #[test]
    fn fingerprint_distinguishes_specs() {
        let a = SweepSpec::smoke();
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.bw_ratio[0] = 0.61;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.seed ^= 1;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn workload_templates_filter_the_paper_mix() {
        assert_eq!(Workload::Mixed.templates().len(), 6);
        assert!(Workload::T17b.templates().iter().all(|t| t.stem == "t17b"));
        assert!(Workload::Rn152
            .templates()
            .iter()
            .all(|t| t.stem == "rn152"));
        assert!(!Workload::T17b.templates().is_empty());
        assert!(!Workload::Rn152.templates().is_empty());
        for w in [Workload::T17b, Workload::Rn152, Workload::Mixed] {
            assert_eq!(Workload::from_tag(w.tag()), Some(w));
        }
        assert_eq!(Workload::from_tag(9), None);
    }

    #[test]
    #[should_panic(expected = "bw_ratio")]
    fn validate_rejects_out_of_domain_bandwidth() {
        let mut spec = SweepSpec::smoke();
        spec.bw_ratio.push(1.5);
        spec.validate();
    }
}

//! Jobs: what a tenant submits to the cluster.
//!
//! A job is one training iteration of a model-zoo entry under a 3D
//! parallelism strategy — the same unit [`fred_workloads::trainer::simulate`]
//! runs solo. The cluster adds what solo training does not have: a
//! priority class (mapped onto the fair-share solver's tenant ranks),
//! an arrival time, and an optional job-relative fault plan.

use fred_core::placement::Strategy3D;
use fred_sim::fault::FaultPlan;
use fred_sim::time::Time;
use fred_workloads::model::{DnnModel, ExecutionMode};
use fred_workloads::schedule::ScheduleParams;

/// Priority class of a job, mapped directly onto a fabric tenant rank:
/// every flow of a job carries its class's rank, and the max-min
/// solver fills ranks strictly in order — a High job's traffic is
/// never slowed by Normal or Low traffic sharing its links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobClass {
    /// Production / latency-critical. Tenant rank 0 — the same rank
    /// solo jobs run at, so a lone High job is bit-identical to the
    /// standalone trainer.
    High,
    /// Default class. Tenant rank 1.
    Normal,
    /// Best-effort / preemptible-first. Tenant rank 2.
    Low,
}

impl JobClass {
    /// Every class, highest priority first.
    pub const ALL: [JobClass; 3] = [JobClass::High, JobClass::Normal, JobClass::Low];

    /// The fabric tenant rank this class maps to (0 = served first).
    pub fn tenant_rank(self) -> u8 {
        match self {
            JobClass::High => 0,
            JobClass::Normal => 1,
            JobClass::Low => 2,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            JobClass::High => "high",
            JobClass::Normal => "normal",
            JobClass::Low => "low",
        }
    }
}

/// One submitted job: a model, its parallelism, and its tenancy terms.
///
/// Doubles as the trace format — a `Vec<JobSpec>` *is* an arrival
/// trace, whether hand-written or drawn from the seeded Poisson
/// generator in [`crate::arrivals`].
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Display name (unique names make reports readable; the scheduler
    /// does not require uniqueness).
    pub name: String,
    /// The model to train.
    pub model: DnnModel,
    /// 3D parallelism degrees; `mp × dp × pp` NPU slots are carved.
    pub strategy: Strategy3D,
    /// Scheduling inputs (minibatch, microbatches, per-NPU FLOP/s).
    pub params: ScheduleParams,
    /// Priority class (tenant rank + preemption precedence).
    pub class: JobClass,
    /// When the job arrives at the cluster (absolute).
    pub arrival: Time,
    /// Job-relative fault plan: event times are offsets from the job's
    /// first start. [`FaultPlan::none`] for healthy runs.
    pub faults: FaultPlan,
}

impl JobSpec {
    /// A Normal-class job arriving at time zero with no faults.
    pub fn new(
        name: impl Into<String>,
        model: DnnModel,
        strategy: Strategy3D,
        params: ScheduleParams,
    ) -> JobSpec {
        JobSpec {
            name: name.into(),
            model,
            strategy,
            params,
            class: JobClass::Normal,
            arrival: Time::ZERO,
            faults: FaultPlan::none(),
        }
    }

    /// Sets the priority class.
    pub fn with_class(mut self, class: JobClass) -> JobSpec {
        self.class = class;
        self
    }

    /// Sets the arrival time.
    pub fn with_arrival(mut self, arrival: Time) -> JobSpec {
        self.arrival = arrival;
        self
    }

    /// Sets the job-relative fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> JobSpec {
        self.faults = faults;
        self
    }

    /// Contiguous NPU slots the job needs (one per worker).
    pub fn npus(&self) -> usize {
        self.strategy.worker_count()
    }

    /// Whether the cluster can run this job. Weight-streaming models
    /// stream layer windows to *every* NPU on the wafer and cannot
    /// share the fabric with co-tenants; only weight-stationary jobs
    /// are schedulable.
    pub fn is_schedulable(&self) -> bool {
        self.model.execution == ExecutionMode::WeightStationary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_ranks_are_strictly_ordered() {
        let ranks: Vec<u8> = JobClass::ALL.iter().map(|c| c.tenant_rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2]);
    }

    #[test]
    fn weight_streaming_jobs_are_not_schedulable() {
        let model = DnnModel::gpt3();
        let strategy = Strategy3D::new(1, 1, 2);
        let params = ScheduleParams::sweep_default(&model, strategy);
        let job = JobSpec::new("g", model, strategy, params);
        assert!(!job.is_schedulable());

        let model = DnnModel::resnet152();
        let strategy = Strategy3D::new(1, 4, 1);
        let params = ScheduleParams::sweep_default(&model, strategy);
        let job = JobSpec::new("r", model, strategy, params);
        assert!(job.is_schedulable());
        assert_eq!(job.npus(), 4);
    }
}

//! The cluster event loop: many jobs, one fabric, one clock.
//!
//! [`run_cluster`] interleaves per-job [`ScheduleExecutor`]s through a
//! single shared [`FlowNetwork`]. Each placed job gets a disjoint
//! correlation-tag range (completions route back by tag alone) and a
//! tenant rank equal to its [`JobClass`], so the fair-share solver
//! isolates classes in bandwidth: High traffic is served strictly
//! before Normal, Normal before Low, on every contended link. Job
//! starts and finishes are solver *deltas* (`inject_batch` /
//! completion drains) — the world is never re-solved from scratch.
//!
//! ## Dispatch and preemption
//!
//! Queued jobs wait in per-class FIFO queues. Dispatch walks classes
//! High→Low placing each queue's head until it no longer fits, then
//! lets lower classes backfill — a narrow Low job may start ahead of a
//! blocked wide High job (this favours utilization; the stranded
//! head's delay is visible in the p99 queueing metric). When enabled,
//! preemption evicts strictly-lower-class jobs from a slot window when
//! the head cannot be placed any other way: victims lose their
//! in-flight iteration, return to the *front* of their class queue,
//! and restart from scratch on fresh tags (retired tags still in the
//! completion pipeline are dropped on arrival).
//!
//! ## Determinism contract
//!
//! A cluster run is a pure function of its inputs: jobs are processed
//! in arrival order (submission order on ties), running executors in
//! placement order, and every random choice lives in the seeded
//! arrival generator. A single High-class job arriving at time zero
//! reproduces [`fred_workloads::trainer::simulate`] *bit-identically*:
//! same placement base, same tag namespace, same tenant rank, same
//! network-operation order.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::error::Error;
use std::fmt;
use std::rc::Rc;

use fred_core::params::FabricConfig;
use fred_core::placement::{Placement, PlacementPolicy};
use fred_sim::flow::FlowSpec;
use fred_sim::netsim::FlowNetwork;
use fred_sim::time::Time;
use fred_telemetry::event::TraceEvent;
use fred_telemetry::sink::{NullSink, TraceSink};
use fred_workloads::backend::FabricBackend;
use fred_workloads::error::TrainError;
use fred_workloads::exec::{repair_flows, ExecConfig, ScheduleExecutor};
use fred_workloads::schedule::build_schedule;
use fred_workloads::trainer::simulate;

use crate::job::{JobClass, JobSpec};
use crate::metrics::{ClusterReport, JobRecord};
use crate::placement::{FitPolicy, SlotMap};

/// Cluster-wide policy knobs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The fabric every job shares.
    pub fabric: FabricConfig,
    /// How contiguous slot windows are chosen.
    pub fit: FitPolicy,
    /// Whether higher classes may evict strictly-lower-class jobs.
    pub preemption: bool,
}

impl ClusterConfig {
    /// First-fit placement with preemption enabled.
    pub fn new(fabric: FabricConfig) -> ClusterConfig {
        ClusterConfig {
            fabric,
            fit: FitPolicy::FirstFit,
            preemption: true,
        }
    }

    /// Sets the fit policy.
    pub fn with_fit(mut self, fit: FitPolicy) -> ClusterConfig {
        self.fit = fit;
        self
    }

    /// Enables or disables preemption.
    pub fn with_preemption(mut self, preemption: bool) -> ClusterConfig {
        self.preemption = preemption;
        self
    }
}

/// Why a cluster run could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A job's model is weight-streaming: it streams layer windows to
    /// every NPU and cannot share the fabric (see
    /// [`JobSpec::is_schedulable`]).
    UnsupportedExecution {
        /// The offending job's name.
        job: String,
    },
    /// A job needs more NPU slots than the fabric has, so it can never
    /// be placed.
    JobTooWide {
        /// The offending job's name.
        job: String,
        /// Slots the job needs.
        npus: usize,
        /// Slots the fabric offers.
        slots: usize,
    },
    /// A job's executor failed (stall, unroutable transfer, rejected
    /// flow — see [`TrainError`]).
    Train {
        /// The failing job's name (or a scheduler-internal label for
        /// fault re-injection failures that cross jobs).
        job: String,
        /// The underlying trainer error.
        err: TrainError,
    },
    /// The cluster ran out of pending events with jobs unfinished — a
    /// scheduling deadlock.
    Stalled {
        /// Jobs still queued.
        queued: usize,
        /// Jobs still running.
        running: usize,
        /// Jobs that did complete.
        completed: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnsupportedExecution { job } => write!(
                f,
                "job `{job}` is weight-streaming and cannot share the fabric"
            ),
            ClusterError::JobTooWide { job, npus, slots } => write!(
                f,
                "job `{job}` needs {npus} NPU slots but the fabric has {slots}"
            ),
            ClusterError::Train { job, err } => write!(f, "job `{job}` failed: {err}"),
            ClusterError::Stalled {
                queued,
                running,
                completed,
            } => write!(
                f,
                "cluster stalled with no pending events: {queued} queued, {running} running, \
                 {completed} completed"
            ),
        }
    }
}

impl Error for ClusterError {}

/// One placed job mid-flight (its slots are recorded in the
/// [`SlotMap`], keyed by job id).
struct Running {
    /// Index into the submitted job list.
    job: usize,
    /// First slot of the job's contiguous carve-out (restores rebuild
    /// the schedule from the same placement base).
    base: usize,
    exec: ScheduleExecutor,
}

/// Runs `jobs` to completion on one shared fabric and reports per-job
/// SLO metrics. Untraced (zero-overhead [`NullSink`]).
///
/// # Errors
///
/// See [`ClusterError`].
pub fn run_cluster(cfg: &ClusterConfig, jobs: Vec<JobSpec>) -> Result<ClusterReport, ClusterError> {
    run_cluster_traced(cfg, jobs, Rc::new(NullSink))
}

/// [`run_cluster`] with telemetry recorded into `sink`: per-job spans
/// are label-prefixed with the job name, and job lifecycle marks
/// (queued, started, preempted, finished) land on the iteration track.
///
/// # Errors
///
/// See [`ClusterError`].
pub fn run_cluster_traced(
    cfg: &ClusterConfig,
    jobs: Vec<JobSpec>,
    sink: Rc<dyn TraceSink>,
) -> Result<ClusterReport, ClusterError> {
    let mut cluster = Cluster::new(cfg.clone(), jobs, sink)?;
    cluster.run_to_completion()?;
    Ok(cluster.into_report())
}

/// A resumable cluster simulation: [`run_cluster`] is
/// [`Cluster::new`] + [`Cluster::run_to_completion`] +
/// [`Cluster::into_report`], but the pieces compose — a driver can run
/// to a chosen instant, [`Cluster::snapshot`] the whole stack
/// (scheduler, every in-flight executor, the shared network), and
/// later [`Cluster::restore`] it to resume bit-identically, including
/// mid-fault and mid-preemption.
pub struct Cluster {
    cfg: ClusterConfig,
    jobs: Vec<JobSpec>,
    backend: FabricBackend,
    policy: PlacementPolicy,
    net: FlowNetwork,
    sink: Rc<dyn TraceSink>,
    tracing: bool,
    /// [`TraceSink::dropped`] reading when this run began.
    dropped_baseline: u64,
    slotmap: SlotMap,
    /// Pending job indices, one FIFO per class rank.
    queues: [VecDeque<usize>; 3],
    running: Vec<Running>,
    /// Job indices sorted by arrival.
    order: Vec<usize>,
    arrival_cursor: usize,
    /// Monotonic: every (re)start gets a fresh disjoint tag range, so
    /// retired ranges never collide and stale completions are dropped.
    next_tag_base: u64,
    first_start: Vec<Option<Time>>,
    completion: Vec<Time>,
    preempt_count: Vec<u32>,
    /// Per-job cursor into its fault plan (survives preemption: fired
    /// events are never re-fired on restart).
    fault_cursor: Vec<usize>,
    done_count: usize,
    busy_npu_secs: f64,
}

/// Validates `jobs` against the fabric and derives the arrival order
/// and placement policy shared by [`Cluster::new`] and
/// [`Cluster::restore`].
fn validate_and_order(
    cfg: &ClusterConfig,
    jobs: &[JobSpec],
    backend: &FabricBackend,
) -> Result<(Vec<usize>, PlacementPolicy), ClusterError> {
    let slots = backend.npu_count();
    for j in jobs {
        if !j.is_schedulable() {
            return Err(ClusterError::UnsupportedExecution {
                job: j.name.clone(),
            });
        }
        if j.npus() > slots {
            return Err(ClusterError::JobTooWide {
                job: j.name.clone(),
                npus: j.npus(),
                slots,
            });
        }
    }
    // Arrival order; stable sort keeps submission order on ties.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .arrival
            .partial_cmp(&jobs[b].arrival)
            .expect("finite arrival time")
    });
    let policy = if cfg.fabric.is_fred() {
        PlacementPolicy::MpPpDp
    } else {
        PlacementPolicy::MpDpPp
    };
    Ok((order, policy))
}

impl Cluster {
    /// Validates `jobs`, builds the shared network, and admits and
    /// places everything due at time zero. Nothing has advanced yet.
    ///
    /// # Errors
    ///
    /// See [`ClusterError`].
    pub fn new(
        cfg: ClusterConfig,
        jobs: Vec<JobSpec>,
        sink: Rc<dyn TraceSink>,
    ) -> Result<Cluster, ClusterError> {
        let backend = FabricBackend::new(cfg.fabric);
        let slots = backend.npu_count();
        let (order, policy) = validate_and_order(&cfg, &jobs, &backend)?;
        let n = jobs.len();
        let net = FlowNetwork::with_sink(backend.topology(), sink.clone());
        let tracing = sink.enabled();
        // Baseline, not zero: the caller may hand us a sink that
        // already dropped events in an earlier run; the report carries
        // this run's losses only.
        let dropped_baseline = sink.dropped();
        let mut cluster = Cluster {
            cfg,
            jobs,
            backend,
            policy,
            net,
            sink,
            tracing,
            dropped_baseline,
            slotmap: SlotMap::new(slots),
            queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            running: Vec::new(),
            order,
            arrival_cursor: 0,
            next_tag_base: 0,
            first_start: vec![None; n],
            completion: vec![Time::ZERO; n],
            preempt_count: vec![0; n],
            fault_cursor: vec![0; n],
            done_count: 0,
            busy_npu_secs: 0.0,
        };
        cluster.admit_arrivals(Time::ZERO);
        cluster.dispatch()?;
        cluster.emit_sched_samples(Time::ZERO);
        Ok(cluster)
    }

    /// The shared clock.
    pub fn now(&self) -> Time {
        self.net.now()
    }

    /// Whether every job has completed.
    pub fn is_done(&self) -> bool {
        self.done_count == self.jobs.len()
    }

    /// The instant of the next pending event (arrival, compute finish,
    /// network event or fault horizon), if any. (`&mut` because the
    /// network prunes stale drain predictions lazily while peeking.)
    pub fn next_event(&mut self) -> Option<Time> {
        let now = self.net.now();
        let ta = self
            .order
            .get(self.arrival_cursor)
            .map(|&j| self.jobs[j].arrival);
        let tc = self
            .running
            .iter()
            .filter_map(|r| r.exec.next_compute_time())
            .min();
        let tn = self.net.next_event();
        let tf = self.next_fault_time(now);
        [ta, tc, tn, tf].into_iter().flatten().min()
    }

    fn stalled(&self) -> ClusterError {
        ClusterError::Stalled {
            queued: self.queues.iter().map(VecDeque::len).sum(),
            running: self.running.len(),
            completed: self.done_count,
        }
    }

    /// Processes exactly one event instant: advances the clock to
    /// `next`, fires due faults, routes completions, settles every
    /// executor, retires finished jobs and dispatches the queues.
    fn step_at(&mut self, next: Time) -> Result<(), ClusterError> {
        let now = self.net.now();
        // Occupancy integrates between event instants (membership only
        // changes at instants).
        self.busy_npu_secs +=
            self.slotmap.used() as f64 * (next.as_secs() - now.as_secs()).max(0.0);
        self.net.advance_to(next);
        self.fire_faults(next)?;
        for c in self.net.drain_completed() {
            self.route_completion(c.tag)?;
        }
        for k in 0..self.running.len() {
            let job = self.running[k].job;
            if let Err(e) = self.running[k]
                .exec
                .flush_staged(&mut self.net, &self.backend)
            {
                return Err(self.train_err(job, e));
            }
            self.running[k].exec.release_computes_due(next);
            if let Err(e) = self.running[k].exec.settle(&mut self.net, &self.backend) {
                return Err(self.train_err(job, e));
            }
        }
        self.retire_finished();
        self.admit_arrivals(next);
        self.dispatch()?;
        self.emit_sched_samples(next);
        Ok(())
    }

    /// Runs until every job completes.
    ///
    /// # Errors
    ///
    /// See [`ClusterError`]; [`ClusterError::Stalled`] when events run
    /// out with jobs unfinished.
    pub fn run_to_completion(&mut self) -> Result<(), ClusterError> {
        while !self.is_done() {
            let Some(next) = self.next_event() else {
                return Err(self.stalled());
            };
            self.step_at(next)?;
        }
        Ok(())
    }

    /// Processes every event at or before `t`, leaving the clock at
    /// the last processed instant — a clean capture point for
    /// [`Cluster::snapshot`]. Returns early (Ok) once the next event
    /// lies beyond `t` or the run completes.
    ///
    /// # Errors
    ///
    /// See [`Cluster::run_to_completion`].
    pub fn run_until(&mut self, t: Time) -> Result<(), ClusterError> {
        while !self.is_done() {
            let Some(next) = self.next_event() else {
                return Err(self.stalled());
            };
            if next > t {
                return Ok(());
            }
            self.step_at(next)?;
        }
        Ok(())
    }

    /// Captures the entire cluster stack — scheduler bookkeeping,
    /// every in-flight executor, and the shared network — as plain
    /// data. The job list and config are *not* captured;
    /// [`Cluster::restore`] is handed the same ones again.
    pub fn snapshot(&self) -> ClusterState {
        ClusterState {
            net: self.net.snapshot(),
            slot_owners: self.slotmap.owners().to_vec(),
            queues: [
                self.queues[0].iter().copied().collect(),
                self.queues[1].iter().copied().collect(),
                self.queues[2].iter().copied().collect(),
            ],
            running: self
                .running
                .iter()
                .map(|r| RunningState {
                    job: r.job,
                    base: r.base,
                    exec: r.exec.snapshot(),
                })
                .collect(),
            arrival_cursor: self.arrival_cursor,
            next_tag_base: self.next_tag_base,
            first_start: self.first_start.clone(),
            completion: self.completion.clone(),
            preempt_count: self.preempt_count.clone(),
            fault_cursor: self.fault_cursor.clone(),
            done_count: self.done_count,
            busy_npu_secs: self.busy_npu_secs,
        }
    }

    /// Rebuilds a cluster from a [`Cluster::snapshot`], the same
    /// config and the same job list it was captured against. Running
    /// forward from here is bit-identical to the uninterrupted run
    /// (telemetry excepted: traces restart at the restore point).
    ///
    /// # Errors
    ///
    /// The same job-validation errors as [`Cluster::new`].
    ///
    /// # Panics
    ///
    /// If the state disagrees with the config/job list in shape (slot
    /// count, job count, per-job vector lengths) — a snapshot pairing
    /// error; file-level corruption is caught earlier by the codec's
    /// typed errors.
    pub fn restore(
        cfg: ClusterConfig,
        jobs: Vec<JobSpec>,
        sink: Rc<dyn TraceSink>,
        state: ClusterState,
    ) -> Result<Cluster, ClusterError> {
        let backend = FabricBackend::new(cfg.fabric);
        let slots = backend.npu_count();
        let (order, policy) = validate_and_order(&cfg, &jobs, &backend)?;
        let n = jobs.len();
        assert_eq!(state.slot_owners.len(), slots, "slot-count mismatch");
        assert_eq!(state.first_start.len(), n, "first_start/job-count mismatch");
        assert_eq!(state.completion.len(), n, "completion/job-count mismatch");
        assert_eq!(state.preempt_count.len(), n, "preempt/job-count mismatch");
        assert_eq!(state.fault_cursor.len(), n, "fault/job-count mismatch");
        assert!(state.arrival_cursor <= n, "arrival cursor out of range");
        for q in &state.queues {
            for &j in q {
                assert!(j < n, "queued job {j} out of range");
            }
        }
        let net = FlowNetwork::restore_with_sink(backend.topology(), sink.clone(), state.net);
        let tracing = sink.enabled();
        let dropped_baseline = sink.dropped();
        let running = state
            .running
            .iter()
            .map(|r| {
                assert!(r.job < n, "running job {} out of range", r.job);
                let spec = &jobs[r.job];
                let placement = Placement::with_base(spec.strategy, policy, r.base);
                let schedule = build_schedule(
                    &spec.model,
                    spec.strategy,
                    &placement,
                    &backend,
                    spec.params,
                );
                Running {
                    job: r.job,
                    base: r.base,
                    exec: ScheduleExecutor::restore(
                        Rc::new(schedule),
                        sink.clone(),
                        r.exec.clone(),
                    ),
                }
            })
            .collect();
        Ok(Cluster {
            cfg,
            jobs,
            backend,
            policy,
            net,
            sink,
            tracing,
            dropped_baseline,
            slotmap: SlotMap::from_owners(state.slot_owners),
            queues: [
                state.queues[0].iter().copied().collect(),
                state.queues[1].iter().copied().collect(),
                state.queues[2].iter().copied().collect(),
            ],
            running,
            order,
            arrival_cursor: state.arrival_cursor,
            next_tag_base: state.next_tag_base,
            first_start: state.first_start,
            completion: state.completion,
            preempt_count: state.preempt_count,
            fault_cursor: state.fault_cursor,
            done_count: state.done_count,
            busy_npu_secs: state.busy_npu_secs,
        })
    }

    /// Scheduler-state gauges for the flight recorder: per-class queue
    /// depth, running jobs, occupied slots and the cumulative
    /// preemption count. One sample per event instant — the recorder
    /// coalesces same-window updates, so this stays cheap even on
    /// event-dense runs.
    fn emit_sched_samples(&self, now: Time) {
        if !self.tracing {
            return;
        }
        let t = now.as_secs();
        for (rank, q) in self.queues.iter().enumerate() {
            let class = JobClass::ALL[rank].name();
            self.sink.record(TraceEvent::Sample {
                t,
                key: format!("queue_depth/{class}").into(),
                value: q.len() as f64,
            });
        }
        self.sink.record(TraceEvent::Sample {
            t,
            key: "running_jobs".into(),
            value: self.running.len() as f64,
        });
        self.sink.record(TraceEvent::Sample {
            t,
            key: "slots_used".into(),
            value: self.slotmap.used() as f64,
        });
        self.sink.record(TraceEvent::Sample {
            t,
            key: "preemptions_total".into(),
            value: self.preempt_count.iter().map(|&c| c as u64).sum::<u64>() as f64,
        });
    }

    fn train_err(&self, job: usize, err: TrainError) -> ClusterError {
        ClusterError::Train {
            job: self.jobs[job].name.clone(),
            err,
        }
    }

    /// Moves every job with `arrival <= now` from the arrival stream
    /// into its class queue.
    fn admit_arrivals(&mut self, now: Time) {
        while let Some(&j) = self.order.get(self.arrival_cursor) {
            if self.jobs[j].arrival > now {
                break;
            }
            self.arrival_cursor += 1;
            let rank = self.jobs[j].class.tenant_rank() as usize;
            self.queues[rank].push_back(j);
            if self.tracing {
                self.sink.record(TraceEvent::IterStage {
                    t: now.as_secs(),
                    label: format!(
                        "job {} queued ({})",
                        self.jobs[j].name,
                        self.jobs[j].class.name()
                    )
                    .into(),
                });
            }
        }
    }

    /// Places queued jobs: classes High→Low, FIFO head-of-line within
    /// a class, lower classes backfilling past a blocked head. Falls
    /// back to preemption for the highest blocked head when enabled.
    fn dispatch(&mut self) -> Result<(), ClusterError> {
        let _prof = fred_telemetry::prof::scope("cluster.dispatch");
        loop {
            let mut placed_any = false;
            for rank in 0..self.queues.len() {
                while let Some(&job) = self.queues[rank].front() {
                    let width = self.jobs[job].npus();
                    let Some(base) = self.slotmap.find(width, self.cfg.fit) else {
                        break;
                    };
                    self.queues[rank].pop_front();
                    self.start_job(job, base, width)?;
                    placed_any = true;
                }
            }
            if placed_any {
                continue;
            }
            if self.cfg.preemption {
                // The highest-class blocked head gets one preemption
                // attempt per round.
                let head =
                    (0..self.queues.len()).find_map(|r| self.queues[r].front().map(|&j| (r, j)));
                if let Some((rank, job)) = head {
                    if self.try_preempt_for(rank, job)? {
                        continue;
                    }
                }
            }
            return Ok(());
        }
    }

    /// Searches for a `width`-slot window freeable by evicting only
    /// strictly-lower-class jobs, minimizing (victim count, base).
    fn preempt_window(&self, width: usize, rank: usize) -> Option<(usize, Vec<usize>)> {
        let _prof = fred_telemetry::prof::scope("cluster.preempt_window");
        let slots = self.slotmap.slots();
        let mut best: Option<(usize, usize, Vec<usize>)> = None;
        for base in 0..=slots.saturating_sub(width) {
            let mut victims: BTreeSet<usize> = BTreeSet::new();
            let mut ok = true;
            for s in base..base + width {
                match self.slotmap.owner_of(s) {
                    None => {}
                    Some(j) => {
                        if (self.jobs[j].class.tenant_rank() as usize) > rank {
                            victims.insert(j);
                        } else {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if !ok || victims.is_empty() {
                continue;
            }
            let cand = (victims.len(), base, victims.into_iter().collect::<Vec<_>>());
            if best.as_ref().is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                best = Some(cand);
            }
        }
        best.map(|(_, base, victims)| (base, victims))
    }

    /// Preempts strictly-lower-class jobs to place the head `job` of
    /// class-rank `rank`. Returns whether a placement happened.
    fn try_preempt_for(&mut self, rank: usize, job: usize) -> Result<bool, ClusterError> {
        let width = self.jobs[job].npus();
        let Some((base, mut victims)) = self.preempt_window(width, rank) else {
            return Ok(false);
        };
        // Requeue victims at the *front* of their class queues so they
        // restart before anything that arrived after them; pushing in
        // reverse arrival order keeps the earliest arrival frontmost.
        victims.sort_by(|&a, &b| {
            self.jobs[a]
                .arrival
                .partial_cmp(&self.jobs[b].arrival)
                .expect("finite arrival time")
                .then(a.cmp(&b))
        });
        for &v in victims.iter().rev() {
            self.preempt(v);
        }
        let head = self.queues[rank].pop_front();
        debug_assert_eq!(head, Some(job));
        self.start_job(job, base, width)?;
        Ok(true)
    }

    /// Evicts a running job: its in-flight flows are removed from the
    /// network (bytes moved so far are lost — the iteration restarts
    /// from scratch), its slots freed, and the job requeued at the
    /// front of its class.
    fn preempt(&mut self, job: usize) {
        let pos = self
            .running
            .iter()
            .position(|r| r.job == job)
            .expect("victim is running");
        let r = self.running.remove(pos);
        // Drop the evictees: a preempted job does not resume mid-flow,
        // and its retired tag range routes to no executor, so any
        // completion notices already in the pipeline are dropped too.
        let _ = self.net.evict_flows_matching(|tag| r.exec.owns_tag(tag));
        self.slotmap.release(job);
        self.preempt_count[job] += 1;
        let rank = self.jobs[job].class.tenant_rank() as usize;
        self.queues[rank].push_front(job);
        if self.tracing {
            self.sink.record(TraceEvent::IterStage {
                t: self.net.now().as_secs(),
                label: format!("job {} preempted", self.jobs[job].name).into(),
            });
        }
    }

    /// Builds, places and settles one job at `base`, on a fresh tag
    /// range.
    fn start_job(&mut self, job: usize, base: usize, width: usize) -> Result<(), ClusterError> {
        let spec = &self.jobs[job];
        let placement = Placement::with_base(spec.strategy, self.policy, base);
        let schedule = build_schedule(
            &spec.model,
            spec.strategy,
            &placement,
            &self.backend,
            spec.params,
        );
        let cfg = ExecConfig {
            tag_base: self.next_tag_base,
            tenant: spec.class.tenant_rank(),
            label: Some(spec.name.clone()),
        };
        let mut exec = ScheduleExecutor::new(Rc::new(schedule), cfg, self.sink.clone());
        self.next_tag_base = exec.tag_end();
        self.slotmap.occupy(base, width, job);
        if self.first_start[job].is_none() {
            self.first_start[job] = Some(self.net.now());
        }
        if self.tracing {
            self.sink.record(TraceEvent::IterStage {
                t: self.net.now().as_secs(),
                label: format!(
                    "job {} start @ slots {}..{}",
                    self.jobs[job].name,
                    base,
                    base + width
                )
                .into(),
            });
        }
        if let Err(e) = exec.settle(&mut self.net, &self.backend) {
            return Err(self.train_err(job, e));
        }
        self.running.push(Running { job, base, exec });
        Ok(())
    }

    /// Earliest pending fault across running jobs. Due times are
    /// job-relative offsets from *first* start; overdue events (a
    /// restart catching up) clamp to `now`.
    fn next_fault_time(&self, now: Time) -> Option<Time> {
        self.running
            .iter()
            .filter_map(|r| {
                let j = r.job;
                let ev = self.jobs[j].faults.events().get(self.fault_cursor[j])?;
                let start = self.first_start[j].expect("running job has started");
                Some(Time::from_secs(start.as_secs() + ev.at.as_secs()).max(now))
            })
            .min()
    }

    /// Fires every fault due by `now` across running jobs; evicted
    /// flows are re-routed over surviving links and re-injected with
    /// their remaining bytes, tags and tenants intact (they may belong
    /// to *any* job whose route crossed the failed link).
    fn fire_faults(&mut self, now: Time) -> Result<(), ClusterError> {
        let mut evicted: Vec<FlowSpec> = Vec::new();
        for k in 0..self.running.len() {
            let j = self.running[k].job;
            if self.jobs[j].faults.is_empty() {
                continue;
            }
            let start = self.first_start[j].expect("running job has started");
            while let Some(ev) = self.jobs[j].faults.events().get(self.fault_cursor[j]) {
                if Time::from_secs(start.as_secs() + ev.at.as_secs()) > now {
                    break;
                }
                self.fault_cursor[j] += 1;
                evicted.extend(ev.apply(&mut self.net).into_iter().map(|e| {
                    FlowSpec::new(e.route, e.remaining_bytes)
                        .with_priority(e.priority)
                        .with_tag(e.tag)
                        .with_tenant(e.tenant)
                }));
            }
        }
        if !evicted.is_empty() {
            let flows = repair_flows(&self.net, &self.backend, evicted)
                .map_err(|e| self.train_err_anon(e))?;
            self.net
                .inject_batch(flows)
                .map_err(|e| self.train_err_anon(TrainError::Route(e)))?;
        }
        Ok(())
    }

    /// A train error not attributable to a single job (fault
    /// re-injection can carry many jobs' flows).
    fn train_err_anon(&self, err: TrainError) -> ClusterError {
        ClusterError::Train {
            job: "<fault re-injection>".into(),
            err,
        }
    }

    /// Routes a flow completion to the owning executor by tag range.
    /// Unowned tags (foreign, or retired by preemption) are dropped.
    fn route_completion(&mut self, tag: u64) -> Result<(), ClusterError> {
        if tag == 0 {
            return Ok(());
        }
        let Some(k) = self.running.iter().position(|r| r.exec.owns_tag(tag)) else {
            return Ok(());
        };
        let job = self.running[k].job;
        if let Err(e) = self.running[k].exec.handle_completion(tag) {
            return Err(self.train_err(job, e));
        }
        Ok(())
    }

    /// Frees the slots of every executor that just finished and
    /// records its completion.
    fn retire_finished(&mut self) {
        let mut k = 0;
        while k < self.running.len() {
            if !self.running[k].exec.is_done() {
                k += 1;
                continue;
            }
            let r = self.running.remove(k);
            self.slotmap.release(r.job);
            self.completion[r.job] = r.exec.completion_time();
            self.done_count += 1;
            if self.tracing {
                self.sink.record(TraceEvent::IterStage {
                    t: self.net.now().as_secs(),
                    label: format!("job {} finished", self.jobs[r.job].name).into(),
                });
            }
        }
    }

    /// Builds the report; solo makespans (the stretch denominator) run
    /// each distinct (model, strategy, params) once on a private
    /// network of the same fabric. Meaningful once
    /// [`Cluster::is_done`].
    pub fn into_report(self) -> ClusterReport {
        let mut solo_cache: BTreeMap<String, f64> = BTreeMap::new();
        let mut records = Vec::with_capacity(self.jobs.len());
        let mut makespan = Time::ZERO;
        for (j, spec) in self.jobs.iter().enumerate() {
            let key = format!(
                "{}|{}|{}x{}",
                spec.model.name, spec.strategy, spec.params.minibatch, spec.params.microbatches
            );
            let solo_secs = *solo_cache.entry(key).or_insert_with(|| {
                simulate(&spec.model, spec.strategy, &self.backend, spec.params)
                    .expect("solo reference run completes on a healthy fabric")
                    .total
                    .as_secs()
            });
            let completion = self.completion[j];
            makespan = makespan.max(completion);
            records.push(JobRecord {
                name: spec.name.clone(),
                class: spec.class,
                npus: spec.npus(),
                arrival: spec.arrival,
                first_start: self.first_start[j].expect("every job completed"),
                completion,
                preemptions: self.preempt_count[j],
                solo_secs,
            });
        }
        if self.tracing {
            // Per-tenant stretch is only knowable here (the solo
            // denominator was just computed); emit one sample per job
            // completion, time-ordered so series stay monotone.
            let mut by_completion: Vec<&JobRecord> = records.iter().collect();
            by_completion.sort_by(|a, b| {
                a.completion
                    .as_secs()
                    .partial_cmp(&b.completion.as_secs())
                    .expect("finite completion")
            });
            for r in by_completion {
                self.sink.record(TraceEvent::Sample {
                    t: r.completion.as_secs(),
                    key: format!("stretch/{}", r.class.name()).into(),
                    value: r.stretch(),
                });
            }
        }
        let dropped_events = self.sink.dropped().saturating_sub(self.dropped_baseline);
        if dropped_events > 0 {
            eprintln!(
                "warning: cluster trace dropped {dropped_events} events (ring full); \
                 stretch/queue series and traces are truncated"
            );
        }
        ClusterReport {
            fabric: self.cfg.fabric.name().into(),
            fit: self.cfg.fit.name().into(),
            preemption: self.cfg.preemption,
            records,
            makespan,
            npu_slots: self.slotmap.slots(),
            busy_npu_secs: self.busy_npu_secs,
            preemptions: self.preempt_count.iter().sum(),
            dropped_events,
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot state and serialization.
// ---------------------------------------------------------------------

use fred_core::codec::{SnapshotError, Value};
use fred_core::snapshot::{
    arr_of, core_state_from_value, core_state_to_value, f64_of, field, time_of, u32s, u32s_of,
    u64_of, usize_of, usizes, usizes_of, v_f64, v_time, v_u64,
};
use fred_sim::netsim::CoreState;
use fred_workloads::exec::ExecState;

/// One running job inside a [`ClusterState`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunningState {
    /// Index into the submitted job list.
    pub job: usize,
    /// First slot of the job's carve-out.
    pub base: usize,
    /// The executor's captured progress.
    pub exec: ExecState,
}

/// Captured cluster progress: everything [`Cluster`] mutates while
/// running, as plain data. The config and job list are configuration
/// and are handed to [`Cluster::restore`] alongside this.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterState {
    /// The shared network.
    pub net: CoreState,
    /// Slot-ownership vector (see
    /// [`crate::placement::SlotMap::owners`]).
    pub slot_owners: Vec<Option<usize>>,
    /// Per-class FIFO queues of pending job indices, front first.
    pub queues: [Vec<usize>; 3],
    /// In-flight jobs in placement order.
    pub running: Vec<RunningState>,
    /// Next unprocessed index into the arrival order.
    pub arrival_cursor: usize,
    /// Next fresh tag-namespace base.
    pub next_tag_base: u64,
    /// First-start instant per job.
    pub first_start: Vec<Option<Time>>,
    /// Completion instant per job (ZERO until finished).
    pub completion: Vec<Time>,
    /// Preemptions suffered per job.
    pub preempt_count: Vec<u32>,
    /// Per-job cursor into its fault plan.
    pub fault_cursor: Vec<usize>,
    /// Jobs completed so far.
    pub done_count: usize,
    /// Integrated slot-seconds of occupancy.
    pub busy_npu_secs: f64,
}

impl ClusterState {
    /// Encodes the state for the shared snapshot codec.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("net".into(), core_state_to_value(&self.net)),
            (
                "slot_owners".into(),
                Value::Arr(
                    self.slot_owners
                        .iter()
                        .map(|o| match o {
                            None => Value::Null,
                            Some(j) => v_u64(*j as u64),
                        })
                        .collect(),
                ),
            ),
            (
                "queues".into(),
                Value::Arr(self.queues.iter().map(|q| usizes(q)).collect()),
            ),
            (
                "running".into(),
                Value::Arr(
                    self.running
                        .iter()
                        .map(|r| {
                            Value::Obj(vec![
                                ("job".into(), v_u64(r.job as u64)),
                                ("base".into(), v_u64(r.base as u64)),
                                ("exec".into(), r.exec.to_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("arrival_cursor".into(), v_u64(self.arrival_cursor as u64)),
            ("next_tag_base".into(), v_u64(self.next_tag_base)),
            (
                "first_start".into(),
                Value::Arr(
                    self.first_start
                        .iter()
                        .map(|t| match t {
                            None => Value::Null,
                            Some(t) => v_time(*t),
                        })
                        .collect(),
                ),
            ),
            (
                "completion".into(),
                Value::Arr(self.completion.iter().map(|&t| v_time(t)).collect()),
            ),
            ("preempt_count".into(), u32s(&self.preempt_count)),
            ("fault_cursor".into(), usizes(&self.fault_cursor)),
            ("done_count".into(), v_u64(self.done_count as u64)),
            ("busy_npu_secs".into(), v_f64(self.busy_npu_secs)),
        ])
    }

    /// Decodes [`ClusterState::to_value`] with typed errors on any
    /// shape mismatch.
    pub fn from_value(v: &Value) -> Result<ClusterState, SnapshotError> {
        let ctx = "cluster";
        let slot_owners = arr_of(field(v, "slot_owners", ctx)?, ctx)?
            .iter()
            .map(|o| match o {
                Value::Null => Ok(None),
                j => usize_of(j, "cluster.slot_owners").map(Some),
            })
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        let queues_raw = arr_of(field(v, "queues", ctx)?, ctx)?;
        if queues_raw.len() != 3 {
            return Err(SnapshotError::Mismatch(
                "cluster.queues: expected 3 class queues".into(),
            ));
        }
        let queues = [
            usizes_of(&queues_raw[0], "cluster.queues")?,
            usizes_of(&queues_raw[1], "cluster.queues")?,
            usizes_of(&queues_raw[2], "cluster.queues")?,
        ];
        let running = arr_of(field(v, "running", ctx)?, ctx)?
            .iter()
            .map(|r| {
                Ok(RunningState {
                    job: usize_of(field(r, "job", "cluster.running")?, "cluster.running.job")?,
                    base: usize_of(field(r, "base", "cluster.running")?, "cluster.running.base")?,
                    exec: ExecState::from_value(field(r, "exec", "cluster.running")?)?,
                })
            })
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        let first_start = arr_of(field(v, "first_start", ctx)?, ctx)?
            .iter()
            .map(|t| match t {
                Value::Null => Ok(None),
                t => time_of(t, "cluster.first_start").map(Some),
            })
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        let completion = arr_of(field(v, "completion", ctx)?, ctx)?
            .iter()
            .map(|t| time_of(t, "cluster.completion"))
            .collect::<Result<Vec<_>, SnapshotError>>()?;
        Ok(ClusterState {
            net: core_state_from_value(field(v, "net", ctx)?)?,
            slot_owners,
            queues,
            running,
            arrival_cursor: usize_of(field(v, "arrival_cursor", ctx)?, ctx)?,
            next_tag_base: u64_of(field(v, "next_tag_base", ctx)?, ctx)?,
            first_start,
            completion,
            preempt_count: u32s_of(field(v, "preempt_count", ctx)?, ctx)?,
            fault_cursor: usizes_of(field(v, "fault_cursor", ctx)?, ctx)?,
            done_count: usize_of(field(v, "done_count", ctx)?, ctx)?,
            busy_npu_secs: f64_of(field(v, "busy_npu_secs", ctx)?, ctx)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobClass;
    use fred_core::placement::Strategy3D;
    use fred_workloads::model::DnnModel;
    use fred_workloads::schedule::ScheduleParams;

    fn resnet_job(name: &str, dp: usize) -> JobSpec {
        let model = DnnModel::resnet152();
        let strategy = Strategy3D::new(1, dp, 1);
        let params = ScheduleParams::sweep_default(&model, strategy);
        JobSpec::new(name, model, strategy, params)
    }

    #[test]
    fn solo_high_job_matches_standalone_trainer_bit_for_bit() {
        for fabric in [FabricConfig::BaselineMesh, FabricConfig::FredD] {
            let job = resnet_job("solo", 4).with_class(JobClass::High);
            let backend = FabricBackend::new(fabric);
            let solo = simulate(&job.model, job.strategy, &backend, job.params).unwrap();
            let report = run_cluster(&ClusterConfig::new(fabric), vec![job]).unwrap();
            let rec = &report.records[0];
            assert_eq!(
                rec.service_secs(),
                solo.total.as_secs(),
                "{} cluster-of-one diverged from simulate()",
                fabric.name()
            );
            assert_eq!(rec.queueing_delay_secs(), 0.0);
            assert_eq!(rec.stretch(), 1.0);
            assert_eq!(report.preemptions, 0);
        }
    }

    #[test]
    fn two_disjoint_jobs_run_concurrently() {
        let jobs = vec![resnet_job("a", 4), resnet_job("b", 4)];
        let report = run_cluster(&ClusterConfig::new(FabricConfig::FredD), jobs).unwrap();
        // Both start at t=0 (20 slots, 4+4 fit side by side).
        for rec in &report.records {
            assert_eq!(rec.queueing_delay_secs(), 0.0);
        }
        assert!(report.utilization() > 0.0);
    }

    #[test]
    fn queueing_delay_appears_when_the_fabric_is_full() {
        // Three 8-wide jobs on 20 slots: two fit, the third queues.
        let jobs = vec![resnet_job("a", 8), resnet_job("b", 8), resnet_job("c", 8)];
        let report = run_cluster(&ClusterConfig::new(FabricConfig::FredD), jobs).unwrap();
        let delayed: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.queueing_delay_secs() > 0.0)
            .collect();
        assert_eq!(delayed.len(), 1, "exactly one job should queue");
        assert_eq!(delayed[0].name, "c");
    }

    #[test]
    fn high_arrival_preempts_a_low_job() {
        // Fill the fabric with Low jobs, then a High job arrives.
        let low_a = resnet_job("low-a", 10).with_class(JobClass::Low);
        let low_b = resnet_job("low-b", 10).with_class(JobClass::Low);
        let backend = FabricBackend::new(FabricConfig::FredD);
        let solo = simulate(&low_a.model, low_a.strategy, &backend, low_a.params).unwrap();
        let high = resnet_job("high", 10)
            .with_class(JobClass::High)
            .with_arrival(Time::from_secs(solo.total.as_secs() * 0.25));
        let report = run_cluster(
            &ClusterConfig::new(FabricConfig::FredD),
            vec![low_a, low_b, high],
        )
        .unwrap();
        assert_eq!(report.preemptions, 1);
        let high_rec = report.records.iter().find(|r| r.name == "high").unwrap();
        assert_eq!(
            high_rec.queueing_delay_secs(),
            0.0,
            "preemption should start the High job immediately"
        );
        let victim = report
            .records
            .iter()
            .find(|r| r.preemptions == 1)
            .expect("one victim");
        assert_eq!(victim.class, JobClass::Low);
        // The victim restarted and still finished.
        assert!(victim.completion > high_rec.first_start);
    }

    #[test]
    fn preemption_disabled_queues_the_high_job_instead() {
        let low_a = resnet_job("low-a", 10).with_class(JobClass::Low);
        let low_b = resnet_job("low-b", 10).with_class(JobClass::Low);
        let backend = FabricBackend::new(FabricConfig::FredD);
        let solo = simulate(&low_a.model, low_a.strategy, &backend, low_a.params).unwrap();
        let high = resnet_job("high", 10)
            .with_class(JobClass::High)
            .with_arrival(Time::from_secs(solo.total.as_secs() * 0.25));
        let report = run_cluster(
            &ClusterConfig::new(FabricConfig::FredD).with_preemption(false),
            vec![low_a, low_b, high],
        )
        .unwrap();
        assert_eq!(report.preemptions, 0);
        let high_rec = report.records.iter().find(|r| r.name == "high").unwrap();
        assert!(high_rec.queueing_delay_secs() > 0.0);
    }

    #[test]
    fn weight_streaming_jobs_are_rejected() {
        let model = DnnModel::gpt3();
        let strategy = Strategy3D::new(1, 1, 2);
        let params = ScheduleParams::sweep_default(&model, strategy);
        let err = run_cluster(
            &ClusterConfig::new(FabricConfig::FredD),
            vec![JobSpec::new("g", model, strategy, params)],
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::UnsupportedExecution { .. }));
    }

    #[test]
    fn too_wide_jobs_are_rejected() {
        let err = run_cluster(
            &ClusterConfig::new(FabricConfig::FredD),
            vec![resnet_job("wide", 21)],
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::JobTooWide { npus: 21, .. }));
    }

    #[test]
    fn snapshot_restore_mid_preemption_run_is_bit_identical() {
        use fred_telemetry::sink::NullSink;
        // Same shape as the preemption test: the High arrival at 25%
        // of the Low solo time forces an eviction; capturing right
        // before it exercises restore with queued + running jobs and
        // in-flight flows.
        let low_a = resnet_job("low-a", 10).with_class(JobClass::Low);
        let low_b = resnet_job("low-b", 10).with_class(JobClass::Low);
        let backend = FabricBackend::new(FabricConfig::FredD);
        let solo = simulate(&low_a.model, low_a.strategy, &backend, low_a.params).unwrap();
        let high_at = solo.total.as_secs() * 0.25;
        let mk = || {
            vec![
                low_a.clone(),
                low_b.clone(),
                resnet_job("high", 10)
                    .with_class(JobClass::High)
                    .with_arrival(Time::from_secs(high_at)),
            ]
        };
        let cfg = ClusterConfig::new(FabricConfig::FredD);
        let reference = run_cluster(&cfg, mk()).unwrap();
        for frac in [0.2, 0.5] {
            let mut cluster = Cluster::new(cfg.clone(), mk(), Rc::new(NullSink)).unwrap();
            cluster
                .run_until(Time::from_secs(high_at * frac / 0.25))
                .unwrap();
            let state = cluster.snapshot();
            // Through the full codec: Value -> binary -> Value -> state.
            let bytes = fred_core::codec::to_binary(&state.to_value());
            let decoded =
                ClusterState::from_value(&fred_core::codec::from_binary(&bytes).unwrap()).unwrap();
            assert_eq!(decoded, state);
            let mut resumed =
                Cluster::restore(cfg.clone(), mk(), Rc::new(NullSink), decoded).unwrap();
            // The restored stack re-captures identically.
            assert_eq!(resumed.snapshot(), state);
            resumed.run_to_completion().unwrap();
            let report = resumed.into_report();
            assert_eq!(report.makespan, reference.makespan, "frac {frac}");
            assert_eq!(report.busy_npu_secs, reference.busy_npu_secs);
            assert_eq!(report.preemptions, reference.preemptions);
            for (a, b) in report.records.iter().zip(&reference.records) {
                assert_eq!(a.first_start, b.first_start);
                assert_eq!(
                    a.completion.as_secs().to_bits(),
                    b.completion.as_secs().to_bits(),
                    "job {} diverged after restore at frac {frac}",
                    a.name
                );
                assert_eq!(a.preemptions, b.preemptions);
            }
        }
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let mk = || {
            vec![
                resnet_job("a", 4).with_class(JobClass::Normal),
                resnet_job("b", 8).with_class(JobClass::Low),
                resnet_job("c", 10)
                    .with_class(JobClass::High)
                    .with_arrival(Time::from_secs(1e-4)),
            ]
        };
        let cfg = ClusterConfig::new(FabricConfig::FredD).with_fit(FitPolicy::BestFit);
        let r1 = run_cluster(&cfg, mk()).unwrap();
        let r2 = run_cluster(&cfg, mk()).unwrap();
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.busy_npu_secs, r2.busy_npu_secs);
        for (a, b) in r1.records.iter().zip(&r2.records) {
            assert_eq!(a.first_start, b.first_start);
            assert_eq!(a.completion, b.completion);
            assert_eq!(a.preemptions, b.preemptions);
        }
    }
}

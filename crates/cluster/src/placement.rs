//! Contiguous NPU-slot carving with fragmentation accounting.
//!
//! Jobs occupy *contiguous* runs of NPU slots: every collective a job
//! issues then stays inside its carve-out (the mesh's snake mapping and
//! FRED's switch both keep contiguous slots physically adjacent), so
//! isolation is spatial as well as bandwidth-level. The cost of
//! contiguity is external fragmentation — free slots split into runs
//! too short for the next arrival — which [`SlotMap::fragmentation`]
//! quantifies and the placement benches report.

/// How a free run is chosen for a new job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitPolicy {
    /// Leftmost run long enough. Fast, tends to concentrate churn at
    /// low slot indices.
    FirstFit,
    /// Shortest run long enough (leftmost on ties). Preserves large
    /// runs for wide arrivals at the price of leaving small stranded
    /// remainders.
    BestFit,
}

impl FitPolicy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FitPolicy::FirstFit => "first-fit",
            FitPolicy::BestFit => "best-fit",
        }
    }
}

/// Ownership map over the fabric's NPU slots.
#[derive(Debug, Clone)]
pub struct SlotMap {
    /// `owner[s]` is the job id occupying slot `s`, if any.
    owner: Vec<Option<usize>>,
}

impl SlotMap {
    /// An all-free map over `slots` NPU slots.
    pub fn new(slots: usize) -> SlotMap {
        SlotMap {
            owner: vec![None; slots],
        }
    }

    /// Total slots.
    pub fn slots(&self) -> usize {
        self.owner.len()
    }

    /// Occupied slots.
    pub fn used(&self) -> usize {
        self.owner.iter().filter(|o| o.is_some()).count()
    }

    /// Free slots.
    pub fn free(&self) -> usize {
        self.slots() - self.used()
    }

    /// The job occupying `slot`, if any.
    pub fn owner_of(&self, slot: usize) -> Option<usize> {
        self.owner[slot]
    }

    /// The full ownership vector, for snapshots.
    pub fn owners(&self) -> &[Option<usize>] {
        &self.owner
    }

    /// Rebuilds a map from a captured ownership vector.
    pub fn from_owners(owner: Vec<Option<usize>>) -> SlotMap {
        SlotMap { owner }
    }

    /// Maximal free runs as `(base, len)`, left to right.
    pub fn free_runs(&self) -> Vec<(usize, usize)> {
        let mut runs = Vec::new();
        let mut s = 0;
        while s < self.owner.len() {
            if self.owner[s].is_none() {
                let base = s;
                while s < self.owner.len() && self.owner[s].is_none() {
                    s += 1;
                }
                runs.push((base, s - base));
            } else {
                s += 1;
            }
        }
        runs
    }

    /// Finds a base for a contiguous `width`-slot carve-out under
    /// `policy`, without occupying it. `None` when no free run is long
    /// enough (the fragmentation-rejection case: [`SlotMap::free`] may
    /// still exceed `width`).
    pub fn find(&self, width: usize, policy: FitPolicy) -> Option<usize> {
        assert!(width > 0, "zero-width placement");
        let runs = self.free_runs();
        match policy {
            FitPolicy::FirstFit => runs.iter().find(|&&(_, len)| len >= width).map(|&(b, _)| b),
            FitPolicy::BestFit => runs
                .iter()
                .filter(|&&(_, len)| len >= width)
                .min_by_key(|&&(base, len)| (len, base))
                .map(|&(b, _)| b),
        }
    }

    /// Occupies `[base, base + width)` for `job`.
    ///
    /// # Panics
    ///
    /// Panics if any slot in the range is already owned — the
    /// scheduler only occupies windows [`SlotMap::find`] (or the
    /// preemption search) returned.
    pub fn occupy(&mut self, base: usize, width: usize, job: usize) {
        for s in base..base + width {
            assert!(
                self.owner[s].is_none(),
                "slot {s} already owned by job {:?}",
                self.owner[s]
            );
            self.owner[s] = Some(job);
        }
    }

    /// Frees every slot owned by `job`, returning how many were freed.
    pub fn release(&mut self, job: usize) -> usize {
        let mut freed = 0;
        for o in &mut self.owner {
            if *o == Some(job) {
                *o = None;
                freed += 1;
            }
        }
        freed
    }

    /// External fragmentation in `[0, 1]`: `1 − largest_free_run /
    /// total_free`. Zero when free space is one run (or none at all);
    /// approaching one as free slots shatter into unusable slivers.
    pub fn fragmentation(&self) -> f64 {
        let free = self.free();
        if free == 0 {
            return 0.0;
        }
        let largest = self
            .free_runs()
            .iter()
            .map(|&(_, len)| len)
            .max()
            .unwrap_or(0);
        1.0 - largest as f64 / free as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_takes_the_leftmost_adequate_run() {
        let mut m = SlotMap::new(10);
        // Occupy [2,4) and [7,9): free runs are [0,2), [4,7), [9,10).
        m.occupy(2, 2, 0);
        m.occupy(7, 2, 1);
        assert_eq!(m.free_runs(), vec![(0, 2), (4, 3), (9, 1)]);
        assert_eq!(m.find(2, FitPolicy::FirstFit), Some(0));
        assert_eq!(m.find(3, FitPolicy::FirstFit), Some(4));
    }

    #[test]
    fn best_fit_takes_the_tightest_run_leftmost_on_ties() {
        let mut m = SlotMap::new(10);
        m.occupy(2, 2, 0);
        m.occupy(7, 2, 1);
        // Width 2 fits [0,2) exactly (len 2) — tighter than [4,7).
        assert_eq!(m.find(2, FitPolicy::BestFit), Some(0));
        // Width 1 fits [9,10) exactly.
        assert_eq!(m.find(1, FitPolicy::BestFit), Some(9));
    }

    #[test]
    fn exact_fit_fills_the_map_completely() {
        let mut m = SlotMap::new(8);
        let b0 = m.find(8, FitPolicy::FirstFit).unwrap();
        m.occupy(b0, 8, 0);
        assert_eq!(m.free(), 0);
        assert_eq!(m.find(1, FitPolicy::FirstFit), None);
        assert_eq!(m.fragmentation(), 0.0);
        assert_eq!(m.release(0), 8);
        assert_eq!(m.free(), 8);
    }

    #[test]
    fn fragmentation_rejects_despite_enough_total_free() {
        let mut m = SlotMap::new(10);
        // Leave free runs of 2+2+2 = 6 slots: a width-4 job is
        // rejected even though 6 > 4.
        m.occupy(2, 2, 0);
        m.occupy(6, 2, 1);
        assert_eq!(m.free(), 6);
        assert_eq!(m.find(4, FitPolicy::FirstFit), None);
        assert_eq!(m.find(4, FitPolicy::BestFit), None);
        // Largest run is 2 of 6 free.
        assert!((m.fragmentation() - (1.0 - 2.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn release_heals_fragmentation() {
        let mut m = SlotMap::new(6);
        m.occupy(0, 2, 0);
        m.occupy(2, 2, 1);
        m.occupy(4, 2, 2);
        m.release(1);
        assert!(m.fragmentation() > 0.0 || m.free_runs().len() == 1);
        m.release(0);
        // Free runs [0,4): one run, no fragmentation.
        assert_eq!(m.free_runs(), vec![(0, 4)]);
        assert_eq!(m.fragmentation(), 0.0);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn double_occupy_panics() {
        let mut m = SlotMap::new(4);
        m.occupy(0, 2, 0);
        m.occupy(1, 2, 1);
    }
}

//! Seeded job-arrival generation.
//!
//! A Poisson process over [`Rng64`]: exponentially distributed
//! inter-arrival gaps, templates and priority classes drawn from fixed
//! mixes. The same seed always produces the same trace — cluster
//! benches sweep offered load by scaling the arrival rate, never by
//! re-rolling randomness. Trace-driven runs skip this module entirely:
//! a hand-written `Vec<JobSpec>` is already a trace.

use fred_core::placement::Strategy3D;
use fred_sim::rng::Rng64;
use fred_sim::time::Time;
use fred_workloads::model::DnnModel;
use fred_workloads::schedule::ScheduleParams;

use crate::job::{JobClass, JobSpec};

/// A job shape arrivals are drawn from: model + strategy (+ the
/// paper-default schedule parameters for that pair).
#[derive(Debug, Clone)]
pub struct JobTemplate {
    /// The model to train.
    pub model: DnnModel,
    /// 3D parallelism degrees.
    pub strategy: Strategy3D,
    /// Schedule parameters ([`ScheduleParams::sweep_default`]).
    pub params: ScheduleParams,
    /// Short name stem for generated jobs.
    pub stem: &'static str,
}

impl JobTemplate {
    /// A template with sweep-default schedule parameters.
    pub fn new(model: DnnModel, strategy: Strategy3D, stem: &'static str) -> JobTemplate {
        let params = ScheduleParams::sweep_default(&model, strategy);
        JobTemplate {
            model,
            strategy,
            params,
            stem,
        }
    }

    /// NPU slots one instance needs.
    pub fn npus(&self) -> usize {
        self.strategy.worker_count()
    }
}

/// The default multi-tenant mix: weight-stationary zoo entries at
/// widths from 2 to half the 20-NPU wafer, so several jobs co-run and
/// fragmentation actually bites. (Weight-streaming models are
/// excluded — they stream to every NPU and cannot share the fabric.)
pub fn paper_mix() -> Vec<JobTemplate> {
    vec![
        JobTemplate::new(
            DnnModel::transformer_17b(),
            Strategy3D::new(2, 1, 1),
            "t17b",
        ),
        JobTemplate::new(DnnModel::resnet152(), Strategy3D::new(1, 4, 1), "rn152"),
        JobTemplate::new(
            DnnModel::transformer_17b(),
            Strategy3D::new(2, 2, 1),
            "t17b",
        ),
        JobTemplate::new(DnnModel::resnet152(), Strategy3D::new(1, 5, 1), "rn152"),
        JobTemplate::new(
            DnnModel::transformer_17b(),
            Strategy3D::new(2, 2, 2),
            "t17b",
        ),
        JobTemplate::new(
            DnnModel::transformer_17b(),
            Strategy3D::new(2, 5, 1),
            "t17b",
        ),
    ]
}

/// Class mix `[High, Normal, Low]` fractions: mostly Normal, with
/// enough High traffic to exercise preemption and enough Low to give
/// it victims.
pub const DEFAULT_CLASS_MIX: [f64; 3] = [0.2, 0.6, 0.2];

/// Draws `count` jobs from a seeded Poisson process at `rate` jobs per
/// second: inter-arrival gaps are `Exp(rate)`, templates uniform over
/// `templates`, classes from `class_mix` (fractions over
/// [`JobClass::ALL`]). Deterministic in `seed`.
///
/// # Panics
///
/// Panics on an empty template list, a non-positive rate, or a class
/// mix that does not sum to ~1.
pub fn poisson_arrivals(
    templates: &[JobTemplate],
    rate: f64,
    count: usize,
    class_mix: [f64; 3],
    seed: u64,
) -> Vec<JobSpec> {
    assert!(!templates.is_empty(), "no job templates");
    assert!(
        rate > 0.0 && rate.is_finite(),
        "arrival rate must be positive"
    );
    let mix_sum: f64 = class_mix.iter().sum();
    assert!((mix_sum - 1.0).abs() < 1e-9, "class mix must sum to 1");

    let mut rng = Rng64::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut jobs = Vec::with_capacity(count);
    for k in 0..count {
        t += rng.gen_exp(rate);
        let tpl = &templates[rng.gen_range(0, templates.len())];
        let u = rng.gen_f64();
        let class = if u < class_mix[0] {
            JobClass::High
        } else if u < class_mix[0] + class_mix[1] {
            JobClass::Normal
        } else {
            JobClass::Low
        };
        jobs.push(
            JobSpec::new(
                format!("{}-{k}", tpl.stem),
                tpl.model.clone(),
                tpl.strategy,
                tpl.params,
            )
            .with_class(class)
            .with_arrival(Time::from_secs(t)),
        );
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let mix = paper_mix();
        let a = poisson_arrivals(&mix, 10.0, 12, DEFAULT_CLASS_MIX, 0xC0FFEE);
        let b = poisson_arrivals(&mix, 10.0, 12, DEFAULT_CLASS_MIX, 0xC0FFEE);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.class, y.class);
            assert_eq!(x.strategy.worker_count(), y.strategy.worker_count());
        }
        let c = poisson_arrivals(&mix, 10.0, 12, DEFAULT_CLASS_MIX, 0xBEEF);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.arrival != y.arrival),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_schedulable() {
        let mix = paper_mix();
        let jobs = poisson_arrivals(&mix, 5.0, 40, DEFAULT_CLASS_MIX, 7);
        for w in jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        assert!(jobs.iter().all(JobSpec::is_schedulable));
        // With 40 draws at a 20/60/20 mix, all three classes appear.
        for class in JobClass::ALL {
            assert!(jobs.iter().any(|j| j.class == class), "{class:?} missing");
        }
    }

    #[test]
    fn mean_gap_tracks_the_rate() {
        let mix = paper_mix();
        let jobs = poisson_arrivals(&mix, 2.0, 400, DEFAULT_CLASS_MIX, 99);
        let span = jobs.last().unwrap().arrival.as_secs();
        let mean_gap = span / 400.0;
        assert!((mean_gap - 0.5).abs() < 0.1, "mean gap {mean_gap}");
    }
}

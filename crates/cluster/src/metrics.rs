//! Job-level SLO metrics: queueing delay, makespan stretch, fairness
//! and fabric utilization.
//!
//! The cluster's service quality is judged per *job*, not per flow:
//! how long a job waited for slots, how much slower it ran sharing the
//! fabric than it would have run alone (stretch), and how evenly that
//! slowdown was spread across tenants (Jain's index over per-job
//! speed).

use fred_sim::time::Time;

use crate::job::JobClass;

/// Outcome of one completed job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job display name.
    pub name: String,
    /// Priority class it ran under.
    pub class: JobClass,
    /// Contiguous NPU slots it occupied.
    pub npus: usize,
    /// When it arrived at the cluster.
    pub arrival: Time,
    /// When it first started running (first placement; preemption does
    /// not reset this).
    pub first_start: Time,
    /// When its last task finished.
    pub completion: Time,
    /// Times it was preempted and requeued.
    pub preemptions: u32,
    /// Makespan of the same job running alone on the same fabric — the
    /// stretch denominator.
    pub solo_secs: f64,
}

impl JobRecord {
    /// Seconds spent queued before first starting.
    pub fn queueing_delay_secs(&self) -> f64 {
        self.first_start.since(self.arrival).as_secs()
    }

    /// Seconds from first start to completion, including any time lost
    /// to preemption and restart.
    pub fn service_secs(&self) -> f64 {
        self.completion.since(self.first_start).as_secs()
    }

    /// Makespan stretch: shared-fabric service time over solo
    /// makespan. 1.0 = no interference; 2.0 = the job took twice as
    /// long as it would have alone.
    ///
    /// A non-positive `solo_secs` denominator (a degenerate or
    /// zero-length solo reference) is defined as stretch 1.0 rather
    /// than `NaN`/`inf`: a `NaN` here would silently poison every
    /// aggregate built on top (quantiles panic in their comparator,
    /// means and Jain's index propagate it into `BENCH_*.json`).
    pub fn stretch(&self) -> f64 {
        if self.solo_secs <= 0.0 {
            return 1.0;
        }
        self.service_secs() / self.solo_secs
    }
}

/// Aggregate outcome of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Fabric configuration name.
    pub fabric: String,
    /// Fit policy name.
    pub fit: String,
    /// Whether preemption was enabled.
    pub preemption: bool,
    /// Per-job outcomes, in submission order.
    pub records: Vec<JobRecord>,
    /// Completion time of the last job (absolute; arrivals start at 0).
    pub makespan: Time,
    /// NPU slots the fabric offers.
    pub npu_slots: usize,
    /// Occupied-slot-seconds integrated over the run.
    pub busy_npu_secs: f64,
    /// Total preemption events.
    pub preemptions: u32,
    /// Trace events the sink lost during this run (ring overflow).
    /// Zero for untraced runs; when non-zero the recorded series and
    /// traces are truncated and the run warned on stderr.
    pub dropped_events: u64,
}

impl ClusterReport {
    /// Fraction of offered NPU-seconds actually occupied by placed
    /// jobs, `busy / (slots × makespan)`.
    pub fn utilization(&self) -> f64 {
        let offered = self.npu_slots as f64 * self.makespan.as_secs();
        if offered == 0.0 {
            0.0
        } else {
            self.busy_npu_secs / offered
        }
    }

    /// The `q`-quantile of per-job queueing delay (seconds).
    pub fn queueing_delay_secs(&self, q: f64) -> f64 {
        percentile(
            &self
                .records
                .iter()
                .map(JobRecord::queueing_delay_secs)
                .collect::<Vec<_>>(),
            q,
        )
    }

    /// The `q`-quantile of per-job makespan stretch. 1.0 (no observed
    /// slowdown) for a run with zero completed jobs.
    pub fn stretch(&self, q: f64) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        percentile(
            &self
                .records
                .iter()
                .map(JobRecord::stretch)
                .collect::<Vec<_>>(),
            q,
        )
    }

    /// Mean makespan stretch across jobs. 1.0 (no observed slowdown)
    /// for a run with zero completed jobs.
    pub fn mean_stretch(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.records.iter().map(JobRecord::stretch).sum::<f64>() / self.records.len() as f64
    }

    /// Jain's fairness index over per-job *speed* (1/stretch): 1.0
    /// when every job suffers the same slowdown, toward `1/n` when one
    /// job absorbs all the interference.
    ///
    /// Defined for every degenerate input: zero completed jobs is
    /// vacuously fair (1.0), and jobs whose speed is non-finite (a
    /// zero-stretch record from an instant completion) are skipped
    /// rather than letting `inf` turn the whole index into `NaN`.
    pub fn jain_fairness(&self) -> f64 {
        let speeds: Vec<f64> = self
            .records
            .iter()
            .map(|r| 1.0 / r.stretch())
            .filter(|s| s.is_finite())
            .collect();
        if speeds.is_empty() {
            return 1.0;
        }
        jain(&speeds)
    }
}

/// The `q`-quantile (0 < q ≤ 1) by the nearest-rank rule on a sorted
/// copy: element `⌈q·n⌉ − 1`. Zero for an empty slice.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite metric"));
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`: 1.0 for equal shares,
/// `1/n` when one participant takes everything. Zero for empty input.
pub fn jain(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 0.0;
    }
    sum * sum / (xs.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 0.5), 2.0);
        assert_eq!(percentile(&v, 0.75), 3.0);
        assert_eq!(percentile(&v, 0.99), 4.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        assert_eq!(percentile(&[7.0], 0.01), 7.0);
    }

    #[test]
    fn jain_brackets_equal_and_maximally_unequal_shares() {
        assert!((jain(&[2.0, 2.0, 2.0, 2.0]) - 1.0).abs() < 1e-12);
        let lopsided = jain(&[1.0, 0.0, 0.0, 0.0]);
        assert!((lopsided - 0.25).abs() < 1e-12);
        assert_eq!(jain(&[]), 0.0);
    }

    #[test]
    fn record_derived_metrics() {
        let r = JobRecord {
            name: "j".into(),
            class: JobClass::Normal,
            npus: 4,
            arrival: Time::from_secs(1.0),
            first_start: Time::from_secs(3.0),
            completion: Time::from_secs(7.0),
            preemptions: 0,
            solo_secs: 2.0,
        };
        assert_eq!(r.queueing_delay_secs(), 2.0);
        assert_eq!(r.service_secs(), 4.0);
        assert_eq!(r.stretch(), 2.0);
    }

    fn record(service: f64, solo: f64) -> JobRecord {
        JobRecord {
            name: "j".into(),
            class: JobClass::Normal,
            npus: 4,
            arrival: Time::ZERO,
            first_start: Time::ZERO,
            completion: Time::from_secs(service),
            preemptions: 0,
            solo_secs: solo,
        }
    }

    fn report(records: Vec<JobRecord>) -> ClusterReport {
        ClusterReport {
            fabric: "fred-d".into(),
            fit: "first-fit".into(),
            preemption: true,
            records,
            makespan: Time::ZERO,
            npu_slots: 20,
            busy_npu_secs: 0.0,
            preemptions: 0,
            dropped_events: 0,
        }
    }

    #[test]
    fn zero_solo_makespan_defines_stretch_as_one() {
        // Degenerate denominator: 0/0 and x/0 both stay finite.
        assert_eq!(record(0.0, 0.0).stretch(), 1.0);
        assert_eq!(record(4.0, 0.0).stretch(), 1.0);
        assert_eq!(record(4.0, -1.0).stretch(), 1.0);
        assert!(record(4.0, 2.0).stretch() == 2.0, "healthy path unchanged");
    }

    #[test]
    fn empty_report_metrics_are_defined_not_nan() {
        let r = report(Vec::new());
        assert_eq!(r.mean_stretch(), 1.0);
        assert_eq!(r.stretch(0.99), 1.0);
        assert_eq!(r.jain_fairness(), 1.0);
        assert_eq!(r.queueing_delay_secs(0.99), 0.0);
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn degenerate_records_never_poison_aggregates() {
        // One instant completion (stretch 0 → infinite speed), one
        // zero-solo record, one healthy record: every aggregate must
        // stay finite.
        let r = report(vec![record(0.0, 5.0), record(3.0, 0.0), record(4.0, 2.0)]);
        assert!(r.mean_stretch().is_finite());
        assert!(r.stretch(0.5).is_finite());
        let fairness = r.jain_fairness();
        assert!(fairness.is_finite(), "got {fairness}");
        assert!(fairness > 0.0 && fairness <= 1.0);
    }

    #[test]
    fn all_degenerate_records_yield_vacuous_fairness() {
        // Every speed filtered out (all instant completions): defined
        // as vacuously fair rather than NaN.
        let r = report(vec![record(0.0, 5.0), record(0.0, 9.0)]);
        assert_eq!(r.jain_fairness(), 1.0);
    }
}

#![warn(missing_docs)]

//! # fred-cluster — multi-tenant training on one wafer-scale fabric
//!
//! The paper evaluates FRED one job at a time; real wafers are shared.
//! This crate schedules *concurrent* training jobs onto a single
//! fabric and measures the tenancy costs the solo benches cannot see:
//! queueing delay, makespan stretch under interference, fragmentation
//! of the NPU plane, and cross-tenant fairness.
//!
//! * [`job`] — what a tenant submits: a model-zoo entry, a 3D
//!   parallelism strategy, a priority class, an arrival time and an
//!   optional job-relative fault plan,
//! * [`arrivals`] — seeded Poisson arrival generation over the model
//!   zoo (trace-driven runs pass an explicit `Vec<JobSpec>` instead),
//! * [`placement`] — contiguous NPU-slot carving (first-fit /
//!   best-fit) with fragmentation accounting,
//! * [`scheduler`] — the shared-fabric event loop: per-job
//!   [`fred_workloads::exec::ScheduleExecutor`]s interleaved through
//!   one [`fred_sim::netsim::FlowNetwork`], priority classes mapped to
//!   fair-share tenant ranks, preemption and requeue,
//! * [`metrics`] — job-level SLO metrics: queueing delay, stretch,
//!   Jain fairness, utilization.
//!
//! See `DESIGN.md` §9 for the job model, placement rules, isolation
//! semantics and the determinism contract (a cluster of one High-class
//! job is bit-identical to the standalone trainer).

pub mod arrivals;
pub mod job;
pub mod metrics;
pub mod placement;
pub mod scheduler;

pub use job::{JobClass, JobSpec};
pub use metrics::{ClusterReport, JobRecord};
pub use placement::{FitPolicy, SlotMap};
pub use scheduler::{
    run_cluster, run_cluster_traced, Cluster, ClusterConfig, ClusterError, ClusterState,
};

//! The recursive conflict-free collective routing protocol (§5.2–§5.3).
//!
//! Routing takes a set of concurrent [`Flow`]s and a static
//! [`Interconnect`] and produces a [`RoutedNetwork`]: a per-level record
//! of every unit configuration (reduce / distribute / route), the middle
//! subnetwork chosen for each flow, and the recursively routed middles.
//!
//! Per the paper, at each level:
//!
//! 1. flows sharing an input or output unit must use different middle
//!    subnetworks — expressed as a conflict graph coloured with m
//!    colours ([`crate::conflict`]);
//! 2. if both input ports of a unit belong to the same flow, the
//!    reduction feature is activated;
//! 3. if both output ports of a unit belong to the same flow, the
//!    distribution feature is activated;
//! 4. routing then recurses into each middle subnetwork with the induced
//!    flows; a colouring failure at *any* level marks the entire routing
//!    as conflicting (§5.3).
//!
//! The result can be *functionally evaluated*: payloads pushed in at the
//! input ports flow through the configured units, reductions sum
//! element-wise, and [`RoutedNetwork::verify`] proves that every flow's
//! output ports receive exactly the sum of its input ports — the
//! correctness guarantee behind FRED's in-switch collectives.

use std::fmt;

use crate::conflict::{ConflictGraph, RoutingConflict};
use crate::flow::{validate_phase, Flow, FlowError};
use crate::interconnect::{Interconnect, NetKind, PortUnit};

/// Configuration of a 2×m input unit for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InputUnitConfig {
    /// Unused this phase.
    #[default]
    Idle,
    /// Each port independently forwarded to a middle subnetwork
    /// (`None` = port unused).
    Route {
        /// Middle index for the unit's even port.
        out0: Option<usize>,
        /// Middle index for the unit's odd port.
        out1: Option<usize>,
    },
    /// Reduction feature active: both ports belong to one flow; their
    /// sum goes to middle `out`.
    Reduce {
        /// Middle index receiving the reduced value.
        out: usize,
    },
}

/// Configuration of an m×2 output unit for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputUnitConfig {
    /// Unused this phase.
    #[default]
    Idle,
    /// Each port independently fed from a middle subnetwork.
    Route {
        /// Middle index feeding the unit's even port.
        src0: Option<usize>,
        /// Middle index feeding the unit's odd port.
        src1: Option<usize>,
    },
    /// Distribution feature active: the value from middle `src` is
    /// broadcast to both ports.
    Broadcast {
        /// Middle index sourcing the broadcast value.
        src: usize,
    },
}

/// A routed base switch: the flows it must realise locally. Base
/// switches (Fred_m(2), Fred_m(3)) realise any valid flow set among
/// their ports with their internal R/D/RD-μSwitches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafRoute {
    /// Port count (2 or 3).
    pub ports: usize,
    /// Flows realised locally.
    pub flows: Vec<Flow>,
}

/// A routed recursive stage.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedStage {
    /// External port count at this level.
    pub ports: usize,
    /// Number of full input/output units.
    pub r: usize,
    /// Whether the tail port exists.
    pub odd: bool,
    /// Middle subnetwork count.
    pub m: usize,
    /// Middle subnetwork assigned to each flow (indexed like the flow
    /// slice passed to [`route_flows`] at this level).
    pub flow_colors: Vec<usize>,
    /// Per input unit configuration.
    pub input_units: Vec<InputUnitConfig>,
    /// Per output unit configuration.
    pub output_units: Vec<OutputUnitConfig>,
    /// Middle chosen by the input-side demux for the tail port.
    pub demux: Option<usize>,
    /// Middle chosen by the output-side mux for the tail port.
    pub mux: Option<usize>,
    /// Recursively routed middle subnetworks.
    pub middles: Vec<RoutedNetwork>,
}

/// A fully routed (sub)network.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutedNetwork {
    /// A routed base switch.
    Leaf(LeafRoute),
    /// A routed recursive stage.
    Stage(Box<RoutedStage>),
}

/// Errors from [`route_flows`].
#[derive(Debug, Clone, PartialEq)]
pub enum RouteFlowsError {
    /// The flow set itself is invalid (overlapping ports, out of range).
    InvalidFlows(FlowError),
    /// The flows are valid but cannot be routed concurrently (Fig 7j).
    Conflict(RoutingConflict),
}

impl fmt::Display for RouteFlowsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteFlowsError::InvalidFlows(e) => write!(f, "invalid flow set: {e}"),
            RouteFlowsError::Conflict(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for RouteFlowsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouteFlowsError::InvalidFlows(e) => Some(e),
            RouteFlowsError::Conflict(c) => Some(c),
        }
    }
}

impl From<FlowError> for RouteFlowsError {
    fn from(e: FlowError) -> Self {
        RouteFlowsError::InvalidFlows(e)
    }
}

impl From<RoutingConflict> for RouteFlowsError {
    fn from(c: RoutingConflict) -> Self {
        RouteFlowsError::Conflict(c)
    }
}

/// Routes `flows` concurrently on `net`.
///
/// # Errors
///
/// * [`RouteFlowsError::InvalidFlows`] if flows overlap on a port or
///   reference ports outside the interconnect;
/// * [`RouteFlowsError::Conflict`] if the conflict graph at some
///   recursion level cannot be coloured with `net.m()` colours.
pub fn route_flows(net: &Interconnect, flows: &[Flow]) -> Result<RoutedNetwork, RouteFlowsError> {
    validate_phase(flows, net.ports())?;
    Ok(route_level(net, flows, 0)?)
}

fn route_level(
    net: &Interconnect,
    flows: &[Flow],
    depth: usize,
) -> Result<RoutedNetwork, RoutingConflict> {
    match net.kind() {
        NetKind::Leaf2 | NetKind::Leaf3 => Ok(RoutedNetwork::Leaf(LeafRoute {
            ports: net.ports(),
            flows: flows.to_vec(),
        })),
        NetKind::Stage { r, odd, middle } => {
            let r = *r;
            let odd = *odd;
            let m = net.m();
            let graph = ConflictGraph::from_flows(flows, |p| net.unit_of_port(p));
            let colors = graph.color(m).ok_or(RoutingConflict {
                ports: net.ports(),
                m,
                flows: flows.len(),
                depth,
            })?;

            // Port -> owning flow on the input/output side.
            let mut in_owner: Vec<Option<usize>> = vec![None; net.ports()];
            let mut out_owner: Vec<Option<usize>> = vec![None; net.ports()];
            for (i, f) in flows.iter().enumerate() {
                for &p in f.ips() {
                    in_owner[p] = Some(i);
                }
                for &p in f.ops() {
                    out_owner[p] = Some(i);
                }
            }

            let mut input_units = vec![InputUnitConfig::Idle; r];
            let mut output_units = vec![OutputUnitConfig::Idle; r];
            for k in 0..r {
                let (a, b) = (in_owner[2 * k], in_owner[2 * k + 1]);
                input_units[k] = match (a, b) {
                    (Some(fa), Some(fb)) if fa == fb => InputUnitConfig::Reduce { out: colors[fa] },
                    (None, None) => InputUnitConfig::Idle,
                    _ => {
                        let out0 = a.map(|f| colors[f]);
                        let out1 = b.map(|f| colors[f]);
                        debug_assert!(
                            out0.is_none() || out0 != out1,
                            "colouring allowed two flows to share a middle via unit {k}"
                        );
                        InputUnitConfig::Route { out0, out1 }
                    }
                };
                let (a, b) = (out_owner[2 * k], out_owner[2 * k + 1]);
                output_units[k] = match (a, b) {
                    (Some(fa), Some(fb)) if fa == fb => {
                        OutputUnitConfig::Broadcast { src: colors[fa] }
                    }
                    (None, None) => OutputUnitConfig::Idle,
                    _ => {
                        let src0 = a.map(|f| colors[f]);
                        let src1 = b.map(|f| colors[f]);
                        debug_assert!(src0.is_none() || src0 != src1);
                        OutputUnitConfig::Route { src0, src1 }
                    }
                };
            }
            let demux = if odd {
                in_owner[2 * r].map(|f| colors[f])
            } else {
                None
            };
            let mux = if odd {
                out_owner[2 * r].map(|f| colors[f])
            } else {
                None
            };

            // Induced flows per middle subnetwork.
            let tail_mid_port = r; // middle port index for the tail
            let mut induced: Vec<Vec<Flow>> = vec![Vec::new(); m];
            for (i, f) in flows.iter().enumerate() {
                let mut ips = std::collections::BTreeSet::new();
                let mut ops = std::collections::BTreeSet::new();
                for &p in f.ips() {
                    match net.unit_of_port(p) {
                        PortUnit::Unit(k) => {
                            ips.insert(k);
                        }
                        PortUnit::Tail => {
                            ips.insert(tail_mid_port);
                        }
                    }
                }
                for &p in f.ops() {
                    match net.unit_of_port(p) {
                        PortUnit::Unit(k) => {
                            ops.insert(k);
                        }
                        PortUnit::Tail => {
                            ops.insert(tail_mid_port);
                        }
                    }
                }
                let induced_flow =
                    Flow::new(ips, ops).expect("induced flow port sets are non-empty");
                induced[colors[i]].push(induced_flow);
            }

            let middles = induced
                .into_iter()
                .map(|fs| route_level(middle, &fs, depth + 1))
                .collect::<Result<Vec<_>, _>>()?;

            Ok(RoutedNetwork::Stage(Box::new(RoutedStage {
                ports: net.ports(),
                r,
                odd,
                m,
                flow_colors: colors,
                input_units,
                output_units,
                demux,
                mux,
                middles,
            })))
        }
    }
}

/// Errors from functional evaluation of a routed network.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A flow's input port had no payload.
    MissingInput {
        /// The empty port.
        port: usize,
    },
    /// Wrong number of payload slots supplied.
    WrongArity {
        /// Expected slot count (the network's port count).
        expected: usize,
        /// Supplied slot count.
        got: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingInput { port } => {
                write!(f, "no payload supplied on input port {port}")
            }
            EvalError::WrongArity { expected, got } => {
                write!(f, "expected {expected} payload slots, got {got}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// A discrepancy found by [`RoutedNetwork::verify`].
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// The flow whose contract was violated (index into the verified
    /// flow slice).
    pub flow: usize,
    /// The output port where the discrepancy was observed.
    pub port: usize,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flow {} violated at output port {}: {}",
            self.flow, self.port, self.detail
        )
    }
}

impl std::error::Error for VerifyError {}

impl RoutedNetwork {
    /// External port count.
    pub fn ports(&self) -> usize {
        match self {
            RoutedNetwork::Leaf(l) => l.ports,
            RoutedNetwork::Stage(s) => s.ports,
        }
    }

    /// Pushes payloads through the configured datapath. `inputs[p]` is
    /// the payload presented at input port `p` (or `None`). Returns the
    /// payload appearing at each output port.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if the slot count is wrong or a configured
    /// path is missing its payload.
    pub fn evaluate(
        &self,
        inputs: &[Option<Vec<f64>>],
    ) -> Result<Vec<Option<Vec<f64>>>, EvalError> {
        if inputs.len() != self.ports() {
            return Err(EvalError::WrongArity {
                expected: self.ports(),
                got: inputs.len(),
            });
        }
        match self {
            RoutedNetwork::Leaf(l) => {
                let mut out: Vec<Option<Vec<f64>>> = vec![None; l.ports];
                for f in &l.flows {
                    let mut acc: Option<Vec<f64>> = None;
                    for &p in f.ips() {
                        let v = inputs[p]
                            .as_ref()
                            .ok_or(EvalError::MissingInput { port: p })?;
                        acc = Some(match acc {
                            None => v.clone(),
                            Some(a) => crate::microswitch::reduce(&a, v),
                        });
                    }
                    let val = acc.expect("flow has at least one input");
                    for &p in f.ops() {
                        debug_assert!(out[p].is_none(), "output port {p} written twice");
                        out[p] = Some(val.clone());
                    }
                }
                Ok(out)
            }
            RoutedNetwork::Stage(s) => {
                let mid_ports = s.middles[0].ports();
                let mut mid_in: Vec<Vec<Option<Vec<f64>>>> = vec![vec![None; mid_ports]; s.m];
                for (k, cfg) in s.input_units.iter().enumerate() {
                    let v0 = inputs[2 * k].as_ref();
                    let v1 = inputs[2 * k + 1].as_ref();
                    match *cfg {
                        InputUnitConfig::Idle => {}
                        InputUnitConfig::Route { out0, out1 } => {
                            if let Some(c) = out0 {
                                let v = v0.ok_or(EvalError::MissingInput { port: 2 * k })?;
                                mid_in[c][k] = Some(v.clone());
                            }
                            if let Some(c) = out1 {
                                let v = v1.ok_or(EvalError::MissingInput { port: 2 * k + 1 })?;
                                debug_assert!(mid_in[c][k].is_none());
                                mid_in[c][k] = Some(v.clone());
                            }
                        }
                        InputUnitConfig::Reduce { out } => {
                            let a = v0.ok_or(EvalError::MissingInput { port: 2 * k })?;
                            let b = v1.ok_or(EvalError::MissingInput { port: 2 * k + 1 })?;
                            mid_in[out][k] = Some(crate::microswitch::reduce(a, b));
                        }
                    }
                }
                if let Some(c) = s.demux {
                    let v = inputs[2 * s.r]
                        .as_ref()
                        .ok_or(EvalError::MissingInput { port: 2 * s.r })?;
                    mid_in[c][s.r] = Some(v.clone());
                }

                let mid_out: Vec<Vec<Option<Vec<f64>>>> = s
                    .middles
                    .iter()
                    .zip(mid_in)
                    .map(|(mid, input)| mid.evaluate(&input))
                    .collect::<Result<_, _>>()?;

                let mut out: Vec<Option<Vec<f64>>> = vec![None; s.ports];
                for (k, cfg) in s.output_units.iter().enumerate() {
                    match *cfg {
                        OutputUnitConfig::Idle => {}
                        OutputUnitConfig::Route { src0, src1 } => {
                            if let Some(c) = src0 {
                                out[2 * k] = mid_out[c][k].clone();
                            }
                            if let Some(c) = src1 {
                                out[2 * k + 1] = mid_out[c][k].clone();
                            }
                        }
                        OutputUnitConfig::Broadcast { src } => {
                            out[2 * k] = mid_out[src][k].clone();
                            out[2 * k + 1] = mid_out[src][k].clone();
                        }
                    }
                }
                if let Some(c) = s.mux {
                    out[2 * s.r] = mid_out[c][s.r].clone();
                }
                Ok(out)
            }
        }
    }

    /// Proves that this routing realises `flows`: injecting a distinct
    /// payload at every input port, each flow's output ports must carry
    /// exactly the sum of that flow's input payloads, and untouched
    /// output ports must stay empty.
    ///
    /// Payloads are powers of two (exact in `f64`) when the port count
    /// allows, so the check is bit-exact.
    ///
    /// # Errors
    ///
    /// Returns the first discrepancy found.
    ///
    /// # Panics
    ///
    /// Panics if evaluation itself fails, which indicates an internal
    /// routing bug rather than a caller error.
    pub fn verify(&self, flows: &[Flow]) -> Result<(), VerifyError> {
        let p = self.ports();
        let stim = |port: usize| -> f64 {
            if p <= 52 {
                (2.0f64).powi(port as i32)
            } else {
                // Deterministic pseudo-random, distinct per port.
                let x = (port as f64 + 1.0) * 997.0;
                (x * 1.618_033_988_749).fract() + 1.0
            }
        };
        let mut inputs: Vec<Option<Vec<f64>>> = vec![None; p];
        for f in flows {
            for &ip in f.ips() {
                inputs[ip] = Some(vec![stim(ip)]);
            }
        }
        let outputs = self
            .evaluate(&inputs)
            .expect("routed network must evaluate");

        let mut expected: Vec<Option<(usize, f64)>> = vec![None; p];
        for (i, f) in flows.iter().enumerate() {
            let sum: f64 = f.ips().iter().map(|&ip| stim(ip)).sum();
            for &op in f.ops() {
                expected[op] = Some((i, sum));
            }
        }
        for port in 0..p {
            match (&outputs[port], expected[port]) {
                (Some(got), Some((flow, want))) => {
                    let ok = if p <= 52 {
                        got.len() == 1 && got[0] == want
                    } else {
                        got.len() == 1 && (got[0] - want).abs() < 1e-9 * want.abs().max(1.0)
                    };
                    if !ok {
                        return Err(VerifyError {
                            flow,
                            port,
                            detail: format!("expected {want}, got {got:?}"),
                        });
                    }
                }
                (None, Some((flow, want))) => {
                    return Err(VerifyError {
                        flow,
                        port,
                        detail: format!("expected {want}, port carried nothing"),
                    });
                }
                (Some(got), None) => {
                    return Err(VerifyError {
                        flow: usize::MAX,
                        port,
                        detail: format!("port should be idle but carried {got:?}"),
                    });
                }
                (None, None) => {}
            }
        }
        Ok(())
    }

    /// Number of in-fabric reduction operations this routing performs
    /// (stage units with the R feature active, plus leaf-level
    /// reductions).
    pub fn reduction_count(&self) -> usize {
        match self {
            RoutedNetwork::Leaf(l) => l
                .flows
                .iter()
                .map(|f| f.ips().len().saturating_sub(1))
                .sum(),
            RoutedNetwork::Stage(s) => {
                let local = s
                    .input_units
                    .iter()
                    .filter(|c| matches!(c, InputUnitConfig::Reduce { .. }))
                    .count();
                local
                    + s.middles
                        .iter()
                        .map(RoutedNetwork::reduction_count)
                        .sum::<usize>()
            }
        }
    }

    /// Number of in-fabric distribution (broadcast) operations.
    pub fn distribution_count(&self) -> usize {
        match self {
            RoutedNetwork::Leaf(l) => l
                .flows
                .iter()
                .map(|f| f.ops().len().saturating_sub(1))
                .sum(),
            RoutedNetwork::Stage(s) => {
                let local = s
                    .output_units
                    .iter()
                    .filter(|c| matches!(c, OutputUnitConfig::Broadcast { .. }))
                    .count();
                local
                    + s.middles
                        .iter()
                        .map(RoutedNetwork::distribution_count)
                        .sum::<usize>()
            }
        }
    }

    /// Number of active (non-idle) stage units plus active leaves.
    pub fn active_unit_count(&self) -> usize {
        match self {
            RoutedNetwork::Leaf(l) => usize::from(!l.flows.is_empty()),
            RoutedNetwork::Stage(s) => {
                let inputs = s
                    .input_units
                    .iter()
                    .filter(|c| !matches!(c, InputUnitConfig::Idle))
                    .count();
                let outputs = s
                    .output_units
                    .iter()
                    .filter(|c| !matches!(c, OutputUnitConfig::Idle))
                    .count();
                inputs
                    + outputs
                    + s.middles
                        .iter()
                        .map(RoutedNetwork::active_unit_count)
                        .sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(m: usize, p: usize) -> Interconnect {
        Interconnect::new(m, p).unwrap()
    }

    #[test]
    fn routes_single_unicast_everywhere() {
        for p in [2, 3, 4, 5, 8, 11, 12, 16] {
            let fabric = net(2, p);
            for src in 0..p {
                for dst in 0..p {
                    let flows = vec![Flow::unicast(src, dst)];
                    let routed = route_flows(&fabric, &flows)
                        .unwrap_or_else(|e| panic!("P={p} {src}->{dst}: {e}"));
                    routed.verify(&flows).unwrap();
                }
            }
        }
    }

    #[test]
    fn routes_fig7h_two_all_reduces() {
        // Fig 7(h): green AR over {0,1,2} and orange AR over {3,4,5} on
        // Fred2(8).
        let fabric = net(2, 8);
        let flows = vec![
            Flow::all_reduce([0usize, 1, 2]).unwrap(),
            Flow::all_reduce([3usize, 4, 5]).unwrap(),
        ];
        let routed = route_flows(&fabric, &flows).unwrap();
        routed.verify(&flows).unwrap();
        assert!(routed.reduction_count() >= 2);
        assert!(routed.distribution_count() >= 2);
    }

    #[test]
    fn triangle_conflict_on_m2_resolved_by_m3() {
        // Three pairwise-conflicting All-Reduces (circular dependency as
        // in Fig 7j): not routable with m=2, routable with m=3.
        let flows = vec![
            Flow::all_reduce([0usize, 2]).unwrap(),
            Flow::all_reduce([3usize, 4]).unwrap(),
            Flow::all_reduce([1usize, 5]).unwrap(),
        ];
        let err = route_flows(&net(2, 8), &flows).unwrap_err();
        assert!(matches!(err, RouteFlowsError::Conflict(_)));

        let routed = route_flows(&net(3, 8), &flows).unwrap();
        routed.verify(&flows).unwrap();
    }

    #[test]
    fn wafer_wide_all_reduce_uses_reductions() {
        for p in [4usize, 8, 12, 16] {
            let fabric = net(3, p);
            let flows = vec![Flow::all_reduce(0..p).unwrap()];
            let routed = route_flows(&fabric, &flows).unwrap();
            routed.verify(&flows).unwrap();
            // A P-way reduce needs exactly P-1 pairwise reductions.
            assert_eq!(routed.reduction_count(), p - 1, "P={p}");
            assert_eq!(routed.distribution_count(), p - 1, "P={p}");
        }
    }

    #[test]
    fn full_permutations_route_on_benes() {
        // Rearrangeable nonblocking for unicast when m=2 (§5.3): route
        // several full permutations on Fred2(8).
        let fabric = net(2, 8);
        let perms: [[usize; 8]; 4] = [
            [0, 1, 2, 3, 4, 5, 6, 7],
            [7, 6, 5, 4, 3, 2, 1, 0],
            [1, 0, 3, 2, 5, 4, 7, 6],
            [3, 7, 1, 5, 0, 4, 2, 6],
        ];
        for perm in perms {
            let flows: Vec<Flow> = perm
                .iter()
                .enumerate()
                .map(|(s, &d)| Flow::unicast(s, d))
                .collect();
            let routed =
                route_flows(&fabric, &flows).unwrap_or_else(|e| panic!("perm {perm:?}: {e}"));
            routed.verify(&flows).unwrap();
        }
    }

    #[test]
    fn odd_port_network_routes_collectives() {
        let fabric = net(3, 11);
        let flows = vec![
            Flow::all_reduce([0usize, 3, 10]).unwrap(),
            Flow::all_reduce([1usize, 4, 7]).unwrap(),
            Flow::reduce_to([5usize, 8], 9).unwrap(),
        ];
        let routed = route_flows(&fabric, &flows).unwrap();
        routed.verify(&flows).unwrap();
    }

    #[test]
    fn multicast_and_reduce_route() {
        let fabric = net(2, 8);
        let flows = vec![
            Flow::multicast(0, [2, 3, 5]).unwrap(),
            Flow::reduce_to([1, 4, 6], 7).unwrap(),
        ];
        let routed = route_flows(&fabric, &flows).unwrap();
        routed.verify(&flows).unwrap();
    }

    #[test]
    fn asymmetric_flow_ips_ne_ops() {
        let fabric = net(3, 12);
        // Reduce-scatter-ish step: reduce over {0..5}, deliver to {6,7}.
        let flows = vec![Flow::new(0..6, [6, 7]).unwrap()];
        let routed = route_flows(&fabric, &flows).unwrap();
        routed.verify(&flows).unwrap();
    }

    #[test]
    fn invalid_flow_sets_rejected_before_routing() {
        let fabric = net(2, 8);
        let flows = vec![Flow::unicast(0, 1), Flow::unicast(0, 2)];
        assert!(matches!(
            route_flows(&fabric, &flows),
            Err(RouteFlowsError::InvalidFlows(_))
        ));
        let flows = vec![Flow::unicast(0, 99)];
        assert!(matches!(
            route_flows(&fabric, &flows),
            Err(RouteFlowsError::InvalidFlows(_))
        ));
    }

    #[test]
    fn empty_flow_set_routes_trivially() {
        let routed = route_flows(&net(2, 8), &[]).unwrap();
        assert_eq!(routed.reduction_count(), 0);
        assert_eq!(routed.active_unit_count(), 0);
        let out = routed.evaluate(&vec![None; 8]).unwrap();
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn three_concurrent_flows_fig7i() {
        // Fig 7(i): three AR flows on Fred2(8), colourable with 2 colours.
        let flows = vec![
            Flow::all_reduce([0usize, 1]).unwrap(),
            Flow::all_reduce([2usize, 3, 4]).unwrap(),
            Flow::all_reduce([5usize, 6, 7]).unwrap(),
        ];
        let routed = route_flows(&net(2, 8), &flows).unwrap();
        routed.verify(&flows).unwrap();
    }

    #[test]
    fn verify_catches_tampered_routing() {
        let fabric = net(2, 4);
        let flows = vec![Flow::unicast(0, 3)];
        let routed = route_flows(&fabric, &flows).unwrap();
        // Verifying against a different contract must fail.
        let wrong = vec![Flow::unicast(0, 2)];
        assert!(routed.verify(&wrong).is_err());
    }

    #[test]
    fn evaluate_rejects_wrong_arity() {
        let routed = route_flows(&net(2, 4), &[]).unwrap();
        assert!(matches!(
            routed.evaluate(&[None, None]),
            Err(EvalError::WrongArity {
                expected: 4,
                got: 2
            })
        ));
    }

    #[test]
    fn concurrent_all_to_all_step_routes() {
        // One step of All-to-All: shift-by-1 permutation among 6 of 8 ports.
        let group = [0usize, 1, 2, 3, 4, 5];
        let flows: Vec<Flow> = group
            .iter()
            .enumerate()
            .map(|(i, &src)| Flow::unicast(src, group[(i + 1) % group.len()]))
            .collect();
        let routed = route_flows(&net(2, 8), &flows).unwrap();
        routed.verify(&flows).unwrap();
    }
}

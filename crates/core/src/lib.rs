#![warn(missing_docs)]

//! # fred-core — the FRED switch, interconnect, routing and wafer fabric
//!
//! This crate implements the paper's primary contribution (§4–§6):
//!
//! * [`microswitch`] — the R-/D-/RD-μSwitch building blocks (Fig 7e–g),
//! * [`interconnect`] — the recursive Fred_m(P) Clos-like interconnect
//!   for an arbitrary number of ports (Fig 7b–d),
//! * [`flow`] — the flow abstraction: a set of input ports reduced and
//!   broadcast to a set of output ports (§5.1),
//! * [`conflict`] — conflict-graph construction and exact graph
//!   colouring (§5.2, Fig 7i–j),
//! * [`routing`] — the recursive conflict-free routing protocol that
//!   materialises per-μSwitch configurations and evaluates the
//!   configured datapath functionally (§5.2–§5.3),
//! * [`collective`] — simple and compound collective algorithms compiled
//!   to flow steps (Table 2),
//! * [`switch`] — a FRED switch with a control unit storing per-phase
//!   configurations (§6.2.3),
//! * [`fabric`] — the hierarchical 2-level wafer-scale fabric instance
//!   with 20 NPUs and 18 I/O controllers (Fig 8, Table 5),
//! * [`placement`] — the congestion-aware device-placement policy for 3D
//!   parallelism (§5.3, option 4),
//! * [`params`] — physical constants (Table 3) and the Fred-A/B/C/D
//!   evaluation configurations (Table 5),
//! * [`microsim`] — a cycle-level packet model of one FRED switch with
//!   virtual channels, credit flow control, priority preemption and
//!   Go-Back-N retransmission (§5.4, §6.2.3),
//! * [`resolve`] — the §5.3 conflict-resolution strategies (blocking
//!   and endpoint decomposition),
//! * [`multiwafer`] — the §8.3 multi-wafer hierarchy and its
//!   three-step global All-Reduce,
//! * [`codec`] — the workspace's shared serde-free JSON + binary value
//!   codec (no external dependencies),
//! * [`snapshot`] — the versioned [`snapshot::SimState`] container and
//!   the `Value` conversions for every simulator layer's state, the
//!   foundation of bit-identical snapshot/resume.
//!
//! ## Quick example: route two concurrent All-Reduces on Fred₂(8)
//!
//! ```
//! use fred_core::flow::Flow;
//! use fred_core::interconnect::Interconnect;
//! use fred_core::routing::route_flows;
//!
//! let fabric = Interconnect::new(2, 8)?;
//! // The green and orange All-Reduces of Fig 7(h).
//! let flows = vec![
//!     Flow::all_reduce([0, 1, 2])?,
//!     Flow::all_reduce([3, 4, 5])?,
//! ];
//! let routed = route_flows(&fabric, &flows)?;
//! assert!(routed.verify(&flows).is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod codec;
pub mod collective;
pub mod conflict;
pub mod fabric;
pub mod flow;
pub mod interconnect;
pub mod microsim;
pub mod microswitch;
pub mod multiwafer;
pub mod params;
pub mod placement;
pub mod resolve;
pub mod routing;
pub mod snapshot;
pub mod switch;

pub use conflict::RoutingConflict;
pub use flow::Flow;
pub use interconnect::Interconnect;
pub use routing::{route_flows, RoutedNetwork};

//! Routing-conflict resolution strategies (§5.3).
//!
//! When a flow set cannot be routed concurrently, the paper lists four
//! ways out. Option (2), more middle subnetworks, is a construction
//! parameter ([`Interconnect::new`] with m = 3), and option (4),
//! placement, lives in [`crate::placement`]. This module implements the
//! other two as runtime strategies:
//!
//! * **Option 1 — blocking**: peel conflicting flows off and run them
//!   in a later batch ([`route_with_blocking`]). Costly in performance
//!   (serialisation) but always succeeds.
//! * **Option 3 — decomposition**: route the conflict-free subset
//!   in-switch and demote the rest to endpoint-based (unicast ring)
//!   execution, which is nonblocking on the Clos for m ≥ 2
//!   ([`route_with_decomposition`]). No flow is blocked, but the
//!   demoted flows pay the 2(n−1)/n endpoint traffic.

use crate::conflict::ConflictGraph;
use crate::flow::{validate_phase, Flow, FlowError, FlowIdx};
use crate::interconnect::Interconnect;
use crate::routing::{route_flows, RouteFlowsError, RoutedNetwork};

/// One serial batch produced by [`route_with_blocking`]: the flows
/// (by index into the original slice) and their compiled routing.
#[derive(Debug, Clone)]
pub struct RoutedBatch {
    /// Indices into the original flow slice.
    pub members: Vec<FlowIdx>,
    /// The batch's conflict-free routing.
    pub routed: RoutedNetwork,
}

/// Option 1: partitions `flows` into serial batches, each conflict-free
/// on `net`. Batches are built greedily — when routing fails, the flow
/// with the highest top-level conflict degree is deferred to the next
/// batch.
///
/// # Errors
///
/// Returns [`FlowError`] if the flow set itself is invalid (overlapping
/// ports). A valid flow set always yields at least singleton batches.
pub fn route_with_blocking(
    net: &Interconnect,
    flows: &[Flow],
) -> Result<Vec<RoutedBatch>, FlowError> {
    validate_phase(flows, net.ports())?;
    let mut remaining: Vec<usize> = (0..flows.len()).collect();
    let mut batches = Vec::new();
    while !remaining.is_empty() {
        let mut candidate = remaining.clone();
        loop {
            let subset: Vec<Flow> = candidate.iter().map(|&i| flows[i].clone()).collect();
            match route_flows(net, &subset) {
                Ok(routed) => {
                    let members: Vec<FlowIdx> = candidate.iter().map(|&i| FlowIdx(i)).collect();
                    remaining.retain(|i| !candidate.contains(i));
                    batches.push(RoutedBatch { members, routed });
                    break;
                }
                Err(RouteFlowsError::Conflict(_)) => {
                    debug_assert!(candidate.len() > 1, "a single flow can always be routed");
                    // Defer the flow with the highest conflict degree.
                    let graph = ConflictGraph::from_flows(&subset, |p| net.unit_of_port(p));
                    let worst = (0..subset.len())
                        .max_by_key(|&i| (graph.neighbors(i).len(), subset[i].max_port()))
                        .expect("non-empty candidate set");
                    candidate.remove(worst);
                }
                Err(RouteFlowsError::InvalidFlows(e)) => return Err(e),
            }
        }
    }
    Ok(batches)
}

/// Result of [`route_with_decomposition`].
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Flows kept in-switch (indices into the original slice) and their
    /// routing.
    pub in_switch: RoutedBatch,
    /// Flows demoted to endpoint-based execution (§5.3 option 3: e.g.
    /// ring All-Reduce at the NPUs, which is pure unicast traffic and
    /// rearrangeably nonblocking on the fabric).
    pub endpoint: Vec<FlowIdx>,
}

/// Option 3: keeps the largest greedily-found conflict-free subset
/// in-switch and returns the rest for endpoint execution — no flow is
/// blocked.
///
/// # Errors
///
/// Returns [`FlowError`] if the flow set itself is invalid.
pub fn route_with_decomposition(
    net: &Interconnect,
    flows: &[Flow],
) -> Result<Decomposition, FlowError> {
    validate_phase(flows, net.ports())?;
    let mut candidate: Vec<usize> = (0..flows.len()).collect();
    let mut endpoint = Vec::new();
    loop {
        let subset: Vec<Flow> = candidate.iter().map(|&i| flows[i].clone()).collect();
        match route_flows(net, &subset) {
            Ok(routed) => {
                return Ok(Decomposition {
                    in_switch: RoutedBatch {
                        members: candidate.iter().map(|&i| FlowIdx(i)).collect(),
                        routed,
                    },
                    endpoint,
                });
            }
            Err(RouteFlowsError::Conflict(_)) => {
                debug_assert!(!candidate.is_empty());
                let graph = ConflictGraph::from_flows(&subset, |p| net.unit_of_port(p));
                let worst = (0..subset.len())
                    .max_by_key(|&i| (graph.neighbors(i).len(), subset[i].max_port()))
                    .expect("non-empty candidate set");
                endpoint.push(FlowIdx(candidate.remove(worst)));
            }
            Err(RouteFlowsError::InvalidFlows(e)) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_flows() -> Vec<Flow> {
        // Pairwise conflicting on m = 2 (triangle in the conflict graph).
        vec![
            Flow::all_reduce([0usize, 2]).unwrap(),
            Flow::all_reduce([3usize, 4]).unwrap(),
            Flow::all_reduce([1usize, 5]).unwrap(),
        ]
    }

    #[test]
    fn conflict_free_sets_stay_in_one_batch() {
        let net = Interconnect::new(2, 8).unwrap();
        let flows = vec![
            Flow::all_reduce([0usize, 1, 2]).unwrap(),
            Flow::all_reduce([3usize, 4, 5]).unwrap(),
        ];
        let batches = route_with_blocking(&net, &flows).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].members.len(), 2);
    }

    #[test]
    fn blocking_serialises_the_triangle_on_m2() {
        let net = Interconnect::new(2, 8).unwrap();
        let flows = triangle_flows();
        let batches = route_with_blocking(&net, &flows).unwrap();
        assert!(batches.len() >= 2, "triangle must need >= 2 batches on m=2");
        // Every flow appears exactly once across batches.
        let mut all: Vec<usize> = batches
            .iter()
            .flat_map(|b| b.members.iter().map(|f| f.0))
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
        // Each batch verifies functionally.
        for b in &batches {
            let subset: Vec<Flow> = b.members.iter().map(|f| flows[f.0].clone()).collect();
            b.routed.verify(&subset).unwrap();
        }
    }

    #[test]
    fn m3_needs_no_blocking_for_the_triangle() {
        let net = Interconnect::new(3, 8).unwrap();
        let batches = route_with_blocking(&net, &triangle_flows()).unwrap();
        assert_eq!(batches.len(), 1);
    }

    #[test]
    fn decomposition_demotes_minimum_flows() {
        let net = Interconnect::new(2, 8).unwrap();
        let flows = triangle_flows();
        let d = route_with_decomposition(&net, &flows).unwrap();
        // A triangle needs exactly one demotion to become 2-colourable.
        assert_eq!(d.endpoint.len(), 1);
        assert_eq!(d.in_switch.members.len(), 2);
        let subset: Vec<Flow> = d
            .in_switch
            .members
            .iter()
            .map(|f| flows[f.0].clone())
            .collect();
        d.in_switch.routed.verify(&subset).unwrap();
    }

    #[test]
    fn decomposition_keeps_everything_when_possible() {
        let net = Interconnect::new(3, 8).unwrap();
        let d = route_with_decomposition(&net, &triangle_flows()).unwrap();
        assert!(d.endpoint.is_empty());
        assert_eq!(d.in_switch.members.len(), 3);
    }

    #[test]
    fn invalid_flows_rejected() {
        let net = Interconnect::new(2, 8).unwrap();
        let flows = vec![Flow::unicast(0, 1), Flow::unicast(0, 2)];
        assert!(route_with_blocking(&net, &flows).is_err());
        assert!(route_with_decomposition(&net, &flows).is_err());
    }

    #[test]
    fn many_random_pairs_terminate_and_cover() {
        // Dense pairings on a big switch: blocking must terminate with
        // full coverage whatever the conflict structure.
        let net = Interconnect::new(2, 16).unwrap();
        let flows: Vec<Flow> = (0..8)
            .map(|i| Flow::all_reduce([i, 15 - i]).unwrap())
            .collect();
        let batches = route_with_blocking(&net, &flows).unwrap();
        let covered: usize = batches.iter().map(|b| b.members.len()).sum();
        assert_eq!(covered, 8);
    }
}

//! The flow abstraction (§5.1).
//!
//! A *flow* on Fred_m(P) is a pair of port sets: the data on every input
//! port in `IPs` is reduced, and the result is broadcast to every output
//! port in `OPs`. All collective patterns (Table 2) are expressed as one
//! or more flows.

use std::collections::BTreeSet;
use std::fmt;

/// Index of a flow within one routing phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowIdx(pub usize);

impl fmt::Display for FlowIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// A communication flow: reduce over `ips`, broadcast to `ops`.
///
/// ```
/// use fred_core::flow::Flow;
/// let ar = Flow::all_reduce([3, 4, 5])?;
/// assert_eq!(ar.ips(), ar.ops());
/// let mc = Flow::multicast(0, [1, 2])?;
/// assert_eq!(mc.ips().len(), 1);
/// # Ok::<(), fred_core::flow::FlowError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Flow {
    ips: BTreeSet<usize>,
    ops: BTreeSet<usize>,
}

impl Flow {
    /// Creates a flow from explicit input and output port sets.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Empty`] if either set is empty.
    pub fn new(
        ips: impl IntoIterator<Item = usize>,
        ops: impl IntoIterator<Item = usize>,
    ) -> Result<Flow, FlowError> {
        let ips: BTreeSet<usize> = ips.into_iter().collect();
        let ops: BTreeSet<usize> = ops.into_iter().collect();
        if ips.is_empty() || ops.is_empty() {
            return Err(FlowError::Empty);
        }
        Ok(Flow { ips, ops })
    }

    /// A unicast flow: one input port to one output port.
    pub fn unicast(src: usize, dst: usize) -> Flow {
        Flow {
            ips: BTreeSet::from([src]),
            ops: BTreeSet::from([dst]),
        }
    }

    /// A multicast flow: one input port to several output ports.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Empty`] if `dsts` is empty.
    pub fn multicast(src: usize, dsts: impl IntoIterator<Item = usize>) -> Result<Flow, FlowError> {
        Flow::new([src], dsts)
    }

    /// A reduce flow: several input ports reduced to one output port.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Empty`] if `srcs` is empty.
    pub fn reduce_to(srcs: impl IntoIterator<Item = usize>, dst: usize) -> Result<Flow, FlowError> {
        Flow::new(srcs, [dst])
    }

    /// An All-Reduce flow: the same ports act as inputs and outputs.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Empty`] if `group` is empty.
    pub fn all_reduce(group: impl IntoIterator<Item = usize> + Clone) -> Result<Flow, FlowError> {
        Flow::new(group.clone(), group)
    }

    /// The input port set.
    pub fn ips(&self) -> &BTreeSet<usize> {
        &self.ips
    }

    /// The output port set.
    pub fn ops(&self) -> &BTreeSet<usize> {
        &self.ops
    }

    /// The highest port number referenced by this flow.
    pub fn max_port(&self) -> usize {
        let i = self.ips.iter().next_back().copied().unwrap_or(0);
        let o = self.ops.iter().next_back().copied().unwrap_or(0);
        i.max(o)
    }

    /// Whether this flow performs any reduction (more than one input).
    pub fn reduces(&self) -> bool {
        self.ips.len() > 1
    }

    /// Whether this flow performs any distribution (more than one output).
    pub fn distributes(&self) -> bool {
        self.ops.len() > 1
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{:?} -> {:?}}}", self.ips, self.ops)
    }
}

/// Errors constructing or validating flows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// A flow must have at least one input and one output port.
    Empty,
    /// A port appears in the input sets of two different flows.
    OverlappingInputs {
        /// The shared port.
        port: usize,
        /// The two clashing flows.
        flows: (FlowIdx, FlowIdx),
    },
    /// A port appears in the output sets of two different flows.
    OverlappingOutputs {
        /// The shared port.
        port: usize,
        /// The two clashing flows.
        flows: (FlowIdx, FlowIdx),
    },
    /// A flow references a port outside the interconnect.
    PortOutOfRange {
        /// The offending flow.
        flow: FlowIdx,
        /// The offending port.
        port: usize,
        /// Number of ports available.
        ports: usize,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Empty => write!(f, "flow must have at least one input and one output port"),
            FlowError::OverlappingInputs { port, flows } => {
                write!(
                    f,
                    "input port {port} is claimed by both {} and {}",
                    flows.0, flows.1
                )
            }
            FlowError::OverlappingOutputs { port, flows } => {
                write!(
                    f,
                    "output port {port} is claimed by both {} and {}",
                    flows.0, flows.1
                )
            }
            FlowError::PortOutOfRange { flow, port, ports } => {
                write!(
                    f,
                    "{flow} references port {port}, but the switch has only {ports} ports"
                )
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Validates that a set of flows can coexist in one phase: every input
/// port sources at most one flow, every output port sinks at most one
/// flow, and all ports are within range.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_phase(flows: &[Flow], ports: usize) -> Result<(), FlowError> {
    let mut in_owner: Vec<Option<FlowIdx>> = vec![None; ports];
    let mut out_owner: Vec<Option<FlowIdx>> = vec![None; ports];
    for (i, flow) in flows.iter().enumerate() {
        let idx = FlowIdx(i);
        for &p in flow.ips() {
            if p >= ports {
                return Err(FlowError::PortOutOfRange {
                    flow: idx,
                    port: p,
                    ports,
                });
            }
            if let Some(prev) = in_owner[p] {
                return Err(FlowError::OverlappingInputs {
                    port: p,
                    flows: (prev, idx),
                });
            }
            in_owner[p] = Some(idx);
        }
        for &p in flow.ops() {
            if p >= ports {
                return Err(FlowError::PortOutOfRange {
                    flow: idx,
                    port: p,
                    ports,
                });
            }
            if let Some(prev) = out_owner[p] {
                return Err(FlowError::OverlappingOutputs {
                    port: p,
                    flows: (prev, idx),
                });
            }
            out_owner[p] = Some(idx);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_expected_sets() {
        let u = Flow::unicast(1, 5);
        assert_eq!(u.ips(), &BTreeSet::from([1]));
        assert_eq!(u.ops(), &BTreeSet::from([5]));
        assert!(!u.reduces() && !u.distributes());

        let r = Flow::reduce_to([0, 1, 2], 2).unwrap();
        assert!(r.reduces() && !r.distributes());

        let m = Flow::multicast(3, [0, 7]).unwrap();
        assert!(!m.reduces() && m.distributes());

        let ar = Flow::all_reduce([2, 4, 6]).unwrap();
        assert!(ar.reduces() && ar.distributes());
        assert_eq!(ar.max_port(), 6);
    }

    #[test]
    fn empty_sets_rejected() {
        assert_eq!(Flow::new([], [1]).unwrap_err(), FlowError::Empty);
        assert_eq!(
            Flow::new([1], std::iter::empty()).unwrap_err(),
            FlowError::Empty
        );
        assert!(Flow::all_reduce(std::iter::empty::<usize>()).is_err());
    }

    #[test]
    fn phase_validation_accepts_disjoint() {
        let flows = vec![
            Flow::all_reduce([0, 1, 2]).unwrap(),
            Flow::all_reduce([3, 4, 5]).unwrap(),
        ];
        assert!(validate_phase(&flows, 8).is_ok());
    }

    #[test]
    fn phase_validation_rejects_shared_input() {
        let flows = vec![Flow::unicast(0, 1), Flow::unicast(0, 2)];
        assert!(matches!(
            validate_phase(&flows, 4),
            Err(FlowError::OverlappingInputs { port: 0, .. })
        ));
    }

    #[test]
    fn phase_validation_rejects_shared_output() {
        let flows = vec![Flow::unicast(0, 3), Flow::unicast(1, 3)];
        assert!(matches!(
            validate_phase(&flows, 4),
            Err(FlowError::OverlappingOutputs { port: 3, .. })
        ));
    }

    #[test]
    fn input_of_one_flow_may_be_output_of_another() {
        // Port 1 sinks flow A and sources flow B: legal (ports are duplex).
        let flows = vec![Flow::unicast(0, 1), Flow::unicast(1, 0)];
        assert!(validate_phase(&flows, 2).is_ok());
    }

    #[test]
    fn phase_validation_rejects_out_of_range() {
        let flows = vec![Flow::unicast(0, 9)];
        assert!(matches!(
            validate_phase(&flows, 4),
            Err(FlowError::PortOutOfRange { port: 9, .. })
        ));
    }

    #[test]
    fn duplicate_ports_within_one_flow_collapse() {
        let f = Flow::new([1, 1, 2], [3, 3]).unwrap();
        assert_eq!(f.ips().len(), 2);
        assert_eq!(f.ops().len(), 1);
    }
}

//! The workspace's shared serde-free value codec.
//!
//! One [`Value`] tree type with three wire forms:
//!
//! * **JSON text** — [`parse`] / [`to_json`]. The recursive-descent
//!   parser supports exactly the JSON this workspace emits (objects,
//!   arrays, numbers, strings, booleans, null); the emitter reuses the
//!   number/string formatting in [`fred_telemetry::json`], so bench
//!   reports, Prometheus samples and snapshots all render numbers
//!   identically.
//! * **Binary** — [`to_binary`] / [`from_binary`]. A tagged tree with a
//!   magic + version header. Numbers are raw IEEE-754 bits, so the
//!   binary form is exact for *every* `f64` (including `-0.0`, `NaN`
//!   and infinities, which JSON cannot represent) — the preferred form
//!   for simulation snapshots, where bit-exactness is the contract.
//! * **Files** — [`write_binary`] / [`read_binary`] wrap the binary
//!   form with I/O, mapping failures into [`SnapshotError`].
//!
//! This module grew out of `fred_bench::report`, which still re-exports
//! [`Value`] and [`parse`] for its report-diffing surface.

use std::fmt;
use std::path::Path;

use fred_telemetry::json::{push_num, push_str_lit};

/// Magic bytes opening every binary snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"FREDSNAP";

/// Binary codec version. Bump on any wire-format change;
/// [`from_binary`] refuses to decode a mismatched version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64` — this workspace emits no
    /// integers beyond 2^53; larger integers travel as strings, see
    /// `fred_core::snapshot::v_u64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// What went wrong while decoding or restoring a snapshot. Every
/// failure mode of a hostile or damaged snapshot file maps to one of
/// these — never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's codec version is not [`SNAPSHOT_VERSION`].
    BadVersion {
        /// Version found in the file header.
        found: u32,
        /// The version this build decodes.
        expected: u32,
    },
    /// The input ended mid-value.
    Truncated,
    /// The input is structurally invalid (bad tag, bad UTF-8, JSON
    /// syntax error, …).
    Corrupt(String),
    /// The decoded value does not have the shape a state expects
    /// (missing section, wrong field type, wrong state version).
    Mismatch(String),
    /// An I/O error while reading or writing a snapshot file.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a FRED snapshot (bad magic)"),
            SnapshotError::BadVersion { found, expected } => {
                write!(
                    f,
                    "snapshot codec version {found} (this build reads {expected})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
            SnapshotError::Mismatch(why) => write!(f, "snapshot shape mismatch: {why}"),
            SnapshotError::Io(why) => write!(f, "snapshot i/o error: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------
// JSON text form.
// ---------------------------------------------------------------------

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

/// Renders a value as a compact JSON document. Finite numbers render
/// via [`fred_telemetry::json::push_num`] (shortest round-trip, so
/// `parse(to_json(v))` reproduces every finite number bit-exactly
/// except `-0.0`); non-finite numbers are clamped the same way the
/// bench reports clamp them. State snapshots avoid the clamp by
/// encoding non-finite values as sentinel strings before they reach
/// this emitter (see `fred_core::snapshot::v_f64`).
pub fn to_json(v: &Value) -> String {
    let mut out = String::with_capacity(256);
    emit(v, &mut out);
    out
}

fn emit(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => push_num(out, *n),
        Value::Str(s) => push_str_lit(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_str_lit(out, k);
                out.push(':');
                emit(val, out);
            }
            out.push('}');
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("\\u{hex}: {e}"))?;
                        *pos += 4;
                        // Surrogate pairs are not emitted by this
                        // workspace; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("invalid escape `\\{}`", other as char)),
                }
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------
// Binary form.
// ---------------------------------------------------------------------

// Value tags. Booleans fold into the tag byte (no payload).
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_NUM: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_ARR: u8 = 5;
const TAG_OBJ: u8 = 6;

/// Encodes a value tree as the binary snapshot form:
/// [`SNAPSHOT_MAGIC`], [`SNAPSHOT_VERSION`] (u32 LE), then a tagged
/// tree where numbers are raw `f64` bits (LE) and string/collection
/// lengths are LEB128 varints. Exact for every `f64`.
pub fn to_binary(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    encode(v, &mut out);
    out
}

fn put_varint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn encode(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Num(n) => {
            out.push(TAG_NUM);
            out.extend_from_slice(&n.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Arr(items) => {
            out.push(TAG_ARR);
            put_varint(items.len() as u64, out);
            for item in items {
                encode(item, out);
            }
        }
        Value::Obj(fields) => {
            out.push(TAG_OBJ);
            put_varint(fields.len() as u64, out);
            for (k, val) in fields {
                put_varint(k.len() as u64, out);
                out.extend_from_slice(k.as_bytes());
                encode(val, out);
            }
        }
    }
}

/// Decodes a [`to_binary`] buffer. Bad magic, a mismatched version,
/// truncation and structural corruption all surface as typed
/// [`SnapshotError`] variants — a damaged file can never panic the
/// decoder.
pub fn from_binary(bytes: &[u8]) -> Result<Value, SnapshotError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() {
        return Err(if SNAPSHOT_MAGIC.starts_with(bytes) {
            SnapshotError::Truncated
        } else {
            SnapshotError::BadMagic
        });
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut pos = SNAPSHOT_MAGIC.len();
    let found = get_u32_le(bytes, &mut pos)?;
    if found != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion {
            found,
            expected: SNAPSHOT_VERSION,
        });
    }
    let v = decode(bytes, &mut pos, 0)?;
    if pos != bytes.len() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing byte(s)",
            bytes.len() - pos
        )));
    }
    Ok(v)
}

/// Depth guard: a hostile file of nested array tags must not overflow
/// the decoder's stack.
const MAX_DEPTH: u32 = 512;

fn get_varint(b: &[u8], pos: &mut usize) -> Result<u64, SnapshotError> {
    let mut n: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = b.get(*pos).ok_or(SnapshotError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(SnapshotError::Corrupt("varint overflow".into()));
        }
        n |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(n);
        }
        shift += 7;
    }
}

fn get_bytes<'a>(b: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8], SnapshotError> {
    let end = pos.checked_add(len).ok_or(SnapshotError::Truncated)?;
    let slice = b.get(*pos..end).ok_or(SnapshotError::Truncated)?;
    *pos = end;
    Ok(slice)
}

/// Length-checked little-endian `u32` read: a file truncated inside
/// the 4-byte field is [`SnapshotError::Truncated`], never a slice or
/// `try_into` panic.
fn get_u32_le(b: &[u8], pos: &mut usize) -> Result<u32, SnapshotError> {
    let raw = get_bytes(b, pos, 4)?;
    let arr: [u8; 4] = raw.try_into().map_err(|_| SnapshotError::Truncated)?;
    Ok(u32::from_le_bytes(arr))
}

/// Length-checked little-endian `u64` read (see [`get_u32_le`]).
fn get_u64_le(b: &[u8], pos: &mut usize) -> Result<u64, SnapshotError> {
    let raw = get_bytes(b, pos, 8)?;
    let arr: [u8; 8] = raw.try_into().map_err(|_| SnapshotError::Truncated)?;
    Ok(u64::from_le_bytes(arr))
}

fn get_str(b: &[u8], pos: &mut usize) -> Result<String, SnapshotError> {
    let len = get_varint(b, pos)?;
    let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated)?;
    let raw = get_bytes(b, pos, len)?;
    std::str::from_utf8(raw)
        .map(str::to_owned)
        .map_err(|e| SnapshotError::Corrupt(format!("invalid utf-8 in string: {e}")))
}

fn decode(b: &[u8], pos: &mut usize, depth: u32) -> Result<Value, SnapshotError> {
    if depth > MAX_DEPTH {
        return Err(SnapshotError::Corrupt("nesting too deep".into()));
    }
    let &tag = b.get(*pos).ok_or(SnapshotError::Truncated)?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_NUM => Ok(Value::Num(f64::from_bits(get_u64_le(b, pos)?))),
        TAG_STR => Ok(Value::Str(get_str(b, pos)?)),
        TAG_ARR => {
            let n = get_varint(b, pos)?;
            // A length can promise at most the remaining bytes (each
            // element costs ≥ 1 byte) — reject absurd counts before
            // reserving anything.
            if n > (b.len() - *pos) as u64 {
                return Err(SnapshotError::Truncated);
            }
            let mut items = Vec::with_capacity(n as usize);
            for _ in 0..n {
                items.push(decode(b, pos, depth + 1)?);
            }
            Ok(Value::Arr(items))
        }
        TAG_OBJ => {
            let n = get_varint(b, pos)?;
            if n > (b.len() - *pos) as u64 {
                return Err(SnapshotError::Truncated);
            }
            let mut fields = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let k = get_str(b, pos)?;
                let v = decode(b, pos, depth + 1)?;
                fields.push((k, v));
            }
            Ok(Value::Obj(fields))
        }
        other => Err(SnapshotError::Corrupt(format!("unknown tag {other}"))),
    }
}

/// Writes the binary form of `v` to `path`.
pub fn write_binary(path: impl AsRef<Path>, v: &Value) -> Result<(), SnapshotError> {
    std::fs::write(path, to_binary(v)).map_err(|e| SnapshotError::Io(e.to_string()))
}

/// Reads and decodes a [`write_binary`] file.
pub fn read_binary(path: impl AsRef<Path>) -> Result<Value, SnapshotError> {
    let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
    from_binary(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Obj(vec![
            ("nul".into(), Value::Null),
            ("yes".into(), Value::Bool(true)),
            ("no".into(), Value::Bool(false)),
            ("pi".into(), Value::Num(std::f64::consts::PI)),
            ("neg0".into(), Value::Num(-0.0)),
            ("inf".into(), Value::Num(f64::INFINITY)),
            ("s".into(), Value::Str("hé\"\\llo\n".into())),
            (
                "arr".into(),
                Value::Arr(vec![
                    Value::Num(1.0),
                    Value::Str(String::new()),
                    Value::Obj(vec![("k".into(), Value::Num(1e-300))]),
                ]),
            ),
        ])
    }

    #[test]
    fn binary_round_trip_is_exact_for_all_f64() {
        let v = sample();
        let back = from_binary(&to_binary(&v)).unwrap();
        assert_eq!(back, v);
        // NaN compares unequal through PartialEq; check bits directly.
        let nan = Value::Num(f64::NAN);
        let Value::Num(n) = from_binary(&to_binary(&nan)).unwrap() else {
            panic!("not a number");
        };
        assert_eq!(n.to_bits(), f64::NAN.to_bits());
        // -0.0 keeps its sign through binary (unlike JSON).
        let Value::Num(z) = from_binary(&to_binary(&Value::Num(-0.0))).unwrap() else {
            panic!("not a number");
        };
        assert!(z == 0.0 && z.is_sign_negative());
    }

    #[test]
    fn json_round_trip_for_finite_values() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Num(0.1)),
            ("b".into(), Value::Arr(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\ty".into())),
        ]);
        assert_eq!(parse(&to_json(&v)).unwrap(), v);
        assert_eq!(to_json(&v), r#"{"a":0.1,"b":[true,null],"c":"x\ty"}"#);
    }

    #[test]
    fn damaged_binary_yields_typed_errors_not_panics() {
        let good = to_binary(&sample());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(from_binary(&bad), Err(SnapshotError::BadMagic));
        // Wrong version.
        let mut bad = good.clone();
        bad[8] = 99;
        assert_eq!(
            from_binary(&bad),
            Err(SnapshotError::BadVersion {
                found: 99,
                expected: SNAPSHOT_VERSION
            })
        );
        // Truncation at every prefix length must never panic.
        for cut in 0..good.len() {
            assert!(from_binary(&good[..cut]).is_err(), "prefix {cut} decoded");
        }
        // A flipped byte anywhere must never panic (it may decode to a
        // different valid value, but usually errors).
        for i in 12..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x5A;
            let _ = from_binary(&bad);
        }
        // Unknown tag.
        let mut bad = good.clone();
        bad[12] = 42;
        assert!(matches!(from_binary(&bad), Err(SnapshotError::Corrupt(_))));
        // Absurd array length claims are rejected, not allocated.
        let mut bad = Vec::new();
        bad.extend_from_slice(&SNAPSHOT_MAGIC);
        bad.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        bad.push(TAG_ARR);
        put_varint(u64::MAX, &mut bad);
        assert_eq!(from_binary(&bad), Err(SnapshotError::Truncated));
    }

    #[test]
    fn empty_collections_round_trip() {
        for v in [Value::Arr(Vec::new()), Value::Obj(Vec::new())] {
            assert_eq!(from_binary(&to_binary(&v)).unwrap(), v);
            assert_eq!(parse(&to_json(&v)).unwrap(), v);
        }
    }
}

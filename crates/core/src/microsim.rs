//! Cycle-level packet model of one FRED switch (§5.4, §6.2.3).
//!
//! The flow-level simulator (`fred-sim`) deliberately abstracts packets
//! away; this module models the mechanisms the paper specifies at the
//! packet level for a *single* switch, so their costs and invariants can
//! be measured directly:
//!
//! * **Virtual cut-through with credits** — each input port has one
//!   buffer per virtual channel (24 KB data VCs, 2 KB control VC);
//!   flits (512 B) advance only when buffer space exists.
//! * **One phase at a time** — the switch's circuit configuration
//!   serves one communication operation; a newly arriving
//!   higher-priority operation *preempts* the current one at a packet
//!   boundary (§5.4), after a small reconfiguration delay.
//! * **Go-Back-N retransmission** — packets (4 KB = 8 flits) may be
//!   dropped (injected fault); the receiver NACKs and the sources roll
//!   back to the NACKed packet. A cumulative ACK is returned every 16
//!   data packets; the model accounts its bandwidth overhead.
//!
//! The switch core itself is nonblocking for a routed phase (proved in
//! [`crate::routing`]), so the model charges one flit per cycle per
//! port — line rate — whenever every source buffer of the active
//! message has a flit available.

use crate::flow::Flow;

/// Priority classes map one-to-one onto data VCs (MP > PP > DP).
pub use fred_sim::flow::Priority;

/// Static parameters of the packet model (defaults follow §6.2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroSimParams {
    /// Flit size in bytes (512 B).
    pub flit_bytes: usize,
    /// Data packet size in flits (4 KB / 512 B = 8).
    pub packet_flits: usize,
    /// Data VC buffer capacity per port, in flits (24 KB / 512 B = 48).
    pub data_vc_flits: usize,
    /// Cycles to reconfigure the μSwitch fabric to another stored phase.
    pub reconfig_cycles: u64,
    /// Cumulative ACK period, in data packets (16).
    pub ack_period_packets: u64,
    /// Control (ACK/NACK) packet size in bytes (512 B).
    pub control_packet_bytes: usize,
    /// Probability that a delivered packet is corrupted/dropped
    /// (fault-injection knob for exercising Go-Back-N; 0.0 = ideal).
    pub drop_probability: f64,
    /// Round-trip cycles for a NACK to reach the sources.
    pub nack_rtt_cycles: u64,
}

impl Default for MicroSimParams {
    fn default() -> Self {
        MicroSimParams {
            flit_bytes: 512,
            packet_flits: 8,
            data_vc_flits: 48,
            reconfig_cycles: 4,
            ack_period_packets: 16,
            control_packet_bytes: 512,
            drop_probability: 0.0,
            nack_rtt_cycles: 8,
        }
    }
}

/// One communication operation offered to the switch.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// The flow (reduction inputs / broadcast outputs).
    pub flow: Flow,
    /// Priority class (selects the VC and the preemption order).
    pub priority: Priority,
    /// Payload bytes *per source port*.
    pub bytes: usize,
    /// Cycle at which the sources start injecting.
    pub arrival_cycle: u64,
}

/// Per-message outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageStats {
    /// Cycle the message finished (last flit delivered and acknowledged).
    pub completion_cycle: u64,
    /// Total data flits forwarded, including retransmissions.
    pub flits_forwarded: u64,
    /// Packets retransmitted by Go-Back-N.
    pub packets_retransmitted: u64,
    /// Times this message was preempted by a higher-priority one.
    pub preemptions: u64,
    /// Peak VC-buffer occupancy observed, in flits — bounded by the
    /// 24 KB (48-flit) credit allowance of §6.2.3 and reaching it only
    /// while the message sits preempted.
    pub max_buffer_flits: u64,
}

/// Aggregate outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroSimReport {
    /// Per-message statistics, in offered order.
    pub messages: Vec<MessageStats>,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Control (ACK/NACK) bytes as a fraction of data bytes delivered.
    pub ack_overhead: f64,
    /// Total phase reconfigurations performed.
    pub reconfigurations: u64,
}

#[derive(Debug, Clone)]
struct MsgState {
    msg: Message,
    total_flits: u64,
    /// Flits injected into each source port's VC buffer (same for all
    /// sources — they progress in lockstep at the switch).
    injected: u64,
    /// Flits forwarded through the switch (reduced/broadcast).
    forwarded: u64,
    /// Per-source-port VC buffer occupancy, flits.
    buffer: u64,
    /// Flits forwarded counter including retransmissions.
    forwarded_total: u64,
    retransmissions: u64,
    preemptions: u64,
    /// Pending NACK: (cycle it takes effect, packet index to roll back to).
    pending_nack: Option<(u64, u64)>,
    done_cycle: Option<u64>,
    ack_bytes: u64,
    max_buffer: u64,
}

/// A deterministic xorshift PRNG so fault injection is reproducible.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Cycle-level simulator of one FRED switch.
#[derive(Debug, Clone)]
pub struct MicroSim {
    params: MicroSimParams,
    messages: Vec<MsgState>,
    rng: XorShift,
}

impl MicroSim {
    /// Creates a simulator with the given parameters and fault seed.
    pub fn new(params: MicroSimParams, seed: u64) -> MicroSim {
        MicroSim {
            params,
            messages: Vec::new(),
            rng: XorShift(seed | 1),
        }
    }

    /// Offers a message to the switch.
    pub fn offer(&mut self, msg: Message) {
        let p = &self.params;
        let flits = msg.bytes.div_ceil(p.flit_bytes) as u64;
        // Round up to whole packets.
        let flits = flits.div_ceil(p.packet_flits as u64) * p.packet_flits as u64;
        self.messages.push(MsgState {
            msg,
            total_flits: flits.max(p.packet_flits as u64),
            injected: 0,
            forwarded: 0,
            buffer: 0,
            forwarded_total: 0,
            retransmissions: 0,
            preemptions: 0,
            pending_nack: None,
            done_cycle: None,
            ack_bytes: 0,
            max_buffer: 0,
        });
    }

    /// Runs until every offered message completes, returning the report.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds an internal safety bound
    /// (indicating livelock), which cannot happen for valid inputs.
    pub fn run(mut self) -> MicroSimReport {
        let p = self.params;
        let mut cycle: u64 = 0;
        let mut active: Option<usize> = None;
        let mut reconfig_left: u64 = 0;
        let mut reconfigurations: u64 = 0;
        let safety: u64 = 10_000_000;

        while self.messages.iter().any(|m| m.done_cycle.is_none()) {
            assert!(cycle < safety, "microsim exceeded safety bound (livelock?)");

            // 1. Apply matured NACKs (roll sources back, Go-Back-N).
            for m in &mut self.messages {
                if let Some((at, packet)) = m.pending_nack {
                    if cycle >= at {
                        let flit = packet * p.packet_flits as u64;
                        m.forwarded = flit;
                        m.injected = flit;
                        m.buffer = 0;
                        m.pending_nack = None;
                        m.retransmissions += 1;
                    }
                }
            }

            // 2. Source injection: one flit per cycle per source port,
            //    subject to VC buffer credit.
            for m in &mut self.messages {
                if m.done_cycle.is_none()
                    && m.msg.arrival_cycle <= cycle
                    && m.pending_nack.is_none()
                    && m.injected < m.total_flits
                    && (m.buffer as usize) < p.data_vc_flits
                {
                    m.injected += 1;
                    m.buffer += 1;
                    m.max_buffer = m.max_buffer.max(m.buffer);
                }
            }

            // 3. Phase selection with preemption at packet boundaries.
            let best = self
                .messages
                .iter()
                .enumerate()
                .filter(|(_, m)| {
                    m.done_cycle.is_none()
                        && m.msg.arrival_cycle <= cycle
                        && m.pending_nack.is_none()
                })
                .min_by_key(|(i, m)| (m.msg.priority.rank(), *i))
                .map(|(i, _)| i);
            match (active, best) {
                (None, Some(b)) => {
                    active = Some(b);
                    reconfig_left = p.reconfig_cycles;
                    reconfigurations += 1;
                }
                (Some(a), Some(b)) if a != b => {
                    let cur = &self.messages[a];
                    let cur_done = cur.done_cycle.is_some() || cur.pending_nack.is_some();
                    let higher = self.messages[b].msg.priority.rank() < cur.msg.priority.rank();
                    let at_packet_boundary = cur.forwarded.is_multiple_of(p.packet_flits as u64);
                    if cur_done || (higher && at_packet_boundary) {
                        if !cur_done {
                            self.messages[a].preemptions += 1;
                        }
                        active = Some(b);
                        reconfig_left = p.reconfig_cycles;
                        reconfigurations += 1;
                    }
                }
                (Some(a), _) if self.messages[a].done_cycle.is_some() => {
                    active = None;
                }
                _ => {}
            }

            // 4. Forward one flit of the active message (line rate).
            if let Some(a) = active {
                if reconfig_left > 0 {
                    reconfig_left -= 1;
                } else {
                    let drop_roll = self.rng.next_f64();
                    let m = &mut self.messages[a];
                    if m.done_cycle.is_none() && m.pending_nack.is_none() && m.buffer > 0 {
                        m.buffer -= 1;
                        m.forwarded += 1;
                        m.forwarded_total += 1;
                        if m.forwarded.is_multiple_of(p.packet_flits as u64) {
                            let packet = m.forwarded / p.packet_flits as u64 - 1;
                            if drop_roll < p.drop_probability {
                                // Receiver NACKs; control packet accounted.
                                m.pending_nack = Some((cycle + p.nack_rtt_cycles, packet));
                                m.ack_bytes += p.control_packet_bytes as u64;
                            } else {
                                if (packet + 1).is_multiple_of(p.ack_period_packets) {
                                    m.ack_bytes += p.control_packet_bytes as u64;
                                }
                                if m.forwarded == m.total_flits {
                                    m.done_cycle = Some(cycle + 1);
                                }
                            }
                        }
                    }
                }
            }

            cycle += 1;
        }

        let data_bytes: u64 = self
            .messages
            .iter()
            .map(|m| m.total_flits * p.flit_bytes as u64)
            .sum();
        let ack_bytes: u64 = self.messages.iter().map(|m| m.ack_bytes).sum();
        MicroSimReport {
            messages: self
                .messages
                .iter()
                .map(|m| MessageStats {
                    completion_cycle: m.done_cycle.expect("all complete"),
                    flits_forwarded: m.forwarded_total,
                    packets_retransmitted: m.retransmissions,
                    preemptions: m.preemptions,
                    max_buffer_flits: m.max_buffer,
                })
                .collect(),
            cycles: cycle,
            ack_overhead: if data_bytes == 0 {
                0.0
            } else {
                ack_bytes as f64 / data_bytes as f64
            },
            reconfigurations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ar_message(bytes: usize, priority: Priority, arrival: u64) -> Message {
        Message {
            flow: Flow::all_reduce([0usize, 1, 2, 3]).unwrap(),
            priority,
            bytes,
            arrival_cycle: arrival,
        }
    }

    #[test]
    fn single_message_runs_at_line_rate() {
        let p = MicroSimParams::default();
        let mut sim = MicroSim::new(p, 1);
        // 64 KB = 128 flits.
        sim.offer(ar_message(64 * 1024, Priority::Dp, 0));
        let report = sim.run();
        let stats = report.messages[0];
        // Line rate: ~1 flit/cycle + injection pipeline + reconfig.
        let flits = 128;
        assert!(
            stats.completion_cycle <= flits + p.reconfig_cycles + 4,
            "took {} cycles for {flits} flits",
            stats.completion_cycle
        );
        assert_eq!(stats.packets_retransmitted, 0);
        assert_eq!(stats.preemptions, 0);
    }

    #[test]
    fn higher_priority_preempts_at_packet_boundary() {
        let p = MicroSimParams::default();
        let mut sim = MicroSim::new(p, 1);
        sim.offer(ar_message(64 * 1024, Priority::Dp, 0)); // long DP op
        sim.offer(ar_message(8 * 1024, Priority::Mp, 20)); // short MP op
        let report = sim.run();
        let dp = report.messages[0];
        let mp = report.messages[1];
        assert!(dp.preemptions >= 1, "DP op was never preempted");
        // The MP op must finish long before the DP op.
        assert!(mp.completion_cycle < dp.completion_cycle);
        // And not long after its own ideal completion (16 flits).
        assert!(mp.completion_cycle < 20 + 16 + 3 * p.reconfig_cycles + p.packet_flits as u64 + 4);
    }

    #[test]
    fn ack_overhead_is_below_one_percent() {
        // §6.2.3: accumulative ack per 16 packets keeps overhead < 1%.
        let mut sim = MicroSim::new(MicroSimParams::default(), 1);
        sim.offer(ar_message(1024 * 1024, Priority::Dp, 0));
        let report = sim.run();
        assert!(
            report.ack_overhead < 0.01,
            "ack overhead {}",
            report.ack_overhead
        );
        assert!(report.ack_overhead > 0.0);
    }

    #[test]
    fn go_back_n_retransmits_dropped_packets() {
        let params = MicroSimParams {
            drop_probability: 0.2,
            ..MicroSimParams::default()
        };
        let mut sim = MicroSim::new(params, 42);
        sim.offer(ar_message(64 * 1024, Priority::Dp, 0));
        let report = sim.run();
        let stats = report.messages[0];
        assert!(
            stats.packets_retransmitted > 0,
            "no retransmissions at 20% drop"
        );
        // All 128 real flits were eventually delivered, plus retries.
        assert!(stats.flits_forwarded > 128);
        // Completion still bounded.
        assert!(stats.completion_cycle < 100_000);
    }

    #[test]
    fn lossless_run_is_deterministic() {
        let run = |seed| {
            let mut sim = MicroSim::new(MicroSimParams::default(), seed);
            sim.offer(ar_message(32 * 1024, Priority::Dp, 0));
            sim.offer(ar_message(16 * 1024, Priority::Mp, 10));
            sim.run()
        };
        // Without drops the seed must not matter.
        assert_eq!(run(1).messages, run(999).messages);
    }

    #[test]
    fn equal_priority_is_fifo() {
        let mut sim = MicroSim::new(MicroSimParams::default(), 1);
        sim.offer(ar_message(16 * 1024, Priority::Dp, 0));
        sim.offer(ar_message(16 * 1024, Priority::Dp, 0));
        let report = sim.run();
        assert!(report.messages[0].completion_cycle < report.messages[1].completion_cycle);
        assert_eq!(report.messages[0].preemptions, 0);
    }

    #[test]
    fn credit_backpressure_bounds_buffers() {
        // While preempted, the DP message keeps injecting until its VC
        // buffer fills; credits then stop the source at exactly the
        // 24 KB / 48-flit allowance (§6.2.3).
        let p = MicroSimParams::default();
        let mut sim = MicroSim::new(p, 1);
        sim.offer(ar_message(128 * 1024, Priority::Dp, 0));
        sim.offer(ar_message(64 * 1024, Priority::Mp, 10));
        let report = sim.run();
        let dp = report.messages[0];
        assert!(dp.preemptions >= 1);
        assert_eq!(
            dp.max_buffer_flits as usize, p.data_vc_flits,
            "preempted message should fill its VC allowance exactly"
        );
        // The MP message only buffers while waiting out the DP packet
        // boundary plus the reconfiguration — far below the allowance.
        let mp_bound = (p.packet_flits as u64) + p.reconfig_cycles + 2;
        assert!(
            report.messages[1].max_buffer_flits <= mp_bound,
            "MP buffered {} > {mp_bound}",
            report.messages[1].max_buffer_flits
        );
    }

    #[test]
    fn tiny_message_rounds_up_to_one_packet() {
        let mut sim = MicroSim::new(MicroSimParams::default(), 1);
        sim.offer(ar_message(100, Priority::Control, 0));
        let report = sim.run();
        assert_eq!(report.messages[0].flits_forwarded, 8);
    }
}

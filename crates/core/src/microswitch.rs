//! μSwitches — the fundamental FRED building blocks (Fig 7e–g).
//!
//! FRED's key idea is to "break the switch into the most fundamental
//! components, and add small compute capability to each component" (§4).
//! A μSwitch is a 2×2 (or 2×1 / 1×2) element that, depending on its
//! variant, can additionally *reduce* its two inputs (R), *distribute*
//! one input to both outputs (D), or both (RD).
//!
//! This module defines the variants, their per-phase operating
//! configurations, and a functional evaluation used by the routing
//! verifier to prove that a configured interconnect computes exactly the
//! reduction/broadcast each flow asked for.

use std::fmt;

/// The hardware variant of a μSwitch, fixed at design time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroKind {
    /// Plain Clos 2×2 element: permutation only.
    Plain,
    /// R-μSwitch (Fig 7e): can reduce its two inputs onto one output.
    Reduce,
    /// D-μSwitch (Fig 7f): can broadcast one input to both outputs.
    Distribute,
    /// RD-μSwitch (Fig 7g): both features.
    ReduceDistribute,
}

impl MicroKind {
    /// Whether this variant supports the reduction feature.
    pub fn can_reduce(self) -> bool {
        matches!(self, MicroKind::Reduce | MicroKind::ReduceDistribute)
    }

    /// Whether this variant supports the distribution feature.
    pub fn can_distribute(self) -> bool {
        matches!(self, MicroKind::Distribute | MicroKind::ReduceDistribute)
    }
}

impl fmt::Display for MicroKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MicroKind::Plain => "uSwitch",
            MicroKind::Reduce => "R-uSwitch",
            MicroKind::Distribute => "D-uSwitch",
            MicroKind::ReduceDistribute => "RD-uSwitch",
        };
        f.write_str(s)
    }
}

/// The operating configuration of one 2×2 μSwitch during one
/// communication phase. This is what the control unit stores per phase
/// (§6.2.3: "each packet header has the index to the μSwitch
/// configuration bits").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MicroOp {
    /// Unused this phase.
    #[default]
    Idle,
    /// in0→out0, in1→out1.
    Straight,
    /// in0→out1, in1→out0.
    Cross,
    /// Only one input forwarded to only one output.
    Forward {
        /// Which input (0/1) is forwarded.
        input: u8,
        /// Which output (0/1) receives it.
        output: u8,
    },
    /// Reduction feature active: in0 ⊕ in1 → the given output (R/RD only).
    ReduceTo {
        /// Which output (0/1) carries the reduced value.
        output: u8,
    },
    /// Distribution feature active: the given input → both outputs (D/RD only).
    BroadcastFrom {
        /// Which input (0/1) is broadcast.
        input: u8,
    },
    /// Both features: in0 ⊕ in1 broadcast to both outputs (RD only; used
    /// by a 2-port All-Reduce that bottoms out in a single μSwitch).
    ReduceBroadcast,
}

impl MicroOp {
    /// Whether this configuration requires the reduction feature.
    pub fn needs_reduce(self) -> bool {
        matches!(self, MicroOp::ReduceTo { .. } | MicroOp::ReduceBroadcast)
    }

    /// Whether this configuration requires the distribution feature.
    pub fn needs_distribute(self) -> bool {
        matches!(
            self,
            MicroOp::BroadcastFrom { .. } | MicroOp::ReduceBroadcast
        )
    }

    /// Whether the μSwitch is in use at all.
    pub fn is_active(self) -> bool {
        self != MicroOp::Idle
    }

    /// Checks that a μSwitch of `kind` can execute this configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CapabilityError`] when the configuration needs a feature
    /// the variant lacks.
    pub fn check_capability(self, kind: MicroKind) -> Result<(), CapabilityError> {
        if self.needs_reduce() && !kind.can_reduce() {
            return Err(CapabilityError { kind, op: self });
        }
        if self.needs_distribute() && !kind.can_distribute() {
            return Err(CapabilityError { kind, op: self });
        }
        Ok(())
    }

    /// Functionally evaluates the μSwitch: element-wise over the two
    /// input payloads, producing the two output payloads. Reduction is
    /// element-wise addition (the common All-Reduce operator).
    ///
    /// # Panics
    ///
    /// Panics if a required input is `None` or, in debug builds, if the
    /// two reduced payloads have different lengths.
    pub fn eval(self, in0: Option<&[f64]>, in1: Option<&[f64]>) -> [Option<Vec<f64>>; 2] {
        let take = |x: Option<&[f64]>, which: &str| -> Vec<f64> {
            x.unwrap_or_else(|| panic!("uSwitch config {self:?} requires {which} input"))
                .to_vec()
        };
        match self {
            MicroOp::Idle => [None, None],
            MicroOp::Straight => [in0.map(<[f64]>::to_vec), in1.map(<[f64]>::to_vec)],
            MicroOp::Cross => [in1.map(<[f64]>::to_vec), in0.map(<[f64]>::to_vec)],
            MicroOp::Forward { input, output } => {
                let v = take(if input == 0 { in0 } else { in1 }, "selected");
                let mut out = [None, None];
                out[output as usize] = Some(v);
                out
            }
            MicroOp::ReduceTo { output } => {
                let v = reduce(&take(in0, "first"), &take(in1, "second"));
                let mut out = [None, None];
                out[output as usize] = Some(v);
                out
            }
            MicroOp::BroadcastFrom { input } => {
                let v = take(if input == 0 { in0 } else { in1 }, "selected");
                [Some(v.clone()), Some(v)]
            }
            MicroOp::ReduceBroadcast => {
                let v = reduce(&take(in0, "first"), &take(in1, "second"));
                [Some(v.clone()), Some(v)]
            }
        }
    }
}

/// Element-wise sum of two payloads.
///
/// # Panics
///
/// Panics if the payload lengths differ.
pub fn reduce(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "reduced payloads must have equal length");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// A μSwitch configuration that exceeds the hardware variant's features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapabilityError {
    /// The hardware variant.
    pub kind: MicroKind,
    /// The offending configuration.
    pub op: MicroOp,
}

impl fmt::Display for CapabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cannot execute {:?}", self.kind, self.op)
    }
}

impl std::error::Error for CapabilityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_feature_matrix() {
        assert!(!MicroKind::Plain.can_reduce());
        assert!(!MicroKind::Plain.can_distribute());
        assert!(MicroKind::Reduce.can_reduce());
        assert!(!MicroKind::Reduce.can_distribute());
        assert!(!MicroKind::Distribute.can_reduce());
        assert!(MicroKind::Distribute.can_distribute());
        assert!(MicroKind::ReduceDistribute.can_reduce());
        assert!(MicroKind::ReduceDistribute.can_distribute());
    }

    #[test]
    fn capability_check_rejects_unsupported_ops() {
        assert!(MicroOp::ReduceTo { output: 0 }
            .check_capability(MicroKind::Plain)
            .is_err());
        assert!(MicroOp::ReduceTo { output: 0 }
            .check_capability(MicroKind::Reduce)
            .is_ok());
        assert!(MicroOp::BroadcastFrom { input: 1 }
            .check_capability(MicroKind::Reduce)
            .is_err());
        assert!(MicroOp::ReduceBroadcast
            .check_capability(MicroKind::ReduceDistribute)
            .is_ok());
        assert!(MicroOp::Straight.check_capability(MicroKind::Plain).is_ok());
    }

    #[test]
    fn eval_straight_and_cross() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let [o0, o1] = MicroOp::Straight.eval(Some(&a), Some(&b));
        assert_eq!(o0.unwrap(), a.to_vec());
        assert_eq!(o1.unwrap(), b.to_vec());
        let [o0, o1] = MicroOp::Cross.eval(Some(&a), Some(&b));
        assert_eq!(o0.unwrap(), b.to_vec());
        assert_eq!(o1.unwrap(), a.to_vec());
    }

    #[test]
    fn eval_reduce_sums_elementwise() {
        let [o0, o1] = MicroOp::ReduceTo { output: 1 }.eval(Some(&[1.0, 2.0]), Some(&[10.0, 20.0]));
        assert!(o0.is_none());
        assert_eq!(o1.unwrap(), vec![11.0, 22.0]);
    }

    #[test]
    fn eval_broadcast_duplicates() {
        let [o0, o1] = MicroOp::BroadcastFrom { input: 0 }.eval(Some(&[5.0]), None);
        assert_eq!(o0.unwrap(), vec![5.0]);
        assert_eq!(o1.unwrap(), vec![5.0]);
    }

    #[test]
    fn eval_reduce_broadcast_combines_both() {
        let [o0, o1] = MicroOp::ReduceBroadcast.eval(Some(&[1.0]), Some(&[2.0]));
        assert_eq!(o0.unwrap(), vec![3.0]);
        assert_eq!(o1.unwrap(), vec![3.0]);
    }

    #[test]
    fn eval_forward_routes_single_port() {
        let [o0, o1] = MicroOp::Forward {
            input: 1,
            output: 0,
        }
        .eval(None, Some(&[9.0]));
        assert_eq!(o0.unwrap(), vec![9.0]);
        assert!(o1.is_none());
    }

    #[test]
    fn idle_produces_nothing() {
        let [o0, o1] = MicroOp::Idle.eval(None, None);
        assert!(o0.is_none() && o1.is_none());
        assert!(!MicroOp::Idle.is_active());
        assert!(MicroOp::Straight.is_active());
    }

    #[test]
    #[should_panic(expected = "requires")]
    fn missing_reduce_input_panics() {
        let _ = MicroOp::ReduceTo { output: 0 }.eval(Some(&[1.0]), None);
    }
}

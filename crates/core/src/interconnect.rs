//! The recursive Fred_m(P) interconnect structure (Fig 7b–d).
//!
//! FRED's interconnect is a Clos (m, n = 2, r) network built recursively:
//! an *even* network with P = 2r ports has r input units (2×m) and r
//! output units (m×2) around m middle subnetworks Fred_m(r); an *odd*
//! network with P = 2r + 1 ports additionally connects its last port to
//! every middle subnetwork through a demux (input side) and mux (output
//! side), with middles Fred_m(r + 1) — following Chang & Melhem's
//! arbitrary-size Benes construction. The recursion terminates at the
//! base switches Fred_m(2) (one RD-μSwitch, Fig 7c) and Fred_m(3)
//! (Fig 7d).
//!
//! [`Interconnect`] is the static structure; routing state lives in
//! [`crate::routing::RoutedNetwork`].

use std::fmt;

/// Where a port attaches at one recursion level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortUnit {
    /// The port belongs to full input/output unit `k` (ports 2k, 2k+1).
    Unit(usize),
    /// The port is the odd tail port, attached via the demux/mux.
    Tail,
}

/// A Fred_m(P) interconnect.
///
/// ```
/// use fred_core::interconnect::Interconnect;
/// let net = Interconnect::new(2, 8)?;
/// assert_eq!(net.ports(), 8);
/// assert_eq!(net.m(), 2);
/// // Fred2(8) = 4+4 units around 2 x Fred2(4); Fred2(4) = 2+2 units
/// // around 2 x Fred2(2). 2x2-equivalent uSwitch count: see stats().
/// assert!(net.stats().micro_switches > 0);
/// # Ok::<(), fred_core::interconnect::InterconnectError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interconnect {
    m: usize,
    ports: usize,
    kind: NetKind,
}

/// The shape of one recursion level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetKind {
    /// Base Fred_m(2): a single RD-μSwitch.
    Leaf2,
    /// Base Fred_m(3): a 3×3 base switch with full R/D capability.
    Leaf3,
    /// A recursive stage with `r` full input/output units around `m`
    /// identical middle subnetworks (`odd` adds the tail port).
    Stage {
        /// Number of full 2-port input (and output) units.
        r: usize,
        /// Whether the tail port (number 2r) exists.
        odd: bool,
        /// The shared structure of the m middle subnetworks.
        middle: Box<Interconnect>,
    },
}

/// Aggregate structural statistics, used by the area/power model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterconnectStats {
    /// Total 2×2-equivalent μSwitches (stage units count as m−1
    /// 2×2-equivalents per 2×m unit; Leaf3 counts as 3).
    pub micro_switches: usize,
    /// Demuxes added by odd levels.
    pub demuxes: usize,
    /// Muxes added by odd levels.
    pub muxes: usize,
    /// Stage depth (number of unit columns a worst-case path crosses).
    pub depth: usize,
}

/// Errors constructing an interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterconnectError {
    /// m must be at least 2 for a Clos-style network.
    MiddleCountTooSmall {
        /// The offending m.
        m: usize,
    },
    /// A switch needs at least 2 ports.
    TooFewPorts {
        /// The offending port count.
        ports: usize,
    },
}

impl fmt::Display for InterconnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterconnectError::MiddleCountTooSmall { m } => {
                write!(f, "fred requires m >= 2 middle subnetworks, got {m}")
            }
            InterconnectError::TooFewPorts { ports } => {
                write!(f, "fred requires at least 2 ports, got {ports}")
            }
        }
    }
}

impl std::error::Error for InterconnectError {}

impl Interconnect {
    /// Builds Fred_m(`ports`).
    ///
    /// # Errors
    ///
    /// Returns an error if `m < 2` or `ports < 2`.
    pub fn new(m: usize, ports: usize) -> Result<Interconnect, InterconnectError> {
        if m < 2 {
            return Err(InterconnectError::MiddleCountTooSmall { m });
        }
        if ports < 2 {
            return Err(InterconnectError::TooFewPorts { ports });
        }
        Ok(Self::build(m, ports))
    }

    fn build(m: usize, ports: usize) -> Interconnect {
        let kind = match ports {
            2 => NetKind::Leaf2,
            3 => NetKind::Leaf3,
            p if p % 2 == 0 => {
                let r = p / 2;
                NetKind::Stage {
                    r,
                    odd: false,
                    middle: Box::new(Self::build(m, r)),
                }
            }
            p => {
                let r = (p - 1) / 2;
                NetKind::Stage {
                    r,
                    odd: true,
                    middle: Box::new(Self::build(m, r + 1)),
                }
            }
        };
        Interconnect { m, ports, kind }
    }

    /// Number of external input (equivalently output) ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of middle subnetworks per stage.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The shape of the top recursion level.
    pub fn kind(&self) -> &NetKind {
        &self.kind
    }

    /// Maps an external port to its input/output unit at this level.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range or this is a leaf.
    pub fn unit_of_port(&self, port: usize) -> PortUnit {
        assert!(
            port < self.ports,
            "port {port} out of range (P={})",
            self.ports
        );
        match &self.kind {
            NetKind::Leaf2 | NetKind::Leaf3 => {
                panic!("unit_of_port is not defined on a base switch")
            }
            NetKind::Stage { r, odd, .. } => {
                if *odd && port == 2 * r {
                    PortUnit::Tail
                } else {
                    PortUnit::Unit(port / 2)
                }
            }
        }
    }

    /// Number of ports each middle subnetwork exposes at this level
    /// (`r` for even stages, `r + 1` for odd).
    ///
    /// # Panics
    ///
    /// Panics on a leaf.
    pub fn middle_ports(&self) -> usize {
        match &self.kind {
            NetKind::Leaf2 | NetKind::Leaf3 => panic!("a base switch has no middle subnetworks"),
            NetKind::Stage { middle, .. } => middle.ports(),
        }
    }

    /// Structural statistics for the area/power model.
    pub fn stats(&self) -> InterconnectStats {
        match &self.kind {
            NetKind::Leaf2 => InterconnectStats {
                micro_switches: 1,
                demuxes: 0,
                muxes: 0,
                depth: 1,
            },
            // A 3x3 base switch is built from three 2x2 uSwitches
            // (Chang-Melhem), crossing two columns.
            NetKind::Leaf3 => InterconnectStats {
                micro_switches: 3,
                demuxes: 0,
                muxes: 0,
                depth: 2,
            },
            NetKind::Stage { r, odd, middle } => {
                let inner = middle.stats();
                // A 2×m unit decomposes into (m-1) 2×2-equivalent
                // uSwitches (binary fan-out tree), same for m×2.
                let unit_eq = self.m - 1;
                InterconnectStats {
                    micro_switches: 2 * r * unit_eq + self.m * inner.micro_switches,
                    demuxes: inner.demuxes * self.m + usize::from(*odd),
                    muxes: inner.muxes * self.m + usize::from(*odd),
                    depth: inner.depth + 2,
                }
            }
        }
    }
}

impl fmt::Display for Interconnect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fred{}({})", self.m, self.ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_cases() {
        assert_eq!(*Interconnect::new(2, 2).unwrap().kind(), NetKind::Leaf2);
        assert_eq!(*Interconnect::new(3, 3).unwrap().kind(), NetKind::Leaf3);
    }

    #[test]
    fn even_recursion_halves_ports() {
        let net = Interconnect::new(2, 8).unwrap();
        match net.kind() {
            NetKind::Stage { r, odd, middle } => {
                assert_eq!(*r, 4);
                assert!(!odd);
                assert_eq!(middle.ports(), 4);
                match middle.kind() {
                    NetKind::Stage { r, odd, middle } => {
                        assert_eq!(*r, 2);
                        assert!(!odd);
                        assert_eq!(*middle.kind(), NetKind::Leaf2);
                    }
                    _ => panic!("expected inner stage"),
                }
            }
            _ => panic!("expected stage"),
        }
    }

    #[test]
    fn odd_recursion_adds_tail() {
        // Fred3(11): r = 5, middles Fred3(6).
        let net = Interconnect::new(3, 11).unwrap();
        match net.kind() {
            NetKind::Stage { r, odd, middle } => {
                assert_eq!(*r, 5);
                assert!(odd);
                assert_eq!(middle.ports(), 6);
            }
            _ => panic!("expected stage"),
        }
        assert_eq!(net.unit_of_port(10), PortUnit::Tail);
        assert_eq!(net.unit_of_port(9), PortUnit::Unit(4));
        assert_eq!(net.unit_of_port(0), PortUnit::Unit(0));
    }

    #[test]
    fn five_ports_bottoms_out_at_leaf3() {
        let net = Interconnect::new(2, 5).unwrap();
        match net.kind() {
            NetKind::Stage { r, odd, middle } => {
                assert_eq!(*r, 2);
                assert!(odd);
                assert_eq!(*middle.kind(), NetKind::Leaf3);
            }
            _ => panic!("expected stage"),
        }
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(Interconnect::new(1, 8).is_err());
        assert!(Interconnect::new(2, 1).is_err());
        assert!(Interconnect::new(0, 0).is_err());
    }

    #[test]
    fn benes_microswitch_count_matches_closed_form() {
        // For m=2 and P=2^k, the construction is the Benes network:
        // P/2 * (2*log2(P) - 1) 2x2 switches.
        for k in 1..=5usize {
            let p = 1 << k;
            let expected = (p / 2) * (2 * k - 1);
            let got = Interconnect::new(2, p).unwrap().stats().micro_switches;
            assert_eq!(got, expected, "P={p}");
        }
    }

    #[test]
    fn stats_count_muxes_on_odd_levels() {
        let s = Interconnect::new(3, 11).unwrap().stats();
        // Top level odd: 1 demux + 1 mux; middles Fred3(6) are even,
        // their middles Fred3(3) are leaves.
        assert_eq!(s.demuxes, 1);
        assert_eq!(s.muxes, 1);
        let s12 = Interconnect::new(3, 12).unwrap().stats();
        assert_eq!(s12.demuxes, 0);
    }

    #[test]
    fn display_formats_family_name() {
        assert_eq!(Interconnect::new(3, 12).unwrap().to_string(), "Fred3(12)");
    }

    #[test]
    fn depth_grows_logarithmically() {
        let d8 = Interconnect::new(2, 8).unwrap().stats().depth;
        let d16 = Interconnect::new(2, 16).unwrap().stats().depth;
        assert_eq!(d8, 5); // 2 + 2 + 1
        assert_eq!(d16, 7);
    }

    #[test]
    fn arbitrary_sizes_construct() {
        for p in 2..=33 {
            for m in 2..=3 {
                let net = Interconnect::new(m, p).unwrap();
                assert_eq!(net.ports(), p);
            }
        }
    }
}

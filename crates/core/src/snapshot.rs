//! Versioned simulation snapshots: the [`SimState`] container and the
//! [`Value`] conversions for every simulator layer's captured state.
//!
//! Each layer that owns mutable simulation state exposes a plain-data
//! `snapshot() -> …State` / `restore(…State)` pair in its own crate
//! (`FairShareSolver`, `FlowNetwork`, `ShardedNetwork` in `fred-sim`;
//! `ScheduleExecutor` in `fred-workloads`; `Cluster` in
//! `fred-cluster`). This module is the serialization hub: it converts
//! those state structs to and from the shared [`Value`] tree and wraps
//! them in a versioned [`SimState`] with named sections, encodable as
//! JSON text or the exact binary form (see [`crate::codec`]).
//!
//! # Bit-exactness
//!
//! The binary form stores every `f64` as raw IEEE-754 bits and is the
//! canonical snapshot format. The JSON form is human-inspectable and
//! exact for every value the simulator actually produces: finite
//! numbers round-trip bit-identically through the shortest-round-trip
//! formatter, and the four JSON-unrepresentable cases are escaped as
//! sentinel strings by [`v_f64`] (`"inf"`, `"-inf"`, `"nan"`, `"-0"`).
//! Integers above 2^53 travel as decimal strings ([`v_u64`]).
//!
//! # Versioning policy
//!
//! [`SIM_STATE_VERSION`] names the *semantic* shape of the section
//! tree; `codec::SNAPSHOT_VERSION` names the binary wire format. Both
//! are checked on load and a mismatch is a typed
//! [`SnapshotError::BadVersion`] — snapshots are not
//! forward/backward compatible across versions, by design (a snapshot
//! is a resume token, not an archive format).

use fred_sim::flow::{FlowId, FlowSpec, Priority};
use fred_sim::netsim::{CompletedFlow, CoreState, FlowState};
use fred_sim::shard::ShardedState;
use fred_sim::solver::{SolverFlowState, SolverState, SolverStats};
use fred_sim::time::{Duration, Time};
use fred_sim::topology::LinkId;
use std::path::Path;

use crate::codec::{self, SnapshotError, Value};

/// Semantic snapshot-state version (see the module docs for how it
/// relates to the binary codec version).
pub const SIM_STATE_VERSION: u32 = 1;

/// A versioned, named-section snapshot of a whole simulation stack.
///
/// Drivers compose one `SimState` from however many layers they own —
/// e.g. the cluster sweep stores a `"cluster"` section, the sharded
/// churn bench stores `"sharded"` plus `"drivers"` — and encode it
/// with [`SimState::to_binary`] / [`SimState::to_json`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimState {
    sections: Vec<(String, Value)>,
}

impl SimState {
    /// An empty snapshot.
    pub fn new() -> SimState {
        SimState::default()
    }

    /// Adds (or replaces) a named section.
    pub fn insert(&mut self, name: impl Into<String>, v: Value) {
        let name = name.into();
        match self.sections.iter_mut().find(|(k, _)| *k == name) {
            Some((_, slot)) => *slot = v,
            None => self.sections.push((name, v)),
        }
    }

    /// Looks up a section by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.sections
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Like [`SimState::get`] but a missing section is a typed
    /// [`SnapshotError::Mismatch`] — the restore-path idiom.
    pub fn section(&self, name: &str) -> Result<&Value, SnapshotError> {
        self.get(name)
            .ok_or_else(|| SnapshotError::Mismatch(format!("missing section `{name}`")))
    }

    /// All sections in insertion order.
    pub fn sections(&self) -> &[(String, Value)] {
        &self.sections
    }

    /// The snapshot as a [`Value`] tree (magic, version, sections).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("magic".into(), Value::Str("FREDSNAP".into())),
            ("version".into(), v_u64(u64::from(SIM_STATE_VERSION))),
            ("sections".into(), Value::Obj(self.sections.clone())),
        ])
    }

    /// Rebuilds a snapshot from [`SimState::to_value`], checking magic
    /// and version.
    pub fn from_value(v: &Value) -> Result<SimState, SnapshotError> {
        match v.get("magic").and_then(Value::as_str) {
            Some("FREDSNAP") => {}
            _ => return Err(SnapshotError::BadMagic),
        }
        let version = u64_of(field(v, "version", "snapshot")?, "snapshot.version")?;
        if version != u64::from(SIM_STATE_VERSION) {
            return Err(SnapshotError::BadVersion {
                found: version.min(u64::from(u32::MAX)) as u32,
                expected: SIM_STATE_VERSION,
            });
        }
        let Some(Value::Obj(sections)) = v.get("sections") else {
            return Err(SnapshotError::Mismatch("sections is not an object".into()));
        };
        Ok(SimState {
            sections: sections.clone(),
        })
    }

    /// Renders the snapshot as JSON text (exact modulo the [`v_f64`]
    /// sentinel contract).
    pub fn to_json(&self) -> String {
        codec::to_json(&self.to_value())
    }

    /// Parses [`SimState::to_json`] output. Syntax errors surface as
    /// [`SnapshotError::Corrupt`]; wrong magic/version as their typed
    /// variants.
    pub fn from_json(s: &str) -> Result<SimState, SnapshotError> {
        let v = codec::parse(s).map_err(SnapshotError::Corrupt)?;
        SimState::from_value(&v)
    }

    /// Encodes the snapshot in the exact binary form.
    pub fn to_binary(&self) -> Vec<u8> {
        codec::to_binary(&self.to_value())
    }

    /// Decodes [`SimState::to_binary`] output.
    pub fn from_binary(bytes: &[u8]) -> Result<SimState, SnapshotError> {
        SimState::from_value(&codec::from_binary(bytes)?)
    }

    /// Writes the binary form to `path`.
    pub fn write_binary(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_binary()).map_err(|e| SnapshotError::Io(e.to_string()))
    }

    /// Reads a [`SimState::write_binary`] file.
    pub fn read_binary(path: impl AsRef<Path>) -> Result<SimState, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        SimState::from_binary(&bytes)
    }

    /// Writes the JSON form to `path`.
    pub fn write_json(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_json()).map_err(|e| SnapshotError::Io(e.to_string()))
    }

    /// Reads a [`SimState::write_json`] file.
    pub fn read_json(path: impl AsRef<Path>) -> Result<SimState, SnapshotError> {
        let s = std::fs::read_to_string(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        SimState::from_json(&s)
    }
}

// ---------------------------------------------------------------------
// Scalar encoding helpers.
// ---------------------------------------------------------------------

/// Encodes an `f64` for the JSON-safe tree. Finite non-negative-zero
/// values stay numbers (the emitter's shortest-round-trip rendering is
/// bit-exact for them); the four cases JSON/`push_num` would mangle
/// become sentinel strings: `"inf"`, `"-inf"`, `"nan"`, `"-0"`.
pub fn v_f64(x: f64) -> Value {
    if x.is_nan() {
        Value::Str("nan".into())
    } else if x == f64::INFINITY {
        Value::Str("inf".into())
    } else if x == f64::NEG_INFINITY {
        Value::Str("-inf".into())
    } else if x == 0.0 && x.is_sign_negative() {
        Value::Str("-0".into())
    } else {
        Value::Num(x)
    }
}

/// Decodes [`v_f64`].
pub fn f64_of(v: &Value, ctx: &str) -> Result<f64, SnapshotError> {
    match v {
        Value::Num(n) => Ok(*n),
        Value::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            "-0" => Ok(-0.0),
            other => Err(SnapshotError::Mismatch(format!(
                "{ctx}: `{other}` is not a number sentinel"
            ))),
        },
        other => Err(SnapshotError::Mismatch(format!(
            "{ctx}: expected number, found {other:?}"
        ))),
    }
}

/// Encodes a `u64`. Values at or below 2^53 stay numbers (lossless in
/// an `f64`); larger ones travel as decimal strings.
pub fn v_u64(x: u64) -> Value {
    if x <= (1u64 << 53) {
        Value::Num(x as f64)
    } else {
        Value::Str(x.to_string())
    }
}

/// Decodes [`v_u64`].
pub fn u64_of(v: &Value, ctx: &str) -> Result<u64, SnapshotError> {
    match v {
        Value::Num(n) => {
            if n.is_finite() && *n >= 0.0 && n.trunc() == *n && *n <= (1u64 << 53) as f64 {
                Ok(*n as u64)
            } else {
                Err(SnapshotError::Mismatch(format!(
                    "{ctx}: {n} is not a non-negative integer"
                )))
            }
        }
        Value::Str(s) => s
            .parse::<u64>()
            .map_err(|e| SnapshotError::Mismatch(format!("{ctx}: `{s}`: {e}"))),
        other => Err(SnapshotError::Mismatch(format!(
            "{ctx}: expected integer, found {other:?}"
        ))),
    }
}

/// Decodes a `usize` via [`u64_of`].
pub fn usize_of(v: &Value, ctx: &str) -> Result<usize, SnapshotError> {
    usize::try_from(u64_of(v, ctx)?)
        .map_err(|_| SnapshotError::Mismatch(format!("{ctx}: value exceeds usize")))
}

/// Encodes a simulation instant as seconds.
pub fn v_time(t: Time) -> Value {
    v_f64(t.as_secs())
}

/// Decodes [`v_time`], rejecting values [`Time::from_secs`] would
/// panic on (NaN, negative) as typed errors.
pub fn time_of(v: &Value, ctx: &str) -> Result<Time, SnapshotError> {
    let secs = f64_of(v, ctx)?;
    if secs.is_nan() || secs < 0.0 {
        return Err(SnapshotError::Mismatch(format!(
            "{ctx}: {secs} is not a valid instant"
        )));
    }
    Ok(Time::from_secs(secs))
}

fn v_dur(d: Duration) -> Value {
    v_f64(d.as_secs())
}

fn dur_of(v: &Value, ctx: &str) -> Result<Duration, SnapshotError> {
    let secs = f64_of(v, ctx)?;
    if secs.is_nan() || secs < 0.0 {
        return Err(SnapshotError::Mismatch(format!(
            "{ctx}: {secs} is not a valid duration"
        )));
    }
    Ok(Duration::from_secs(secs))
}

/// Field lookup that turns absence into a typed error.
pub fn field<'a>(obj: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, SnapshotError> {
    obj.get(key)
        .ok_or_else(|| SnapshotError::Mismatch(format!("{ctx}: missing field `{key}`")))
}

/// Array access that turns a non-array into a typed error.
pub fn arr_of<'a>(v: &'a Value, ctx: &str) -> Result<&'a [Value], SnapshotError> {
    match v {
        Value::Arr(items) => Ok(items),
        other => Err(SnapshotError::Mismatch(format!(
            "{ctx}: expected array, found {other:?}"
        ))),
    }
}

/// Decodes a JSON boolean with a typed error.
pub fn bool_of(v: &Value, ctx: &str) -> Result<bool, SnapshotError> {
    v.as_bool()
        .ok_or_else(|| SnapshotError::Mismatch(format!("{ctx}: expected bool")))
}

/// Encodes an `f64` slice via [`v_f64`].
pub fn f64s(xs: &[f64]) -> Value {
    Value::Arr(xs.iter().map(|&x| v_f64(x)).collect())
}

/// Decodes [`f64s`].
pub fn f64s_of(v: &Value, ctx: &str) -> Result<Vec<f64>, SnapshotError> {
    arr_of(v, ctx)?.iter().map(|x| f64_of(x, ctx)).collect()
}

/// Encodes a `usize` slice via [`v_u64`].
pub fn usizes(xs: &[usize]) -> Value {
    Value::Arr(xs.iter().map(|&x| v_u64(x as u64)).collect())
}

/// Decodes [`usizes`].
pub fn usizes_of(v: &Value, ctx: &str) -> Result<Vec<usize>, SnapshotError> {
    arr_of(v, ctx)?.iter().map(|x| usize_of(x, ctx)).collect()
}

/// Encodes a `u32` slice via [`v_u64`].
pub fn u32s(xs: &[u32]) -> Value {
    Value::Arr(xs.iter().map(|&x| v_u64(u64::from(x))).collect())
}

/// Decodes [`u32s`].
pub fn u32s_of(v: &Value, ctx: &str) -> Result<Vec<u32>, SnapshotError> {
    arr_of(v, ctx)?
        .iter()
        .map(|x| {
            u64_of(x, ctx).and_then(|n| {
                u32::try_from(n)
                    .map_err(|_| SnapshotError::Mismatch(format!("{ctx}: {n} exceeds u32")))
            })
        })
        .collect()
}

/// Encodes a `bool` slice.
pub fn bools(xs: &[bool]) -> Value {
    Value::Arr(xs.iter().map(|&b| Value::Bool(b)).collect())
}

/// Decodes [`bools`].
pub fn bools_of(v: &Value, ctx: &str) -> Result<Vec<bool>, SnapshotError> {
    arr_of(v, ctx)?.iter().map(|x| bool_of(x, ctx)).collect()
}

// ---------------------------------------------------------------------
// Priority / flow-spec / completion conversions.
// ---------------------------------------------------------------------

/// Encodes a priority as its fill-class rank.
pub fn priority_to_value(p: Priority) -> Value {
    v_u64(p.rank() as u64)
}

/// Decodes [`priority_to_value`].
pub fn priority_from_value(v: &Value, ctx: &str) -> Result<Priority, SnapshotError> {
    let rank = usize_of(v, ctx)?;
    Priority::ALL
        .get(rank)
        .copied()
        .ok_or_else(|| SnapshotError::Mismatch(format!("{ctx}: priority rank {rank} out of range")))
}

/// Encodes a [`FlowSpec`] (used for staged-but-uninjected flows in
/// executor snapshots).
pub fn flow_spec_to_value(s: &FlowSpec) -> Value {
    Value::Obj(vec![
        (
            "route".into(),
            usizes(&s.route.iter().map(|l| l.0).collect::<Vec<usize>>()),
        ),
        ("bytes".into(), v_f64(s.bytes)),
        ("priority".into(), priority_to_value(s.priority)),
        ("tag".into(), v_u64(s.tag)),
        ("tenant".into(), v_u64(u64::from(s.tenant))),
    ])
}

/// Decodes [`flow_spec_to_value`], re-validating the invariants the
/// [`FlowSpec`] constructors assert (finite non-negative bytes, tenant
/// within the class space) as typed errors instead of panics.
pub fn flow_spec_from_value(v: &Value, ctx: &str) -> Result<FlowSpec, SnapshotError> {
    let route = usizes_of(field(v, "route", ctx)?, ctx)?
        .into_iter()
        .map(LinkId)
        .collect();
    let bytes = f64_of(field(v, "bytes", ctx)?, ctx)?;
    if !(bytes.is_finite() && bytes >= 0.0) {
        return Err(SnapshotError::Mismatch(format!(
            "{ctx}: flow bytes {bytes} invalid"
        )));
    }
    let priority = priority_from_value(field(v, "priority", ctx)?, ctx)?;
    let tag = u64_of(field(v, "tag", ctx)?, ctx)?;
    let tenant = u64_of(field(v, "tenant", ctx)?, ctx)?;
    let max_tenant = (u8::MAX as usize / Priority::ALL.len()) as u64 - 1;
    if tenant > max_tenant {
        return Err(SnapshotError::Mismatch(format!(
            "{ctx}: tenant {tenant} outside the class space"
        )));
    }
    Ok(FlowSpec::new(route, bytes)
        .with_priority(priority)
        .with_tag(tag)
        .with_tenant(tenant as u8))
}

fn completed_to_value(c: &CompletedFlow) -> Value {
    Value::Obj(vec![
        ("id".into(), v_u64(c.id.0)),
        ("tag".into(), v_u64(c.tag)),
        ("priority".into(), priority_to_value(c.priority)),
        ("injected_at".into(), v_time(c.injected_at)),
        ("completed_at".into(), v_time(c.completed_at)),
    ])
}

fn completed_from_value(v: &Value, ctx: &str) -> Result<CompletedFlow, SnapshotError> {
    Ok(CompletedFlow {
        id: FlowId(u64_of(field(v, "id", ctx)?, ctx)?),
        tag: u64_of(field(v, "tag", ctx)?, ctx)?,
        priority: priority_from_value(field(v, "priority", ctx)?, ctx)?,
        injected_at: time_of(field(v, "injected_at", ctx)?, ctx)?,
        completed_at: time_of(field(v, "completed_at", ctx)?, ctx)?,
    })
}

// ---------------------------------------------------------------------
// Solver state.
// ---------------------------------------------------------------------

/// Encodes a [`SolverState`].
pub fn solver_state_to_value(s: &SolverState) -> Value {
    let flows = Value::Arr(
        s.flows
            .iter()
            .map(|slot| match slot {
                None => Value::Null,
                Some(f) => Value::Obj(vec![
                    ("links".into(), usizes(&f.links)),
                    ("class".into(), v_u64(u64::from(f.class))),
                    ("rate".into(), v_f64(f.rate)),
                ]),
            })
            .collect(),
    );
    let link_flows = Value::Arr(s.link_flows.iter().map(|ks| u32s(ks)).collect());
    Value::Obj(vec![
        ("capacities".into(), f64s(&s.capacities)),
        ("flows".into(), flows),
        ("free".into(), u32s(&s.free)),
        ("live".into(), v_u64(s.live as u64)),
        ("link_flows".into(), link_flows),
        ("link_alloc".into(), f64s(&s.link_alloc)),
        ("seed_links".into(), usizes(&s.seed_links)),
        ("dirty".into(), Value::Bool(s.dirty)),
        ("refill_fraction".into(), v_f64(s.refill_fraction)),
        ("epoch".into(), v_u64(s.epoch)),
        ("solves".into(), v_u64(s.stats.solves)),
        ("global_solves".into(), v_u64(s.stats.global_solves)),
        ("refilled_flows".into(), v_u64(s.stats.refilled_flows)),
        ("max_component".into(), v_u64(s.stats.max_component)),
    ])
}

/// Decodes [`solver_state_to_value`].
pub fn solver_state_from_value(v: &Value) -> Result<SolverState, SnapshotError> {
    let ctx = "solver";
    let flows = arr_of(field(v, "flows", ctx)?, ctx)?
        .iter()
        .map(|slot| match slot {
            Value::Null => Ok(None),
            f => Ok(Some(SolverFlowState {
                links: usizes_of(field(f, "links", ctx)?, ctx)?,
                class: u64_of(field(f, "class", ctx)?, ctx)? as u8,
                rate: f64_of(field(f, "rate", ctx)?, ctx)?,
            })),
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let link_flows = arr_of(field(v, "link_flows", ctx)?, ctx)?
        .iter()
        .map(|ks| u32s_of(ks, ctx))
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    Ok(SolverState {
        capacities: f64s_of(field(v, "capacities", ctx)?, ctx)?,
        flows,
        free: u32s_of(field(v, "free", ctx)?, ctx)?,
        live: usize_of(field(v, "live", ctx)?, ctx)?,
        link_flows,
        link_alloc: f64s_of(field(v, "link_alloc", ctx)?, ctx)?,
        seed_links: usizes_of(field(v, "seed_links", ctx)?, ctx)?,
        dirty: bool_of(field(v, "dirty", ctx)?, ctx)?,
        refill_fraction: f64_of(field(v, "refill_fraction", ctx)?, ctx)?,
        epoch: u64_of(field(v, "epoch", ctx)?, ctx)?,
        stats: SolverStats {
            solves: u64_of(field(v, "solves", ctx)?, ctx)?,
            global_solves: u64_of(field(v, "global_solves", ctx)?, ctx)?,
            refilled_flows: u64_of(field(v, "refilled_flows", ctx)?, ctx)?,
            max_component: u64_of(field(v, "max_component", ctx)?, ctx)?,
        },
    })
}

// ---------------------------------------------------------------------
// Core (single-network) state.
// ---------------------------------------------------------------------

fn flow_state_to_value(f: &FlowState) -> Value {
    Value::Obj(vec![
        ("id".into(), v_u64(f.id)),
        ("links".into(), usizes(&f.links)),
        ("priority".into(), priority_to_value(f.priority)),
        ("tenant".into(), v_u64(u64::from(f.tenant))),
        ("tag".into(), v_u64(f.tag)),
        ("remaining".into(), v_f64(f.remaining)),
        ("rate".into(), v_f64(f.rate)),
        ("updated_at".into(), v_time(f.updated_at)),
        ("generation".into(), v_u64(f.generation)),
        ("injected_at".into(), v_time(f.injected_at)),
        ("latency".into(), v_dur(f.latency)),
    ])
}

fn flow_state_from_value(v: &Value, ctx: &str) -> Result<FlowState, SnapshotError> {
    Ok(FlowState {
        id: u64_of(field(v, "id", ctx)?, ctx)?,
        links: usizes_of(field(v, "links", ctx)?, ctx)?,
        priority: priority_from_value(field(v, "priority", ctx)?, ctx)?,
        tenant: u64_of(field(v, "tenant", ctx)?, ctx)? as u8,
        tag: u64_of(field(v, "tag", ctx)?, ctx)?,
        remaining: f64_of(field(v, "remaining", ctx)?, ctx)?,
        rate: f64_of(field(v, "rate", ctx)?, ctx)?,
        updated_at: time_of(field(v, "updated_at", ctx)?, ctx)?,
        generation: u64_of(field(v, "generation", ctx)?, ctx)?,
        injected_at: time_of(field(v, "injected_at", ctx)?, ctx)?,
        latency: dur_of(field(v, "latency", ctx)?, ctx)?,
    })
}

/// Encodes a [`CoreState`] (the [`fred_sim::netsim::FlowNetwork`]
/// snapshot, and one shard core of a sharded snapshot).
pub fn core_state_to_value(s: &CoreState) -> Value {
    let flows = Value::Arr(
        s.flows
            .iter()
            .map(|slot| match slot {
                None => Value::Null,
                Some(f) => flow_state_to_value(f),
            })
            .collect(),
    );
    let drains = Value::Arr(
        s.drains
            .iter()
            .map(|&(at, id, generation, slot)| {
                Value::Arr(vec![
                    v_time(at),
                    v_u64(id),
                    v_u64(generation),
                    v_u64(u64::from(slot)),
                ])
            })
            .collect(),
    );
    let pending = Value::Arr(
        s.pending
            .iter()
            .map(|(at, seq, flow)| {
                Value::Obj(vec![
                    ("at".into(), v_time(*at)),
                    ("seq".into(), v_u64(*seq)),
                    ("flow".into(), completed_to_value(flow)),
                ])
            })
            .collect(),
    );
    Value::Obj(vec![
        ("now".into(), v_time(s.now)),
        ("next_id".into(), v_u64(s.next_id)),
        ("id_stride".into(), v_u64(s.id_stride)),
        ("flows".into(), flows),
        ("active_count".into(), v_u64(s.active_count as u64)),
        ("solver".into(), solver_state_to_value(&s.solver)),
        ("drains".into(), drains),
        ("live_drains".into(), v_u64(s.live_drains as u64)),
        ("compaction_min".into(), v_u64(s.compaction_min as u64)),
        ("compactions".into(), v_u64(s.compactions)),
        ("next_generation".into(), v_u64(s.next_generation)),
        ("pending".into(), pending),
        (
            "completed".into(),
            Value::Arr(s.completed.iter().map(completed_to_value).collect()),
        ),
        ("link_bytes".into(), f64s(&s.link_bytes)),
        ("capacities".into(), f64s(&s.capacities)),
        ("failed".into(), bools(&s.failed)),
        ("events".into(), v_u64(s.events)),
        ("link_alloc".into(), f64s(&s.link_alloc)),
    ])
}

/// Decodes [`core_state_to_value`].
pub fn core_state_from_value(v: &Value) -> Result<CoreState, SnapshotError> {
    let ctx = "core";
    let flows = arr_of(field(v, "flows", ctx)?, ctx)?
        .iter()
        .map(|slot| match slot {
            Value::Null => Ok(None),
            f => flow_state_from_value(f, "core.flow").map(Some),
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let drains = arr_of(field(v, "drains", ctx)?, ctx)?
        .iter()
        .map(|e| {
            let e = arr_of(e, "core.drain")?;
            if e.len() != 4 {
                return Err(SnapshotError::Mismatch(
                    "core.drain: expected 4 elements".into(),
                ));
            }
            let slot = u64_of(&e[3], "core.drain.slot")?;
            Ok((
                time_of(&e[0], "core.drain.at")?,
                u64_of(&e[1], "core.drain.id")?,
                u64_of(&e[2], "core.drain.generation")?,
                u32::try_from(slot).map_err(|_| {
                    SnapshotError::Mismatch(format!("core.drain.slot {slot} exceeds u32"))
                })?,
            ))
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let pending = arr_of(field(v, "pending", ctx)?, ctx)?
        .iter()
        .map(|p| {
            Ok((
                time_of(field(p, "at", "core.pending")?, "core.pending.at")?,
                u64_of(field(p, "seq", "core.pending")?, "core.pending.seq")?,
                completed_from_value(field(p, "flow", "core.pending")?, "core.pending.flow")?,
            ))
        })
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let completed = arr_of(field(v, "completed", ctx)?, ctx)?
        .iter()
        .map(|c| completed_from_value(c, "core.completed"))
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    Ok(CoreState {
        now: time_of(field(v, "now", ctx)?, ctx)?,
        next_id: u64_of(field(v, "next_id", ctx)?, ctx)?,
        id_stride: u64_of(field(v, "id_stride", ctx)?, ctx)?,
        flows,
        active_count: usize_of(field(v, "active_count", ctx)?, ctx)?,
        solver: solver_state_from_value(field(v, "solver", ctx)?)?,
        drains,
        live_drains: usize_of(field(v, "live_drains", ctx)?, ctx)?,
        compaction_min: usize_of(field(v, "compaction_min", ctx)?, ctx)?,
        compactions: u64_of(field(v, "compactions", ctx)?, ctx)?,
        next_generation: u64_of(field(v, "next_generation", ctx)?, ctx)?,
        pending,
        completed,
        link_bytes: f64s_of(field(v, "link_bytes", ctx)?, ctx)?,
        capacities: f64s_of(field(v, "capacities", ctx)?, ctx)?,
        failed: bools_of(field(v, "failed", ctx)?, ctx)?,
        events: u64_of(field(v, "events", ctx)?, ctx)?,
        link_alloc: f64s_of(field(v, "link_alloc", ctx)?, ctx)?,
    })
}

// ---------------------------------------------------------------------
// Sharded state.
// ---------------------------------------------------------------------

/// Encodes a [`ShardedState`].
pub fn sharded_state_to_value(s: &ShardedState) -> Value {
    Value::Obj(vec![
        (
            "cores".into(),
            Value::Arr(s.cores.iter().map(core_state_to_value).collect()),
        ),
        ("fused".into(), Value::Bool(s.fused)),
        (
            "boundary".into(),
            Value::Arr(s.boundary.iter().map(|&id| v_u64(id)).collect()),
        ),
        ("last_active".into(), u32s(&s.last_active)),
    ])
}

/// Decodes [`sharded_state_to_value`].
pub fn sharded_state_from_value(v: &Value) -> Result<ShardedState, SnapshotError> {
    let ctx = "sharded";
    let cores = arr_of(field(v, "cores", ctx)?, ctx)?
        .iter()
        .map(core_state_from_value)
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    let boundary = arr_of(field(v, "boundary", ctx)?, ctx)?
        .iter()
        .map(|id| u64_of(id, "sharded.boundary"))
        .collect::<Result<Vec<_>, SnapshotError>>()?;
    Ok(ShardedState {
        cores,
        fused: bool_of(field(v, "fused", ctx)?, ctx)?,
        boundary,
        last_active: u32s_of(field(v, "last_active", ctx)?, ctx)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_sim::netsim::FlowNetwork;
    use fred_sim::shard::{PartitionMap, ShardedNetwork};
    use fred_sim::topology::{NodeKind, Topology};

    fn busy_net() -> (Topology, FlowNetwork) {
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Npu, "a");
        let b = topo.add_node(NodeKind::Npu, "b");
        let l0 = topo.add_link(a, b, 100.0, 1e-6);
        let l1 = topo.add_link(a, b, 80.0, 0.0);
        let mut net = FlowNetwork::new(topo.clone());
        for i in 0..8u64 {
            let l = if i % 2 == 0 { l0 } else { l1 };
            net.inject(
                FlowSpec::new(vec![l], 50.0 + i as f64)
                    .with_tag(i)
                    .with_priority(Priority::ALL[(i % 3) as usize]),
            )
            .unwrap();
        }
        net.advance_to(Time::from_secs(0.4));
        net.fail_link(l1);
        (topo, net)
    }

    #[test]
    fn core_state_round_trips_json_and_binary_exactly() {
        let (_, net) = busy_net();
        let state = net.snapshot();
        let v = core_state_to_value(&state);
        assert_eq!(core_state_from_value(&v).unwrap(), state);

        let mut sim = SimState::new();
        sim.insert("net", v);
        // Binary round-trip.
        let back = SimState::from_binary(&sim.to_binary()).unwrap();
        assert_eq!(back, sim);
        assert_eq!(
            core_state_from_value(back.section("net").unwrap()).unwrap(),
            state
        );
        // JSON round-trip (all simulator-produced values are finite).
        let back = SimState::from_json(&sim.to_json()).unwrap();
        assert_eq!(
            core_state_from_value(back.section("net").unwrap()).unwrap(),
            state
        );
    }

    #[test]
    fn restored_network_from_decoded_state_resumes_identically() {
        let (topo, mut net) = busy_net();
        let state = net.snapshot();
        let bytes = {
            let mut sim = SimState::new();
            sim.insert("net", core_state_to_value(&state));
            sim.to_binary()
        };
        let decoded = SimState::from_binary(&bytes).unwrap();
        let restored = core_state_from_value(decoded.section("net").unwrap()).unwrap();
        let mut resumed = FlowNetwork::restore(topo, restored);
        let a: Vec<(u64, u64)> = net
            .run_to_completion()
            .iter()
            .map(|c| (c.tag, c.completed_at.as_secs().to_bits()))
            .collect();
        let b: Vec<(u64, u64)> = resumed
            .run_to_completion()
            .iter()
            .map(|c| (c.tag, c.completed_at.as_secs().to_bits()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_state_round_trips() {
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Npu, "a0");
        let b = topo.add_node(NodeKind::Npu, "b0");
        let c = topo.add_node(NodeKind::Npu, "a1");
        let d = topo.add_node(NodeKind::Npu, "b1");
        let l0 = topo.add_link(a, b, 100.0, 0.0);
        let l1 = topo.add_link(c, d, 100.0, 0.0);
        topo.add_link(b, c, 100.0, 0.0);
        let part = PartitionMap::new(vec![0, 1, 0], 2);
        let mut net = ShardedNetwork::new(topo, part, 2);
        net.inject(FlowSpec::new(vec![l0], 150.0).with_tag(0))
            .unwrap();
        net.inject(FlowSpec::new(vec![l1], 250.0).with_tag(1))
            .unwrap();
        net.advance_to(Time::from_secs(0.5));
        let state = net.snapshot();
        let v = sharded_state_to_value(&state);
        assert_eq!(sharded_state_from_value(&v).unwrap(), state);
    }

    #[test]
    fn scalar_sentinels_round_trip_through_json() {
        for x in [
            0.0,
            -0.0,
            1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            1e-300,
            f64::MAX,
        ] {
            let mut sim = SimState::new();
            sim.insert("x", v_f64(x));
            let back = SimState::from_json(&sim.to_json()).unwrap();
            let y = f64_of(back.section("x").unwrap(), "x").unwrap();
            assert_eq!(y.to_bits(), x.to_bits(), "{x}");
        }
        for n in [0u64, 1, 1 << 53, (1 << 53) + 1, u64::MAX] {
            let mut sim = SimState::new();
            sim.insert("n", v_u64(n));
            let back = SimState::from_json(&sim.to_json()).unwrap();
            assert_eq!(u64_of(back.section("n").unwrap(), "n").unwrap(), n);
        }
    }

    #[test]
    fn wrong_version_and_magic_are_typed_errors() {
        let mut sim = SimState::new();
        sim.insert("s", Value::Num(1.0));
        // Tamper with the semantic version inside the value tree.
        let Value::Obj(mut fields) = sim.to_value() else {
            panic!("not an object")
        };
        fields[1].1 = v_u64(999);
        assert!(matches!(
            SimState::from_value(&Value::Obj(fields.clone())),
            Err(SnapshotError::BadVersion { found: 999, .. })
        ));
        fields[0].1 = Value::Str("NOTASNAP".into());
        assert_eq!(
            SimState::from_value(&Value::Obj(fields)),
            Err(SnapshotError::BadMagic)
        );
        // JSON garbage is Corrupt, not a panic.
        assert!(matches!(
            SimState::from_json("{\"magic\": "),
            Err(SnapshotError::Corrupt(_))
        ));
    }
}

//! Device placement for 3D parallelism (§3.2.2, §5.3 option 4).
//!
//! Device placement assigns each logical training worker — identified by
//! its coordinates in the (MP, DP, PP) grid — to a physical NPU. FRED's
//! policy places the workers of each MP group on consecutive NPUs, then
//! iterates over PP, then DP (§5.3): combined with Fred₃ switches this
//! keeps all 3D-parallelism communication patterns conflict-free.
//! Alternative orders are provided to reproduce the congestion trade-off
//! of Fig 5 on the mesh.

use std::fmt;

/// A 3D parallelization strategy: the size of each parallelism
/// dimension, written MP(m)-DP(d)-PP(p) in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Strategy3D {
    /// Model/tensor-parallel degree.
    pub mp: usize,
    /// Data-parallel degree.
    pub dp: usize,
    /// Pipeline-parallel degree.
    pub pp: usize,
}

impl Strategy3D {
    /// Creates a strategy.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(mp: usize, dp: usize, pp: usize) -> Strategy3D {
        assert!(
            mp > 0 && dp > 0 && pp > 0,
            "all parallelism degrees must be positive"
        );
        Strategy3D { mp, dp, pp }
    }

    /// Total workers = mp × dp × pp.
    pub fn worker_count(&self) -> usize {
        self.mp * self.dp * self.pp
    }

    /// All worker coordinates, MP-fastest order.
    pub fn workers(&self) -> impl Iterator<Item = Worker> + '_ {
        let (mp, dp, pp) = (self.mp, self.dp, self.pp);
        (0..pp).flat_map(move |p| {
            (0..dp).flat_map(move |d| {
                (0..mp).map(move |m| Worker {
                    mp: m,
                    dp: d,
                    pp: p,
                })
            })
        })
    }

    /// Workers of the MP group identified by (dp, pp).
    pub fn mp_group(&self, dp: usize, pp: usize) -> Vec<Worker> {
        (0..self.mp).map(|m| Worker { mp: m, dp, pp }).collect()
    }

    /// Workers of the DP group identified by (mp, pp).
    pub fn dp_group(&self, mp: usize, pp: usize) -> Vec<Worker> {
        (0..self.dp).map(|d| Worker { mp, dp: d, pp }).collect()
    }

    /// Workers of the PP group identified by (mp, dp).
    pub fn pp_group(&self, mp: usize, dp: usize) -> Vec<Worker> {
        (0..self.pp).map(|p| Worker { mp, dp, pp: p }).collect()
    }

    /// Number of concurrent MP groups (= dp × pp); cf. Fig 1.
    pub fn mp_group_count(&self) -> usize {
        self.dp * self.pp
    }

    /// Number of concurrent DP groups (= mp × pp).
    pub fn dp_group_count(&self) -> usize {
        self.mp * self.pp
    }

    /// Number of concurrent PP groups (= mp × dp).
    pub fn pp_group_count(&self) -> usize {
        self.mp * self.dp
    }
}

impl fmt::Display for Strategy3D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MP({})-DP({})-PP({})", self.mp, self.dp, self.pp)
    }
}

/// A logical training worker's coordinates (the paper's 3-digit id:
/// MP digit, DP digit, PP digit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Worker {
    /// Offset within the MP group.
    pub mp: usize,
    /// Offset within the DP group.
    pub dp: usize,
    /// Offset within the PP group.
    pub pp: usize,
}

impl fmt::Display for Worker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.mp, self.dp, self.pp)
    }
}

/// The order in which dimensions vary when laying workers onto
/// consecutive NPUs; the first dimension varies fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// FRED's policy (§5.3): MP fastest, then PP, then DP.
    #[default]
    MpPpDp,
    /// MP fastest, then DP, then PP — Fig 5(a)'s mesh mapping, which
    /// favours MP/DP but congests PP.
    MpDpPp,
    /// DP fastest, then PP, then MP — Fig 5(b)'s mesh mapping, which
    /// favours DP/PP but congests MP.
    DpPpMp,
    /// PP fastest, then MP, then DP.
    PpMpDp,
}

impl PlacementPolicy {
    /// All policies.
    pub const ALL: [PlacementPolicy; 4] = [
        PlacementPolicy::MpPpDp,
        PlacementPolicy::MpDpPp,
        PlacementPolicy::DpPpMp,
        PlacementPolicy::PpMpDp,
    ];
}

/// An assignment of workers to physical NPU indices.
///
/// ```
/// use fred_core::placement::{Placement, PlacementPolicy, Strategy3D, Worker};
///
/// // §5.3: MP groups land on consecutive NPUs.
/// let pl = Placement::new(Strategy3D::new(4, 5, 1), PlacementPolicy::MpPpDp);
/// assert_eq!(pl.mp_group_npus(0, 0), vec![0, 1, 2, 3]);
/// assert_eq!(pl.npu_of(Worker { mp: 2, dp: 1, pp: 0 }), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    strategy: Strategy3D,
    policy: PlacementPolicy,
    /// Worker (in MP-fastest linear order) → NPU index.
    npu_of_worker: Vec<usize>,
}

impl Placement {
    /// Places `strategy`'s workers onto NPUs `0..worker_count` using
    /// `policy`.
    pub fn new(strategy: Strategy3D, policy: PlacementPolicy) -> Placement {
        Placement::with_base(strategy, policy, 0)
    }

    /// Places `strategy`'s workers onto the contiguous NPU window
    /// `base..base + worker_count` — the multi-tenant entry point: a
    /// cluster scheduler carves a window out of the fabric and places
    /// each job's workers inside it, preserving the policy's relative
    /// layout (consecutive slots stay physically adjacent under both
    /// the FRED tree's identity mapping and the mesh's snake walk).
    pub fn with_base(strategy: Strategy3D, policy: PlacementPolicy, base: usize) -> Placement {
        let (m, d, p) = (strategy.mp, strategy.dp, strategy.pp);
        let mut npu_of_worker = vec![usize::MAX; strategy.worker_count()];
        let linear = |w: Worker| w.mp + m * (w.dp + d * w.pp);
        // Enumerate workers with the policy's fastest-first nesting.
        let order: Vec<Worker> = match policy {
            PlacementPolicy::MpPpDp => (0..d)
                .flat_map(|dd| {
                    (0..p).flat_map(move |pp| (0..m).map(move |mm| Worker { mp: mm, dp: dd, pp }))
                })
                .collect(),
            PlacementPolicy::MpDpPp => (0..p)
                .flat_map(|pp| {
                    (0..d).flat_map(move |dd| (0..m).map(move |mm| Worker { mp: mm, dp: dd, pp }))
                })
                .collect(),
            PlacementPolicy::DpPpMp => (0..m)
                .flat_map(|mm| {
                    (0..p).flat_map(move |pp| (0..d).map(move |dd| Worker { mp: mm, dp: dd, pp }))
                })
                .collect(),
            PlacementPolicy::PpMpDp => (0..d)
                .flat_map(|dd| {
                    (0..m).flat_map(move |mm| (0..p).map(move |pp| Worker { mp: mm, dp: dd, pp }))
                })
                .collect(),
        };
        for (next, w) in order.into_iter().enumerate() {
            npu_of_worker[linear(w)] = base + next;
        }
        Placement {
            strategy,
            policy,
            npu_of_worker,
        }
    }

    /// The highest NPU index this placement assigns (= `base +
    /// worker_count - 1`); backends bound-check against this rather
    /// than the worker count so based placements validate correctly.
    pub fn max_slot(&self) -> usize {
        self.npu_of_worker
            .iter()
            .copied()
            .max()
            .expect("a strategy always has at least one worker")
    }

    /// The strategy this placement was built for.
    pub fn strategy(&self) -> Strategy3D {
        self.strategy
    }

    /// The policy used.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Physical NPU index hosting `worker`.
    ///
    /// # Panics
    ///
    /// Panics if the worker is outside the strategy grid.
    pub fn npu_of(&self, worker: Worker) -> usize {
        let s = self.strategy;
        assert!(
            worker.mp < s.mp && worker.dp < s.dp && worker.pp < s.pp,
            "worker {worker} outside {s}"
        );
        self.npu_of_worker[worker.mp + s.mp * (worker.dp + s.dp * worker.pp)]
    }

    /// NPU indices of the MP group (dp, pp), in MP-offset order.
    pub fn mp_group_npus(&self, dp: usize, pp: usize) -> Vec<usize> {
        self.strategy
            .mp_group(dp, pp)
            .into_iter()
            .map(|w| self.npu_of(w))
            .collect()
    }

    /// NPU indices of the DP group (mp, pp).
    pub fn dp_group_npus(&self, mp: usize, pp: usize) -> Vec<usize> {
        self.strategy
            .dp_group(mp, pp)
            .into_iter()
            .map(|w| self.npu_of(w))
            .collect()
    }

    /// NPU indices of the PP group (mp, dp).
    pub fn pp_group_npus(&self, mp: usize, dp: usize) -> Vec<usize> {
        self.strategy
            .pp_group(mp, dp)
            .into_iter()
            .map(|w| self.npu_of(w))
            .collect()
    }

    /// All MP groups as NPU index lists.
    pub fn all_mp_groups(&self) -> Vec<Vec<usize>> {
        let s = self.strategy;
        (0..s.pp)
            .flat_map(|p| (0..s.dp).map(move |d| (d, p)))
            .map(|(d, p)| self.mp_group_npus(d, p))
            .collect()
    }

    /// All DP groups as NPU index lists.
    pub fn all_dp_groups(&self) -> Vec<Vec<usize>> {
        let s = self.strategy;
        (0..s.pp)
            .flat_map(|p| (0..s.mp).map(move |m| (m, p)))
            .map(|(m, p)| self.dp_group_npus(m, p))
            .collect()
    }

    /// All PP groups as NPU index lists.
    pub fn all_pp_groups(&self) -> Vec<Vec<usize>> {
        let s = self.strategy;
        (0..s.dp)
            .flat_map(|d| (0..s.mp).map(move |m| (m, d)))
            .map(|(m, d)| self.pp_group_npus(m, d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;
    use crate::interconnect::Interconnect;
    use crate::routing::route_flows;

    #[test]
    fn strategy_counts() {
        let s = Strategy3D::new(4, 3, 2);
        assert_eq!(s.worker_count(), 24);
        assert_eq!(s.mp_group_count(), 6);
        assert_eq!(s.dp_group_count(), 8);
        assert_eq!(s.pp_group_count(), 12);
        assert_eq!(s.workers().count(), 24);
        assert_eq!(s.to_string(), "MP(4)-DP(3)-PP(2)");
    }

    #[test]
    fn fig1_groups() {
        // Fig 1: MP(4)-DP(3)-PP(2); workers 000,100,200,300 form an MP
        // group; 300,310,320 form a DP group.
        let s = Strategy3D::new(4, 3, 2);
        let mp = s.mp_group(0, 0);
        assert_eq!(
            mp.iter().map(Worker::to_string).collect::<Vec<_>>(),
            vec!["000", "100", "200", "300"]
        );
        let dp = s.dp_group(3, 0);
        assert_eq!(
            dp.iter().map(Worker::to_string).collect::<Vec<_>>(),
            vec!["300", "310", "320"]
        );
    }

    #[test]
    fn fred_policy_places_mp_groups_consecutively() {
        let s = Strategy3D::new(2, 5, 2);
        let pl = Placement::new(s, PlacementPolicy::MpPpDp);
        for d in 0..s.dp {
            for p in 0..s.pp {
                let npus = pl.mp_group_npus(d, p);
                assert_eq!(
                    npus[1],
                    npus[0] + 1,
                    "MP group ({d},{p}) not consecutive: {npus:?}"
                );
            }
        }
        // And PP iterates next: the PP peers of worker (0, d, *) are
        // `mp` apart.
        let pp0 = pl.pp_group_npus(0, 0);
        assert_eq!(pp0[1], pp0[0] + s.mp);
    }

    #[test]
    fn placement_is_a_bijection() {
        for policy in PlacementPolicy::ALL {
            let s = Strategy3D::new(5, 2, 2);
            let pl = Placement::new(s, policy);
            let mut seen: Vec<usize> = s.workers().map(|w| pl.npu_of(w)).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..20).collect::<Vec<_>>(), "{policy:?}");
        }
    }

    #[test]
    fn groups_partition_all_npus() {
        let s = Strategy3D::new(2, 5, 2);
        let pl = Placement::new(s, PlacementPolicy::MpPpDp);
        let mut all: Vec<usize> = pl.all_mp_groups().into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
        assert_eq!(pl.all_dp_groups().len(), s.dp_group_count());
        assert_eq!(pl.all_pp_groups().len(), s.pp_group_count());
    }

    /// §5.3: Fred₃ switches + the MP-PP-DP placement suffice to route
    /// the concurrent collectives of each 3D-parallelism phase without
    /// conflicts. Exercised on a single 20-port switch for several
    /// strategies (aligned and non-aligned).
    #[test]
    fn concurrent_3d_phases_route_conflict_free_on_fred3() {
        let net = Interconnect::new(3, 20).unwrap();
        for (mp, dp, pp) in [
            (2, 5, 2),
            (4, 5, 1),
            (5, 2, 2),
            (2, 2, 5),
            (20, 1, 1),
            (5, 3, 1),
        ] {
            let s = Strategy3D::new(mp, dp, pp);
            let pl = Placement::new(s, PlacementPolicy::MpPpDp);
            // Concurrent MP All-Reduces (one per MP group).
            let mp_flows: Vec<Flow> = pl
                .all_mp_groups()
                .into_iter()
                .filter(|g| g.len() > 1)
                .map(|g| Flow::all_reduce(g).unwrap())
                .collect();
            if !mp_flows.is_empty() {
                let routed =
                    route_flows(&net, &mp_flows).unwrap_or_else(|e| panic!("{s} MP phase: {e}"));
                routed.verify(&mp_flows).unwrap();
            }
            // Concurrent DP All-Reduces.
            let dp_flows: Vec<Flow> = pl
                .all_dp_groups()
                .into_iter()
                .filter(|g| g.len() > 1)
                .map(|g| Flow::all_reduce(g).unwrap())
                .collect();
            if !dp_flows.is_empty() {
                let routed =
                    route_flows(&net, &dp_flows).unwrap_or_else(|e| panic!("{s} DP phase: {e}"));
                routed.verify(&dp_flows).unwrap();
            }
            // Concurrent PP transfers (each stage multicasts to the next).
            let pp_flows: Vec<Flow> = pl
                .all_pp_groups()
                .into_iter()
                .filter(|g| g.len() > 1)
                .map(|g| Flow::unicast(g[0], g[1]))
                .collect();
            if !pp_flows.is_empty() {
                // PP unicasts may share endpoints across groups; validate
                // first and skip invalid combinations.
                if crate::flow::validate_phase(&pp_flows, 20).is_ok() {
                    let routed = route_flows(&net, &pp_flows)
                        .unwrap_or_else(|e| panic!("{s} PP phase: {e}"));
                    routed.verify(&pp_flows).unwrap();
                }
            }
        }
    }

    #[test]
    fn based_placement_offsets_every_slot() {
        let s = Strategy3D::new(2, 2, 2);
        let zero = Placement::new(s, PlacementPolicy::MpPpDp);
        let based = Placement::with_base(s, PlacementPolicy::MpPpDp, 7);
        for w in s.workers() {
            assert_eq!(based.npu_of(w), zero.npu_of(w) + 7);
        }
        assert_eq!(zero.max_slot(), 7);
        assert_eq!(based.max_slot(), 14);
        // Group structure is translation-invariant.
        assert_eq!(
            based.mp_group_npus(0, 0),
            zero.mp_group_npus(0, 0)
                .into_iter()
                .map(|n| n + 7)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = Strategy3D::new(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_grid_worker_rejected() {
        let s = Strategy3D::new(2, 2, 2);
        let pl = Placement::new(s, PlacementPolicy::MpPpDp);
        let _ = pl.npu_of(Worker {
            mp: 2,
            dp: 0,
            pp: 0,
        });
    }
}

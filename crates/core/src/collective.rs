//! Simple and compound collective algorithms on the flow fabric
//! (Table 2).
//!
//! *Simple* patterns map to a single [`Flow`]; *compound* patterns are
//! broken into multiple serial steps, each step being a set of flows
//! routed concurrently. [`compile`] returns the step list for any
//! pattern; each step's flows are intended to be passed to
//! [`crate::routing::route_flows`] as one phase.

use std::fmt;

use crate::flow::{Flow, FlowError};

/// A collective communication pattern among switch ports (Fig 3 /
/// Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// One source port to one destination port.
    Unicast {
        /// Source port.
        src: usize,
        /// Destination port.
        dst: usize,
    },
    /// One source port to several destination ports.
    Multicast {
        /// Source port.
        src: usize,
        /// Destination ports.
        dsts: Vec<usize>,
    },
    /// Several source ports reduced onto one destination port.
    Reduce {
        /// Source ports.
        srcs: Vec<usize>,
        /// Destination port.
        dst: usize,
    },
    /// Reduce + broadcast among one group (inputs = outputs).
    AllReduce {
        /// Participating ports.
        group: Vec<usize>,
    },
    /// Globally reduced data scattered across the group; broken into
    /// serial Reduce flows, one per output port.
    ReduceScatter {
        /// Participating ports.
        group: Vec<usize>,
    },
    /// Every port's data broadcast to all; broken into serial Multicast
    /// flows, one per input port.
    AllGather {
        /// Participating ports.
        group: Vec<usize>,
    },
    /// One port's data split across the group; serial Unicasts, one per
    /// output port.
    Scatter {
        /// Source port.
        src: usize,
        /// Destination ports.
        dsts: Vec<usize>,
    },
    /// The group's data collected on one port; serial Unicasts, one per
    /// input port.
    Gather {
        /// Source ports.
        srcs: Vec<usize>,
        /// Destination port.
        dst: usize,
    },
    /// Each port sends a distinct shard to each other port; i serial
    /// steps of shift-by-j Unicast permutations.
    AllToAll {
        /// Participating ports.
        group: Vec<usize>,
    },
}

impl Pattern {
    /// True for patterns realised by a single flow (shaded rows of
    /// Table 2).
    pub fn is_simple(&self) -> bool {
        matches!(
            self,
            Pattern::Unicast { .. }
                | Pattern::Multicast { .. }
                | Pattern::Reduce { .. }
                | Pattern::AllReduce { .. }
        )
    }

    /// Short lowercase name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Unicast { .. } => "unicast",
            Pattern::Multicast { .. } => "multicast",
            Pattern::Reduce { .. } => "reduce",
            Pattern::AllReduce { .. } => "all-reduce",
            Pattern::ReduceScatter { .. } => "reduce-scatter",
            Pattern::AllGather { .. } => "all-gather",
            Pattern::Scatter { .. } => "scatter",
            Pattern::Gather { .. } => "gather",
            Pattern::AllToAll { .. } => "all-to-all",
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One serial step of a compiled collective: flows routed concurrently.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Flows to route in this step.
    pub flows: Vec<Flow>,
    /// Fraction of the collective's total payload that each flow in
    /// this step carries (e.g. `1/i` for each Reduce-Scatter step).
    pub payload_fraction: f64,
}

/// Compiles a pattern into its serial steps per Table 2.
///
/// # Errors
///
/// Returns [`FlowError::Empty`] if any port set of the pattern is
/// empty.
pub fn compile(pattern: &Pattern) -> Result<Vec<Step>, FlowError> {
    let one = |flow: Flow, frac: f64| Step {
        flows: vec![flow],
        payload_fraction: frac,
    };
    match pattern {
        Pattern::Unicast { src, dst } => Ok(vec![one(Flow::unicast(*src, *dst), 1.0)]),
        Pattern::Multicast { src, dsts } => {
            Ok(vec![one(Flow::multicast(*src, dsts.iter().copied())?, 1.0)])
        }
        Pattern::Reduce { srcs, dst } => {
            Ok(vec![one(Flow::reduce_to(srcs.iter().copied(), *dst)?, 1.0)])
        }
        Pattern::AllReduce { group } => {
            Ok(vec![one(Flow::all_reduce(group.iter().copied())?, 1.0)])
        }
        Pattern::ReduceScatter { group } => {
            if group.is_empty() {
                return Err(FlowError::Empty);
            }
            let frac = 1.0 / group.len() as f64;
            group
                .iter()
                .map(|&dst| Ok(one(Flow::reduce_to(group.iter().copied(), dst)?, frac)))
                .collect()
        }
        Pattern::AllGather { group } => {
            if group.is_empty() {
                return Err(FlowError::Empty);
            }
            let frac = 1.0 / group.len() as f64;
            group
                .iter()
                .map(|&src| Ok(one(Flow::multicast(src, group.iter().copied())?, frac)))
                .collect()
        }
        Pattern::Scatter { src, dsts } => {
            if dsts.is_empty() {
                return Err(FlowError::Empty);
            }
            let frac = 1.0 / dsts.len() as f64;
            Ok(dsts
                .iter()
                .map(|&d| one(Flow::unicast(*src, d), frac))
                .collect())
        }
        Pattern::Gather { srcs, dst } => {
            if srcs.is_empty() {
                return Err(FlowError::Empty);
            }
            let frac = 1.0 / srcs.len() as f64;
            Ok(srcs
                .iter()
                .map(|&s| one(Flow::unicast(s, *dst), frac))
                .collect())
        }
        Pattern::AllToAll { group } => {
            if group.is_empty() {
                return Err(FlowError::Empty);
            }
            let n = group.len();
            let frac = 1.0 / n as f64;
            // Step j: each input unicasts to the output at distance j
            // (Table 2). Step 0 (distance 0) is a local copy; skip it
            // when the group has more than one member.
            let mut steps = Vec::new();
            for j in 1..n {
                let flows: Vec<Flow> = (0..n)
                    .map(|i| Flow::unicast(group[i], group[(i + j) % n]))
                    .collect();
                steps.push(Step {
                    flows,
                    payload_fraction: frac,
                });
            }
            if steps.is_empty() {
                // Single-member group: degenerate local copy.
                steps.push(Step {
                    flows: vec![Flow::unicast(group[0], group[0])],
                    payload_fraction: frac,
                });
            }
            Ok(steps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::Interconnect;
    use crate::routing::route_flows;

    fn all_steps_route(pattern: &Pattern, m: usize, ports: usize) {
        let net = Interconnect::new(m, ports).unwrap();
        for (i, step) in compile(pattern).unwrap().iter().enumerate() {
            let routed = route_flows(&net, &step.flows)
                .unwrap_or_else(|e| panic!("{pattern} step {i}: {e}"));
            routed.verify(&step.flows).unwrap();
        }
    }

    #[test]
    fn simple_patterns_are_one_step() {
        for p in [
            Pattern::Unicast { src: 0, dst: 5 },
            Pattern::Multicast {
                src: 1,
                dsts: vec![2, 3, 4],
            },
            Pattern::Reduce {
                srcs: vec![0, 2, 4],
                dst: 6,
            },
            Pattern::AllReduce {
                group: vec![1, 3, 5, 7],
            },
        ] {
            assert!(p.is_simple());
            assert_eq!(compile(&p).unwrap().len(), 1);
            all_steps_route(&p, 2, 8);
        }
    }

    #[test]
    fn reduce_scatter_has_group_size_steps() {
        let p = Pattern::ReduceScatter {
            group: vec![0, 2, 4, 6],
        };
        let steps = compile(&p).unwrap();
        assert_eq!(steps.len(), 4);
        for (j, s) in steps.iter().enumerate() {
            assert_eq!(s.flows.len(), 1);
            assert_eq!(s.flows[0].ops().len(), 1);
            assert!(s.flows[0].ops().contains(&[0, 2, 4, 6][j]));
            assert!((s.payload_fraction - 0.25).abs() < 1e-12);
        }
        all_steps_route(&p, 2, 8);
    }

    #[test]
    fn all_gather_is_serial_multicasts() {
        let p = Pattern::AllGather {
            group: vec![1, 3, 5],
        };
        let steps = compile(&p).unwrap();
        assert_eq!(steps.len(), 3);
        for s in &steps {
            assert_eq!(s.flows[0].ips().len(), 1);
            assert_eq!(s.flows[0].ops().len(), 3);
        }
        all_steps_route(&p, 2, 8);
    }

    #[test]
    fn scatter_and_gather_are_serial_unicasts() {
        let s = Pattern::Scatter {
            src: 0,
            dsts: vec![1, 2, 3],
        };
        assert_eq!(compile(&s).unwrap().len(), 3);
        all_steps_route(&s, 2, 8);
        let g = Pattern::Gather {
            srcs: vec![4, 5, 6],
            dst: 7,
        };
        assert_eq!(compile(&g).unwrap().len(), 3);
        all_steps_route(&g, 2, 8);
    }

    #[test]
    fn all_to_all_steps_are_shift_permutations() {
        let p = Pattern::AllToAll {
            group: vec![0, 1, 2, 3],
        };
        let steps = compile(&p).unwrap();
        // Distances 1..=3.
        assert_eq!(steps.len(), 3);
        for (j, s) in steps.iter().enumerate() {
            assert_eq!(s.flows.len(), 4);
            for (i, f) in s.flows.iter().enumerate() {
                let src = *f.ips().iter().next().unwrap();
                let dst = *f.ops().iter().next().unwrap();
                assert_eq!(src, i);
                assert_eq!(dst, (i + j + 1) % 4);
            }
        }
        all_steps_route(&p, 2, 8);
    }

    #[test]
    fn empty_groups_rejected() {
        assert!(compile(&Pattern::AllReduce { group: vec![] }).is_err());
        assert!(compile(&Pattern::ReduceScatter { group: vec![] }).is_err());
        assert!(compile(&Pattern::Scatter {
            src: 0,
            dsts: vec![]
        })
        .is_err());
        assert!(compile(&Pattern::AllToAll { group: vec![] }).is_err());
    }

    #[test]
    fn table2_cardinalities() {
        // |IPs|/|OPs| per Table 2.
        let steps = compile(&Pattern::AllReduce {
            group: vec![0, 1, 2],
        })
        .unwrap();
        let f = &steps[0].flows[0];
        assert_eq!(f.ips(), f.ops());
        let steps = compile(&Pattern::Reduce {
            srcs: vec![0, 1],
            dst: 2,
        })
        .unwrap();
        let f = &steps[0].flows[0];
        assert!(f.ips().len() > 1 && f.ops().len() == 1);
        let steps = compile(&Pattern::Multicast {
            src: 0,
            dsts: vec![1, 2],
        })
        .unwrap();
        let f = &steps[0].flows[0];
        assert!(f.ips().len() == 1 && f.ops().len() > 1);
    }

    #[test]
    fn compound_patterns_route_on_odd_fred3() {
        for p in [
            Pattern::ReduceScatter {
                group: vec![0, 4, 8, 10],
            },
            Pattern::AllGather {
                group: vec![1, 5, 9],
            },
            Pattern::AllToAll {
                group: vec![0, 3, 6, 9],
            },
        ] {
            all_steps_route(&p, 3, 11);
        }
    }
}

//! Beyond a single wafer (§8.3 discussion).
//!
//! When a model needs more than one wafer, the paper sketches a
//! hierarchical scheme: a global All-Reduce decomposes into
//!
//! 1. a special **intra-wafer Reduce-Scatter** performed by FRED where
//!    only the boundary NPUs (those with I/O access) hold the results,
//! 2. an **inter-wafer All-Reduce** over those boundary NPUs across
//!    wafers, and
//! 3. a final **intra-wafer All-Gather** broadcasting the result to
//!    every NPU on each wafer.
//!
//! This module builds a multi-wafer topology (each wafer a
//! [`WaferFabric`], wafers joined by inter-wafer links between their
//! I/O controllers) and compiles the three-step global All-Reduce into
//! flows for the simulator.

use fred_sim::flow::{FlowSpec, Priority};
use fred_sim::topology::{LinkId, NodeId, NodeKind, Topology};

use crate::fabric::WaferFabric;
use crate::params::{FabricConfig, PhysicalParams};

/// A cluster of FRED wafers joined by inter-wafer links.
#[derive(Debug, Clone)]
pub struct MultiWafer {
    topo: Topology,
    wafers: usize,
    npus_per_wafer: usize,
    boundary_per_wafer: usize,
    /// `npu[(w, i)]` node ids, wafer-major.
    npus: Vec<NodeId>,
    npu_up: Vec<LinkId>,
    npu_down: Vec<LinkId>,
    l1_up: Vec<LinkId>,
    l1_down: Vec<LinkId>,
    l1_of_npu: Vec<usize>,
    l1_count_per_wafer: usize,
    /// Inter-wafer ring links between boundary aggregation points:
    /// `ring[(w, b)]` connects wafer w's boundary b to wafer w+1's.
    ring_fwd: Vec<LinkId>,
    ring_rev: Vec<LinkId>,
    boundary_nodes: Vec<NodeId>,
}

impl MultiWafer {
    /// Builds `wafers` copies of the 20-NPU FRED wafer, joined by an
    /// inter-wafer ring of `inter_bw` bytes/s per boundary channel.
    /// Each wafer exposes `boundary` aggregation points (bonded groups
    /// of I/O controllers).
    ///
    /// # Panics
    ///
    /// Panics if `wafers < 2` or `boundary == 0`.
    pub fn new(wafers: usize, config: FabricConfig, boundary: usize, inter_bw: f64) -> MultiWafer {
        assert!(wafers >= 2, "a multi-wafer system needs at least 2 wafers");
        assert!(boundary > 0);
        let params = PhysicalParams::paper();
        let single = WaferFabric::new(config, &params);
        let npus_per_wafer = single.npu_count();
        let l1_count = single.l1_count();
        let lat = params.link_latency;

        let mut topo = Topology::new();
        let mut npus = Vec::new();
        let mut npu_up = Vec::new();
        let mut npu_down = Vec::new();
        let mut l1_up = Vec::new();
        let mut l1_down = Vec::new();
        let mut l1_of_npu = Vec::new();
        let mut boundary_nodes = Vec::new();

        for w in 0..wafers {
            let l1s: Vec<NodeId> = (0..l1_count)
                .map(|i| topo.add_node(NodeKind::SwitchL1, format!("w{w}.l1.{i}")))
                .collect();
            let l2 = topo.add_node(NodeKind::SwitchL2, format!("w{w}.l2"));
            for i in 0..npus_per_wafer {
                let npu = topo.add_node(NodeKind::Npu, format!("w{w}.npu{i}"));
                let l1 = i / (npus_per_wafer / l1_count);
                let (up, down) = topo.add_duplex_link(npu, l1s[l1], params.npu_bw, lat);
                npus.push(npu);
                npu_up.push(up);
                npu_down.push(down);
                l1_of_npu.push(l1);
            }
            for &l1 in &l1s {
                let (up, down) = topo.add_duplex_link(l1, l2, config.l1_l2_bw(), lat);
                l1_up.push(up);
                l1_down.push(down);
            }
            // Boundary aggregation points hang off L1 switches
            // round-robin, at the inter-wafer channel bandwidth.
            for b in 0..boundary {
                let node = topo.add_node(NodeKind::IoController, format!("w{w}.boundary{b}"));
                let l1 = l1s[b % l1_count];
                topo.add_duplex_link(node, l1, inter_bw, lat);
                boundary_nodes.push(node);
            }
        }

        // Inter-wafer ring per boundary channel.
        let mut ring_fwd = Vec::new();
        let mut ring_rev = Vec::new();
        for w in 0..wafers {
            for b in 0..boundary {
                let here = boundary_nodes[w * boundary + b];
                let there = boundary_nodes[((w + 1) % wafers) * boundary + b];
                let (f, r) = topo.add_duplex_link(here, there, inter_bw, 10.0 * lat);
                ring_fwd.push(f);
                ring_rev.push(r);
            }
        }

        MultiWafer {
            topo,
            wafers,
            npus_per_wafer,
            boundary_per_wafer: boundary,
            npus,
            npu_up,
            npu_down,
            l1_up,
            l1_down,
            l1_of_npu,
            l1_count_per_wafer: l1_count,
            ring_fwd,
            ring_rev,
            boundary_nodes,
        }
    }

    /// The composed topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// A clone of the topology for the simulator.
    pub fn clone_topology(&self) -> Topology {
        self.topo.clone()
    }

    /// Number of wafers.
    pub fn wafers(&self) -> usize {
        self.wafers
    }

    /// NPUs per wafer.
    pub fn npus_per_wafer(&self) -> usize {
        self.npus_per_wafer
    }

    /// Total NPUs in the cluster.
    pub fn total_npus(&self) -> usize {
        self.wafers * self.npus_per_wafer
    }

    /// Node id of NPU `i` on wafer `w`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn npu(&self, w: usize, i: usize) -> NodeId {
        assert!(w < self.wafers && i < self.npus_per_wafer);
        self.npus[w * self.npus_per_wafer + i]
    }

    /// Node id of boundary aggregation point `b` on wafer `w`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn boundary(&self, w: usize, b: usize) -> NodeId {
        assert!(w < self.wafers && b < self.boundary_per_wafer);
        self.boundary_nodes[w * self.boundary_per_wafer + b]
    }

    /// Compiles the §8.3 three-step global All-Reduce of `bytes` over
    /// every NPU of every wafer into concurrent flows (pipelined,
    /// in-network on each wafer):
    ///
    /// 1. intra-wafer Reduce-Scatter toward the boundary: every NPU
    ///    pushes `bytes` up; each boundary point ends with a
    ///    `bytes / boundary` shard of the wafer-reduced data;
    /// 2. inter-wafer ring All-Reduce of each shard across wafers
    ///    (`2(W−1)/W` of the shard per boundary link);
    /// 3. intra-wafer All-Gather: `bytes` broadcast back down to every
    ///    NPU.
    pub fn global_all_reduce(&self, bytes: f64, priority: Priority, tag: u64) -> Vec<FlowSpec> {
        let mut flows = Vec::new();
        let shard = bytes / self.boundary_per_wafer as f64;
        let w_traffic = 2.0 * (self.wafers as f64 - 1.0) / self.wafers as f64;
        for w in 0..self.wafers {
            for i in 0..self.npus_per_wafer {
                let g = w * self.npus_per_wafer + i;
                // Step 1 up + step 3 down on every NPU link.
                flows.push(
                    FlowSpec::new(vec![self.npu_up[g]], bytes)
                        .with_priority(priority)
                        .with_tag(tag),
                );
                flows.push(
                    FlowSpec::new(vec![self.npu_down[g]], bytes)
                        .with_priority(priority)
                        .with_tag(tag),
                );
            }
            for l in 0..self.l1_count_per_wafer {
                let g = w * self.l1_count_per_wafer + l;
                // Partial sums converge over L2 (step 1) and the result
                // fans back out (step 3).
                flows.push(
                    FlowSpec::new(vec![self.l1_up[g]], bytes)
                        .with_priority(priority)
                        .with_tag(tag),
                );
                flows.push(
                    FlowSpec::new(vec![self.l1_down[g]], bytes)
                        .with_priority(priority)
                        .with_tag(tag),
                );
            }
            // Step 2: ring All-Reduce of each boundary shard.
            for b in 0..self.boundary_per_wafer {
                let g = w * self.boundary_per_wafer + b;
                flows.push(
                    FlowSpec::new(vec![self.ring_fwd[g]], shard * w_traffic / 2.0)
                        .with_priority(priority)
                        .with_tag(tag),
                );
                flows.push(
                    FlowSpec::new(vec![self.ring_rev[g]], shard * w_traffic / 2.0)
                        .with_priority(priority)
                        .with_tag(tag),
                );
            }
        }
        flows
    }

    /// Index of the L1 switch serving NPU `i` of wafer `w` (used by
    /// tests).
    pub fn l1_of(&self, w: usize, i: usize) -> usize {
        self.l1_of_npu[w * self.npus_per_wafer + i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_sim::netsim::FlowNetwork;

    fn cluster(wafers: usize) -> MultiWafer {
        MultiWafer::new(wafers, FabricConfig::FredD, 4, 256e9)
    }

    #[test]
    fn builds_expected_shape() {
        let mw = cluster(3);
        assert_eq!(mw.wafers(), 3);
        assert_eq!(mw.total_npus(), 60);
        assert_eq!(mw.npus_per_wafer(), 20);
        assert_eq!(mw.l1_of(2, 19), 4);
        // Nodes: per wafer 5 L1 + 1 L2 + 20 NPU + 4 boundary = 30.
        assert_eq!(mw.topology().node_count(), 90);
    }

    #[test]
    fn global_allreduce_routes_validate() {
        let mw = cluster(2);
        let flows = mw.global_all_reduce(1e9, Priority::Dp, 0);
        for f in &flows {
            mw.topology().validate_route(&f.route).unwrap();
        }
        // Per wafer: 40 NPU flows + 10 L1 flows + 8 ring flows.
        assert_eq!(flows.len(), 2 * (40 + 10 + 8));
    }

    #[test]
    fn inter_wafer_bandwidth_dominates_completion() {
        // With skinny inter-wafer channels the global AR is bound by
        // step 2; with fat channels it is bound by the on-wafer 3 TBps.
        let d = 10e9;
        let time_with = |inter_bw: f64| {
            let mw = MultiWafer::new(2, FabricConfig::FredD, 4, inter_bw);
            let mut net = FlowNetwork::new(mw.clone_topology());
            net.inject_batch(mw.global_all_reduce(d, Priority::Dp, 0))
                .unwrap();
            let done = net.run_to_completion();
            done.iter()
                .map(|c| c.completed_at.as_secs())
                .fold(0.0, f64::max)
        };
        let skinny = time_with(64e9);
        let fat = time_with(10e12);
        assert!(skinny > fat * 2.0, "skinny {skinny} vs fat {fat}");
        // Fat channels: bound by npu links at D / 3 TBps.
        assert!((fat - d / 3e12).abs() / (d / 3e12) < 0.2, "fat {fat}");
        // Skinny: bound by the shard ring on 64 GB/s channels.
        let shard = d / 4.0;
        let expected = shard * 0.5 / 64e9; // 2(W-1)/W / 2 per direction
        assert!(
            (skinny - expected).abs() / expected < 0.2,
            "skinny {skinny} vs {expected}"
        );
    }

    #[test]
    fn scaling_wafers_keeps_on_wafer_traffic_constant() {
        let d = 1e9;
        for w in [2usize, 3, 4] {
            let mw = cluster(w);
            let flows = mw.global_all_reduce(d, Priority::Dp, 0);
            // Every NPU link still carries exactly D (in-network
            // property preserved across the hierarchy).
            let npu_flows: Vec<_> = flows
                .iter()
                .filter(|f| {
                    let link = mw.topology().link(f.route[0]);
                    mw.topology().node(link.src).kind == NodeKind::Npu
                })
                .collect();
            assert_eq!(npu_flows.len(), mw.total_npus());
            assert!(npu_flows.iter().all(|f| f.bytes == d));
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_wafer_rejected() {
        let _ = cluster(1);
    }
}

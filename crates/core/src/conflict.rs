//! Conflict graphs and exact graph colouring (§5.2–§5.3, Fig 7i–j).
//!
//! Two flows *conflict* at a recursion level when they share an input
//! unit or an output unit: the unit has exactly one link to each middle
//! subnetwork, so conflicting flows must be routed through different
//! middles. FRED expresses this as graph colouring with m colours; a
//! *routing conflict* (Fig 7j) is an uncolourable conflict graph.
//!
//! Colouring is exact: DSATUR ordering with full backtracking. The
//! graphs are tiny (one node per concurrent flow), so exactness is
//! cheap, and it matters — the paper defines "conflict" as the
//! *non-existence* of a colouring, not as the failure of a greedy
//! heuristic. A greedy colouring is also provided for the ablation study
//! in the benchmark harness.

use std::collections::BTreeSet;
use std::fmt;

use crate::flow::Flow;
use crate::interconnect::PortUnit;

/// An undirected conflict graph over the flows of one routing phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictGraph {
    adj: Vec<BTreeSet<usize>>,
}

impl ConflictGraph {
    /// Builds the conflict graph for `flows` at a stage with `r` full
    /// units (ports 2k, 2k+1) plus an optional tail port.
    ///
    /// `unit_of` maps an external port number to its unit.
    pub fn from_flows(flows: &[Flow], unit_of: impl Fn(usize) -> PortUnit) -> ConflictGraph {
        let n = flows.len();
        let mut adj = vec![BTreeSet::new(); n];
        // For each unit, the set of flows touching it on the input
        // (resp. output) side.
        let mut in_units: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        let mut out_units: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for (i, f) in flows.iter().enumerate() {
            let mut seen_in = BTreeSet::new();
            for &p in f.ips() {
                if let PortUnit::Unit(k) = unit_of(p) {
                    if seen_in.insert(k) {
                        in_units.entry(k).or_default().push(i);
                    }
                }
            }
            let mut seen_out = BTreeSet::new();
            for &p in f.ops() {
                if let PortUnit::Unit(k) = unit_of(p) {
                    if seen_out.insert(k) {
                        out_units.entry(k).or_default().push(i);
                    }
                }
            }
        }
        for members in in_units.values().chain(out_units.values()) {
            for (a, &i) in members.iter().enumerate() {
                for &j in &members[a + 1..] {
                    adj[i].insert(j);
                    adj[j].insert(i);
                }
            }
        }
        ConflictGraph { adj }
    }

    /// Number of nodes (flows).
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Neighbours of node `i`.
    pub fn neighbors(&self, i: usize) -> &BTreeSet<usize> {
        &self.adj[i]
    }

    /// Exact colouring with at most `colors` colours.
    ///
    /// Returns one colour per node, or `None` if no proper colouring
    /// exists. Uses DSATUR ordering with backtracking, which is exact.
    pub fn color(&self, colors: usize) -> Option<Vec<usize>> {
        let n = self.adj.len();
        if n == 0 {
            return Some(Vec::new());
        }
        if colors == 0 {
            return None;
        }
        let mut assignment: Vec<Option<usize>> = vec![None; n];
        if self.backtrack(colors, &mut assignment) {
            Some(
                assignment
                    .into_iter()
                    .map(|c| c.expect("complete colouring"))
                    .collect(),
            )
        } else {
            None
        }
    }

    fn backtrack(&self, colors: usize, assignment: &mut Vec<Option<usize>>) -> bool {
        // DSATUR: pick the uncoloured node with the most distinctly
        // coloured neighbours (break ties by degree, then index).
        let pick = (0..self.adj.len())
            .filter(|&i| assignment[i].is_none())
            .max_by_key(|&i| {
                let sat: BTreeSet<usize> =
                    self.adj[i].iter().filter_map(|&j| assignment[j]).collect();
                (sat.len(), self.adj[i].len(), usize::MAX - i)
            });
        let Some(i) = pick else { return true };
        let forbidden: BTreeSet<usize> =
            self.adj[i].iter().filter_map(|&j| assignment[j]).collect();
        for c in 0..colors {
            if !forbidden.contains(&c) {
                assignment[i] = Some(c);
                if self.backtrack(colors, assignment) {
                    return true;
                }
                assignment[i] = None;
            }
        }
        false
    }

    /// Greedy first-fit colouring in index order; may fail on graphs the
    /// exact solver can colour. Used by the ablation bench.
    pub fn greedy_color(&self, colors: usize) -> Option<Vec<usize>> {
        let mut out = Vec::with_capacity(self.adj.len());
        for i in 0..self.adj.len() {
            let forbidden: BTreeSet<usize> = self.adj[i]
                .iter()
                .filter(|&&j| j < i)
                .map(|&j| out[j])
                .collect();
            let c = (0..colors).find(|c| !forbidden.contains(c))?;
            out.push(c);
        }
        Some(out)
    }
}

/// A routing conflict: the conflict graph at some recursion level cannot
/// be coloured with the available middle subnetworks (Fig 7j).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingConflict {
    /// Port count of the (sub)network where colouring failed.
    pub ports: usize,
    /// Number of middle subnetworks (colours) available.
    pub m: usize,
    /// Number of flows that had to be coloured.
    pub flows: usize,
    /// Recursion depth (0 = outermost switch level).
    pub depth: usize,
}

impl fmt::Display for RoutingConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "routing conflict: {} flows on Fred{}({}) at depth {} cannot be {}-coloured",
            self.flows, self.m, self.ports, self.depth, self.m
        )
    }
}

impl std::error::Error for RoutingConflict {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;

    fn unit_of_even(r: usize) -> impl Fn(usize) -> PortUnit {
        move |p| {
            assert!(p < 2 * r);
            PortUnit::Unit(p / 2)
        }
    }

    #[test]
    fn disjoint_flows_have_no_edges() {
        let flows = vec![
            Flow::all_reduce([0, 1]).unwrap(),
            Flow::all_reduce([2, 3]).unwrap(),
        ];
        let g = ConflictGraph::from_flows(&flows, unit_of_even(4));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn shared_input_unit_creates_edge() {
        // Ports 0 and 1 share unit 0.
        let flows = vec![Flow::unicast(0, 4), Flow::unicast(1, 6)];
        let g = ConflictGraph::from_flows(&flows, unit_of_even(4));
        assert_eq!(g.edge_count(), 1);
        assert!(g.neighbors(0).contains(&1));
    }

    #[test]
    fn shared_output_unit_creates_edge() {
        let flows = vec![Flow::unicast(0, 4), Flow::unicast(2, 5)];
        let g = ConflictGraph::from_flows(&flows, unit_of_even(4));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn tail_port_never_conflicts() {
        // Port 8 is the tail on Fred(9): r = 4.
        let unit_of = |p: usize| {
            if p == 8 {
                PortUnit::Tail
            } else {
                PortUnit::Unit(p / 2)
            }
        };
        let flows = vec![Flow::unicast(8, 0), Flow::unicast(1, 2)];
        let g = ConflictGraph::from_flows(&flows, unit_of);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn triangle_needs_three_colors() {
        // Fig 7(j): a cyclic dependency among three flows.
        let mut g = ConflictGraph {
            adj: vec![BTreeSet::new(); 3],
        };
        for (a, b) in [(0, 1), (1, 2), (0, 2)] {
            g.adj[a].insert(b);
            g.adj[b].insert(a);
        }
        assert!(g.color(2).is_none());
        let c = g.color(3).unwrap();
        assert_ne!(c[0], c[1]);
        assert_ne!(c[1], c[2]);
        assert_ne!(c[0], c[2]);
    }

    #[test]
    fn even_cycle_is_two_colorable() {
        let mut g = ConflictGraph {
            adj: vec![BTreeSet::new(); 4],
        };
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            g.adj[a].insert(b);
            g.adj[b].insert(a);
        }
        let c = g.color(2).unwrap();
        for i in 0..4 {
            for &j in g.neighbors(i) {
                assert_ne!(c[i], c[j]);
            }
        }
    }

    #[test]
    fn exact_beats_greedy_on_crown_like_graph() {
        // Path coloured badly by greedy order: nodes 0-2 adjacent to 3 in
        // a pattern where first-fit wastes colours. Construct the classic
        // greedy-failure: bipartite graph with "crossed" edges.
        // Nodes 0,1,2,3: edges (0,3),(1,2). Greedy in index order with
        // 2 colours: 0->c0, 1->c0, 2->c1, 3->c1: proper. Make it fail:
        // edges (0,1'),(1,0') style needs 6 nodes.
        let mut g = ConflictGraph {
            adj: vec![BTreeSet::new(); 6],
        };
        // Bipartite: {0,2,4} vs {1,3,5}, edges (0,3),(0,5),(2,1),(2,5),(4,1),(4,3).
        for (a, b) in [(0, 3), (0, 5), (2, 1), (2, 5), (4, 1), (4, 3)] {
            g.adj[a].insert(b);
            g.adj[b].insert(a);
        }
        // Greedy (index order) gives 0->0, 1->0, 2->1, 3->1, 4->2: fails with 2.
        assert!(g.greedy_color(2).is_none());
        // Exact succeeds (the graph is bipartite).
        assert!(g.color(2).is_some());
    }

    #[test]
    fn empty_graph_colors_trivially() {
        let g = ConflictGraph { adj: vec![] };
        assert_eq!(g.color(2), Some(vec![]));
        assert!(g.is_empty());
    }

    /// Brute-force oracle: tries every assignment.
    fn colorable_brute(g: &ConflictGraph, colors: usize) -> bool {
        let n = g.len();
        if n == 0 {
            return true;
        }
        let mut assignment = vec![0usize; n];
        loop {
            let proper = (0..n).all(|i| {
                g.neighbors(i)
                    .iter()
                    .all(|&j| assignment[i] != assignment[j])
            });
            if proper {
                return true;
            }
            // Increment the mixed-radix counter.
            let mut k = 0;
            loop {
                if k == n {
                    return false;
                }
                assignment[k] += 1;
                if assignment[k] < colors {
                    break;
                }
                assignment[k] = 0;
                k += 1;
            }
        }
    }

    #[test]
    fn dsatur_matches_brute_force_on_small_graphs() {
        // Exhaustive cross-check on all graphs over 5 nodes with a
        // deterministic edge-set sweep.
        for mask in 0u32..1024 {
            let mut g = ConflictGraph {
                adj: vec![BTreeSet::new(); 5],
            };
            let mut bit = 0;
            for a in 0..5usize {
                for b in a + 1..5 {
                    if mask & (1 << bit) != 0 {
                        g.adj[a].insert(b);
                        g.adj[b].insert(a);
                    }
                    bit += 1;
                }
            }
            for colors in 2..=3usize {
                let exact = g.color(colors).is_some();
                let brute = colorable_brute(&g, colors);
                assert_eq!(exact, brute, "mask {mask:#b}, {colors} colours");
                if let Some(c) = g.color(colors) {
                    for i in 0..5 {
                        for &j in g.neighbors(i) {
                            assert_ne!(c[i], c[j]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn coloring_respects_all_edges_property() {
        // Random-ish stress: ring of 7 with chords, 3 colours.
        let mut g = ConflictGraph {
            adj: vec![BTreeSet::new(); 7],
        };
        for i in 0..7 {
            let j = (i + 1) % 7;
            g.adj[i].insert(j);
            g.adj[j].insert(i);
        }
        let c = g.color(3).unwrap();
        for i in 0..7 {
            for &j in g.neighbors(i) {
                assert_ne!(c[i], c[j], "edge ({i},{j}) monochromatic");
            }
        }
        // An odd cycle is not 2-colourable.
        assert!(g.color(2).is_none());
    }
}

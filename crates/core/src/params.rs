//! Physical system parameters (Table 3) and the evaluation
//! configurations (Table 5).
//!
//! All bandwidths are in **bytes per second per direction** unless noted
//! otherwise; areas in mm²; power in watts.

/// One terabyte per second.
pub const TBPS: f64 = 1e12;
/// One gigabyte per second.
pub const GBPS: f64 = 1e9;

/// Physical constants of the wafer-scale system (Table 3, §6.2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalParams {
    /// NPUs on the wafer (power-limited to ~21; the paper uses 20).
    pub npu_count: usize,
    /// I/O controllers bridging to external memory.
    pub io_count: usize,
    /// Per-NPU FP16 peak compute, FLOP/s (H100-like).
    pub npu_flops: f64,
    /// Per-direction NPU network bandwidth (3 TBps send + 3 TBps recv).
    pub npu_bw: f64,
    /// Local HBM bandwidth (3 TBps).
    pub hbm_bw: f64,
    /// Per-NPU HBM capacity in bytes (80 GB).
    pub hbm_capacity: f64,
    /// Per I/O controller bandwidth (CXL 3: 128 GBps).
    pub io_bw: f64,
    /// Wafer-scale link propagation latency (20 ns).
    pub link_latency: f64,
    /// Wafer power budget (15 kW).
    pub wafer_power_budget: f64,
    /// Per-NPU power: compute + 5 HBM stacks (700 W).
    pub npu_power: f64,
    /// Usable wafer area (300 mm wafer ≈ 70,000 mm²).
    pub wafer_area: f64,
    /// NPU chiplet + memory area (1,314 mm²).
    pub npu_area: f64,
    /// Per I/O controller area (20 mm²).
    pub io_area: f64,
    /// Wafer-scale I/O escape density, bytes/s per mm of chiplet
    /// perimeter per metal layer (53.7 GB/mm × 2 layers ≈ 107.4 GBps/mm).
    pub io_density: f64,
}

impl PhysicalParams {
    /// The paper's 20-NPU instance (Table 3, §6.2.2).
    pub fn paper() -> PhysicalParams {
        PhysicalParams {
            npu_count: 20,
            io_count: 18,
            npu_flops: 1000e12,
            npu_bw: 3.0 * TBPS,
            hbm_bw: 3.0 * TBPS,
            hbm_capacity: 80e9,
            io_bw: 128.0 * GBPS,
            link_latency: 20e-9,
            wafer_power_budget: 15_000.0,
            npu_power: 700.0,
            wafer_area: 70_000.0,
            npu_area: 1314.0,
            io_area: 20.0,
            io_density: 2.0 * 53.7 * GBPS,
        }
    }
}

impl Default for PhysicalParams {
    fn default() -> Self {
        PhysicalParams::paper()
    }
}

/// The five evaluated fabric configurations (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricConfig {
    /// 5×4 2D mesh, 750 GBps links, 3.75 TBps bisection, endpoint
    /// collectives.
    BaselineMesh,
    /// FRED tree with baseline-equal bisection (L1–L2 downscaled from
    /// 12 TBps to 1.5 TBps per L1), endpoint collectives.
    FredA,
    /// Fred-A plus in-network collective execution.
    FredB,
    /// FRED tree with full 12 TBps L1–L2 (30 TBps bisection), endpoint
    /// collectives.
    FredC,
    /// Fred-C plus in-network collective execution (the full design).
    FredD,
}

impl FabricConfig {
    /// All configurations in Table 5 order.
    pub const ALL: [FabricConfig; 5] = [
        FabricConfig::BaselineMesh,
        FabricConfig::FredA,
        FabricConfig::FredB,
        FabricConfig::FredC,
        FabricConfig::FredD,
    ];

    /// Whether this is a FRED (tree) topology.
    pub fn is_fred(self) -> bool {
        !matches!(self, FabricConfig::BaselineMesh)
    }

    /// Whether in-network collective execution is enabled.
    pub fn in_network_collectives(self) -> bool {
        matches!(self, FabricConfig::FredB | FabricConfig::FredD)
    }

    /// L1→L2 bandwidth per L1 switch, bytes/s per direction.
    ///
    /// Fred-A/B downscale to 1.5 TBps to match the baseline's 3.75 TBps
    /// bisection (5 × 1.5 / 2); Fred-C/D use the full 12 TBps (= 4
    /// attached NPUs × 3 TBps; 30 TBps bisection).
    ///
    /// # Panics
    ///
    /// Panics for [`FabricConfig::BaselineMesh`], which has no L1/L2
    /// hierarchy.
    pub fn l1_l2_bw(self) -> f64 {
        match self {
            FabricConfig::BaselineMesh => {
                panic!("the baseline mesh has no L1-L2 links")
            }
            FabricConfig::FredA | FabricConfig::FredB => 1.5 * TBPS,
            FabricConfig::FredC | FabricConfig::FredD => 12.0 * TBPS,
        }
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            FabricConfig::BaselineMesh => "Baseline",
            FabricConfig::FredA => "Fred-A",
            FabricConfig::FredB => "Fred-B",
            FabricConfig::FredC => "Fred-C",
            FabricConfig::FredD => "Fred-D",
        }
    }
}

impl std::fmt::Display for FabricConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Baseline mesh link bandwidth: each NPU's 3 TBps split across its 4
/// mesh ports → 750 GBps per link per direction (§7.1).
pub const MESH_LINK_BW: f64 = 750.0 * GBPS;

/// Mesh dimensions of the baseline (5 columns × 4 rows).
pub const MESH_COLS: usize = 5;
/// Mesh dimensions of the baseline (5 columns × 4 rows).
pub const MESH_ROWS: usize = 4;

/// NPUs attached to each FRED L1 switch (Fig 8).
pub const NPUS_PER_L1: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_matches_table3() {
        let p = PhysicalParams::paper();
        assert_eq!(p.npu_count, 20);
        assert_eq!(p.io_count, 18);
        assert_eq!(p.npu_bw, 3e12);
        assert_eq!(p.io_bw, 128e9);
        assert_eq!(p.link_latency, 20e-9);
        // Power budget permits at most 21 NPUs (§6.2.2).
        let max_npus = (p.wafer_power_budget / p.npu_power).floor() as usize;
        assert_eq!(max_npus, 21);
        assert!(p.npu_count <= max_npus);
    }

    #[test]
    fn bisection_bandwidths_match_table5() {
        // Baseline: 5 links across the vertical cut × 750 GBps = 3.75 TBps.
        assert_eq!(MESH_LINK_BW * MESH_COLS as f64, 3.75e12);
        // Fred-A: 5 L1 switches × 1.5 TBps / 2 halves = 3.75 TBps.
        assert_eq!(FabricConfig::FredA.l1_l2_bw() * 5.0 / 2.0, 3.75e12);
        // Fred-C: 5 × 12 / 2 = 30 TBps.
        assert_eq!(FabricConfig::FredC.l1_l2_bw() * 5.0 / 2.0, 30e12);
    }

    #[test]
    fn feature_flags_per_variant() {
        use FabricConfig::*;
        assert!(!BaselineMesh.is_fred());
        for c in [FredA, FredB, FredC, FredD] {
            assert!(c.is_fred());
        }
        assert!(!FredA.in_network_collectives());
        assert!(FredB.in_network_collectives());
        assert!(!FredC.in_network_collectives());
        assert!(FredD.in_network_collectives());
    }

    #[test]
    #[should_panic(expected = "no L1-L2")]
    fn mesh_has_no_tree_links() {
        let _ = FabricConfig::BaselineMesh.l1_l2_bw();
    }

    #[test]
    fn npu_area_accounting_matches_section_6_2_2() {
        let p = PhysicalParams::paper();
        let total = p.npu_count as f64 * p.npu_area + p.io_count as f64 * p.io_area;
        assert_eq!(total, 26_640.0);
        assert!(total < p.wafer_area);
    }
}

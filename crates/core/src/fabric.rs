//! The hierarchical wafer-scale FRED fabric (Fig 8, §6.1–§6.2).
//!
//! [`WaferFabric`] instantiates the paper's 2-level (almost) fat-tree:
//! NPUs and I/O controllers hang off L1 (leaf) FRED switches; L1
//! switches connect to a logical L2 (spine) layer. The physical chiplet
//! decomposition of each logical switch (Fig 8b / Table 4) is handled by
//! the area/power model in `fred-hwmodel`; for performance simulation
//! the logical tree is the right granularity, because a FRED switch is
//! internally nonblocking for conflict-free flow sets (proved by
//! [`crate::routing`]) — contention only occurs on the external
//! NPU–L1, L1–L2 and I/O links.
//!
//! The module also compiles *in-network* collectives into flow sets for
//! the flow-level simulator: with in-switch reduction/distribution, an
//! All-Reduce of D bytes puts exactly D bytes on every tree link it
//! touches (§2.2), half the endpoint-based traffic.

use fred_sim::flow::{FlowSpec, Priority};
use fred_sim::topology::{LinkId, NodeId, NodeKind, Route, Topology};

use crate::params::{FabricConfig, PhysicalParams, NPUS_PER_L1};

/// The wafer-scale FRED fabric instance.
///
/// ```
/// use fred_core::fabric::WaferFabric;
/// use fred_core::params::{FabricConfig, PhysicalParams};
///
/// let fabric = WaferFabric::new(FabricConfig::FredD, &PhysicalParams::paper());
/// assert_eq!(fabric.npu_count(), 20);
/// assert_eq!(fabric.bisection_bw(), 30e12); // Table 5
/// // Same-L1 NPUs are two hops apart; cross-L1 four.
/// assert_eq!(fabric.npu_route(0, 3).len(), 2);
/// assert_eq!(fabric.npu_route(0, 19).len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct WaferFabric {
    topo: Topology,
    config: FabricConfig,
    npus: Vec<NodeId>,
    l1s: Vec<NodeId>,
    l2: NodeId,
    ios: Vec<NodeId>,
    ext: NodeId,
    /// Index of the L1 switch each NPU attaches to.
    l1_of_npu: Vec<usize>,
    /// Index of the L1 switch each I/O controller attaches to.
    l1_of_io: Vec<usize>,
    // Link tables (duplex pairs).
    npu_up: Vec<LinkId>,
    npu_down: Vec<LinkId>,
    l1_up: Vec<LinkId>,
    l1_down: Vec<LinkId>,
    io_up: Vec<LinkId>,
    io_down: Vec<LinkId>,
    ext_to_io: Vec<LinkId>,
    io_to_ext: Vec<LinkId>,
}

impl WaferFabric {
    /// Builds the paper's 20-NPU / 18-I/O instance for a FRED
    /// configuration from Table 5.
    ///
    /// # Panics
    ///
    /// Panics if `config` is [`FabricConfig::BaselineMesh`] (built by
    /// the `fred-mesh` crate instead).
    pub fn new(config: FabricConfig, params: &PhysicalParams) -> WaferFabric {
        assert!(
            config.is_fred(),
            "the baseline mesh is built by fred-mesh, not WaferFabric"
        );
        Self::with_shape(
            config,
            params,
            params.npu_count,
            NPUS_PER_L1,
            params.io_count,
        )
    }

    /// Builds a fabric with an explicit shape (used by scaling sweeps
    /// and tests). `npus_per_l1` NPUs attach to each L1; I/O controllers
    /// are distributed round-robin-at-the-end across L1 switches as
    /// evenly as possible.
    ///
    /// # Panics
    ///
    /// Panics if `npu_count` is not a multiple of `npus_per_l1`, or if
    /// `config` is the baseline mesh.
    pub fn with_shape(
        config: FabricConfig,
        params: &PhysicalParams,
        npu_count: usize,
        npus_per_l1: usize,
        io_count: usize,
    ) -> WaferFabric {
        assert!(config.is_fred());
        assert!(
            npus_per_l1 > 0 && npu_count.is_multiple_of(npus_per_l1),
            "npu_count {npu_count} must be a multiple of npus_per_l1 {npus_per_l1}"
        );
        let l1_count = npu_count / npus_per_l1;
        let lat = params.link_latency;

        let mut topo = Topology::new();
        let npus: Vec<NodeId> = (0..npu_count)
            .map(|i| topo.add_node(NodeKind::Npu, format!("npu{i}")))
            .collect();
        let l1s: Vec<NodeId> = (0..l1_count)
            .map(|i| topo.add_node(NodeKind::SwitchL1, format!("l1.{i}")))
            .collect();
        let l2 = topo.add_node(NodeKind::SwitchL2, "l2");
        let ios: Vec<NodeId> = (0..io_count)
            .map(|i| topo.add_node(NodeKind::IoController, format!("io{i}")))
            .collect();
        let ext = topo.add_node(NodeKind::ExternalMemory, "ext");

        let mut npu_up = Vec::new();
        let mut npu_down = Vec::new();
        let mut l1_of_npu = Vec::new();
        for (i, &npu) in npus.iter().enumerate() {
            let l1 = i / npus_per_l1;
            l1_of_npu.push(l1);
            let (up, down) = topo.add_duplex_link(npu, l1s[l1], params.npu_bw, lat);
            npu_up.push(up);
            npu_down.push(down);
        }

        let mut l1_up = Vec::new();
        let mut l1_down = Vec::new();
        for &l1 in &l1s {
            let (up, down) = topo.add_duplex_link(l1, l2, config.l1_l2_bw(), lat);
            l1_up.push(up);
            l1_down.push(down);
        }

        let mut io_up = Vec::new();
        let mut io_down = Vec::new();
        let mut ext_to_io = Vec::new();
        let mut io_to_ext = Vec::new();
        let mut l1_of_io = Vec::new();
        for (i, &io) in ios.iter().enumerate() {
            let l1 = if l1_count == 0 { 0 } else { i % l1_count };
            l1_of_io.push(l1);
            let (up, down) = topo.add_duplex_link(io, l1s[l1], params.io_bw, lat);
            io_up.push(up);
            io_down.push(down);
            let (e2i, i2e) = topo.add_duplex_link(ext, io, params.io_bw, lat);
            ext_to_io.push(e2i);
            io_to_ext.push(i2e);
        }

        WaferFabric {
            topo,
            config,
            npus,
            l1s,
            l2,
            ios,
            ext,
            l1_of_npu,
            l1_of_io,
            npu_up,
            npu_down,
            l1_up,
            l1_down,
            io_up,
            io_down,
            ext_to_io,
            io_to_ext,
        }
    }

    /// The underlying topology (pass to
    /// [`fred_sim::netsim::FlowNetwork::new`]).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Clones the topology out (the simulator takes ownership).
    pub fn clone_topology(&self) -> Topology {
        self.topo.clone()
    }

    /// The configuration this fabric was built for.
    pub fn config(&self) -> FabricConfig {
        self.config
    }

    /// Number of NPUs.
    pub fn npu_count(&self) -> usize {
        self.npus.len()
    }

    /// Number of I/O controllers.
    pub fn io_count(&self) -> usize {
        self.ios.len()
    }

    /// Number of L1 switches.
    pub fn l1_count(&self) -> usize {
        self.l1s.len()
    }

    /// Node id of NPU `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn npu(&self, i: usize) -> NodeId {
        self.npus[i]
    }

    /// The NPU index whose node id is `node`, or `None` if `node` is
    /// not an NPU. O(1): NPUs are created first, so their node ids are
    /// contiguous from the first NPU's.
    pub fn npu_index(&self, node: NodeId) -> Option<usize> {
        let base = self.npus.first()?.0;
        let i = node.0.checked_sub(base)?;
        (i < self.npus.len() && self.npus[i] == node).then_some(i)
    }

    /// Node id of I/O controller `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn io(&self, i: usize) -> NodeId {
        self.ios[i]
    }

    /// The external-memory node.
    pub fn external_memory(&self) -> NodeId {
        self.ext
    }

    /// The logical L2 spine node.
    pub fn l2(&self) -> NodeId {
        self.l2
    }

    /// Node id of L1 switch `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn l1(&self, i: usize) -> NodeId {
        self.l1s[i]
    }

    /// Index of the L1 switch NPU `i` attaches to.
    pub fn l1_of_npu(&self, i: usize) -> usize {
        self.l1_of_npu[i]
    }

    /// NPU indices attached to L1 switch `l1`.
    pub fn npus_of_l1(&self, l1: usize) -> Vec<usize> {
        (0..self.npus.len())
            .filter(|&i| self.l1_of_npu[i] == l1)
            .collect()
    }

    /// Partitions a group of NPU indices by their L1 switch, preserving
    /// order within each part. Used by hierarchical collectives.
    pub fn partition_by_l1(&self, group: &[usize]) -> Vec<Vec<usize>> {
        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); self.l1s.len()];
        for &n in group {
            parts[self.l1_of_npu[n]].push(n);
        }
        parts.retain(|p| !p.is_empty());
        parts
    }

    /// Route between two NPUs: up to the common L1, or over the L2 spine.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range; returns an empty route if
    /// `a == b`.
    pub fn npu_route(&self, a: usize, b: usize) -> Route {
        if a == b {
            return Vec::new();
        }
        let (la, lb) = (self.l1_of_npu[a], self.l1_of_npu[b]);
        if la == lb {
            vec![self.npu_up[a], self.npu_down[b]]
        } else {
            vec![
                self.npu_up[a],
                self.l1_up[la],
                self.l1_down[lb],
                self.npu_down[b],
            ]
        }
    }

    /// Fault-aware variant of [`WaferFabric::npu_route`]: returns the
    /// standard up/down tree route when it crosses no blocked link,
    /// otherwise the shortest surviving path. In the 2-level tree the
    /// only redundancy around a dead L1–L2 trunk runs through a
    /// neighbouring L1 switch's I/O controllers and the external-memory
    /// hub, so detours are longer but keep the pair connected. Returns
    /// `None` when the blocked set cuts `a` from `b` (e.g. a dead
    /// NPU–L1 link, the NPU's only attachment).
    pub fn npu_route_avoiding(
        &self,
        a: usize,
        b: usize,
        blocked: impl Fn(LinkId) -> bool,
    ) -> Option<Route> {
        let standard = self.npu_route(a, b);
        if !standard.iter().any(|&l| blocked(l)) {
            return Some(standard);
        }
        self.topo
            .shortest_path_avoiding(self.npus[a], self.npus[b], blocked)
    }

    /// Route from I/O controller `io` to NPU `npu`.
    pub fn io_to_npu_route(&self, io: usize, npu: usize) -> Route {
        let (li, ln) = (self.l1_of_io[io], self.l1_of_npu[npu]);
        if li == ln {
            vec![self.io_up[io], self.npu_down[npu]]
        } else {
            vec![
                self.io_up[io],
                self.l1_up[li],
                self.l1_down[ln],
                self.npu_down[npu],
            ]
        }
    }

    /// Route from NPU `npu` to I/O controller `io`.
    pub fn npu_to_io_route(&self, npu: usize, io: usize) -> Route {
        let (ln, li) = (self.l1_of_npu[npu], self.l1_of_io[io]);
        if ln == li {
            vec![self.npu_up[npu], self.io_down[io]]
        } else {
            vec![
                self.npu_up[npu],
                self.l1_up[ln],
                self.l1_down[li],
                self.io_down[io],
            ]
        }
    }

    /// Route from external memory through `io` to `npu` (weight
    /// streaming ingress).
    pub fn ext_to_npu_route(&self, io: usize, npu: usize) -> Route {
        let mut r = vec![self.ext_to_io[io]];
        r.extend(self.io_to_npu_route(io, npu));
        r
    }

    /// Route from `npu` through `io` to external memory (gradient
    /// streaming egress).
    pub fn npu_to_ext_route(&self, npu: usize, io: usize) -> Route {
        let mut r = self.npu_to_io_route(npu, io);
        r.push(self.io_to_ext[io]);
        r
    }

    /// Compiles an **in-network All-Reduce** among the NPU indices in
    /// `group` into concurrent flows: each member pushes `bytes` up into
    /// its L1 switch (reduced in-switch), partial sums cross the L1–L2
    /// links once when the group spans switches, and the result is
    /// broadcast back down — exactly D bytes on every touched link
    /// (§2.2, §6.1).
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty or contains an out-of-range index.
    pub fn in_network_all_reduce(
        &self,
        group: &[usize],
        bytes: f64,
        priority: Priority,
        tag: u64,
    ) -> Vec<FlowSpec> {
        assert!(!group.is_empty(), "all-reduce group must not be empty");
        let mut flows = Vec::new();
        if group.len() == 1 {
            return flows;
        }
        let parts = self.partition_by_l1(group);
        let spans_l2 = parts.len() > 1;
        for &n in group {
            // Up: NPU -> L1 (reduced in the L1 switch).
            flows.push(
                FlowSpec::new(vec![self.npu_up[n]], bytes)
                    .with_priority(priority)
                    .with_tag(tag),
            );
            // Down: L1 -> NPU (broadcast from the L1 switch).
            flows.push(
                FlowSpec::new(vec![self.npu_down[n]], bytes)
                    .with_priority(priority)
                    .with_tag(tag),
            );
        }
        if spans_l2 {
            for part in &parts {
                let l1 = self.l1_of_npu[part[0]];
                flows.push(
                    FlowSpec::new(vec![self.l1_up[l1]], bytes)
                        .with_priority(priority)
                        .with_tag(tag),
                );
                flows.push(
                    FlowSpec::new(vec![self.l1_down[l1]], bytes)
                        .with_priority(priority)
                        .with_tag(tag),
                );
            }
        }
        flows
    }

    /// Compiles an **in-network Reduce** of `bytes` from the NPUs in
    /// `group` to I/O controller `io` (weight-streaming gradient
    /// egress): D bytes up each NPU link, D across each touched L1–L2
    /// link, D down to the I/O controller and out to external memory.
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty.
    pub fn in_network_reduce_to_io(
        &self,
        group: &[usize],
        io: usize,
        bytes: f64,
        priority: Priority,
        tag: u64,
    ) -> Vec<FlowSpec> {
        assert!(!group.is_empty());
        let io_l1 = self.l1_of_io[io];
        let mut flows = Vec::new();
        for &n in group {
            flows.push(
                FlowSpec::new(vec![self.npu_up[n]], bytes)
                    .with_priority(priority)
                    .with_tag(tag),
            );
        }
        // Partial sums cross L1->L2 for every L1 that is not the I/O's
        // own, then L2->L1(io).
        let parts = self.partition_by_l1(group);
        let mut remote = false;
        for part in &parts {
            let l1 = self.l1_of_npu[part[0]];
            if l1 != io_l1 {
                remote = true;
                flows.push(
                    FlowSpec::new(vec![self.l1_up[l1]], bytes)
                        .with_priority(priority)
                        .with_tag(tag),
                );
            }
        }
        if remote {
            flows.push(
                FlowSpec::new(vec![self.l1_down[io_l1]], bytes)
                    .with_priority(priority)
                    .with_tag(tag),
            );
        }
        flows.push(
            FlowSpec::new(vec![self.io_down[io], self.io_to_ext[io]], bytes)
                .with_priority(priority)
                .with_tag(tag),
        );
        flows
    }

    /// Compiles an **in-network Multicast** of `bytes` from I/O
    /// controller `io` to the NPUs in `group` (weight-streaming
    /// ingress): the switches replicate, so each touched link carries
    /// exactly D bytes.
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty.
    pub fn in_network_multicast_from_io(
        &self,
        group: &[usize],
        io: usize,
        bytes: f64,
        priority: Priority,
        tag: u64,
    ) -> Vec<FlowSpec> {
        assert!(!group.is_empty());
        let io_l1 = self.l1_of_io[io];
        let mut flows = Vec::new();
        flows.push(
            FlowSpec::new(vec![self.ext_to_io[io], self.io_up[io]], bytes)
                .with_priority(priority)
                .with_tag(tag),
        );
        let parts = self.partition_by_l1(group);
        let mut remote = false;
        for part in &parts {
            let l1 = self.l1_of_npu[part[0]];
            if l1 != io_l1 {
                remote = true;
                flows.push(
                    FlowSpec::new(vec![self.l1_down[l1]], bytes)
                        .with_priority(priority)
                        .with_tag(tag),
                );
            }
        }
        if remote {
            flows.push(
                FlowSpec::new(vec![self.l1_up[io_l1]], bytes)
                    .with_priority(priority)
                    .with_tag(tag),
            );
        }
        for &n in group {
            flows.push(
                FlowSpec::new(vec![self.npu_down[n]], bytes)
                    .with_priority(priority)
                    .with_tag(tag),
            );
        }
        flows
    }

    /// Compiles an **in-network Reduce-Scatter** among `group`: every
    /// member pushes its full `bytes` up (reduced in-switch per shard),
    /// and each member receives only its `bytes / n` shard back down.
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty.
    pub fn in_network_reduce_scatter(
        &self,
        group: &[usize],
        bytes: f64,
        priority: Priority,
        tag: u64,
    ) -> Vec<FlowSpec> {
        assert!(!group.is_empty());
        let n = group.len() as f64;
        let mut flows = Vec::new();
        if group.len() == 1 {
            return flows;
        }
        let parts = self.partition_by_l1(group);
        for &m in group {
            flows.push(
                FlowSpec::new(vec![self.npu_up[m]], bytes)
                    .with_priority(priority)
                    .with_tag(tag),
            );
            flows.push(
                FlowSpec::new(vec![self.npu_down[m]], bytes / n)
                    .with_priority(priority)
                    .with_tag(tag),
            );
        }
        if parts.len() > 1 {
            for part in &parts {
                let l1 = self.l1_of_npu[part[0]];
                // Partial sums up (full payload), shards down.
                flows.push(
                    FlowSpec::new(vec![self.l1_up[l1]], bytes)
                        .with_priority(priority)
                        .with_tag(tag),
                );
                flows.push(
                    FlowSpec::new(vec![self.l1_down[l1]], bytes * part.len() as f64 / n)
                        .with_priority(priority)
                        .with_tag(tag),
                );
            }
        }
        flows
    }

    /// Compiles an **in-network All-Gather** among `group`: every member
    /// pushes only its `bytes / n` shard up, and the switches broadcast
    /// the concatenation (`bytes`) back down to every member.
    ///
    /// # Panics
    ///
    /// Panics if `group` is empty.
    pub fn in_network_all_gather(
        &self,
        group: &[usize],
        bytes: f64,
        priority: Priority,
        tag: u64,
    ) -> Vec<FlowSpec> {
        assert!(!group.is_empty());
        let n = group.len() as f64;
        let mut flows = Vec::new();
        if group.len() == 1 {
            return flows;
        }
        let parts = self.partition_by_l1(group);
        for &m in group {
            flows.push(
                FlowSpec::new(vec![self.npu_up[m]], bytes / n)
                    .with_priority(priority)
                    .with_tag(tag),
            );
            flows.push(
                FlowSpec::new(vec![self.npu_down[m]], bytes)
                    .with_priority(priority)
                    .with_tag(tag),
            );
        }
        if parts.len() > 1 {
            for part in &parts {
                let l1 = self.l1_of_npu[part[0]];
                flows.push(
                    FlowSpec::new(vec![self.l1_up[l1]], bytes * part.len() as f64 / n)
                        .with_priority(priority)
                        .with_tag(tag),
                );
                flows.push(
                    FlowSpec::new(vec![self.l1_down[l1]], bytes)
                        .with_priority(priority)
                        .with_tag(tag),
                );
            }
        }
        flows
    }

    /// Compiles an **in-network Multicast** of `bytes` from NPU `src` to
    /// the NPUs in `dsts` (PP activation forwarding, §8.1): the switches
    /// replicate, so each touched link carries exactly `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `dsts` is empty.
    pub fn in_network_multicast_from_npu(
        &self,
        src: usize,
        dsts: &[usize],
        bytes: f64,
        priority: Priority,
        tag: u64,
    ) -> Vec<FlowSpec> {
        assert!(!dsts.is_empty());
        let src_l1 = self.l1_of_npu[src];
        let real_dsts: Vec<usize> = dsts.iter().copied().filter(|&d| d != src).collect();
        let mut flows = Vec::new();
        if real_dsts.is_empty() {
            return flows;
        }
        flows.push(
            FlowSpec::new(vec![self.npu_up[src]], bytes)
                .with_priority(priority)
                .with_tag(tag),
        );
        let parts = self.partition_by_l1(&real_dsts);
        let spans = parts.iter().any(|p| self.l1_of_npu[p[0]] != src_l1);
        if spans {
            flows.push(
                FlowSpec::new(vec![self.l1_up[src_l1]], bytes)
                    .with_priority(priority)
                    .with_tag(tag),
            );
            for part in &parts {
                let l1 = self.l1_of_npu[part[0]];
                if l1 != src_l1 {
                    flows.push(
                        FlowSpec::new(vec![self.l1_down[l1]], bytes)
                            .with_priority(priority)
                            .with_tag(tag),
                    );
                }
            }
        }
        for &d in &real_dsts {
            flows.push(
                FlowSpec::new(vec![self.npu_down[d]], bytes)
                    .with_priority(priority)
                    .with_tag(tag),
            );
        }
        flows
    }

    /// Bisection bandwidth of the tree (sum of L1–L2 capacities divided
    /// by two), bytes/s.
    pub fn bisection_bw(&self) -> f64 {
        let per_l1 = self.topo.link(self.l1_up[0]).bandwidth;
        per_l1 * self.l1s.len() as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{FabricConfig, PhysicalParams, TBPS};

    fn fabric(c: FabricConfig) -> WaferFabric {
        WaferFabric::new(c, &PhysicalParams::paper())
    }

    #[test]
    fn paper_instance_shape() {
        let f = fabric(FabricConfig::FredD);
        assert_eq!(f.npu_count(), 20);
        assert_eq!(f.l1_count(), 5);
        assert_eq!(f.io_count(), 18);
        assert_eq!(f.l1_of_npu(0), 0);
        assert_eq!(f.l1_of_npu(19), 4);
        assert_eq!(f.npus_of_l1(2), vec![8, 9, 10, 11]);
    }

    #[test]
    fn bisection_matches_table5() {
        assert_eq!(fabric(FabricConfig::FredA).bisection_bw(), 3.75e12);
        assert_eq!(fabric(FabricConfig::FredD).bisection_bw(), 30e12);
    }

    #[test]
    fn routes_are_valid_paths() {
        let f = fabric(FabricConfig::FredC);
        let topo = f.topology();
        // Same-L1 route: 2 hops.
        let r = f.npu_route(0, 3);
        assert_eq!(r.len(), 2);
        topo.validate_route(&r).unwrap();
        // Cross-L1 route: 4 hops.
        let r = f.npu_route(0, 19);
        assert_eq!(r.len(), 4);
        assert_eq!(
            topo.validate_route(&r).unwrap(),
            Some((f.npu(0), f.npu(19)))
        );
        // Self route is empty.
        assert!(f.npu_route(7, 7).is_empty());
    }

    #[test]
    fn npu_index_inverts_npu() {
        let f = fabric(FabricConfig::FredD);
        for i in 0..f.npu_count() {
            assert_eq!(f.npu_index(f.npu(i)), Some(i));
        }
        assert_eq!(f.npu_index(f.l1(0)), None);
        assert_eq!(f.npu_index(f.l2()), None);
        assert_eq!(f.npu_index(f.external_memory()), None);
    }

    #[test]
    fn route_avoiding_detours_around_dead_trunk() {
        let f = fabric(FabricConfig::FredD);
        let topo = f.topology();
        // Healthy fabric: identical to the standard route.
        assert_eq!(
            f.npu_route_avoiding(0, 19, |_| false),
            Some(f.npu_route(0, 19))
        );
        // Kill NPU 0's L1–L2 uplink: the detour must avoid it, still
        // connect the same endpoints, and be longer than the tree path.
        let dead = f.l1_up[f.l1_of_npu(0)];
        let detour = f.npu_route_avoiding(0, 19, |l| l == dead).unwrap();
        assert!(!detour.contains(&dead));
        assert_eq!(
            topo.validate_route(&detour).unwrap(),
            Some((f.npu(0), f.npu(19)))
        );
        assert!(detour.len() > f.npu_route(0, 19).len());
        // A dead NPU–L1 uplink is the NPU's only way out: unroutable.
        let only_exit = f.npu_up[0];
        assert_eq!(f.npu_route_avoiding(0, 19, |l| l == only_exit), None);
        // Same-L1 pairs detour over the spine when one leg's down-link
        // dies... but npu_down[b] is b's only way in, so instead kill a
        // trunk that the same-L1 route never touches: route unchanged.
        let r = f.npu_route_avoiding(0, 3, |l| l == dead).unwrap();
        assert_eq!(r, f.npu_route(0, 3));
    }

    #[test]
    fn reroute_flows_repairs_collective_tree() {
        let f = fabric(FabricConfig::FredD);
        let group: Vec<usize> = (0..20).collect();
        let flows = f.in_network_all_reduce(&group, 1e9, Priority::Dp, 3);
        let dead = f.l1_up[2];
        let fixed = f
            .topology()
            .reroute_flows_avoiding(flows.clone(), |l| l == dead)
            .unwrap();
        assert_eq!(fixed.len(), flows.len());
        for fl in &fixed {
            assert!(!fl.route.contains(&dead));
            f.topology().validate_route(&fl.route).unwrap();
            assert_eq!(fl.tag, 3);
        }
        // Exactly one leg (the dead trunk's) was re-routed.
        let moved = fixed.iter().zip(&flows).filter(|(a, b)| a != b).count();
        assert_eq!(moved, 1);
    }

    #[test]
    fn io_and_ext_routes_are_valid() {
        let f = fabric(FabricConfig::FredD);
        let topo = f.topology();
        for io in 0..f.io_count() {
            for npu in [0usize, 7, 19] {
                let r = f.ext_to_npu_route(io, npu);
                let ends = topo.validate_route(&r).unwrap().unwrap();
                assert_eq!(ends, (f.external_memory(), f.npu(npu)));
                let r = f.npu_to_ext_route(npu, io);
                let ends = topo.validate_route(&r).unwrap().unwrap();
                assert_eq!(ends, (f.npu(npu), f.external_memory()));
            }
        }
    }

    #[test]
    fn in_network_all_reduce_puts_d_bytes_per_link() {
        let f = fabric(FabricConfig::FredD);
        let d = 1e9;
        // Wafer-wide group: every NPU link carries D up and D down; every
        // L1 carries D up and D down.
        let flows = f.in_network_all_reduce(&(0..20).collect::<Vec<_>>(), d, Priority::Dp, 0);
        // 20 up + 20 down + 5 l1-up + 5 l1-down.
        assert_eq!(flows.len(), 50);
        for fl in &flows {
            assert_eq!(fl.bytes, d);
            assert_eq!(fl.route.len(), 1);
        }
    }

    #[test]
    fn in_network_all_reduce_within_one_l1_skips_spine() {
        let f = fabric(FabricConfig::FredD);
        let flows = f.in_network_all_reduce(&[0, 1, 2, 3], 1e6, Priority::Mp, 0);
        // 4 up + 4 down, no L1-L2 flows.
        assert_eq!(flows.len(), 8);
        let l1_links: Vec<_> = flows
            .iter()
            .filter(|fl| {
                let link = f.topology().link(fl.route[0]);
                f.topology().node(link.src).kind.is_switch()
                    && f.topology().node(link.dst).kind.is_switch()
            })
            .collect();
        assert!(l1_links.is_empty());
    }

    #[test]
    fn singleton_all_reduce_is_free() {
        let f = fabric(FabricConfig::FredB);
        assert!(f
            .in_network_all_reduce(&[5], 1e9, Priority::Dp, 0)
            .is_empty());
    }

    #[test]
    fn reduce_to_io_touches_each_l1_once() {
        let f = fabric(FabricConfig::FredD);
        let group: Vec<usize> = (0..20).collect();
        let flows = f.in_network_reduce_to_io(&group, 0, 1e9, Priority::Bulk, 0);
        // 20 NPU-up + 4 remote L1-up + 1 L2->L1(io) + 1 io egress.
        assert_eq!(flows.len(), 26);
        for fl in &flows {
            f.topology().validate_route(&fl.route).unwrap();
        }
    }

    #[test]
    fn multicast_from_io_replicates_down() {
        let f = fabric(FabricConfig::FredD);
        let group: Vec<usize> = (0..20).collect();
        let flows = f.in_network_multicast_from_io(&group, 3, 1e9, Priority::Bulk, 7);
        // 1 ingress + 4 remote L1-down + 1 L1(io)-up + 20 NPU-down.
        assert_eq!(flows.len(), 26);
        assert!(flows.iter().all(|fl| fl.tag == 7));
    }

    #[test]
    fn partition_by_l1_groups_members() {
        let f = fabric(FabricConfig::FredC);
        let parts = f.partition_by_l1(&[0, 1, 4, 5, 19]);
        assert_eq!(parts, vec![vec![0, 1], vec![4, 5], vec![19]]);
    }

    #[test]
    fn l1_l2_bandwidth_follows_config() {
        let fa = fabric(FabricConfig::FredA);
        let fd = fabric(FabricConfig::FredD);
        let bw = |f: &WaferFabric| f.topology().link(f.l1_up[0]).bandwidth;
        assert_eq!(bw(&fa), 1.5 * TBPS);
        assert_eq!(bw(&fd), 12.0 * TBPS);
    }

    #[test]
    #[should_panic(expected = "fred-mesh")]
    fn mesh_config_rejected() {
        let _ = fabric(FabricConfig::BaselineMesh);
    }
}
